"""Generator histories under a wall-clock budget: censored and
resubmitted runs, timeout accounting, and validation consistency."""

import numpy as np
import pytest

from repro.apps import get_app
from repro.data import HistoryGenerator
from repro.errors import ConfigurationError, ExecutionTimeoutError
from repro.robustness import validate_dataset
from repro.sim import Executor, ExecutionBudget, NoiseModel, RetryPolicy

SCALES = [32, 64, 128]


@pytest.fixture(scope="module")
def app():
    return get_app("stencil3d")


def budgeted_generator(app, limit, on_timeout="keep", max_attempts=3,
                       escalation=1.5, seed=3):
    ex = Executor(
        seed=seed,
        budget=ExecutionBudget(limit=limit),
        retry=RetryPolicy(max_attempts=max_attempts, escalation=escalation),
    )
    return HistoryGenerator(app, executor=ex, seed=seed, on_timeout=on_timeout)


@pytest.fixture(scope="module")
def tight_limit(app):
    """A limit chosen so a meaningful fraction of runs times out."""
    gen = HistoryGenerator(app, seed=3)
    ds = gen.generate(12, scales=SCALES, repetitions=2)
    return float(np.quantile(ds.runtime, 0.6))


class TestOnTimeoutModes:
    def test_keep_records_censored_rows_at_final_limit(self, app, tight_limit):
        gen = budgeted_generator(app, tight_limit)
        ds = gen.generate(12, scales=SCALES, repetitions=2)
        log = gen.timeout_log
        assert log.censored > 0
        assert len(ds) == 12 * len(SCALES) * 2
        final_limit = tight_limit * 1.5**2
        n_at_limit = int(np.sum(ds.runtime == final_limit))
        assert n_at_limit == log.censored

    def test_drop_removes_exhausted_runs(self, app, tight_limit):
        gen = budgeted_generator(app, tight_limit, on_timeout="drop")
        ds = gen.generate(12, scales=SCALES, repetitions=2)
        log = gen.timeout_log
        assert log.dropped > 0 and log.censored == 0
        assert len(ds) == 12 * len(SCALES) * 2 - log.dropped

    def test_raise_propagates(self, app, tight_limit):
        gen = budgeted_generator(app, tight_limit, on_timeout="raise")
        with pytest.raises(ExecutionTimeoutError):
            gen.generate(12, scales=SCALES, repetitions=2)

    def test_invalid_mode_rejected(self, app):
        with pytest.raises(ConfigurationError):
            HistoryGenerator(app, on_timeout="ignore")

    def test_all_runs_censored_still_builds_history(self, app):
        # A limit below every runtime: with keep, the history is all
        # censored rows rather than empty.
        gen = budgeted_generator(app, 1e-9, max_attempts=2, escalation=1.0)
        ds = gen.generate(3, scales=[32], repetitions=1)
        assert gen.timeout_log.censored == len(ds) == 3

    def test_all_runs_dropped_raises(self, app):
        gen = budgeted_generator(app, 1e-9, on_timeout="drop",
                                 max_attempts=2, escalation=1.0)
        with pytest.raises(ExecutionTimeoutError, match="history is empty"):
            gen.generate(3, scales=[32], repetitions=1)


class TestDeterminismAndAccounting:
    def test_histories_reproducible(self, app, tight_limit):
        a = budgeted_generator(app, tight_limit).generate(
            10, scales=SCALES, repetitions=2
        )
        b = budgeted_generator(app, tight_limit).generate(
            10, scales=SCALES, repetitions=2
        )
        np.testing.assert_array_equal(a.runtime, b.runtime)
        np.testing.assert_array_equal(a.rep, b.rep)

    def test_resubmitted_runs_counted(self, app, tight_limit):
        gen = budgeted_generator(app, tight_limit)
        gen.generate(12, scales=SCALES, repetitions=2)
        log = gen.timeout_log
        assert log.resubmitted > 0
        assert log.extra_attempts >= log.resubmitted
        assert log.affected == log.censored + log.resubmitted
        assert "censored" in log.summary()

    def test_unbudgeted_collect_logs_nothing(self, app):
        gen = HistoryGenerator(app, seed=3)
        gen.generate(5, scales=[32], repetitions=1)
        assert gen.timeout_log.affected == 0
        assert "none" in gen.timeout_log.summary()


class TestValidationConsistency:
    def test_validate_flags_exactly_the_censored_rows(self, app, tight_limit):
        gen = budgeted_generator(app, tight_limit)
        ds = gen.generate(12, scales=SCALES, repetitions=2)
        final_limit = tight_limit * 1.5**2
        report = validate_dataset(ds, censor_limit=final_limit)
        cens = report.by_rule("censored_runtime")
        assert cens.n_rows == gen.timeout_log.censored
        # Censoring is a warning, never an error: the history stays usable.
        assert report.ok

    def test_inference_without_explicit_limit(self, app, tight_limit):
        # Exhausted runs all record the same final limit, so the shared
        # ceiling is inferable from repeated bit-identical maxima alone.
        gen = budgeted_generator(app, tight_limit)
        ds = gen.generate(12, scales=SCALES, repetitions=2)
        if gen.timeout_log.censored < 3:
            pytest.skip("too few censored rows for ceiling inference")
        report = validate_dataset(ds)
        assert report.by_rule("censored_runtime").n_rows == gen.timeout_log.censored
