"""Property-based tests of ExecutionDataset invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import ExecutionDataset


@st.composite
def datasets(draw):
    n_configs = draw(st.integers(1, 6))
    n_params = draw(st.integers(1, 3))
    scales = draw(
        st.lists(
            st.sampled_from([2, 4, 8, 16, 32]), min_size=1, max_size=3,
            unique=True,
        )
    )
    reps = draw(st.integers(1, 2))
    rng = np.random.default_rng(draw(st.integers(0, 1000)))
    configs = rng.uniform(1.0, 10.0, size=(n_configs, n_params))
    rows_X, rows_p, rows_t, rows_r = [], [], [], []
    for c in range(n_configs):
        for s in scales:
            for r in range(reps):
                rows_X.append(configs[c])
                rows_p.append(s)
                rows_t.append(float(rng.uniform(0.1, 5.0)))
                rows_r.append(r)
    return ExecutionDataset(
        app_name="prop",
        param_names=tuple(f"a{j}" for j in range(n_params)),
        X=np.asarray(rows_X),
        nprocs=np.asarray(rows_p),
        runtime=np.asarray(rows_t),
        model_runtime=np.asarray(rows_t),
        rep=np.asarray(rows_r),
    )


class TestDatasetProperties:
    @given(datasets())
    @settings(max_examples=25, deadline=None)
    def test_at_scales_partition(self, ds):
        """Splitting by scales and merging back preserves every run."""
        scales = [int(s) for s in ds.scales]
        parts = [ds.at_scale(s) for s in scales]
        assert sum(len(p) for p in parts) == len(ds)
        merged = parts[0]
        for p in parts[1:]:
            merged = merged.merge(p)
        assert len(merged) == len(ds)
        assert merged.runtime.sum() == pytest.approx(ds.runtime.sum())

    @given(datasets())
    @settings(max_examples=25, deadline=None)
    def test_unique_configs_count(self, ds):
        cfgs = ds.unique_configs()
        # Every row's parameters appear in the unique list.
        for row in ds.X:
            assert np.any(np.all(cfgs == row, axis=1))
        # And uniqueness holds.
        assert len(np.unique(cfgs, axis=0)) == len(cfgs)

    @given(datasets())
    @settings(max_examples=25, deadline=None)
    def test_runtime_matrix_bounds(self, ds):
        """Pivoted means stay inside the per-config min/max runtimes."""
        scales = [int(s) for s in ds.scales]
        cfgs, T = ds.runtime_matrix(scales)
        assert T.shape == (len(cfgs), len(scales))
        if T.size:
            assert T.min() >= ds.runtime.min() - 1e-12
            assert T.max() <= ds.runtime.max() + 1e-12

    @given(datasets())
    @settings(max_examples=25, deadline=None)
    def test_config_ids_are_grouping(self, ds):
        ids = ds.config_ids()
        cfgs = ds.unique_configs()
        assert ids.min() >= 0 and ids.max() < len(cfgs)
        for i in range(len(ds)):
            np.testing.assert_array_equal(cfgs[ids[i]], ds.X[i])

    @given(datasets(), st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_select_roundtrip(self, ds, seed):
        rng = np.random.default_rng(seed)
        mask = rng.random(len(ds)) < 0.5
        sub = ds.select(mask)
        assert len(sub) == int(mask.sum())
        if len(sub):
            np.testing.assert_array_equal(sub.runtime, ds.runtime[mask])
