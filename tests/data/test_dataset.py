"""Tests for the ExecutionDataset container."""

import numpy as np
import pytest

from repro.data import ExecutionDataset
from repro.sim.trace import ExecutionRecord


def make_dataset(n_configs=3, scales=(2, 4), reps=1):
    records = []
    for c in range(n_configs):
        for s in scales:
            for r in range(reps):
                records.append(
                    ExecutionRecord(
                        app_name="toy",
                        params={"a": float(c), "b": float(c * 10)},
                        nprocs=s,
                        runtime=1.0 / s + c + 0.001 * r,
                        model_runtime=1.0 / s + c,
                        rep=r,
                    )
                )
    return ExecutionDataset.from_records(records, param_names=("a", "b"))


class TestConstruction:
    def test_from_records_shapes(self):
        ds = make_dataset(3, (2, 4), 2)
        assert len(ds) == 12
        assert ds.X.shape == (12, 2)
        assert ds.param_names == ("a", "b")

    def test_empty_records_raise(self):
        with pytest.raises(ValueError, match="No records"):
            ExecutionDataset.from_records([])

    def test_mixed_apps_raise(self):
        r1 = ExecutionRecord("a", {"x": 1.0}, 2, 1.0, 1.0)
        r2 = ExecutionRecord("b", {"x": 1.0}, 2, 1.0, 1.0)
        with pytest.raises(ValueError, match="Mixed applications"):
            ExecutionDataset.from_records([r1, r2])

    def test_mismatched_params_raise(self):
        r1 = ExecutionRecord("a", {"x": 1.0}, 2, 1.0, 1.0)
        r2 = ExecutionRecord("a", {"y": 1.0}, 2, 1.0, 1.0)
        with pytest.raises(ValueError, match="do not match"):
            ExecutionDataset.from_records([r1, r2])

    def test_direct_construction_validation(self):
        with pytest.raises(ValueError, match="columns"):
            ExecutionDataset(
                "a", ("x",), np.ones((2, 2)), np.array([1, 1]),
                np.ones(2), np.ones(2),
            )
        with pytest.raises(ValueError, match="positive"):
            ExecutionDataset(
                "a", ("x",), np.ones((2, 1)), np.array([1, 1]),
                np.array([1.0, 0.0]), np.ones(2),
            )
        with pytest.raises(ValueError, match="shape"):
            ExecutionDataset(
                "a", ("x",), np.ones((2, 1)), np.array([1]),
                np.ones(2), np.ones(2),
            )

    def test_default_rep_zero(self):
        ds = ExecutionDataset(
            "a", ("x",), np.ones((2, 1)), np.array([1, 2]),
            np.ones(2), np.ones(2),
        )
        np.testing.assert_array_equal(ds.rep, [0, 0])


class TestSlicing:
    def test_at_scale(self):
        ds = make_dataset(3, (2, 4))
        sub = ds.at_scale(2)
        assert len(sub) == 3
        assert set(sub.nprocs) == {2}

    def test_at_scales(self):
        ds = make_dataset(2, (2, 4, 8))
        sub = ds.at_scales([2, 8])
        assert set(sub.nprocs) == {2, 8}
        assert len(sub) == 4

    def test_scales_property_sorted_unique(self):
        ds = make_dataset(2, (8, 2, 4))
        np.testing.assert_array_equal(ds.scales, [2, 4, 8])

    def test_select_boolean_mask(self):
        ds = make_dataset(2, (2, 4))
        sub = ds.select(ds.nprocs == 4)
        assert len(sub) == 2

    def test_merge(self):
        a = make_dataset(2, (2,))
        b = make_dataset(3, (4,))
        merged = a.merge(b)
        assert len(merged) == 5
        assert set(merged.scales) == {2, 4}

    def test_merge_different_apps_raises(self):
        a = make_dataset(2, (2,))
        bad = ExecutionDataset(
            "other", ("a", "b"), np.ones((1, 2)), np.array([2]),
            np.ones(1), np.ones(1),
        )
        with pytest.raises(ValueError):
            a.merge(bad)


class TestConfigViews:
    def test_unique_configs(self):
        ds = make_dataset(4, (2, 4), reps=2)
        cfgs = ds.unique_configs()
        assert cfgs.shape == (4, 2)

    def test_config_ids_consistent(self):
        ds = make_dataset(3, (2, 4), reps=2)
        ids = ds.config_ids()
        assert len(np.unique(ids)) == 3
        # Rows with equal X share an id.
        for i in range(len(ds)):
            for j in range(len(ds)):
                same_x = np.array_equal(ds.X[i], ds.X[j])
                assert (ids[i] == ids[j]) == same_x

    def test_runtime_matrix_shapes_and_means(self):
        ds = make_dataset(3, (2, 4), reps=2)
        cfgs, T = ds.runtime_matrix([2, 4])
        assert cfgs.shape == (3, 2)
        assert T.shape == (3, 2)
        # Mean over the two reps of config 0 at scale 2.
        expected = np.mean([1.0 / 2 + 0, 1.0 / 2 + 0 + 0.001])
        assert T[0, 0] == pytest.approx(expected)

    def test_runtime_matrix_drops_incomplete_configs(self):
        ds = make_dataset(3, (2, 4))
        # Remove config 1's runs at scale 4.
        keep = ~((ds.X[:, 0] == 1.0) & (ds.nprocs == 4))
        sub = ds.select(keep)
        cfgs, T = sub.runtime_matrix([2, 4])
        assert cfgs.shape[0] == 2

    def test_runtime_matrix_model_runtime_option(self):
        ds = make_dataset(2, (2, 4), reps=2)
        _, T = ds.runtime_matrix([2, 4], use_model_runtime=True)
        assert T[0, 0] == pytest.approx(0.5)

    def test_runtime_matrix_empty_result(self):
        ds = make_dataset(2, (2,))
        cfgs, T = ds.runtime_matrix([2, 4])  # no config has scale 4
        assert cfgs.shape[0] == 0 and T.shape == (0, 2)


class TestSummary:
    def test_summary_mentions_key_facts(self):
        ds = make_dataset(3, (2, 4))
        text = ds.summary()
        assert "toy" in text
        assert "configs     : 3" in text
        assert "param a" in text
