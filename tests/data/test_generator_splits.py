"""Tests for parameter samplers, history generation, and scale splits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import get_app
from repro.data import (
    HistoryGenerator,
    config_split,
    sample_grid,
    sample_latin_hypercube,
    sample_random,
    scale_split,
)
from repro.sim import Executor, NoiseModel


@pytest.fixture(scope="module")
def app():
    return get_app("stencil3d")


class TestSamplers:
    def test_random_respects_ranges(self, app):
        rng = np.random.default_rng(0)
        for params in sample_random(app, 50, rng):
            app.validate_params(params)

    def test_lhs_respects_ranges(self, app):
        rng = np.random.default_rng(0)
        for params in sample_latin_hypercube(app, 50, rng):
            app.validate_params(params)

    @given(st.integers(5, 40), st.integers(0, 10))
    @settings(max_examples=15, deadline=None)
    def test_lhs_stratification_property(self, n, seed):
        # For a continuous parameter, LHS puts exactly one sample in each
        # of the n equal-probability strata.
        app = get_app("nbody")
        rng = np.random.default_rng(seed)
        configs = sample_latin_hypercube(app, n, rng)
        values = np.array([c["density"] for c in configs])  # continuous
        spec = {s.name: s for s in app.param_specs()}["density"]
        strata = np.floor(
            (values - spec.low) / (spec.high - spec.low) * n
        ).astype(int)
        strata = np.clip(strata, 0, n - 1)
        assert len(set(strata.tolist())) == n

    def test_grid_size(self, app):
        configs = sample_grid(app, 2)
        # <= points_per_dim^d (integer collapse may shrink axes).
        assert 1 < len(configs) <= 2 ** len(app.param_specs())
        for params in configs:
            app.validate_params(params)

    def test_grid_requires_two_points(self, app):
        with pytest.raises(ValueError):
            sample_grid(app, 1)

    def test_zero_samples_raise(self, app):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_random(app, 0, rng)
        with pytest.raises(ValueError):
            sample_latin_hypercube(app, 0, rng)


class TestHistoryGenerator:
    def test_generate_shape(self, app):
        gen = HistoryGenerator(app, seed=0)
        ds = gen.generate(5, scales=[2, 4], repetitions=3)
        assert len(ds) == 5 * 2 * 3
        assert set(ds.scales) == {2, 4}

    def test_reproducible_across_instances(self, app):
        a = HistoryGenerator(app, seed=3).generate(4, scales=[2, 4])
        b = HistoryGenerator(app, seed=3).generate(4, scales=[2, 4])
        np.testing.assert_array_equal(a.X, b.X)
        np.testing.assert_array_equal(a.runtime, b.runtime)

    def test_unknown_sampler_raises(self, app):
        gen = HistoryGenerator(app, seed=0)
        with pytest.raises(ValueError):
            gen.sample_configs(3, method="sobol")

    def test_collect_validates_inputs(self, app):
        gen = HistoryGenerator(app, seed=0)
        with pytest.raises(ValueError):
            gen.collect([], scales=[2])
        with pytest.raises(ValueError):
            gen.collect([app.sample_params(np.random.default_rng(0))], scales=[])
        with pytest.raises(ValueError):
            gen.collect(
                [app.sample_params(np.random.default_rng(0))],
                scales=[2],
                repetitions=0,
            )

    def test_custom_executor_respected(self, app):
        ex = Executor(noise=NoiseModel(sigma=0.0, jitter_prob=0.0), seed=0)
        gen = HistoryGenerator(app, executor=ex, seed=0)
        ds = gen.generate(3, scales=[4])
        np.testing.assert_allclose(ds.runtime, ds.model_runtime)


class TestScaleSplit:
    def test_partition_by_scale(self, tiny_history):
        split = scale_split(tiny_history, [32, 64], [128, 256])
        assert set(split.train.scales) == {32, 64}
        assert set(split.test.scales) == {128, 256}
        assert len(split.train) + len(split.test) == len(tiny_history)

    def test_missing_scale_raises(self, tiny_history):
        with pytest.raises(ValueError, match="not present"):
            scale_split(tiny_history, [32], [512])

    def test_overlapping_scales_raise(self, tiny_history):
        with pytest.raises(ValueError):
            scale_split(tiny_history, [32, 64], [64, 128])

    def test_interleaved_scales_raise(self, tiny_history):
        with pytest.raises(ValueError, match="exceed"):
            scale_split(tiny_history, [32, 128], [64, 256])


class TestConfigSplit:
    def test_no_configuration_leakage(self, tiny_history):
        train, test = config_split(tiny_history, test_fraction=0.3)
        train_cfgs = {tuple(r) for r in train.X}
        test_cfgs = {tuple(r) for r in test.X}
        assert not train_cfgs & test_cfgs
        assert len(train) + len(test) == len(tiny_history)

    def test_fraction_respected(self, tiny_history):
        _, test = config_split(tiny_history, test_fraction=0.25)
        n_cfg = len(tiny_history.unique_configs())
        assert len(test.unique_configs()) == max(1, round(0.25 * n_cfg))

    def test_invalid_fraction_raises(self, tiny_history):
        with pytest.raises(ValueError):
            config_split(tiny_history, test_fraction=0.0)

    def test_reproducible_with_rng(self, tiny_history):
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        _, t1 = config_split(tiny_history, rng=rng1)
        _, t2 = config_split(tiny_history, rng=rng2)
        np.testing.assert_array_equal(t1.X, t2.X)
