"""Tests for dataset persistence (JSON and NPZ round trips)."""

import json

import numpy as np
import pytest

from repro.data import load_dataset, save_dataset


class TestRoundTrip:
    @pytest.mark.parametrize("suffix", [".json", ".npz"])
    def test_exact_roundtrip(self, tiny_history, tmp_path, suffix):
        path = tmp_path / f"history{suffix}"
        save_dataset(tiny_history, path)
        loaded = load_dataset(path)
        assert loaded.app_name == tiny_history.app_name
        assert loaded.param_names == tiny_history.param_names
        np.testing.assert_array_equal(loaded.X, tiny_history.X)
        np.testing.assert_array_equal(loaded.nprocs, tiny_history.nprocs)
        np.testing.assert_array_equal(loaded.runtime, tiny_history.runtime)
        np.testing.assert_array_equal(
            loaded.model_runtime, tiny_history.model_runtime
        )
        np.testing.assert_array_equal(loaded.rep, tiny_history.rep)

    def test_json_is_human_readable(self, tiny_history, tmp_path):
        path = tmp_path / "h.json"
        save_dataset(tiny_history, path)
        payload = json.loads(path.read_text())
        assert payload["app_name"] == "stencil3d"
        assert "format_version" in payload

    def test_loaded_dataset_usable(self, tiny_history, tmp_path):
        path = tmp_path / "h.npz"
        save_dataset(tiny_history, path)
        loaded = load_dataset(path)
        sub = loaded.at_scale(int(loaded.scales[0]))
        assert len(sub) > 0


class TestErrors:
    def test_unknown_suffix_save(self, tiny_history, tmp_path):
        with pytest.raises(ValueError, match="format"):
            save_dataset(tiny_history, tmp_path / "h.csv")

    def test_unknown_suffix_load(self, tmp_path):
        p = tmp_path / "h.csv"
        p.write_text("x")
        with pytest.raises(ValueError, match="format"):
            load_dataset(p)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "nope.json")

    def test_version_check_json(self, tiny_history, tmp_path):
        path = tmp_path / "h.json"
        save_dataset(tiny_history, path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="version"):
            load_dataset(path)
