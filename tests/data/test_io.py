"""Tests for dataset persistence (JSON and NPZ round trips)."""

import json

import numpy as np
import pytest

from repro.data import load_dataset, save_dataset
from repro.errors import DatasetFormatError


class TestRoundTrip:
    @pytest.mark.parametrize("suffix", [".json", ".npz"])
    def test_exact_roundtrip(self, tiny_history, tmp_path, suffix):
        path = tmp_path / f"history{suffix}"
        save_dataset(tiny_history, path)
        loaded = load_dataset(path)
        assert loaded.app_name == tiny_history.app_name
        assert loaded.param_names == tiny_history.param_names
        np.testing.assert_array_equal(loaded.X, tiny_history.X)
        np.testing.assert_array_equal(loaded.nprocs, tiny_history.nprocs)
        np.testing.assert_array_equal(loaded.runtime, tiny_history.runtime)
        np.testing.assert_array_equal(
            loaded.model_runtime, tiny_history.model_runtime
        )
        np.testing.assert_array_equal(loaded.rep, tiny_history.rep)

    def test_json_is_human_readable(self, tiny_history, tmp_path):
        path = tmp_path / "h.json"
        save_dataset(tiny_history, path)
        payload = json.loads(path.read_text())
        assert payload["app_name"] == "stencil3d"
        assert "format_version" in payload

    def test_loaded_dataset_usable(self, tiny_history, tmp_path):
        path = tmp_path / "h.npz"
        save_dataset(tiny_history, path)
        loaded = load_dataset(path)
        sub = loaded.at_scale(int(loaded.scales[0]))
        assert len(sub) > 0


class TestErrors:
    def test_unknown_suffix_save(self, tiny_history, tmp_path):
        with pytest.raises(ValueError, match="format"):
            save_dataset(tiny_history, tmp_path / "h.csv")

    def test_unknown_suffix_load(self, tmp_path):
        p = tmp_path / "h.csv"
        p.write_text("x")
        with pytest.raises(ValueError, match="format"):
            load_dataset(p)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "nope.json")

    def test_version_check_json(self, tiny_history, tmp_path):
        path = tmp_path / "h.json"
        save_dataset(tiny_history, path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(DatasetFormatError, match="version"):
            load_dataset(path)


class TestMalformedPayloads:
    def _payload(self, tiny_history, tmp_path):
        path = tmp_path / "h.json"
        save_dataset(tiny_history, path)
        return path, json.loads(path.read_text())

    @pytest.mark.parametrize(
        "key", ["format_version", "app_name", "X", "runtime", "rep"]
    )
    def test_missing_key_names_it(self, tiny_history, tmp_path, key):
        path, payload = self._payload(tiny_history, tmp_path)
        del payload[key]
        path.write_text(json.dumps(payload))
        with pytest.raises(DatasetFormatError, match=key):
            load_dataset(path)

    def test_non_integer_version(self, tiny_history, tmp_path):
        path, payload = self._payload(tiny_history, tmp_path)
        payload["format_version"] = "new"
        path.write_text(json.dumps(payload))
        with pytest.raises(DatasetFormatError, match="not an integer"):
            load_dataset(path)

    def test_not_json(self, tmp_path):
        path = tmp_path / "h.json"
        path.write_text("{not json!")
        with pytest.raises(DatasetFormatError, match="JSON"):
            load_dataset(path)

    def test_json_array_payload(self, tmp_path):
        path = tmp_path / "h.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(DatasetFormatError, match="object"):
            load_dataset(path)

    def test_shape_mismatch(self, tiny_history, tmp_path):
        path, payload = self._payload(tiny_history, tmp_path)
        payload["runtime"] = payload["runtime"][:-2]
        path.write_text(json.dumps(payload))
        with pytest.raises(DatasetFormatError, match="malformed"):
            load_dataset(path)

    def test_garbage_npz(self, tmp_path):
        path = tmp_path / "h.npz"
        path.write_bytes(b"\x00\x01\x02 not a zip archive")
        with pytest.raises(DatasetFormatError):
            load_dataset(path)

    def test_npz_missing_key(self, tiny_history, tmp_path):
        path = tmp_path / "h.npz"
        np.savez_compressed(
            path, X=tiny_history.X, runtime=tiny_history.runtime
        )
        with pytest.raises(DatasetFormatError, match="missing keys"):
            load_dataset(path)

    def test_format_error_is_still_a_value_error(self, tmp_path):
        # Compatibility: callers catching ValueError keep working.
        path = tmp_path / "h.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            load_dataset(path)


class TestLoadTimeValidation:
    def _dirty_file(self, tiny_history, tmp_path):
        import json as _json

        path = tmp_path / "h.json"
        save_dataset(tiny_history, path)
        payload = _json.loads(path.read_text())
        payload["runtime"][0] = None  # json null -> NaN
        path.write_text(_json.dumps(payload))
        return path

    def test_load_accepts_nan_by_default(self, tiny_history, tmp_path):
        path = self._dirty_file(tiny_history, tmp_path)
        loaded = load_dataset(path)
        assert np.isnan(loaded.runtime[0])

    def test_validate_flag_rejects_nan(self, tiny_history, tmp_path):
        from repro.errors import DataValidationError

        path = self._dirty_file(tiny_history, tmp_path)
        with pytest.raises(DataValidationError, match="nonfinite_runtime"):
            load_dataset(path, validate=True)

    def test_sanitize_flag_repairs(self, tiny_history, tmp_path):
        path = self._dirty_file(tiny_history, tmp_path)
        loaded = load_dataset(path, sanitize=True)
        assert len(loaded) == len(tiny_history) - 1
        assert np.isfinite(loaded.runtime).all()
