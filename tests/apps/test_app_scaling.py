"""App-specific scaling-behavior tests: each application must exhibit the
communication regime its docstring promises, because those regime
differences are what make the extrapolation problem (and the clustering
step) meaningful."""

import numpy as np
import pytest

from repro.apps import get_app
from repro.sim import Executor, NoiseModel


@pytest.fixture(scope="module")
def ex():
    return Executor(noise=NoiseModel(sigma=0.0, jitter_prob=0.0))


class TestStencil3D:
    def test_compute_dominated_for_large_grid(self, ex):
        app = get_app("stencil3d")
        params = {"nx": 512, "iterations": 200, "ghost": 1, "check_freq": 25}
        rec = ex.run(app, params, 64)
        assert rec.comm_fraction < 0.3

    def test_latency_dominated_for_small_grid_large_p(self, ex):
        app = get_app("stencil3d")
        params = {"nx": 48, "iterations": 200, "ghost": 1, "check_freq": 25}
        rec = ex.run(app, params, 4096)
        assert rec.comm_fraction > 0.7

    def test_ghost_width_increases_halo_and_flops(self, ex):
        app = get_app("stencil3d")
        base = {"nx": 128, "iterations": 100, "ghost": 1, "check_freq": 25}
        thick = dict(base, ghost=4)
        assert ex.model_time(app, thick, 256) > ex.model_time(app, base, 256)

    def test_check_freq_controls_allreduce_count(self, ex):
        app = get_app("stencil3d")
        rare = {"nx": 64, "iterations": 400, "ghost": 1, "check_freq": 50}
        often = dict(rare, check_freq=5)
        # More residual checks -> more allreduce latency at scale.
        assert ex.model_time(app, often, 2048) > ex.model_time(app, rare, 2048)

    def test_iterations_scale_runtime_linearly(self, ex):
        app = get_app("stencil3d")
        p1 = {"nx": 128, "iterations": 100, "ghost": 1, "check_freq": 10}
        p2 = dict(p1, iterations=200)
        r = ex.model_time(app, p2, 64) / ex.model_time(app, p1, 64)
        assert r == pytest.approx(2.0, rel=0.05)


class TestNBody:
    def test_cutoff_increases_force_work(self, ex):
        app = get_app("nbody")
        base = {"n_particles": 1e5, "timesteps": 50, "cutoff": 2.5,
                "density": 0.8, "rebuild_every": 10}
        wide = dict(base, cutoff=5.0)
        assert ex.model_time(app, wide, 64) > 2.0 * ex.model_time(app, base, 64)

    def test_allreduce_every_step(self, ex):
        app = get_app("nbody")
        params = {"n_particles": 2e4, "timesteps": 400, "cutoff": 2.0,
                  "density": 0.4, "rebuild_every": 10}
        rec = ex.run(app, params, 2048)
        reduce_phase = next(p for p in rec.phases if p.name == "global_reduce")
        assert reduce_phase.comm_time > 0

    def test_density_increases_work(self, ex):
        app = get_app("nbody")
        base = {"n_particles": 1e5, "timesteps": 50, "cutoff": 3.0,
                "density": 0.4, "rebuild_every": 10}
        dense = dict(base, density=1.2)
        assert ex.model_time(app, dense, 64) > ex.model_time(app, base, 64)


class TestCG:
    def test_allreduce_latency_wall_at_scale(self, ex):
        # Small system, many iterations: at large p the dot-product
        # allreduces dominate everything.
        app = get_app("cg")
        params = {"n": 1e5, "nnz_per_row": 7, "iterations": 600}
        rec = ex.run(app, params, 4096)
        dot = next(p for p in rec.phases if p.name == "dot_products")
        assert dot.comm_time > 0.5 * rec.comm_time

    def test_spmv_scales_with_nnz(self, ex):
        app = get_app("cg")
        sparse = {"n": 1e6, "nnz_per_row": 5, "iterations": 100}
        dense = dict(sparse, nnz_per_row=81)
        assert ex.model_time(app, dense, 64) > 3.0 * ex.model_time(app, sparse, 64)


class TestFFT2D:
    def test_alltoall_dominates_communication(self, ex):
        app = get_app("fft2d")
        params = {"n": 4096, "batches": 8}
        rec = ex.run(app, params, 1024)
        transpose = next(p for p in rec.phases if p.name == "transpose")
        assert transpose.comm_time == pytest.approx(rec.comm_time)

    def test_runtime_can_rise_at_scale(self, ex):
        # The latency term of the alltoall grows ~linearly with p: for a
        # small transform the curve must turn upward.
        app = get_app("fft2d")
        params = {"n": 512, "batches": 4}
        t256 = ex.model_time(app, params, 256)
        t4096 = ex.model_time(app, params, 4096)
        assert t4096 > t256

    def test_flops_follow_n2_logn(self, ex):
        app = get_app("fft2d")
        small = {"n": 1024, "batches": 4}
        big = {"n": 2048, "batches": 4}
        phases_small = app.phases(small, 1)
        phases_big = app.phases(big, 1)
        f_ratio = phases_big[0].flops / phases_small[0].flops
        expected = (2048**2 * np.log2(2048)) / (1024**2 * np.log2(1024))
        assert f_ratio == pytest.approx(expected, rel=0.01)
