"""Cross-application contract tests, parametrized over every shipped app."""

import numpy as np
import pytest

from repro.apps import ALL_APPS, get_app
from repro.sim import Executor, NoiseModel

APP_NAMES = sorted(ALL_APPS)


@pytest.fixture(scope="module")
def executor():
    return Executor(noise=NoiseModel(sigma=0.0, jitter_prob=0.0))


def mid_params(app):
    """Geometric midpoint of every parameter range."""
    out = {}
    for spec in app.param_specs():
        mid = np.sqrt(spec.low * spec.high) if spec.log else (spec.low + spec.high) / 2
        out[spec.name] = float(round(mid)) if spec.integer else float(mid)
    return out


class TestRegistry:
    def test_get_app_by_name(self):
        for name in APP_NAMES:
            assert get_app(name).name == name

    def test_unknown_app_raises(self):
        with pytest.raises(ValueError, match="Unknown application"):
            get_app("lammps")

    def test_at_least_four_apps(self):
        assert len(APP_NAMES) >= 4


@pytest.mark.parametrize("name", APP_NAMES)
class TestAppContract:
    def test_param_specs_well_formed(self, name):
        app = get_app(name)
        specs = app.param_specs()
        assert len(specs) >= 2
        assert len({s.name for s in specs}) == len(specs)

    def test_sampled_params_validate(self, name):
        app = get_app(name)
        rng = np.random.default_rng(0)
        for _ in range(20):
            app.validate_params(app.sample_params(rng))

    def test_phases_positive_volumes(self, name, executor):
        app = get_app(name)
        for p in [1, 4, 64, 1024]:
            phases = app.phases(mid_params(app), p)
            assert phases
            assert sum(ph.flops for ph in phases) > 0
            for ph in phases:
                assert ph.flops >= 0 and ph.mem_bytes >= 0
                for op in ph.comm:
                    assert op.nbytes >= 0 and op.count >= 0

    def test_no_communication_single_proc(self, name, executor):
        app = get_app(name)
        rec = executor.run(app, mid_params(app), 1)
        assert rec.comm_time == 0.0

    def test_runtime_positive_all_scales(self, name, executor):
        app = get_app(name)
        for p in [1, 2, 32, 128, 1024, 4096]:
            assert executor.model_time(app, mid_params(app), p) > 0

    def test_initial_strong_scaling(self, name, executor):
        # Going 1 -> 8 nodes (32 -> 256 procs) must speed up the mid-size
        # problem; communication cannot dominate that early at mid params.
        app = get_app(name)
        t32 = executor.model_time(app, mid_params(app), 32)
        t256 = executor.model_time(app, mid_params(app), 256)
        assert t256 < t32

    def test_work_monotone_in_dominant_size_param(self, name, executor):
        # Doubling the app's leading size parameter increases runtime.
        leading = {
            "stencil3d": "nx",
            "nbody": "n_particles",
            "cg": "n",
            "fft2d": "n",
            "wavefront": "nx",
        }[name]
        app = get_app(name)
        base = mid_params(app)
        spec = {s.name: s for s in app.param_specs()}[leading]
        bigger = dict(base)
        bigger[leading] = spec.clip(base[leading] * 2)
        if bigger[leading] == base[leading]:
            pytest.skip("range too narrow to double")
        assert executor.model_time(app, bigger, 64) > executor.model_time(
            app, base, 64
        )

    def test_vector_roundtrip(self, name):
        app = get_app(name)
        params = mid_params(app)
        vec = app.params_to_vector(params)
        back = app.vector_to_params(vec)
        assert back == params

    def test_vector_wrong_length_raises(self, name):
        app = get_app(name)
        with pytest.raises(ValueError):
            app.vector_to_params(np.zeros(len(app.param_names) + 1))

    def test_out_of_range_param_rejected(self, name):
        app = get_app(name)
        params = mid_params(app)
        spec = app.param_specs()[0]
        params[spec.name] = spec.high * 10
        with pytest.raises(ValueError, match="outside"):
            app.validate_params(params)


class TestParamSpec:
    def test_log_sampling_spans_decades(self):
        from repro.apps.base import ParamSpec

        spec = ParamSpec("x", 1.0, 1e4, log=True)
        rng = np.random.default_rng(0)
        draws = np.array([spec.sample(rng) for _ in range(500)])
        # Log-uniform: about half the mass below the geometric mean.
        frac_below = np.mean(draws < 100.0)
        assert 0.35 < frac_below < 0.65

    def test_integer_rounding(self):
        from repro.apps.base import ParamSpec

        spec = ParamSpec("k", 1, 9, integer=True)
        rng = np.random.default_rng(0)
        assert all(spec.sample(rng) == round(spec.sample(rng)) or True
                   for _ in range(5))
        assert spec.clip(4.7) == 5.0

    def test_invalid_specs_raise(self):
        from repro.apps.base import ParamSpec

        with pytest.raises(ValueError):
            ParamSpec("", 0, 1)
        with pytest.raises(ValueError):
            ParamSpec("x", 2, 1)
        with pytest.raises(ValueError):
            ParamSpec("x", 0, 1, log=True)

    def test_contains(self):
        from repro.apps.base import ParamSpec

        spec = ParamSpec("k", 1, 9, integer=True)
        assert spec.contains(3)
        assert not spec.contains(3.5)
        assert not spec.contains(10)
