"""Tests for the weak-scaling application adapter."""

import numpy as np
import pytest

from repro.apps import WeakScaling, get_app, weak_fft, weak_stencil
from repro.apps.base import ParamSpec
from repro.core import TwoLevelModel
from repro.data import HistoryGenerator
from repro.sim import Executor, NoiseModel


@pytest.fixture(scope="module")
def ex():
    return Executor(noise=NoiseModel(sigma=0.0, jitter_prob=0.0))


class TestAdapterConstruction:
    def test_param_space_swaps_size_param(self):
        app = weak_stencil()
        assert "nx" not in app.param_names
        assert "nx_per_proc" in app.param_names
        # All other inner parameters survive.
        assert {"iterations", "ghost", "check_freq"} <= set(app.param_names)

    def test_name_prefixed(self):
        assert weak_stencil().name == "weak-stencil3d"
        assert weak_fft().name == "weak-fft2d"

    def test_unknown_size_param_raises(self):
        with pytest.raises(ValueError, match="no parameter"):
            WeakScaling(
                get_app("stencil3d"),
                size_param="npoints",
                per_proc_spec=ParamSpec("x", 1, 2),
                grow=lambda s, p: s * p,
            )

    def test_colliding_name_raises(self):
        with pytest.raises(ValueError, match="collides"):
            WeakScaling(
                get_app("stencil3d"),
                size_param="nx",
                per_proc_spec=ParamSpec("ghost", 1, 2),
                grow=lambda s, p: s * p,
            )


class TestWeakScalingSemantics:
    def test_global_size_grows_with_p(self, ex):
        app = weak_stencil()
        params = {"nx_per_proc": 24, "iterations": 100, "ghost": 1,
                  "check_freq": 10}
        # Per-process compute volume must stay ~constant: total flops of
        # the sweep phase scale ~linearly with p.
        f32 = app.phases(params, 32)[0].flops
        f2048 = app.phases(params, 2048)[0].flops
        assert f2048 == pytest.approx(f32, rel=0.25)

    def test_runtime_near_flat_for_stencil(self, ex):
        app = weak_stencil()
        params = {"nx_per_proc": 24, "iterations": 100, "ghost": 1,
                  "check_freq": 10}
        t32 = ex.model_time(app, params, 32)
        t4096 = ex.model_time(app, params, 4096)
        # Ideal weak scaling is flat; overheads may grow it, but far
        # less than the 128x process growth.
        assert t4096 < 4.0 * t32

    def test_fft_per_proc_cells_fixed(self):
        app = weak_fft()
        params = {"n_per_sqrt_p": 64, "batches": 4}
        # Inner n = 64 * sqrt(p): per-process cells n^2/p = 64^2 const.
        ph32 = app.phases(params, 32)
        ph2048 = app.phases(params, 2048)
        assert ph2048[0].flops / ph32[0].flops == pytest.approx(
            np.log2(64 * np.sqrt(2048)) / np.log2(64 * np.sqrt(32)), rel=0.02
        )

    def test_sampled_params_validate(self):
        rng = np.random.default_rng(0)
        for app in (weak_stencil(), weak_fft()):
            for _ in range(10):
                app.validate_params(app.sample_params(rng))

    def test_no_silent_clipping_in_range(self):
        # The per-process ranges were chosen so the grown global size
        # stays inside the inner bounds up to p=4096.
        app = weak_stencil()
        spec = app._inner_size_spec
        for per_proc in (16, 32):
            for p in (32, 512, 4096):
                grown = app.grow(per_proc, p)
                assert spec.low <= grown <= spec.high + 0.5, (per_proc, p)


class TestWeakScalingPipeline:
    def test_two_level_model_on_weak_app(self):
        app = weak_stencil()
        gen = HistoryGenerator(app, seed=9)
        train = gen.collect(gen.sample_configs(30), [32, 64, 128, 256],
                            repetitions=1)
        test = gen.collect(gen.sample_configs(8), [512, 1024], repetitions=1)
        model = TwoLevelModel(small_scales=[32, 64, 128, 256], n_clusters=2,
                              random_state=0).fit(train)
        for s in (512, 1024):
            sub = test.at_scale(s)
            pred = model.predict(sub.X, [s])[:, 0]
            rel = np.abs(pred - sub.runtime) / sub.runtime
            # Near-flat curves extrapolate easily: tight bound.
            assert np.median(rel) < 0.5
