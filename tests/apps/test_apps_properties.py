"""Property-based tests over every application's parameter space."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import ALL_APPS, get_app
from repro.sim import Executor, NoiseModel

APP_NAMES = sorted(ALL_APPS)
QUIET = Executor(noise=NoiseModel(sigma=0.0, jitter_prob=0.0))


def params_from_seed(app, seed):
    rng = np.random.default_rng(seed)
    return app.sample_params(rng)


@pytest.mark.parametrize("name", APP_NAMES)
class TestAppProperties:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_phases_valid_for_any_sampled_config(self, name, seed):
        app = get_app(name)
        params = params_from_seed(app, seed)
        p = int(2 ** np.random.default_rng(seed).integers(0, 13))
        phases = app.phases(params, max(p, 1))
        assert phases
        for ph in phases:
            assert np.isfinite(ph.flops) and ph.flops >= 0
            assert np.isfinite(ph.mem_bytes) and ph.mem_bytes >= 0
            for op in ph.comm:
                assert np.isfinite(op.nbytes) and op.nbytes >= 0
                assert op.count >= 0

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_runtime_positive_and_finite(self, name, seed):
        app = get_app(name)
        params = params_from_seed(app, seed)
        t = QUIET.model_time(app, params, 64)
        assert np.isfinite(t) and t > 0

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_total_work_conserved_or_reduced_per_proc(self, name, seed):
        """Per-process flops at 2p are at most the per-process flops at
        p (work is divided, never magically multiplied)."""
        app = get_app(name)
        params = params_from_seed(app, seed)
        f_p = sum(ph.flops for ph in app.phases(params, 64))
        f_2p = sum(ph.flops for ph in app.phases(params, 128))
        assert f_2p <= f_p * 1.05

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_determinism(self, name, seed):
        app = get_app(name)
        params = params_from_seed(app, seed)
        a = app.phases(params, 256)
        b = app.phases(params, 256)
        assert a == b
