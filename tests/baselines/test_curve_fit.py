"""Tests for the Extra-P-style curve fitting and analytic speedup laws."""

import numpy as np
import pytest

from repro.baselines import (
    AmdahlModel,
    CurveFitBaseline,
    UniversalScalabilityModel,
    fit_amdahl,
    fit_performance_model,
    fit_usl,
)

SCALES = [32, 64, 128, 256, 512]
P = np.asarray(SCALES, dtype=float)


class TestPerformanceModelFit:
    def test_recovers_inverse_law(self):
        t = 0.05 + 40.0 / P
        model = fit_performance_model(SCALES, t)
        assert model.exponent == pytest.approx(-1.0)
        assert model.log_exponent == 0.0
        assert model.c1 == pytest.approx(40.0, rel=0.01)
        assert model.c0 == pytest.approx(0.05, rel=0.05)

    def test_recovers_log_law(self):
        t = 0.01 + 0.004 * np.log2(P)
        model = fit_performance_model(SCALES, t)
        assert model.exponent == 0.0
        assert model.log_exponent == 1.0

    def test_extrapolation_accuracy(self):
        fn = lambda p: 0.02 + 8.0 / p
        model = fit_performance_model(SCALES, fn(P))
        large = np.array([2048.0, 8192.0])
        np.testing.assert_allclose(model(large), fn(large), rtol=0.05)

    def test_predictions_positive_everywhere(self):
        model = fit_performance_model(SCALES, 1.0 / P)
        assert np.all(model(np.array([1.0, 1e6])) > 0)

    def test_cv_error_small_for_exact_law(self):
        model = fit_performance_model(SCALES, 3.0 / P + 0.1)
        assert model.cv_error < 1e-6

    def test_describe(self):
        model = fit_performance_model(SCALES, 3.0 / P + 0.1)
        assert "p^" in model.describe()

    def test_too_few_points_raises(self):
        with pytest.raises(ValueError):
            fit_performance_model([2, 4], [1.0, 0.5])

    def test_nonpositive_runtime_raises(self):
        with pytest.raises(ValueError):
            fit_performance_model(SCALES, [1, 1, 1, 1, 0])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            fit_performance_model(SCALES, [1.0, 2.0])


class TestCurveFitBaseline:
    def test_per_config_models(self):
        S = np.vstack([5.0 / P + 0.01, 0.02 * np.log2(P) + 0.05])
        bl = CurveFitBaseline(SCALES).fit(S)
        assert len(bl.models_) == 2
        pred = bl.predict([1024, 4096])
        assert pred.shape == (2, 2)
        # First config keeps decaying, second keeps rising.
        assert pred[0, 1] < pred[0, 0]
        assert pred[1, 1] > pred[1, 0]

    def test_wrong_width_raises(self):
        with pytest.raises(ValueError):
            CurveFitBaseline(SCALES).fit(np.ones((2, 3)))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            CurveFitBaseline(SCALES).predict([1024])

    def test_needs_three_scales(self):
        with pytest.raises(ValueError):
            CurveFitBaseline([2, 4])


class TestAmdahl:
    def test_recovers_serial_fraction(self):
        true = AmdahlModel(t1=100.0, serial_fraction=0.05)
        model = fit_amdahl(SCALES, true(P))
        assert model.serial_fraction == pytest.approx(0.05, abs=0.01)
        np.testing.assert_allclose(model(P), true(P), rtol=0.02)

    def test_perfectly_parallel(self):
        t = 64.0 / P
        model = fit_amdahl(SCALES, t)
        assert model.serial_fraction < 0.01

    def test_fully_serial(self):
        model = fit_amdahl(SCALES, np.full(5, 7.0))
        assert model.serial_fraction > 0.95

    def test_too_few_points_raises(self):
        with pytest.raises(ValueError):
            fit_amdahl([4], [1.0])


class TestUSL:
    def test_recovers_contention_curve(self):
        true = UniversalScalabilityModel(t1=50.0, sigma=0.02, kappa=1e-4)
        model = fit_usl(SCALES, true(P))
        np.testing.assert_allclose(model(P), true(P), rtol=0.1)

    def test_kappa_models_retrograde_scaling(self):
        # Runtime that rises again at scale requires kappa > 0.
        true = UniversalScalabilityModel(t1=50.0, sigma=0.01, kappa=5e-4)
        model = fit_usl(SCALES, true(P))
        assert model.kappa > 0

    def test_speedup_peak_exists_with_kappa(self):
        model = UniversalScalabilityModel(t1=1.0, sigma=0.0, kappa=1e-3)
        s = model.speedup(np.array([4.0, 32.0, 1024.0]))
        assert s[1] > s[0] and s[2] < s[1]

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            fit_usl([2, 4], [1.0, 0.5])
        with pytest.raises(ValueError):
            fit_usl(SCALES, [1, 1, 1, 1, -1])
