"""Tests for the direct-ML baselines."""

import numpy as np
import pytest

from repro.baselines import BASELINE_FACTORIES, DirectMLBaseline, make_baseline
from repro.ml import LinearRegression


class TestRegistry:
    def test_expected_baselines_present(self):
        expected = {
            "direct-rf",
            "direct-gbdt",
            "direct-lasso",
            "direct-ridge",
            "direct-knn",
            "direct-svr",
            "direct-mlp",
            "direct-ensemble",
            "direct-powerlaw",
        }
        assert expected == set(BASELINE_FACTORIES)

    def test_make_baseline(self):
        bl = make_baseline("direct-rf", seed=1)
        assert isinstance(bl, DirectMLBaseline)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="Unknown baseline"):
            make_baseline("direct-xgboost")


class TestDirectMLBaseline:
    def test_fit_predict_shapes(self, tiny_history):
        bl = make_baseline("direct-rf", seed=0).fit(tiny_history)
        X = tiny_history.unique_configs()
        pred = bl.predict(X, 512)
        assert pred.shape == (len(X),)
        assert np.all(pred > 0)

    def test_scalar_and_vector_nprocs(self, tiny_history):
        bl = make_baseline("direct-ridge").fit(tiny_history)
        X = tiny_history.unique_configs()[:3]
        a = bl.predict(X, 128)
        b = bl.predict(X, np.full(3, 128))
        np.testing.assert_allclose(a, b)

    def test_predict_dataset(self, tiny_history):
        bl = make_baseline("direct-knn").fit(tiny_history)
        preds = bl.predict_dataset(tiny_history)
        assert preds.shape == (len(tiny_history),)

    def test_predict_before_fit_raises(self, tiny_history):
        bl = make_baseline("direct-rf")
        with pytest.raises(RuntimeError):
            bl.predict(tiny_history.unique_configs(), 64)

    def test_interpolation_accuracy_in_range(self, tiny_history):
        # Inside its training scales, direct RF is a fine interpolator.
        bl = make_baseline("direct-rf", seed=0).fit(tiny_history)
        sub = tiny_history.at_scale(64)
        rel = np.abs(bl.predict(sub.X, 64) - sub.runtime) / sub.runtime
        assert np.median(rel) < 0.3

    def test_tree_baseline_clamps_beyond_range(self, tiny_history):
        # The motivating failure: a forest cannot extrapolate in p —
        # predictions at 2x and 8x the largest training scale coincide.
        bl = make_baseline("direct-rf", seed=0).fit(tiny_history)
        X = tiny_history.unique_configs()[:5]
        p512 = bl.predict(X, 512)
        p2048 = bl.predict(X, 2048)
        np.testing.assert_allclose(p512, p2048, rtol=1e-6)

    def test_log_p_feature_off(self, tiny_history):
        bl = DirectMLBaseline(LinearRegression(), log_p_feature=False).fit(
            tiny_history
        )
        assert np.all(bl.predict(tiny_history.unique_configs(), 512) > 0)

    def test_log_target_off(self, tiny_history):
        bl = DirectMLBaseline(LinearRegression(), log_target=False).fit(
            tiny_history
        )
        pred = bl.predict(tiny_history.unique_configs(), 512)
        assert np.all(pred > 0)  # floored

    @pytest.mark.parametrize("name", sorted(BASELINE_FACTORIES))
    def test_all_baselines_run_end_to_end(self, tiny_history, name):
        bl = make_baseline(name, seed=0).fit(tiny_history)
        pred = bl.predict(tiny_history.unique_configs(), 1024)
        assert np.all(np.isfinite(pred)) and np.all(pred > 0)


class TestEnsembleBaseline:
    def test_geometric_mean_of_members(self, tiny_history):
        from repro.baselines.direct_ml import EnsembleOfBaselines, _lasso, _ridge

        members = [_lasso(0), _ridge(0)]
        ens = EnsembleOfBaselines(members).fit(tiny_history)
        X = tiny_history.unique_configs()[:4]
        expected = np.exp(
            np.mean([np.log(m.predict(X, 512)) for m in members], axis=0)
        )
        np.testing.assert_allclose(ens.predict(X, 512), expected)

    def test_empty_ensemble_rejected(self):
        from repro.baselines.direct_ml import EnsembleOfBaselines

        with pytest.raises(ValueError):
            EnsembleOfBaselines([])

    def test_predict_before_fit_raises(self, tiny_history):
        from repro.baselines.direct_ml import EnsembleOfBaselines, _ridge

        ens = EnsembleOfBaselines([_ridge(0)])
        with pytest.raises(RuntimeError):
            ens.predict(tiny_history.unique_configs(), 512)


class TestPowerLawBaseline:
    def test_fits_exact_power_law(self, rng):
        # Synthetic t = 2 * a^1.5 * b^-1 * p^-0.8: recovered exactly.
        from repro.data import ExecutionDataset

        n = 120
        a = rng.uniform(1, 100, n)
        b = rng.uniform(1, 10, n)
        p = rng.choice([4, 8, 16, 32], size=n)
        t = 2.0 * a**1.5 / b * p**-0.8
        ds = ExecutionDataset("toy", ("a", "b"), np.column_stack([a, b]),
                              p, t, t)
        bl = make_baseline("direct-powerlaw").fit(ds)
        X_new = np.array([[50.0, 5.0]])
        expected = 2.0 * 50**1.5 / 5 * 1024**-0.8
        assert bl.predict(X_new, 1024)[0] == pytest.approx(expected, rel=1e-6)

    def test_nonpositive_param_rejected(self, tiny_history):
        from repro.baselines import DirectMLBaseline
        from repro.ml import LinearRegression

        bl = DirectMLBaseline(LinearRegression(), log_x_features=True,
                              standardize=False)
        bl.fit(tiny_history)
        with pytest.raises(ValueError, match="positive"):
            bl.predict(np.array([[0.0] * tiny_history.n_params]), 64)
