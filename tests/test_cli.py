"""Tests for the command-line interface (driven in-process via main())."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestListing:
    def test_list_apps(self):
        code, out = run_cli("list-apps")
        assert code == 0
        for name in ["stencil3d", "nbody", "cg", "fft2d", "wavefront"]:
            assert name in out

    def test_list_machines(self):
        code, out = run_cli("list-machines")
        assert code == 0
        assert "default-cluster" in out and "fat-tree" in out

    def test_list_baselines(self):
        code, out = run_cli("list-baselines")
        assert code == 0
        assert "direct-rf" in out


class TestGenerateDescribe:
    def test_generate_and_describe(self, tmp_path):
        data = tmp_path / "h.json"
        code, out = run_cli(
            "generate", "--app", "stencil3d", "--configs", "5",
            "--scales", "32,64", "--reps", "1", "--out", str(data),
        )
        assert code == 0
        assert "wrote 10 runs" in out
        code, out = run_cli("describe", "--data", str(data))
        assert code == 0
        assert "stencil3d" in out and "configs     : 5" in out

    def test_generate_unknown_app_fails(self, tmp_path):
        code, _ = run_cli(
            "generate", "--app", "hpl", "--out", str(tmp_path / "h.json")
        )
        assert code == 1

    def test_generate_npz(self, tmp_path):
        data = tmp_path / "h.npz"
        code, _ = run_cli(
            "generate", "--app", "fft2d", "--configs", "4",
            "--scales", "32,64", "--reps", "1", "--out", str(data),
        )
        assert code == 0 and data.exists()

    def test_describe_missing_file_fails(self, tmp_path):
        code, _ = run_cli("describe", "--data", str(tmp_path / "no.json"))
        assert code == 1

    def test_bad_scales_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["generate", "--app", "cg", "--scales", "a,b",
                 "--out", "x.json"]
            )


class TestFitPredict:
    @pytest.fixture(scope="class")
    def model_path(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("cli")
        data = tmp / "h.json"
        code, _ = run_cli(
            "generate", "--app", "fft2d", "--configs", "10",
            "--scales", "32,64,128,256", "--reps", "1", "--out", str(data),
        )
        assert code == 0
        model = tmp / "m.pkl"
        code, out = run_cli(
            "fit", "--data", str(data), "--clusters", "2",
            "--out", str(model),
        )
        assert code == 0 and "cluster" in out
        return model

    def test_predict(self, model_path):
        code, out = run_cli(
            "predict", "--model", str(model_path),
            "--set", "n=2048", "--set", "batches=8",
            "--scales", "512,1024",
        )
        assert code == 0
        assert "t(512 procs)" in out and "t(1024 procs)" in out

    def test_predict_missing_param_fails(self, model_path):
        code, _ = run_cli(
            "predict", "--model", str(model_path),
            "--set", "n=2048", "--scales", "512",
        )
        assert code == 2

    def test_predict_unknown_param_fails(self, model_path):
        code, _ = run_cli(
            "predict", "--model", str(model_path),
            "--set", "n=2048", "--set", "batches=8", "--set", "depth=3",
            "--scales", "512",
        )
        assert code == 2

    def test_predict_malformed_set_fails(self, model_path):
        code, _ = run_cli(
            "predict", "--model", str(model_path),
            "--set", "n2048", "--scales", "512",
        )
        assert code == 2


class TestValidate:
    @pytest.fixture
    def history_path(self, tmp_path):
        data = tmp_path / "h.json"
        code, _ = run_cli(
            "generate", "--app", "stencil3d", "--configs", "5",
            "--scales", "32,64", "--reps", "2", "--out", str(data),
        )
        assert code == 0
        return data

    def _corrupt(self, path):
        import json

        payload = json.loads(path.read_text())
        payload["runtime"][0] = None  # NaN after decoding
        path.write_text(json.dumps(payload))

    def test_validate_clean_history(self, history_path):
        code, out = run_cli("validate", "--data", str(history_path))
        assert code == 0
        assert "clean" in out

    def test_validate_dirty_history_exits_2(self, history_path):
        self._corrupt(history_path)
        code, out = run_cli("validate", "--data", str(history_path))
        assert code == 2
        assert "nonfinite_runtime" in out

    def test_validate_sanitize_writes_clean_copy(self, history_path, tmp_path):
        self._corrupt(history_path)
        clean_path = tmp_path / "clean.json"
        code, out = run_cli(
            "validate", "--data", str(history_path),
            "--sanitize", str(clean_path),
        )
        assert code == 0
        assert clean_path.exists()
        assert "dropped 1" in out
        code, out = run_cli("validate", "--data", str(clean_path))
        assert code == 0

    def test_structured_error_exits_2(self, history_path, capsys):
        history_path.write_text("{not json!")
        code, _ = run_cli("describe", "--data", str(history_path))
        assert code == 2
        err = capsys.readouterr().err
        assert "error [DatasetFormatError]" in err
        assert "Traceback" not in err

    def test_verbose_flag_accepted(self, history_path):
        code, _ = run_cli("--verbose", "describe", "--data", str(history_path))
        assert code == 0


class TestBudgetedGenerate:
    def test_time_limit_censors_and_validate_roundtrips(self, tmp_path):
        data = tmp_path / "h.json"
        code, out = run_cli(
            "generate", "--app", "stencil3d", "--configs", "4",
            "--scales", "32,64", "--reps", "1", "--time-limit", "1e-6",
            "--max-retries", "2", "--escalation", "1.5",
            "--out", str(data),
        )
        assert code == 0
        assert "timeouts:" in out and "censored" in out
        final_limit = 1e-6 * 1.5**2
        code, out = run_cli(
            "validate", "--data", str(data),
            "--censor-limit", str(final_limit),
        )
        # Censoring is a warning, never an error.
        assert code == 0
        assert "censored_runtime" in out

    def test_on_timeout_drop_keeps_finished_runs(self, tmp_path):
        data = tmp_path / "h.json"
        code, out = run_cli(
            "generate", "--app", "stencil3d", "--configs", "4",
            "--scales", "32,64,128", "--reps", "1",
            "--time-limit", "1e6", "--on-timeout", "drop",
            "--out", str(data),
        )
        assert code == 0 and "wrote 12 runs" in out

    def test_generous_limit_matches_unbudgeted_history(self, tmp_path):
        import json

        plain = tmp_path / "plain.json"
        budgeted = tmp_path / "budgeted.json"
        argv = ["generate", "--app", "fft2d", "--configs", "4",
                "--scales", "32,64", "--reps", "1"]
        assert run_cli(*argv, "--out", str(plain))[0] == 0
        assert run_cli(*argv, "--time-limit", "1e9",
                       "--out", str(budgeted))[0] == 0
        a = json.loads(plain.read_text())["runtime"]
        b = json.loads(budgeted.read_text())["runtime"]
        assert a == b

    def test_on_timeout_raise_exits_structured(self, tmp_path, capsys):
        code, _ = run_cli(
            "generate", "--app", "stencil3d", "--configs", "2",
            "--scales", "32", "--reps", "1", "--time-limit", "1e-9",
            "--on-timeout", "raise", "--out", str(tmp_path / "h.json"),
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "ExecutionTimeoutError" in err


class TestFitSanitize:
    @pytest.fixture
    def dirty_path(self, tmp_path):
        import json

        data = tmp_path / "h.json"
        code, _ = run_cli(
            "generate", "--app", "stencil3d", "--configs", "8",
            "--scales", "32,64,128", "--reps", "2", "--out", str(data),
        )
        assert code == 0
        payload = json.loads(data.read_text())
        payload["runtime"][0] = None
        payload["runtime"][5] = payload["runtime"][5] * 50.0  # spike
        data.write_text(json.dumps(payload))
        return data

    def test_fit_sanitize_repairs_before_fitting(self, dirty_path, tmp_path):
        model = tmp_path / "m.pkl"
        code, out = run_cli(
            "fit", "--data", str(dirty_path), "--clusters", "2",
            "--sanitize", "--spike-ratio", "4.0", "--out", str(model),
        )
        assert code == 0 and model.exists()
        assert "dropped" in out

    def test_fit_without_sanitize_warns_on_dirty_history(
        self, dirty_path, tmp_path, capsys
    ):
        model = tmp_path / "m.pkl"
        code, _ = run_cli(
            "fit", "--data", str(dirty_path), "--clusters", "2",
            "--out", str(model),
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "history is dirty" in err and "--sanitize" in err

    def test_fit_min_scale_runs_threaded(self, dirty_path, tmp_path, capsys):
        # An absurd sparsity threshold flags every scale when the knob
        # actually reaches the validator.
        code, _ = run_cli(
            "fit", "--data", str(dirty_path), "--min-scale-runs", "999",
            "--clusters", "2", "--out", str(tmp_path / "m.pkl"),
        )
        assert code == 0
        assert "sparse_scale" in capsys.readouterr().err


class TestCompare:
    def test_compare_small(self):
        code, out = run_cli(
            "compare", "--app", "fft2d", "--configs", "12",
            "--test-configs", "4", "--small-scales", "32,64,128",
            "--large-scales", "256", "--reps", "1",
            "--baselines", "direct-ridge",
        )
        assert code == 0
        assert "two-level" in out and "direct-ridge" in out


class TestPredictInterval:
    def test_interval_output(self, tmp_path):
        data = tmp_path / "h.json"
        code, _ = run_cli(
            "generate", "--app", "stencil3d", "--configs", "10",
            "--scales", "32,64,128", "--reps", "1", "--out", str(data),
        )
        assert code == 0
        model = tmp_path / "m.pkl"
        code, _ = run_cli(
            "fit", "--data", str(data), "--clusters", "2", "--out", str(model)
        )
        assert code == 0
        code, out = run_cli(
            "predict", "--model", str(model),
            "--set", "nx=128", "--set", "iterations=100",
            "--set", "ghost=1", "--set", "check_freq=10",
            "--scales", "512", "--interval", "0.9", "--samples", "15",
        )
        assert code == 0
        assert "90% interpolation-noise bands" in out
        assert "in [" in out
