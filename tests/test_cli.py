"""Tests for the command-line interface (driven in-process via main())."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestListing:
    def test_list_apps(self):
        code, out = run_cli("list-apps")
        assert code == 0
        for name in ["stencil3d", "nbody", "cg", "fft2d", "wavefront"]:
            assert name in out

    def test_list_machines(self):
        code, out = run_cli("list-machines")
        assert code == 0
        assert "default-cluster" in out and "fat-tree" in out

    def test_list_baselines(self):
        code, out = run_cli("list-baselines")
        assert code == 0
        assert "direct-rf" in out


class TestGenerateDescribe:
    def test_generate_and_describe(self, tmp_path):
        data = tmp_path / "h.json"
        code, out = run_cli(
            "generate", "--app", "stencil3d", "--configs", "5",
            "--scales", "32,64", "--reps", "1", "--out", str(data),
        )
        assert code == 0
        assert "wrote 10 runs" in out
        code, out = run_cli("describe", "--data", str(data))
        assert code == 0
        assert "stencil3d" in out and "configs     : 5" in out

    def test_generate_unknown_app_fails(self, tmp_path):
        code, _ = run_cli(
            "generate", "--app", "hpl", "--out", str(tmp_path / "h.json")
        )
        assert code == 1

    def test_generate_npz(self, tmp_path):
        data = tmp_path / "h.npz"
        code, _ = run_cli(
            "generate", "--app", "fft2d", "--configs", "4",
            "--scales", "32,64", "--reps", "1", "--out", str(data),
        )
        assert code == 0 and data.exists()

    def test_describe_missing_file_fails(self, tmp_path):
        code, _ = run_cli("describe", "--data", str(tmp_path / "no.json"))
        assert code == 1

    def test_bad_scales_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["generate", "--app", "cg", "--scales", "a,b",
                 "--out", "x.json"]
            )


class TestFitPredict:
    @pytest.fixture(scope="class")
    def model_path(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("cli")
        data = tmp / "h.json"
        code, _ = run_cli(
            "generate", "--app", "fft2d", "--configs", "10",
            "--scales", "32,64,128,256", "--reps", "1", "--out", str(data),
        )
        assert code == 0
        model = tmp / "m.pkl"
        code, out = run_cli(
            "fit", "--data", str(data), "--clusters", "2",
            "--out", str(model),
        )
        assert code == 0 and "cluster" in out
        return model

    def test_predict(self, model_path):
        code, out = run_cli(
            "predict", "--model", str(model_path),
            "--set", "n=2048", "--set", "batches=8",
            "--scales", "512,1024",
        )
        assert code == 0
        assert "t(512 procs)" in out and "t(1024 procs)" in out

    def test_predict_missing_param_fails(self, model_path):
        code, _ = run_cli(
            "predict", "--model", str(model_path),
            "--set", "n=2048", "--scales", "512",
        )
        assert code == 2

    def test_predict_unknown_param_fails(self, model_path):
        code, _ = run_cli(
            "predict", "--model", str(model_path),
            "--set", "n=2048", "--set", "batches=8", "--set", "depth=3",
            "--scales", "512",
        )
        assert code == 2

    def test_predict_malformed_set_fails(self, model_path):
        code, _ = run_cli(
            "predict", "--model", str(model_path),
            "--set", "n2048", "--scales", "512",
        )
        assert code == 2


class TestValidate:
    @pytest.fixture
    def history_path(self, tmp_path):
        data = tmp_path / "h.json"
        code, _ = run_cli(
            "generate", "--app", "stencil3d", "--configs", "5",
            "--scales", "32,64", "--reps", "2", "--out", str(data),
        )
        assert code == 0
        return data

    def _corrupt(self, path):
        import json

        payload = json.loads(path.read_text())
        payload["runtime"][0] = None  # NaN after decoding
        path.write_text(json.dumps(payload))

    def test_validate_clean_history(self, history_path):
        code, out = run_cli("validate", "--data", str(history_path))
        assert code == 0
        assert "clean" in out

    def test_validate_dirty_history_exits_2(self, history_path):
        self._corrupt(history_path)
        code, out = run_cli("validate", "--data", str(history_path))
        assert code == 2
        assert "nonfinite_runtime" in out

    def test_validate_sanitize_writes_clean_copy(self, history_path, tmp_path):
        self._corrupt(history_path)
        clean_path = tmp_path / "clean.json"
        code, out = run_cli(
            "validate", "--data", str(history_path),
            "--sanitize", str(clean_path),
        )
        assert code == 0
        assert clean_path.exists()
        assert "dropped 1" in out
        code, out = run_cli("validate", "--data", str(clean_path))
        assert code == 0

    def test_structured_error_exits_2(self, history_path, capsys):
        history_path.write_text("{not json!")
        code, _ = run_cli("describe", "--data", str(history_path))
        assert code == 2
        err = capsys.readouterr().err
        assert "error [DatasetFormatError]" in err
        assert "Traceback" not in err

    def test_verbose_flag_accepted(self, history_path):
        code, _ = run_cli("--verbose", "describe", "--data", str(history_path))
        assert code == 0


class TestBudgetedGenerate:
    def test_time_limit_censors_and_validate_roundtrips(self, tmp_path):
        data = tmp_path / "h.json"
        code, out = run_cli(
            "generate", "--app", "stencil3d", "--configs", "4",
            "--scales", "32,64", "--reps", "1", "--time-limit", "1e-6",
            "--max-retries", "2", "--escalation", "1.5",
            "--out", str(data),
        )
        assert code == 0
        assert "timeouts:" in out and "censored" in out
        final_limit = 1e-6 * 1.5**2
        code, out = run_cli(
            "validate", "--data", str(data),
            "--censor-limit", str(final_limit),
        )
        # Censoring is a warning, never an error.
        assert code == 0
        assert "censored_runtime" in out

    def test_on_timeout_drop_keeps_finished_runs(self, tmp_path):
        data = tmp_path / "h.json"
        code, out = run_cli(
            "generate", "--app", "stencil3d", "--configs", "4",
            "--scales", "32,64,128", "--reps", "1",
            "--time-limit", "1e6", "--on-timeout", "drop",
            "--out", str(data),
        )
        assert code == 0 and "wrote 12 runs" in out

    def test_generous_limit_matches_unbudgeted_history(self, tmp_path):
        import json

        plain = tmp_path / "plain.json"
        budgeted = tmp_path / "budgeted.json"
        argv = ["generate", "--app", "fft2d", "--configs", "4",
                "--scales", "32,64", "--reps", "1"]
        assert run_cli(*argv, "--out", str(plain))[0] == 0
        assert run_cli(*argv, "--time-limit", "1e9",
                       "--out", str(budgeted))[0] == 0
        a = json.loads(plain.read_text())["runtime"]
        b = json.loads(budgeted.read_text())["runtime"]
        assert a == b

    def test_on_timeout_raise_exits_structured(self, tmp_path, capsys):
        code, _ = run_cli(
            "generate", "--app", "stencil3d", "--configs", "2",
            "--scales", "32", "--reps", "1", "--time-limit", "1e-9",
            "--on-timeout", "raise", "--out", str(tmp_path / "h.json"),
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "ExecutionTimeoutError" in err


class TestFitSanitize:
    @pytest.fixture
    def dirty_path(self, tmp_path):
        import json

        data = tmp_path / "h.json"
        code, _ = run_cli(
            "generate", "--app", "stencil3d", "--configs", "8",
            "--scales", "32,64,128", "--reps", "2", "--out", str(data),
        )
        assert code == 0
        payload = json.loads(data.read_text())
        payload["runtime"][0] = None
        payload["runtime"][5] = payload["runtime"][5] * 50.0  # spike
        data.write_text(json.dumps(payload))
        return data

    def test_fit_sanitize_repairs_before_fitting(self, dirty_path, tmp_path):
        model = tmp_path / "m.pkl"
        code, out = run_cli(
            "fit", "--data", str(dirty_path), "--clusters", "2",
            "--sanitize", "--spike-ratio", "4.0", "--out", str(model),
        )
        assert code == 0 and model.exists()
        assert "dropped" in out

    def test_fit_without_sanitize_warns_on_dirty_history(
        self, dirty_path, tmp_path, capsys
    ):
        model = tmp_path / "m.pkl"
        code, _ = run_cli(
            "fit", "--data", str(dirty_path), "--clusters", "2",
            "--out", str(model),
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "history is dirty" in err and "--sanitize" in err

    def test_fit_min_scale_runs_threaded(self, dirty_path, tmp_path, capsys):
        # An absurd sparsity threshold flags every scale when the knob
        # actually reaches the validator.
        code, _ = run_cli(
            "fit", "--data", str(dirty_path), "--min-scale-runs", "999",
            "--clusters", "2", "--out", str(tmp_path / "m.pkl"),
        )
        assert code == 0
        assert "sparse_scale" in capsys.readouterr().err


class TestCompare:
    def test_compare_small(self):
        code, out = run_cli(
            "compare", "--app", "fft2d", "--configs", "12",
            "--test-configs", "4", "--small-scales", "32,64,128",
            "--large-scales", "256", "--reps", "1",
            "--baselines", "direct-ridge",
        )
        assert code == 0
        assert "two-level" in out and "direct-ridge" in out


class TestServeWorkflow:
    """fit -> save -> models -> predict from the registry."""

    PARAMS = ["--set", "n=2048", "--set", "batches=8"]

    @pytest.fixture(scope="class")
    def workspace(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("serve-cli")
        data = tmp / "h.json"
        code, _ = run_cli(
            "generate", "--app", "fft2d", "--configs", "10",
            "--scales", "32,64,128,256", "--reps", "1", "--out", str(data),
        )
        assert code == 0
        model = tmp / "m.pkl"
        code, _ = run_cli(
            "fit", "--data", str(data), "--clusters", "2", "--out", str(model)
        )
        assert code == 0
        registry = tmp / "registry"
        code, out = run_cli(
            "save", "--model", str(model), "--registry", str(registry),
            "--name", "fft", "--meta", "owner=ci", "--meta", "run=42",
        )
        assert code == 0
        assert "registered fft v0001" in out
        return {"model": model, "registry": registry}

    def test_save_second_version_and_listing(self, workspace):
        code, out = run_cli(
            "save", "--model", str(workspace["model"]),
            "--registry", str(workspace["registry"]), "--name", "fft",
        )
        assert code == 0 and "v0002" in out
        code, out = run_cli("models", "--registry", str(workspace["registry"]))
        assert code == 0
        assert "fft" in out and "v0001" in out and "v0002" in out

    def test_models_inspect_shows_manifest(self, workspace):
        code, out = run_cli(
            "models", "--registry", str(workspace["registry"]),
            "--name", "fft", "--version", "1",
        )
        assert code == 0
        assert "fft2d" in out and "two-level" in out
        assert "owner=ci" in out

    def test_models_pin_and_unpin(self, workspace):
        registry = str(workspace["registry"])
        code, _ = run_cli(
            "models", "--registry", registry, "--name", "fft",
            "--pin-version", "1",
        )
        assert code == 0
        code, out = run_cli("models", "--registry", registry)
        assert code == 0 and "!" in out
        code, _ = run_cli(
            "models", "--registry", registry, "--name", "fft", "--unpin"
        )
        assert code == 0

    def test_registry_predict_matches_pickle_predict(self, workspace):
        argv = [*self.PARAMS, "--scales", "512,1024"]
        code, from_pickle = run_cli(
            "predict", "--model", str(workspace["model"]), *argv
        )
        assert code == 0
        code, from_registry = run_cli(
            "predict", "--registry", str(workspace["registry"]),
            "--name", "fft", *argv,
        )
        assert code == 0
        # Same floats, character for character.
        assert from_registry == from_pickle

    def test_registry_predict_cold_process_exact(self, workspace):
        """The acceptance bar: a cold process reproduces the same floats."""
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro

        code, inprocess = run_cli(
            "predict", "--registry", str(workspace["registry"]),
            "--name", "fft", *self.PARAMS, "--scales", "512,1024",
        )
        assert code == 0
        src_dir = str(Path(repro.__file__).resolve().parent.parent)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "predict",
             "--registry", str(workspace["registry"]), "--name", "fft",
             *self.PARAMS, "--scales", "512,1024"],
            capture_output=True, text=True,
            env={**os.environ, "PYTHONPATH": src_dir},
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout == inprocess

    def test_predict_needs_exactly_one_source(self, workspace, capsys):
        code, _ = run_cli(
            "predict", *self.PARAMS, "--scales", "512",
        )
        assert code == 2
        assert "exactly one of --model or --registry" in capsys.readouterr().err
        code, _ = run_cli(
            "predict", "--model", str(workspace["model"]),
            "--registry", str(workspace["registry"]), "--name", "fft",
            *self.PARAMS, "--scales", "512",
        )
        assert code == 2

    def test_predict_registry_requires_name(self, workspace, capsys):
        code, _ = run_cli(
            "predict", "--registry", str(workspace["registry"]),
            *self.PARAMS, "--scales", "512",
        )
        assert code == 2
        assert "--name" in capsys.readouterr().err

    def test_predict_unknown_registry_model_exits_2(self, workspace, capsys):
        code, _ = run_cli(
            "predict", "--registry", str(workspace["registry"]),
            "--name", "nope", *self.PARAMS, "--scales", "512",
        )
        assert code == 2
        assert "error [RegistryError]" in capsys.readouterr().err

    def test_models_delete_version(self, workspace):
        registry = str(workspace["registry"])
        code, _ = run_cli(
            "save", "--model", str(workspace["model"]),
            "--registry", registry, "--name", "doomed",
        )
        assert code == 0
        code, out = run_cli(
            "models", "--registry", registry, "--name", "doomed", "--delete"
        )
        assert code == 0
        code, out = run_cli("models", "--registry", registry)
        assert code == 0 and "doomed" not in out

    def test_save_rejects_non_model_pickle(self, workspace, tmp_path, capsys):
        import pickle

        bogus = tmp_path / "bogus.pkl"
        bogus.write_bytes(pickle.dumps({"nope": 1}))
        code, _ = run_cli(
            "save", "--model", str(bogus),
            "--registry", str(workspace["registry"]), "--name", "x",
        )
        assert code == 2
        assert "repro fit" in capsys.readouterr().err


class TestFitOutputErrors:
    @pytest.fixture
    def history_path(self, tmp_path):
        data = tmp_path / "h.json"
        code, _ = run_cli(
            "generate", "--app", "stencil3d", "--configs", "5",
            "--scales", "32,64,128", "--reps", "1", "--out", str(data),
        )
        assert code == 0
        return data

    def test_fit_nonexistent_out_dir_exits_2(self, history_path, capsys):
        code, _ = run_cli(
            "fit", "--data", str(history_path),
            "--out", "/nonexistent-dir/sub/m.pkl",
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "error [ConfigurationError]" in err
        assert "does not exist" in err
        assert "Traceback" not in err

    def test_fit_out_parent_is_file_exits_2(self, history_path, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        code, _ = run_cli(
            "fit", "--data", str(history_path),
            "--out", str(blocker / "m.pkl"),
        )
        assert code == 2
        assert "error [ConfigurationError]" in capsys.readouterr().err

    def test_fit_out_is_directory_exits_2(self, history_path, tmp_path, capsys):
        code, _ = run_cli(
            "fit", "--data", str(history_path), "--out", str(tmp_path)
        )
        assert code == 2
        assert "is a directory" in capsys.readouterr().err

    def test_fit_fails_before_fitting(self, history_path, capsys):
        # The writability check runs before data loading/fitting, so the
        # error arrives instantly even with a bad --data path too.
        code, _ = run_cli(
            "fit", "--data", "/nonexistent-data.json",
            "--out", "/nonexistent-dir/m.pkl",
        )
        assert code == 2
        assert "ConfigurationError" in capsys.readouterr().err


class TestValidateImpute:
    @pytest.fixture
    def dirty_path(self, tmp_path):
        import json

        data = tmp_path / "h.json"
        code, _ = run_cli(
            "generate", "--app", "stencil3d", "--configs", "5",
            "--scales", "32,64", "--reps", "3", "--out", str(data),
        )
        assert code == 0
        payload = json.loads(data.read_text())
        payload["runtime"][0] = None
        data.write_text(json.dumps(payload))
        return data

    def test_validate_repair_impute(self, dirty_path, tmp_path):
        clean = tmp_path / "clean.json"
        code, out = run_cli(
            "validate", "--data", str(dirty_path),
            "--sanitize", str(clean), "--repair", "impute",
        )
        assert code == 0
        assert "imputed 1 rows" in out
        # No rows lost: the NaN was filled from its repeat group.
        code, out = run_cli("describe", "--data", str(clean))
        assert code == 0 and "runs        : 30" in out

    def test_fit_repair_impute(self, dirty_path, tmp_path):
        model = tmp_path / "m.pkl"
        code, out = run_cli(
            "fit", "--data", str(dirty_path), "--sanitize",
            "--repair", "impute", "--clusters", "2", "--out", str(model),
        )
        assert code == 0 and model.exists()
        assert "imputed" in out


class TestPredictInterval:
    def test_interval_output(self, tmp_path):
        data = tmp_path / "h.json"
        code, _ = run_cli(
            "generate", "--app", "stencil3d", "--configs", "10",
            "--scales", "32,64,128", "--reps", "1", "--out", str(data),
        )
        assert code == 0
        model = tmp_path / "m.pkl"
        code, _ = run_cli(
            "fit", "--data", str(data), "--clusters", "2", "--out", str(model)
        )
        assert code == 0
        code, out = run_cli(
            "predict", "--model", str(model),
            "--set", "nx=128", "--set", "iterations=100",
            "--set", "ghost=1", "--set", "check_freq=10",
            "--scales", "512", "--interval", "0.9", "--samples", "15",
        )
        assert code == 0
        assert "90% interpolation-noise bands" in out
        assert "in [" in out


class TestModelsPrune:
    @pytest.fixture()
    def stocked_registry(self, tmp_path):
        data = tmp_path / "h.json"
        code, _ = run_cli(
            "generate", "--app", "fft2d", "--configs", "8",
            "--scales", "32,64,128", "--reps", "1", "--out", str(data),
        )
        assert code == 0
        model = tmp_path / "m.pkl"
        code, _ = run_cli(
            "fit", "--data", str(data), "--clusters", "2", "--out", str(model)
        )
        assert code == 0
        registry = tmp_path / "registry"
        for _ in range(3):
            code, _ = run_cli(
                "save", "--model", str(model),
                "--registry", str(registry), "--name", "fft",
            )
            assert code == 0
        return registry

    def test_prune_removes_old_versions(self, stocked_registry):
        code, out = run_cli(
            "models", "--registry", str(stocked_registry),
            "--name", "fft", "--prune", "1",
        )
        assert code == 0
        assert "pruned fft" in out
        assert "v0001" in out and "v0002" in out
        code, out = run_cli("models", "--registry", str(stocked_registry))
        assert code == 0
        assert "v0003" in out and "v0001" not in out

    def test_prune_noop_says_so(self, stocked_registry):
        code, out = run_cli(
            "models", "--registry", str(stocked_registry),
            "--name", "fft", "--prune", "5",
        )
        assert code == 0
        assert "nothing to prune" in out

    def test_prune_cannot_combine_with_delete(self, stocked_registry):
        code, _ = run_cli(
            "models", "--registry", str(stocked_registry),
            "--name", "fft", "--prune", "1", "--delete",
        )
        assert code == 2


class TestCampaignCLI:
    ARGS = [
        "--app", "stencil3d", "--allocation", "20000",
        "--rounds", "1", "--round-budget", "150",
        "--seed-configs", "5", "--candidates", "30",
        "--eval-configs", "8", "--small-scales", "32,64,128",
        "--eval-scales", "512", "--time-limit", "10",
        "--clusters", "2", "--seed", "3",
    ]

    def test_campaign_runs_registers_and_prunes(self, tmp_path):
        code, out = run_cli(
            "campaign", *self.ARGS,
            "--checkpoint", str(tmp_path / "camp"),
            "--registry", str(tmp_path / "reg"),
            "--name", "camp", "--keep-last", "1",
        )
        assert code == 0
        assert "finished" in out
        assert "seed" in out and "round 1" in out
        assert "core-seconds" in out
        code, out = run_cli("models", "--registry", str(tmp_path / "reg"))
        assert code == 0
        assert "camp" in out and "v0002" in out and "v0001" not in out

    def test_campaign_refuses_to_clobber_checkpoint(self, tmp_path):
        checkpoint = tmp_path / "camp"
        code, _ = run_cli(
            "campaign", *self.ARGS, "--checkpoint", str(checkpoint)
        )
        assert code == 0
        code, _ = run_cli(
            "campaign", *self.ARGS, "--checkpoint", str(checkpoint)
        )
        assert code == 2  # ConfigurationError: pass --resume

    def test_campaign_resume_finished_reprints_report(self, tmp_path):
        checkpoint = tmp_path / "camp"
        code, first = run_cli(
            "campaign", *self.ARGS, "--checkpoint", str(checkpoint)
        )
        assert code == 0
        code, again = run_cli(
            "campaign", *self.ARGS, "--checkpoint", str(checkpoint),
            "--resume",
        )
        assert code == 0
        assert again == first

    def test_campaign_resume_without_checkpoint_fails(self, tmp_path):
        code, _ = run_cli(
            "campaign", *self.ARGS,
            "--checkpoint", str(tmp_path / "void"), "--resume",
        )
        assert code == 2


class TestIngestStoreCLI:
    @pytest.fixture
    def jsonl_path(self, tmp_path):
        import json as _json

        import numpy as np

        rng = np.random.default_rng(0)
        path = tmp_path / "runs.jsonl"
        with open(path, "w") as fh:
            for _ in range(20):  # 20 configs x 3 scales = 60 rows
                params = {"alpha": float(rng.uniform(1, 10)),
                          "beta": float(rng.uniform(1, 10))}
                for scale in (8, 16, 32):
                    fh.write(_json.dumps({
                        "app_name": "synth",
                        "params": params,
                        "nprocs": scale,
                        "runtime": float(
                            100.0 / scale + params["alpha"] * 0.5
                            + rng.uniform(0.01, 0.1)
                        ),
                    }) + "\n")
        return path

    def test_ingest_then_verify_and_describe(self, tmp_path, jsonl_path):
        store_dir = tmp_path / "hist"
        code, out = run_cli(
            "ingest", "--store", str(store_dir), "--data", str(jsonl_path),
        )
        assert code == 0
        assert "60 rows read" in out and "60 appended" in out
        code, out = run_cli("store", "--store", str(store_dir), "--verify")
        assert code == 0
        assert "all fingerprints match" in out
        code, out = run_cli("store", "--store", str(store_dir))
        assert code == 0
        assert "synth" in out and "60" in out

    def test_ingest_legacy_json_dataset(self, tmp_path):
        data = tmp_path / "h.json"
        code, _ = run_cli(
            "generate", "--app", "stencil3d", "--configs", "4",
            "--scales", "32,64", "--reps", "1", "--out", str(data),
        )
        assert code == 0
        store_dir = tmp_path / "hist"
        code, out = run_cli(
            "ingest", "--store", str(store_dir), "--data", str(data),
        )
        assert code == 0
        assert "8 appended" in out

    def test_store_export_round_trips_through_fit(self, tmp_path, jsonl_path):
        store_dir = tmp_path / "hist"
        code, _ = run_cli(
            "ingest", "--store", str(store_dir), "--data", str(jsonl_path),
        )
        assert code == 0
        out_json = tmp_path / "copy.json"
        code, out = run_cli(
            "store", "--store", str(store_dir), "--export", str(out_json),
        )
        assert code == 0 and out_json.exists()
        # a store directory is a first-class --data argument
        model = tmp_path / "model.json"
        code, out = run_cli(
            "fit", "--data", str(store_dir), "--out", str(model),
        )
        assert code == 0 and model.exists()

    def test_ingest_unknown_suffix_exits_2(self, tmp_path):
        bad = tmp_path / "runs.xml"
        bad.write_text("<run/>")
        code, _ = run_cli(
            "ingest", "--store", str(tmp_path / "s"), "--data", str(bad),
        )
        assert code == 2

    def test_store_on_non_store_dir_exits_2(self, tmp_path):
        code, _ = run_cli("store", "--store", str(tmp_path))
        assert code == 2

    def test_export_parquet_without_pyarrow_exits_2(self, tmp_path, jsonl_path):
        try:
            import pyarrow  # noqa: F401
            pytest.skip("pyarrow available; gate not exercised")
        except ImportError:
            pass
        store_dir = tmp_path / "hist"
        run_cli("ingest", "--store", str(store_dir), "--data", str(jsonl_path))
        code, _ = run_cli(
            "store", "--store", str(store_dir),
            "--export-parquet", str(tmp_path / "o.parquet"),
        )
        assert code == 2

    def test_campaign_store_flag(self, tmp_path):
        code, out = run_cli(
            "campaign", "--app", "stencil3d",
            "--allocation", "20000", "--round-budget", "150",
            "--small-scales", "32,64,128", "--eval-scales", "512",
            "--rounds", "1", "--seed-configs", "5", "--candidates", "30",
            "--eval-configs", "8", "--time-limit", "10",
            "--clusters", "2", "--seed", "3",
            "--checkpoint", str(tmp_path / "camp"),
            "--store", str(tmp_path / "store"),
        )
        assert code == 0
        from repro.store import HistoryStore

        store = HistoryStore.open(tmp_path / "store")
        assert store.n_rows > 0
        assert store.has_source("round-0/bundle-0")
