"""Store-backed campaigns: shard-store history, O(metadata) checkpoints,
exactly-once appends across crash/resume, and equivalence with the plain
JSON-checkpoint mode."""

import json

import pytest

from repro.campaign import Campaign, CampaignConfig
from repro.errors import ConfigurationError
from repro.store import HistoryStore

BASE = dict(
    app_name="stencil3d",
    allocation_core_seconds=20000.0,
    round_budget_core_seconds=300.0,
    small_scales=(32, 64, 128),
    eval_scales=(512,),
    max_rounds=2,
    n_seed_configs=6,
    bundles_per_round=48,
    n_candidates=60,
    n_eval_configs=12,
    time_limit=10.0,
    n_clusters=2,
    seed=3,
)


@pytest.fixture(scope="module")
def plain_and_backed(tmp_path_factory):
    """The same campaign run twice: JSON-checkpoint mode vs store-backed."""
    plain_dir = tmp_path_factory.mktemp("plain")
    backed_dir = tmp_path_factory.mktemp("backed")
    plain = Campaign(CampaignConfig(**BASE), plain_dir)
    plain_report = plain.run()
    backed = Campaign(
        CampaignConfig(**BASE), backed_dir, store_dir=backed_dir / "store"
    )
    backed_report = backed.run()
    return plain_report, backed_report, plain_dir, backed_dir


class TestEquivalence:
    def test_trajectories_identical_to_plain_mode(self, plain_and_backed):
        plain_report, backed_report, _, _ = plain_and_backed
        assert backed_report.mape_trajectory == plain_report.mape_trajectory

    def test_ledgers_identical_to_plain_mode(self, plain_and_backed):
        plain_report, backed_report, _, _ = plain_and_backed
        assert json.dumps(
            backed_report.ledger.to_dict(), sort_keys=True
        ) == json.dumps(plain_report.ledger.to_dict(), sort_keys=True)


class TestStoreContents:
    def test_store_holds_all_history_rows(self, plain_and_backed):
        _, backed_report, _, backed_dir = plain_and_backed
        store = HistoryStore.open(backed_dir / "store")
        assert store.n_rows == backed_report.rounds[-1]["history_rows"]

    def test_shards_tagged_with_round_and_bundle(self, plain_and_backed):
        _, _, _, backed_dir = plain_and_backed
        store = HistoryStore.open(backed_dir / "store")
        sources = store.sources()
        assert sources, "store-backed campaign wrote no tagged shards"
        assert all("round-" in s and "/bundle-" in s for s in sources)
        assert store.has_source("round-0/bundle-0")

    def test_checkpoint_is_metadata_only(self, plain_and_backed):
        _, _, plain_dir, backed_dir = plain_and_backed
        backed_blob = json.loads((backed_dir / "campaign.json").read_text())
        plain_blob = json.loads((plain_dir / "campaign.json").read_text())
        assert backed_blob["history"] is None
        assert backed_blob["store_path"] == str(backed_dir / "store")
        assert plain_blob["history"] is not None


class TestResume:
    def test_interrupted_store_backed_run_resumes_identically(
        self, plain_and_backed, tmp_path
    ):
        plain_report, _, _, _ = plain_and_backed
        campaign = Campaign(
            CampaignConfig(**BASE), tmp_path, store_dir=tmp_path / "store"
        )
        partial = campaign.run(stop_after_bundles=2)
        assert not partial.done
        # the interrupted checkpoint is already store-backed
        blob = json.loads((tmp_path / "campaign.json").read_text())
        assert blob["history"] is None
        resumed = Campaign(
            CampaignConfig(**BASE), tmp_path, store_dir=tmp_path / "store"
        ).run(resume=True)
        assert resumed.done
        assert resumed.mape_trajectory == plain_report.mape_trajectory

    def test_resume_with_mismatched_store_dir_refused(
        self, plain_and_backed, tmp_path
    ):
        campaign = Campaign(
            CampaignConfig(**BASE), tmp_path, store_dir=tmp_path / "store"
        )
        campaign.run(stop_after_bundles=1)
        with pytest.raises(ConfigurationError, match="store"):
            Campaign(
                CampaignConfig(**BASE), tmp_path, store_dir=tmp_path / "other"
            ).run(resume=True)

    def test_missing_store_on_resume_refused(self, tmp_path):
        import shutil

        campaign = Campaign(
            CampaignConfig(**BASE), tmp_path, store_dir=tmp_path / "store"
        )
        campaign.run(stop_after_bundles=1)
        shutil.rmtree(tmp_path / "store")
        with pytest.raises(ConfigurationError, match="store"):
            Campaign(
                CampaignConfig(**BASE), tmp_path, store_dir=tmp_path / "store"
            ).run(resume=True)
