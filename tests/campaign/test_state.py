"""Tests for campaign checkpointing (atomicity, resume guards)."""

import json

import numpy as np
import pytest

from repro.campaign.ledger import BudgetLedger
from repro.campaign.state import CHECKPOINT_NAME, CampaignState, PlannedBundle
from repro.data import ExecutionDataset
from repro.errors import ConfigurationError


def _history(n=6):
    rng = np.random.default_rng(0)
    return ExecutionDataset(
        app_name="stencil3d",
        param_names=("nx", "iterations"),
        X=rng.uniform(1, 10, size=(n, 2)),
        nprocs=np.repeat([32, 64], n // 2),
        runtime=rng.uniform(0.5, 2.0, size=n),
        model_runtime=rng.uniform(0.5, 2.0, size=n),
        rep=np.zeros(n, dtype=int),
    )


def _state():
    ledger = BudgetLedger(1000.0)
    ledger.open_round(0, planned=100.0)
    state = CampaignState(config_hash="abc123", ledger=ledger)
    state.start_round(0, [
        PlannedBundle(params={"nx": 4.0, "iterations": 100.0},
                      est_cost=12.0, disagreement=0.5),
    ])
    state.append_history(_history())
    state.trajectory.append({"round": 0, "mape": 0.4})
    state.registered.append(1)
    return state


class TestRoundtrip:
    def test_save_load_identical(self, tmp_path):
        state = _state()
        state.save(tmp_path)
        loaded = CampaignState.load(tmp_path, expected_hash="abc123")
        assert loaded.to_dict() == state.to_dict()
        assert np.allclose(loaded.history.X, state.history.X)
        assert loaded.ledger.spent == state.ledger.spent

    def test_checkpoint_is_single_file_no_tmp_left(self, tmp_path):
        state = _state()
        state.save(tmp_path)
        state.save(tmp_path)  # overwrite path
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == [CHECKPOINT_NAME]

    def test_checkpoint_is_stable_json(self, tmp_path):
        state = _state()
        a = state.save(tmp_path).read_text()
        state.save(tmp_path)
        b = (tmp_path / CHECKPOINT_NAME).read_text()
        assert a == b
        json.loads(a)  # valid JSON

    def test_empty_history_roundtrip(self, tmp_path):
        state = CampaignState(config_hash="x", ledger=BudgetLedger(10.0))
        state.save(tmp_path)
        loaded = CampaignState.load(tmp_path)
        assert loaded.history is None


class TestGuards:
    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="resume"):
            CampaignState.load(tmp_path / "nowhere")

    def test_config_hash_mismatch_refused(self, tmp_path):
        _state().save(tmp_path)
        with pytest.raises(ConfigurationError, match="different campaign"):
            CampaignState.load(tmp_path, expected_hash="otherhash")

    def test_corrupt_json_raises_structured(self, tmp_path):
        (tmp_path / CHECKPOINT_NAME).write_text("{not json")
        with pytest.raises(ConfigurationError, match="Corrupt"):
            CampaignState.load(tmp_path)

    def test_foreign_format_rejected(self, tmp_path):
        (tmp_path / CHECKPOINT_NAME).write_text(json.dumps({"format": "v0"}))
        with pytest.raises(ConfigurationError, match="format"):
            CampaignState.load(tmp_path)

    def test_invalid_phase_rejected(self):
        with pytest.raises(ConfigurationError, match="phase"):
            CampaignState(config_hash="x", phase="weird")


class TestLifecycle:
    def test_start_round_resets_cursor(self):
        state = _state()
        state.bundle_cursor = 1
        state.start_round(1, [PlannedBundle(params={"nx": 1.0})])
        assert state.phase == "round"
        assert state.round_index == 1
        assert state.bundle_cursor == 0

    def test_finish_marks_done(self):
        state = _state()
        state.finish("max-rounds")
        assert state.done
        assert state.stop_reason == "max-rounds"

    def test_append_history_merges(self):
        state = CampaignState(config_hash="x")
        state.append_history(_history(4))
        state.append_history(_history(4))
        assert len(state.history) == 8
