"""End-to-end tests of the closed campaign loop.

The settings below (stencil3d, small scales {32, 64, 128}, seed 3,
budget-bound planner rounds) were chosen so the large-scale MAPE
trajectory decreases every round — the behavior the subsystem exists
to deliver — while keeping the whole module in tens of seconds.
"""

import json

import pytest

from repro.campaign import Campaign, CampaignConfig
from repro.errors import ConfigurationError
from repro.serve import ModelRegistry

BASE = dict(
    app_name="stencil3d",
    allocation_core_seconds=20000.0,
    round_budget_core_seconds=300.0,
    small_scales=(32, 64, 128),
    eval_scales=(512,),
    max_rounds=3,
    n_seed_configs=6,
    bundles_per_round=48,
    n_candidates=60,
    n_eval_configs=12,
    time_limit=10.0,
    n_clusters=2,
    seed=3,
)


@pytest.fixture(scope="module")
def finished(tmp_path_factory):
    """One full 3-round campaign, shared by the assertions below."""
    path = tmp_path_factory.mktemp("camp")
    campaign = Campaign(CampaignConfig(**BASE), path)
    return campaign, campaign.run(), path


class TestTrajectory:
    def test_runs_seed_plus_three_rounds(self, finished):
        _, report, _ = finished
        assert [r["round"] for r in report.rounds] == [0, 1, 2, 3]
        assert report.stop_reason == "max-rounds"
        assert report.done

    def test_mape_strictly_decreases_round_over_round(self, finished):
        _, report, _ = finished
        mape = report.mape_trajectory
        assert all(b < a for a, b in zip(mape, mape[1:])), mape

    def test_history_grows_every_round(self, finished):
        _, report, _ = finished
        rows = [r["history_rows"] for r in report.rounds]
        assert all(b > a for a, b in zip(rows, rows[1:]))

    def test_rounds_carry_uncertainty_and_disagreement(self, finished):
        _, report, _ = finished
        for r in report.rounds:
            assert r["interval_width"] > 0
            assert r["disagreement"] > 0


class TestBudgetGuarantee:
    def test_allocation_never_exceeded(self, finished):
        _, report, _ = finished
        assert report.ledger.spent <= report.ledger.allocation

    def test_every_round_charge_is_positive_and_accounted(self, finished):
        _, report, _ = finished
        ledger = report.ledger
        assert ledger.spent == pytest.approx(
            sum(r.charged for r in ledger.rounds)
        )
        for row in ledger.rounds:
            assert row.charged > 0
            assert 0 <= row.wasted <= row.charged

    def test_retry_charges_stay_within_allocation_when_tight(self, tmp_path):
        """A time limit low enough to censor runs still never overdraws:
        killed attempts and backoffs are charged, and the worst-case
        precheck refuses bundles the allocation cannot absorb."""
        cfg = CampaignConfig(**{
            **BASE,
            "allocation_core_seconds": 3000.0,
            "round_budget_core_seconds": 400.0,
            "time_limit": 1.0,          # p90 runtimes exceed this
            "max_retries": 1,
            "backoff_base": 2.0,
            "max_rounds": 2,
            "n_seed_configs": 4,
        })
        report = Campaign(cfg, tmp_path).run()
        assert report.ledger.spent <= report.ledger.allocation
        # The tight limit must actually have produced waste to charge.
        assert report.ledger.wasted > 0

    def test_unplannable_round_budget_stops_campaign(self, tmp_path):
        """A round budget below every bundle's estimated cost means the
        next round cannot buy anything — the campaign stops cleanly."""
        cfg = CampaignConfig(**{
            **BASE,
            "round_budget_core_seconds": 0.5,
            "n_seed_configs": 4,
        })
        report = Campaign(cfg, tmp_path).run()
        assert report.stop_reason == "budget-exhausted"
        assert len(report.rounds) == 1  # only the seed round closed
        assert report.ledger.spent <= report.ledger.allocation

    def test_drained_allocation_is_a_stop_reason(self, tmp_path):
        """When the remaining allocation cannot absorb one bundle's
        worst case, the campaign refuses to start another round."""
        from repro.campaign import BudgetLedger, CampaignState

        campaign = Campaign(CampaignConfig(**BASE), tmp_path)
        wc = campaign.bundle_worst_case()
        ledger = BudgetLedger(wc * 1.5)
        row = ledger.open_round(0)
        row.charged = wc  # leaves 0.5 * wc — not enough for a bundle
        state = CampaignState(
            config_hash=campaign.config.fingerprint(), ledger=ledger
        )
        state.trajectory.append({"round": 0, "mape": 1.0, "disagreement": 1.0})
        assert campaign._stop_reason(state) == "budget-exhausted"


class TestResume:
    def test_midrun_kill_resumes_to_identical_ledger(self, finished, tmp_path):
        _, full_report, _ = finished
        campaign = Campaign(CampaignConfig(**BASE), tmp_path)
        partial = campaign.run(stop_after_bundles=2)
        assert not partial.done
        resumed = campaign.run(resume=True)
        assert resumed.done
        assert json.dumps(
            resumed.ledger.to_dict(), sort_keys=True
        ) == json.dumps(full_report.ledger.to_dict(), sort_keys=True)
        assert resumed.mape_trajectory == full_report.mape_trajectory

    def test_resume_after_finish_returns_final_report(self, finished):
        campaign, report, _ = finished
        again = campaign.run(resume=True)
        assert again.done
        assert again.stop_reason == report.stop_reason
        assert again.mape_trajectory == report.mape_trajectory

    def test_fresh_run_refuses_existing_checkpoint(self, finished):
        _, _, path = finished
        with pytest.raises(ConfigurationError, match="checkpoint"):
            Campaign(CampaignConfig(**BASE), path).run()

    def test_resume_with_different_config_refused(self, finished):
        _, _, path = finished
        other = CampaignConfig(**{**BASE, "seed": 4})
        with pytest.raises(ConfigurationError, match="different campaign"):
            Campaign(other, path).run(resume=True)


class TestRegistryIntegration:
    def test_each_round_registered_with_provenance_and_pruned(self, tmp_path):
        cfg = CampaignConfig(**{
            **BASE,
            "max_rounds": 2,
            "round_budget_core_seconds": 150.0,
            "model_name": "camp-model",
            "keep_last": 2,
        })
        registry = ModelRegistry(tmp_path / "reg")
        report = Campaign(cfg, tmp_path / "camp", registry=registry).run()
        # Three models registered (seed + 2 rounds), pruned to the last 2.
        assert report.registered == [1, 2, 3]
        assert registry.versions("camp-model") == [2, 3]
        info = registry.inspect("camp-model", 3)
        assert info.metadata["campaign"] == cfg.fingerprint()
        assert info.metadata["campaign_round"] == "2"
        assert info.metadata["campaign_selection"] == "planner"


class TestSelectionStrategies:
    @pytest.mark.parametrize("selection", ["random", "grid"])
    def test_baseline_strategies_complete(self, tmp_path, selection):
        cfg = CampaignConfig(**{
            **BASE,
            "selection": selection,
            "max_rounds": 1,
            "round_budget_core_seconds": 150.0,
            "n_candidates": 20,
        })
        report = Campaign(cfg, tmp_path).run()
        assert report.done
        assert len(report.rounds) == 2
        assert report.ledger.spent <= report.ledger.allocation


class TestStopRules:
    def test_mape_target_stops_early(self, tmp_path):
        cfg = CampaignConfig(**{**BASE, "mape_target": 10.0})  # trivially met
        report = Campaign(cfg, tmp_path).run()
        assert report.stop_reason == "mape-target"
        assert len(report.rounds) == 1  # stopped right after the seed round

    def test_plateau_stops_when_disagreement_stalls(self, tmp_path):
        cfg = CampaignConfig(**{
            **BASE,
            "plateau_rounds": 1,
            "plateau_tol": 10.0,  # any improvement < 1000 % counts as flat
        })
        report = Campaign(cfg, tmp_path).run()
        assert report.stop_reason == "plateau"
        # Stopped after the first post-seed round, well before max_rounds.
        assert len(report.rounds) == 2
