"""Tests for campaign core-second accounting."""

import pytest

from repro.campaign.ledger import (
    BudgetLedger,
    RoundLedger,
    worst_case_run_cost,
)
from repro.errors import ConfigurationError
from repro.sim import ExecutionBudget, RetryPolicy
from repro.sim.budget import Attempt, AttemptTrace
from repro.sim.trace import ExecutionRecord


def _record(nprocs=32, runtime=2.0, censored=False, attempts=None):
    return ExecutionRecord(
        app_name="stencil3d",
        params={"nx": 64.0},
        nprocs=nprocs,
        runtime=runtime,
        model_runtime=runtime,
        censored=censored,
        attempts=attempts,
    )


def _trace(*specs):
    """Build an AttemptTrace from (runtime, timed_out, backoff) triples."""
    return AttemptTrace(
        tuple(
            Attempt(index=i, seed=i, limit=10.0, runtime=rt,
                    timed_out=to, backoff=bo)
            for i, (rt, to, bo) in enumerate(specs)
        )
    )


class TestWorstCaseRunCost:
    def test_single_attempt_is_limit_times_procs(self):
        cost = worst_case_run_cost(
            ExecutionBudget(limit=10.0), RetryPolicy(max_attempts=1), 32
        )
        assert cost == pytest.approx(320.0)

    def test_retries_add_escalated_limits_and_max_backoff(self):
        retry = RetryPolicy(
            max_attempts=2, backoff_base=5.0, backoff_jitter=0.1,
            escalation=1.5,
        )
        cost = worst_case_run_cost(ExecutionBudget(limit=10.0), retry, 32)
        # attempt 0: 10 s; attempt 1: 15 s + max backoff 5 * 1.1 s.
        assert cost == pytest.approx((10.0 + 15.0 + 5.5) * 32)

    def test_actual_cost_never_exceeds_worst_case(self):
        budget = ExecutionBudget(limit=10.0)
        retry = RetryPolicy(
            max_attempts=3, backoff_base=5.0, backoff_jitter=0.1,
            escalation=1.5,
        )
        wc = worst_case_run_cost(budget, retry, 32)
        # Pessimal run: every attempt killed at its escalated limit.
        trace = _trace(
            (10.0, True, 0.0), (15.0, True, 5.5), (22.5, True, 11.0)
        )
        assert trace.total_cost(32) <= wc

    def test_unbounded_budget_rejected(self):
        with pytest.raises(ConfigurationError, match="bounded"):
            worst_case_run_cost(
                ExecutionBudget.unlimited(), RetryPolicy(), 32
            )


class TestAttemptTraceCosts:
    def test_total_cost_includes_killed_attempts_and_backoff(self):
        trace = _trace((10.0, True, 0.0), (3.0, False, 5.0))
        assert trace.total_cost(4) == pytest.approx((10.0 + 5.0 + 3.0) * 4)

    def test_wasted_cost_excludes_final_useful_runtime(self):
        trace = _trace((10.0, True, 0.0), (3.0, False, 5.0))
        assert trace.wasted_cost(4) == pytest.approx((10.0 + 5.0) * 4)

    def test_fully_censored_trace_is_all_waste(self):
        trace = _trace((10.0, True, 0.0), (10.0, True, 5.0))
        assert trace.wasted_cost(2) == pytest.approx(trace.total_cost(2))

    def test_invalid_cores_rejected(self):
        trace = _trace((1.0, False, 0.0))
        with pytest.raises(ConfigurationError):
            trace.total_cost(0)
        with pytest.raises(ConfigurationError):
            trace.wasted_cost(-1)


class TestBudgetLedger:
    def test_requires_positive_allocation(self):
        with pytest.raises(ConfigurationError):
            BudgetLedger(0.0)

    def test_charge_without_trace_uses_runtime_times_procs(self):
        ledger = BudgetLedger(1000.0)
        ledger.open_round(0)
        charged = ledger.charge_record(_record(nprocs=32, runtime=2.0))
        assert charged == pytest.approx(64.0)
        assert ledger.spent == pytest.approx(64.0)
        assert ledger.wasted == 0.0
        assert ledger.remaining == pytest.approx(936.0)

    def test_charge_with_trace_includes_retry_and_backoff(self):
        ledger = BudgetLedger(10000.0)
        ledger.open_round(0)
        trace = _trace((10.0, True, 0.0), (3.0, False, 5.0))
        rec = _record(nprocs=4, runtime=3.0, attempts=trace)
        ledger.charge_record(rec)
        row = ledger.round(0)
        assert row.charged == pytest.approx(18.0 * 4)
        assert row.wasted == pytest.approx(15.0 * 4)
        assert row.backoff == pytest.approx(5.0 * 4)
        assert row.n_resubmitted == 1
        assert row.useful == pytest.approx(3.0 * 4)

    def test_censored_record_is_fully_wasted(self):
        ledger = BudgetLedger(10000.0)
        ledger.open_round(0)
        trace = _trace((10.0, True, 0.0), (10.0, True, 5.0))
        rec = _record(nprocs=4, runtime=10.0, censored=True, attempts=trace)
        ledger.charge_record(rec)
        row = ledger.round(0)
        assert row.wasted == pytest.approx(row.charged)
        assert row.n_censored == 1

    def test_censored_record_without_trace_fully_wasted(self):
        ledger = BudgetLedger(1000.0)
        ledger.open_round(0)
        ledger.charge_record(_record(nprocs=8, runtime=5.0, censored=True))
        assert ledger.wasted == pytest.approx(40.0)

    def test_rounds_accumulate_and_affords(self):
        ledger = BudgetLedger(100.0)
        ledger.open_round(0)
        ledger.charge_record(_record(nprocs=8, runtime=5.0))  # 40
        ledger.open_round(1)
        ledger.charge_record(_record(nprocs=8, runtime=5.0))  # 40
        assert ledger.spent == pytest.approx(80.0)
        assert ledger.affords(20.0)
        assert not ledger.affords(20.1)
        assert not ledger.exhausted

    def test_open_round_is_idempotent_on_resume(self):
        ledger = BudgetLedger(100.0)
        ledger.open_round(0, planned=50.0)
        ledger.charge_record(_record(nprocs=4, runtime=1.0))
        row = ledger.open_round(0)  # resume: planned not overwritten
        assert row.planned == pytest.approx(50.0)
        assert len(ledger.rounds) == 1

    def test_roundtrip_preserves_everything(self):
        ledger = BudgetLedger(500.0)
        ledger.open_round(0, planned=100.0)
        trace = _trace((10.0, True, 0.0), (3.0, False, 5.0))
        ledger.charge_record(_record(nprocs=4, runtime=3.0, attempts=trace))
        clone = BudgetLedger.from_dict(ledger.to_dict())
        assert clone.to_dict() == ledger.to_dict()
        assert clone.spent == pytest.approx(ledger.spent)

    def test_charge_without_open_round_raises(self):
        ledger = BudgetLedger(100.0)
        with pytest.raises(ConfigurationError, match="open_round"):
            ledger.charge_record(_record())

    def test_summary_mentions_rounds(self):
        ledger = BudgetLedger(100.0)
        ledger.open_round(0)
        ledger.charge_record(_record(nprocs=4, runtime=1.0))
        text = ledger.summary()
        assert "core-seconds" in text
        assert "seed" in text


class TestRoundLedger:
    def test_roundtrip(self):
        row = RoundLedger(
            round_index=2, planned=10.0, charged=8.0, wasted=1.0,
            backoff=0.5, n_runs=3, n_censored=1, n_resubmitted=1,
        )
        assert RoundLedger.from_dict(row.to_dict()) == row
