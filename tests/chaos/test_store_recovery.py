"""Crash-consistency and fsck recovery of the history store.

The tentpole invariant: crash a store append at *every* filesystem
step it performs, reopen, run ``fsck()``, and the store must hold
either exactly the old rows or exactly the old+new rows — never a
torn in-between — with ``verify()`` passing afterwards.
"""

import numpy as np
import pytest

from repro.chaos import ChaosFS, corrupt_file, crash_sweep
from repro.errors import DatasetFormatError
from repro.store import HistoryStore, QUARANTINE_DIR

from .conftest import make_dataset

DS_SEED = make_dataset(n=30, seed=1)
DS_NEW = make_dataset(n=30, seed=2)


def _setup(root):
    store = HistoryStore.create(root / "store", "synth", ("alpha", "beta"))
    store.append(DS_SEED, source="seed")
    return {
        "rows_old": store.n_rows,
        "rows_new": store.n_rows + len(DS_NEW),
        "fp_old": store.fingerprint,
    }


def _workload(root, ctx):
    HistoryStore.open(root / "store").append(DS_NEW, source="round-0/bundle-0")


def _check(root, ctx):
    store = HistoryStore.open(root / "store")
    store.fsck(repair=True)
    store = HistoryStore.open(root / "store")
    assert store.n_rows in (ctx["rows_old"], ctx["rows_new"]), (
        f"torn store: {store.n_rows} rows"
    )
    store.verify()  # every surviving fingerprint must match
    if store.n_rows == ctx["rows_old"]:
        assert store.fingerprint == ctx["fp_old"]
        # the crashed append must remain re-appendable exactly-once
        assert not store.has_source("round-0/bundle-0")
        store.append(DS_NEW, source="round-0/bundle-0")
        assert store.n_rows == ctx["rows_new"]
    else:
        assert store.has_source("round-0/bundle-0")


class TestAppendCrashSweep:
    def test_recover_to_old_or_new_at_every_crashpoint(self, tmp_path):
        report = crash_sweep(_setup, _workload, _check, tmp_path, seed=7)
        assert report.ok, report.summary()
        # the sweep must actually cover every durability boundary of an
        # append: shard column writes, shard commit, manifest replace
        ids = set(report.step_ids)
        for expected in (
            "store.shard.column:write",
            "store.shard:before-rename",
            "store.shard:after-rename",
            "store.manifest:write",
            "store.manifest:before-rename",
            "store.manifest:after-rename",
        ):
            assert expected in ids, f"{expected} not exercised"
        assert report.steps_recorded >= 15

    def test_enospc_mid_append_leaves_store_consistent(self, tmp_path):
        ctx = _setup(tmp_path)
        store = HistoryStore.open(tmp_path / "store")
        import errno

        fs = ChaosFS(seed=0).fail_op(
            "store.shard.column:write", err=errno.ENOSPC
        )
        with fs.install():
            with pytest.raises(OSError):
                store.append(DS_NEW, source="round-0/bundle-0")
        store = HistoryStore.open(tmp_path / "store")
        assert store.n_rows == ctx["rows_old"]
        store.fsck(repair=True)
        HistoryStore.open(tmp_path / "store").verify()


class TestFsck:
    def _store(self, tmp_path, n_shards=3):
        store = HistoryStore.create(tmp_path / "store", "synth", ("alpha", "beta"))
        for i in range(n_shards):
            store.append(make_dataset(n=30, seed=i), source=f"chunk-{i}")
        return HistoryStore.open(tmp_path / "store")

    def test_clean_store_is_clean(self, tmp_path):
        store = self._store(tmp_path)
        report = store.fsck(repair=True)
        assert report.clean and not report.repaired
        assert report.shards_checked == 3
        assert report.rows_retained == store.n_rows
        assert "clean" in report.summary()

    def test_bitflip_classified_and_quarantined(self, tmp_path):
        store = self._store(tmp_path)
        rows = store.n_rows
        victim = store.root / "shards" / "shard-00001" / "runtime.npy"
        corrupt_file(victim, mode="bitflip", amount=1, seed=3)
        with pytest.raises(DatasetFormatError):
            store.verify()  # detect-only path still raises
        report = store.fsck(repair=True)
        assert report.damaged == {"shard-00001": "hash-mismatch"}
        assert report.quarantined == ["shard-00001"]
        assert (store.root / QUARANTINE_DIR / "shard-00001").is_dir()
        reopened = HistoryStore.open(store.root)
        assert reopened.n_rows == rows - 30
        reopened.verify()
        assert reopened.has_source("chunk-0") and reopened.has_source("chunk-2")
        assert not reopened.has_source("chunk-1")

    def test_missing_column_classified(self, tmp_path):
        store = self._store(tmp_path)
        (store.root / "shards" / "shard-00002" / "nprocs.npy").unlink()
        report = store.fsck(repair=True)
        assert report.damaged == {"shard-00002": "missing-column"}
        HistoryStore.open(store.root).verify()

    def test_truncated_column_classified(self, tmp_path):
        store = self._store(tmp_path)
        victim = store.root / "shards" / "shard-00000" / "X.npy"
        corrupt_file(victim, mode="truncate", amount=victim.stat().st_size // 2)
        report = store.fsck(repair=True)
        assert list(report.damaged) == ["shard-00000"]
        assert report.damaged["shard-00000"] in (
            "unreadable-column", "row-mismatch", "hash-mismatch"
        )
        HistoryStore.open(store.root).verify()

    def test_garbage_column_classified(self, tmp_path):
        store = self._store(tmp_path)
        victim = store.root / "shards" / "shard-00000" / "rep.npy"
        corrupt_file(victim, mode="garbage", amount=64, seed=0)
        report = store.fsck(repair=True)
        assert report.damaged["shard-00000"] == "unreadable-column"
        HistoryStore.open(store.root).verify()

    def test_missing_shard_not_quarantined_but_dropped(self, tmp_path):
        import shutil

        store = self._store(tmp_path)
        shutil.rmtree(store.root / "shards" / "shard-00001")
        report = store.fsck(repair=True)
        assert report.damaged == {"shard-00001": "missing-shard"}
        assert report.quarantined == []
        assert HistoryStore.open(store.root).n_rows == 60

    def test_orphan_tmp_swept_and_orphan_shard_quarantined(self, tmp_path):
        store = self._store(tmp_path)
        rows = store.n_rows
        tmp_dir = store.root / "shards" / ".tmp-shard-00003"
        tmp_dir.mkdir()
        (tmp_dir / "X.npy").write_bytes(b"partial")
        orphan = store.root / "shards" / "shard-00099"
        orphan.mkdir()
        (orphan / "X.npy").write_bytes(b"committed but unreferenced")
        report = store.fsck(repair=True)
        assert report.damaged[".tmp-shard-00003"] == "orphaned-tmp"
        assert report.damaged["shard-00099"] == "orphaned-shard"
        assert ".tmp-shard-00003" in report.orphans_removed
        assert not tmp_dir.exists()
        assert not orphan.exists()
        assert (store.root / QUARANTINE_DIR / "shard-00099").is_dir()
        reopened = HistoryStore.open(store.root)
        assert reopened.n_rows == rows  # intact rows untouched
        reopened.verify()

    def test_repair_false_only_reports(self, tmp_path):
        store = self._store(tmp_path)
        victim = store.root / "shards" / "shard-00000" / "runtime.npy"
        corrupt_file(victim, mode="bitflip", seed=1)
        report = store.fsck(repair=False)
        assert report.damaged and not report.repaired
        assert report.quarantined == []
        assert victim.exists()  # nothing moved

    def test_all_shards_damaged_reopens_empty(self, tmp_path):
        store = self._store(tmp_path, n_shards=2)
        for name in ("shard-00000", "shard-00001"):
            corrupt_file(
                store.root / "shards" / name / "runtime.npy",
                mode="bitflip", seed=1,
            )
        report = store.fsck(repair=True)
        assert report.rows_retained == 0
        reopened = HistoryStore.open(store.root)
        assert reopened.n_rows == 0
        assert reopened.fingerprint is None
        reopened.verify()

    def test_quarantine_name_collision_gets_suffix(self, tmp_path):
        store = self._store(tmp_path)
        corrupt_file(
            store.root / "shards" / "shard-00001" / "runtime.npy",
            mode="bitflip", seed=1,
        )
        store.fsck(repair=True)
        # a later append recreates shard-00001, corrupt it again
        store = HistoryStore.open(store.root)
        store.append(make_dataset(n=30, seed=9), source="again")
        assert store.shard_infos[-1]["name"] == "shard-00002"
        corrupt_file(
            store.root / "shards" / "shard-00002" / "runtime.npy",
            mode="bitflip", seed=2,
        )
        # put a colliding name into quarantine to force the suffix path
        (store.root / QUARANTINE_DIR / "shard-00002").mkdir()
        report = HistoryStore.open(store.root).fsck(repair=True)
        assert report.quarantined == ["shard-00002.1"]

    def test_data_slice_bitexact_after_quarantine(self, tmp_path):
        """Surviving rows must be byte-identical to the original chunks."""
        store = self._store(tmp_path)
        corrupt_file(
            store.root / "shards" / "shard-00001" / "model_runtime.npy",
            mode="bitflip", seed=4,
        )
        store.fsck(repair=True)
        survivors = HistoryStore.open(store.root).to_dataset()
        expected_first = make_dataset(n=30, seed=0)
        np.testing.assert_array_equal(
            survivors.runtime[:30], expected_first.runtime
        )
        np.testing.assert_array_equal(
            survivors.X[30:], make_dataset(n=30, seed=2).X
        )
