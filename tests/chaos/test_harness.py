"""crash_sweep: record-then-sweep over a minimal durable workload."""

import json

import pytest

from repro.chaos import crash_sweep
from repro.store import atomic


def _setup(root):
    atomic.atomic_replace(root / "state.json", json.dumps({"v": 1}), op="demo")
    return {"old": {"v": 1}, "new": {"v": 2}}


def _workload(root, ctx):
    atomic.atomic_replace(root / "state.json", json.dumps(ctx["new"]), op="demo")


def _check(root, ctx):
    state = json.loads((root / "state.json").read_text())
    assert state in (ctx["old"], ctx["new"]), state


class TestCrashSweep:
    def test_atomic_replace_survives_every_crashpoint(self, tmp_path):
        report = crash_sweep(_setup, _workload, _check, tmp_path, seed=0)
        assert report.ok, report.summary()
        # setup runs outside the chaos backend: only workload steps count
        assert report.steps_recorded == 5
        assert len(report.outcomes) == 5
        assert all(o.crashed for o in report.outcomes)

    def test_sweep_detects_a_broken_protocol(self, tmp_path):
        """A non-atomic writer (truncate-then-write in place) must make
        the sweep fail — the harness actually catches torn states."""

        def bad_workload(root, ctx):
            b = atomic.get_backend()
            b.checkpoint("bad:before-write")
            b.write_bytes(
                root / "state.json", json.dumps(ctx["new"]).encode(), op="bad"
            )

        report = crash_sweep(_setup, bad_workload, _check, tmp_path, seed=0)
        assert not report.ok
        failed = {o.step_id for o in report.failures}
        assert "bad:write" in failed  # the torn in-place write case

    def test_step_filter_narrows_the_sweep(self, tmp_path):
        report = crash_sweep(
            _setup, _workload, _check, tmp_path, seed=0,
            step_filter=lambda s: s.endswith("rename"),
        )
        assert report.steps_recorded == 5
        assert len(report.outcomes) == 3
        assert report.ok, report.summary()

    def test_uninterrupted_run_must_pass_check(self, tmp_path):
        def broken_check(root, ctx):
            raise AssertionError("always wrong")

        with pytest.raises(AssertionError):
            crash_sweep(_setup, _workload, broken_check, tmp_path, seed=0)
