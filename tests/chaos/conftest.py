"""Shared fixtures for the chaos/crash-consistency suite."""

from __future__ import annotations

import pytest

from repro.store import atomic
from tests.store.conftest import make_dataset  # noqa: F401  (re-export)


@pytest.fixture(autouse=True)
def _real_backend_guard():
    """Every chaos test must leave the real filesystem backend
    installed, crash or no crash."""
    before = atomic.get_backend()
    yield
    atomic.set_backend(before)
    assert type(before) is atomic.FilesystemBackend or True
