"""Crash-resume of store-backed campaigns under injected crashpoints.

Kill a campaign at each durability boundary it crosses — shard commit,
store manifest update, campaign checkpoint, registry register — then
resume on the real filesystem and require the final ledger and metric
trajectory to be byte-identical to an uninterrupted run, with every
store append exactly-once.
"""

import json

import pytest

from repro.campaign import Campaign, CampaignConfig
from repro.chaos import ChaosCrash, ChaosFS
from repro.serve import ModelRegistry
from repro.store import HistoryStore

BASE = dict(
    app_name="stencil3d",
    allocation_core_seconds=20000.0,
    round_budget_core_seconds=300.0,
    small_scales=(32, 64, 128),
    eval_scales=(512,),
    max_rounds=2,
    n_seed_configs=6,
    bundles_per_round=48,
    n_candidates=60,
    n_eval_configs=12,
    time_limit=10.0,
    n_clusters=2,
    seed=3,
)

#: One crash per durability boundary a store-backed campaign crosses.
#: occurrence > 1 lands the kill mid-campaign rather than on the very
#: first write of that kind.  One representative per boundary runs in
#: the fast lane; the exhaustive per-step variants are ``slow``.
CRASH_POINTS = [
    ("store.shard:after-rename", 2),
    ("store.manifest:before-rename", 3),
    ("campaign.checkpoint:write", 4),
    pytest.param("store.shard:before-rename", 2, marks=pytest.mark.slow),
    pytest.param("store.manifest:write", 3, marks=pytest.mark.slow),
    pytest.param("store.manifest:after-rename", 3, marks=pytest.mark.slow),
    pytest.param(
        "campaign.checkpoint:before-rename", 4, marks=pytest.mark.slow
    ),
    pytest.param(
        "campaign.checkpoint:after-rename", 4, marks=pytest.mark.slow
    ),
]


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """One uninterrupted store-backed run: ledger + trajectory baseline."""
    root = tmp_path_factory.mktemp("reference")
    report = Campaign(
        CampaignConfig(**BASE), root, store_dir=root / "store"
    ).run()
    return {
        "ledger": json.dumps(report.ledger.to_dict(), sort_keys=True),
        "trajectory": report.mape_trajectory,
        "rows": HistoryStore.open(root / "store").n_rows,
        "sources": HistoryStore.open(root / "store").sources(),
    }


class TestCrashResume:
    @pytest.mark.parametrize("crash_id,occurrence", CRASH_POINTS)
    def test_resume_is_byte_identical(
        self, reference, tmp_path, crash_id, occurrence
    ):
        campaign = Campaign(
            CampaignConfig(**BASE), tmp_path, store_dir=tmp_path / "store"
        )
        fs = ChaosFS(seed=0).crash_at(crash_id, occurrence=occurrence)
        with pytest.raises(ChaosCrash):
            with fs.install():
                campaign.run()
        # reboot: heal whatever the kill left, then resume on real disk
        store = HistoryStore.open(tmp_path / "store")
        store.fsck(repair=True)
        resumed = Campaign(
            CampaignConfig(**BASE), tmp_path, store_dir=tmp_path / "store"
        ).run(resume=True)
        assert resumed.done
        assert resumed.mape_trajectory == reference["trajectory"]
        assert (
            json.dumps(resumed.ledger.to_dict(), sort_keys=True)
            == reference["ledger"]
        )
        # appends stayed exactly-once: same rows, same source tags, and
        # no source tag appears on two shards
        store = HistoryStore.open(tmp_path / "store")
        assert store.n_rows == reference["rows"]
        assert store.sources() == reference["sources"]
        tags = [
            e["source"] for e in store.shard_infos if e["source"] is not None
        ]
        assert len(tags) == len(set(tags))
        store.verify()


class TestCrashDuringRegister:
    def test_registry_crash_resumes_with_identical_ledger(
        self, reference, tmp_path
    ):
        """A kill inside ``registry.register`` (at-least-once) must not
        disturb the exactly-once store/ledger state."""
        registry = ModelRegistry(tmp_path / "registry")
        campaign = Campaign(
            CampaignConfig(**BASE), tmp_path,
            store_dir=tmp_path / "store", registry=registry,
        )
        fs = ChaosFS(seed=0).crash_at("registry.register:before-rename")
        with pytest.raises(ChaosCrash):
            with fs.install():
                campaign.run()
        ModelRegistry(tmp_path / "registry", create=False).fsck(repair=True)
        resumed = Campaign(
            CampaignConfig(**BASE), tmp_path,
            store_dir=tmp_path / "store",
            registry=ModelRegistry(tmp_path / "registry", create=False),
        ).run(resume=True)
        assert resumed.done
        assert resumed.mape_trajectory == reference["trajectory"]
        assert (
            json.dumps(resumed.ledger.to_dict(), sort_keys=True)
            == reference["ledger"]
        )
        # re-registration after the crash is at-least-once by design:
        # every stored version must load cleanly
        registry = ModelRegistry(tmp_path / "registry", create=False)
        name = registry.models()[0]
        for version in registry.versions(name):
            registry.load(name, version)
