"""Crash-consistency and self-healing of the model registry."""

import json

import pytest

from repro.chaos import corrupt_file, crash_sweep
from repro.errors import RegistryError
from repro.serve import ModelArtifact, ModelRegistry
from repro.serve.artifacts import ArtifactInfo
from repro.serve.registry import QUARANTINE_DIR


def _artifact():
    return ModelArtifact(
        {"weights": [1.0, 2.0]},
        ArtifactInfo(
            kind="pickle", app_name="synth",
            param_names=("alpha", "beta"), scales=(8, 16),
        ),
    )


def _setup(root):
    registry = ModelRegistry(root / "registry")
    registry.register("m", _artifact())
    return {}


def _workload(root, ctx):
    ModelRegistry(root / "registry").register("m", _artifact())


def _check(root, ctx):
    registry = ModelRegistry(root / "registry", create=False)
    registry.fsck(repair=True)
    versions = ModelRegistry(root / "registry", create=False).versions("m")
    # old state = [1], new state = [1, 2]; never a torn version visible
    assert versions in ([1], [1, 2]), versions
    for v in versions:
        registry.load("m", v)  # every listed version must fully load
    # the registry must still accept the next registration
    registry.register("m", _artifact())


class TestRegisterCrashSweep:
    def test_recover_to_old_or_new_at_every_crashpoint(self, tmp_path):
        report = crash_sweep(_setup, _workload, _check, tmp_path, seed=11)
        assert report.ok, report.summary()
        ids = set(report.step_ids)
        for expected in (
            "artifact.payload:write",
            "artifact.manifest:write",
            "artifact.manifest:before-rename",
            "registry.register:before-rename",
            "registry.register:after-rename",
        ):
            assert expected in ids, f"{expected} not exercised"


class TestDamagedVersionSkip:
    def _registry(self, tmp_path, versions=3):
        registry = ModelRegistry(tmp_path / "registry")
        for _ in range(versions):
            registry.register("m", _artifact())
        return registry

    def test_corrupt_manifest_skipped_with_latest_intact(self, tmp_path):
        registry = self._registry(tmp_path)
        (tmp_path / "registry" / "m" / "v0003" / "manifest.json").write_text(
            "{ torn"
        )
        assert registry.versions("m") == [1, 2]
        assert registry.latest("m") == 2
        assert registry.models() == ["m"]
        registry.load("m")  # resolves to v2 and loads

    def test_missing_payload_skipped(self, tmp_path):
        registry = self._registry(tmp_path)
        (tmp_path / "registry" / "m" / "v0002" / "payload.pkl").unlink()
        assert registry.versions("m") == [1, 3]

    def test_registration_numbers_past_damaged_versions(self, tmp_path):
        registry = self._registry(tmp_path)
        (tmp_path / "registry" / "m" / "v0003" / "manifest.json").write_text(
            "{ torn"
        )
        assert registry.register("m", _artifact()) == 4

    def test_quarantine_is_a_reserved_name(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        with pytest.raises(RegistryError, match="reserved"):
            registry.register(QUARANTINE_DIR, _artifact())


class TestRegistryFsck:
    def _registry(self, tmp_path, versions=3):
        registry = ModelRegistry(tmp_path / "registry")
        for _ in range(versions):
            registry.register("m", _artifact())
        return registry

    def test_clean_registry_is_clean(self, tmp_path):
        registry = self._registry(tmp_path)
        report = registry.fsck(repair=True)
        assert report.clean and report.versions_checked == 3
        assert "clean" in report.summary()

    def test_checksum_mismatch_quarantined(self, tmp_path):
        registry = self._registry(tmp_path)
        corrupt_file(
            tmp_path / "registry" / "m" / "v0002" / "payload.pkl",
            mode="bitflip", seed=1,
        )
        report = registry.fsck(repair=True)
        assert report.damaged == {"m/v0002": "payload checksum mismatch"}
        assert report.quarantined == ["m/v0002"]
        assert (tmp_path / "registry" / QUARANTINE_DIR / "m" / "v0002").is_dir()
        assert registry.versions("m") == [1, 3]
        # the quarantine directory never shows up as a model
        assert registry.models() == ["m"]

    def test_pin_to_quarantined_version_cleared(self, tmp_path):
        registry = self._registry(tmp_path)
        registry.pin("m", 2)
        (tmp_path / "registry" / "m" / "v0002" / "manifest.json").write_text(
            json.dumps(["not", "an", "object"])
        )
        report = registry.fsck(repair=True)
        assert report.pins_cleared == ["m"]
        assert registry.pinned("m") is None
        assert registry.resolve("m", None) == 3  # falls back to latest

    def test_corrupt_pin_file_cleared(self, tmp_path):
        registry = self._registry(tmp_path)
        (tmp_path / "registry" / "m" / "PINNED").write_text("not-a-number")
        report = registry.fsck(repair=True)
        assert report.pins_cleared == ["m"]
        registry.resolve("m", None)  # no longer raises

    def test_repair_false_only_reports(self, tmp_path):
        registry = self._registry(tmp_path)
        corrupt_file(
            tmp_path / "registry" / "m" / "v0001" / "payload.pkl",
            mode="truncate", amount=4,
        )
        report = registry.fsck(repair=False)
        assert report.damaged and not report.repaired
        assert (tmp_path / "registry" / "m" / "v0001").is_dir()
