"""ChaosFS unit behavior: scheduling, torn writes, fault injection,
deterministic corruption."""

import errno

import pytest

from repro.chaos import ChaosCrash, ChaosFS, corrupt_file
from repro.store import atomic


def _write(path, payload=b"0123456789abcdef"):
    atomic.atomic_replace_bytes(path, payload, op="demo")


class TestCrashScheduling:
    def test_no_schedule_records_steps_and_succeeds(self, tmp_path):
        target = tmp_path / "f"
        with ChaosFS(seed=0).install() as fs:
            _write(target)
        assert target.read_bytes() == b"0123456789abcdef"
        # protocol steps in order: before-write, write, before-rename,
        # rename, after-rename
        assert fs.step_ids() == [
            "demo:before-write", "demo:write", "demo:before-rename",
            "demo:rename", "demo:after-rename",
        ]

    def test_crash_at_step_raises_chaoscrash(self, tmp_path):
        with pytest.raises(ChaosCrash) as exc_info:
            with ChaosFS(seed=0).crash_at_step(2).install():
                _write(tmp_path / "f")
        assert exc_info.value.step_index == 2
        assert exc_info.value.step_id == "demo:before-rename"

    def test_crash_before_rename_leaves_old_file(self, tmp_path):
        target = tmp_path / "f"
        _write(target, b"old")
        with pytest.raises(ChaosCrash):
            with ChaosFS(seed=0).crash_at("demo:before-rename").install():
                _write(target, b"new")
        assert target.read_bytes() == b"old"

    def test_crash_after_rename_leaves_new_file(self, tmp_path):
        target = tmp_path / "f"
        _write(target, b"old")
        with pytest.raises(ChaosCrash):
            with ChaosFS(seed=0).crash_at("demo:after-rename").install():
                _write(target, b"new")
        assert target.read_bytes() == b"new"

    def test_crash_at_glob_pattern_and_occurrence(self, tmp_path):
        fs = ChaosFS(seed=0).crash_at("demo:*-rename", occurrence=2)
        with pytest.raises(ChaosCrash) as exc_info:
            with fs.install():
                _write(tmp_path / "f")
        # occurrence 1 = before-rename, occurrence 2 = after-rename
        assert exc_info.value.step_id == "demo:after-rename"

    def test_chaoscrash_is_not_an_exception(self):
        assert not issubclass(ChaosCrash, Exception)
        with pytest.raises(ChaosCrash):
            try:
                raise ChaosCrash("x", 0)
            except Exception:  # library-style handler must NOT catch it
                pytest.fail("ChaosCrash was swallowed by except Exception")

    def test_backend_is_dead_after_crash(self, tmp_path):
        fs = ChaosFS(seed=0).crash_at("demo:before-rename")
        with pytest.raises(ChaosCrash):
            with fs.install():
                _write(tmp_path / "f")
        assert fs.crashed is not None
        with pytest.raises(ChaosCrash):
            fs.checkpoint("anything:else")

    def test_install_restores_previous_backend(self, tmp_path):
        before = atomic.get_backend()
        with pytest.raises(ChaosCrash):
            with ChaosFS(seed=0).crash_at_step(0).install():
                _write(tmp_path / "f")
        assert atomic.get_backend() is before


class TestTornWrites:
    def test_crash_at_write_leaves_a_prefix(self, tmp_path):
        target = tmp_path / "f"
        payload = bytes(range(200))
        with pytest.raises(ChaosCrash):
            with ChaosFS(seed=3).crash_at("demo:write").install():
                atomic.atomic_replace_bytes(target, payload, op="demo")
        tmp = tmp_path / ".f.tmp"
        assert not target.exists()  # rename never happened
        torn = tmp.read_bytes()
        assert torn == payload[: len(torn)]
        assert len(torn) < len(payload)  # seed 3 tears strictly short

    def test_torn_write_is_seed_deterministic(self, tmp_path):
        sizes = []
        for case in range(2):
            target = tmp_path / f"f{case}"
            with pytest.raises(ChaosCrash):
                with ChaosFS(seed=42).crash_at("demo:write").install():
                    atomic.atomic_replace_bytes(
                        target, bytes(1000), op="demo"
                    )
            sizes.append((tmp_path / f".f{case}.tmp").stat().st_size)
        assert sizes[0] == sizes[1]


class TestFaultInjection:
    def test_enospc_on_write(self, tmp_path):
        fs = ChaosFS(seed=0).fail_op("demo:write", err=errno.ENOSPC)
        with pytest.raises(OSError) as exc_info:
            with fs.install():
                _write(tmp_path / "f")
        assert exc_info.value.errno == errno.ENOSPC
        assert not (tmp_path / "f").exists()

    def test_fault_count_is_consumed(self, tmp_path):
        fs = ChaosFS(seed=0).fail_op("demo:write", err=errno.EIO, count=1)
        with fs.install():
            with pytest.raises(OSError):
                _write(tmp_path / "f")
            _write(tmp_path / "f")  # second attempt goes through
        assert (tmp_path / "f").exists()

    def test_eio_on_read(self, tmp_path):
        (tmp_path / "f").write_bytes(b"data")
        fs = ChaosFS(seed=0).fail_op("demo:read-bytes", err=errno.EIO)
        with fs.install():
            with pytest.raises(OSError) as exc_info:
                atomic.read_bytes(tmp_path / "f", op="demo")
        assert exc_info.value.errno == errno.EIO

    def test_bit_flips_on_read(self, tmp_path):
        (tmp_path / "f").write_bytes(bytes(64))
        with ChaosFS(seed=1).flip_read_bits().install():
            flipped = atomic.read_bytes(tmp_path / "f", op="demo")
        assert flipped != bytes(64)
        assert len(flipped) == 64
        # exactly one bit differs
        diff = [a ^ b for a, b in zip(flipped, bytes(64))]
        assert sum(bin(d).count("1") for d in diff) == 1


class TestCorruptFile:
    def test_bitflip_changes_exactly_n_bits(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(bytes(128))
        info = corrupt_file(path, mode="bitflip", amount=3, seed=5)
        data = path.read_bytes()
        assert len(data) == 128
        assert sum(bin(b).count("1") for b in data) == 3
        assert info["mode"] == "bitflip"

    def test_bitflip_is_deterministic(self, tmp_path):
        blobs = []
        for case in range(2):
            path = tmp_path / f"f{case}"
            path.write_bytes(bytes(range(100)))
            corrupt_file(path, mode="bitflip", amount=2, seed=9)
            blobs.append(path.read_bytes())
        assert blobs[0] == blobs[1]

    def test_truncate(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(bytes(100))
        corrupt_file(path, mode="truncate", amount=30)
        assert path.stat().st_size == 70

    def test_garbage(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"real content")
        info = corrupt_file(path, mode="garbage", amount=16, seed=1)
        assert path.stat().st_size == 16
        assert info["bytes_before"] == 12

    def test_unknown_mode_rejected(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"x")
        with pytest.raises(ValueError, match="mode"):
            corrupt_file(path, mode="nuke")
