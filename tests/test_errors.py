"""Tests for the structured exception taxonomy.

The taxonomy has a compatibility contract: every new exception that
replaced a historical ``ValueError`` / ``RuntimeError`` must still be
caught by code (and tests) expecting the old type.
"""

import pytest

from repro.errors import (
    ConfigurationError,
    DataValidationError,
    DatasetFormatError,
    ExtrapolationError,
    FitDegenerateError,
    NotFittedError,
    ReproError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [
            ConfigurationError,
            DataValidationError,
            DatasetFormatError,
            ExtrapolationError,
            FitDegenerateError,
            NotFittedError,
        ],
    )
    def test_everything_is_a_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    @pytest.mark.parametrize(
        "exc_type",
        [
            ConfigurationError,
            DataValidationError,
            DatasetFormatError,
            ExtrapolationError,
            FitDegenerateError,
        ],
    )
    def test_value_error_compatibility(self, exc_type):
        assert issubclass(exc_type, ValueError)
        with pytest.raises(ValueError):
            raise exc_type("boom")

    def test_not_fitted_is_a_runtime_error(self):
        assert issubclass(NotFittedError, RuntimeError)
        with pytest.raises(RuntimeError):
            raise NotFittedError("not fitted")

    def test_format_error_is_a_validation_error(self):
        assert issubclass(DatasetFormatError, DataValidationError)

    def test_catching_repro_error_covers_all(self):
        for exc_type in (
            ConfigurationError,
            DataValidationError,
            DatasetFormatError,
            ExtrapolationError,
            FitDegenerateError,
            NotFittedError,
        ):
            with pytest.raises(ReproError):
                raise exc_type("boom")


class TestExports:
    def test_taxonomy_reexported_at_top_level(self):
        import repro

        assert repro.ReproError is ReproError
        assert repro.DataValidationError is DataValidationError
        assert repro.NotFittedError is NotFittedError

    def test_ml_base_reexports_not_fitted(self):
        from repro.ml.base import NotFittedError as MLNotFitted

        assert MLNotFitted is NotFittedError
