"""Tests for kNN, kernel methods (kernel ridge, GP), and the MLP."""

import numpy as np
import pytest

from repro.ml import (
    GaussianProcessRegressor,
    KernelRidge,
    KNeighborsRegressor,
    MLPRegressor,
    linear_kernel,
    polynomial_kernel,
    rbf_kernel,
)


class TestKNN:
    def test_k1_memorizes(self, rng):
        X = rng.normal(size=(30, 2))
        y = rng.normal(size=30)
        model = KNeighborsRegressor(n_neighbors=1).fit(X, y)
        np.testing.assert_allclose(model.predict(X), y)

    def test_uniform_average(self):
        X = np.array([[0.0], [1.0], [10.0]])
        y = np.array([0.0, 2.0, 100.0])
        model = KNeighborsRegressor(n_neighbors=2).fit(X, y)
        assert model.predict(np.array([[0.4]]))[0] == pytest.approx(1.0)

    def test_distance_weights_exact_match(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([5.0, 7.0])
        model = KNeighborsRegressor(n_neighbors=2, weights="distance").fit(X, y)
        assert model.predict(np.array([[0.0]]))[0] == pytest.approx(5.0)

    def test_distance_weights_interpolate(self):
        X = np.array([[0.0], [2.0]])
        y = np.array([0.0, 10.0])
        model = KNeighborsRegressor(n_neighbors=2, weights="distance").fit(X, y)
        # 3x closer to x=2 -> weight 3:1 toward y=10.
        assert model.predict(np.array([[1.5]]))[0] == pytest.approx(7.5)

    def test_kneighbors_sorted(self, rng):
        X = rng.normal(size=(20, 3))
        model = KNeighborsRegressor(n_neighbors=5).fit(X, rng.normal(size=20))
        dist, _ = model.kneighbors(rng.normal(size=(4, 3)))
        assert np.all(np.diff(dist, axis=1) >= 0)

    def test_k_larger_than_n_raises(self):
        with pytest.raises(ValueError):
            KNeighborsRegressor(n_neighbors=5).fit(np.ones((3, 1)), np.ones(3))

    def test_invalid_weights_raises(self):
        with pytest.raises(ValueError):
            KNeighborsRegressor(weights="quadratic").fit(
                np.ones((5, 1)), np.ones(5)
            )


class TestKernels:
    def test_rbf_diagonal_ones(self, rng):
        A = rng.normal(size=(6, 3))
        K = rbf_kernel(A, A, gamma=0.5)
        np.testing.assert_allclose(np.diag(K), 1.0, atol=1e-7)

    def test_rbf_bounds(self, rng):
        K = rbf_kernel(rng.normal(size=(5, 2)), rng.normal(size=(7, 2)), gamma=1.0)
        assert np.all(K > 0) and np.all(K <= 1.0 + 1e-12)

    def test_linear_matches_dot(self, rng):
        A, B = rng.normal(size=(4, 3)), rng.normal(size=(5, 3))
        np.testing.assert_allclose(linear_kernel(A, B), A @ B.T)

    def test_polynomial_known_value(self):
        A = np.array([[1.0, 1.0]])
        K = polynomial_kernel(A, A, degree=2, coef0=1.0)
        assert K[0, 0] == pytest.approx(9.0)

    def test_invalid_gamma_raises(self, rng):
        with pytest.raises(ValueError):
            rbf_kernel(rng.normal(size=(2, 2)), rng.normal(size=(2, 2)), gamma=0.0)


class TestKernelRidge:
    def test_interpolates_with_tiny_alpha(self, rng):
        X = rng.uniform(-1, 1, size=(40, 2))
        y = np.sin(3 * X[:, 0]) + X[:, 1]
        model = KernelRidge(alpha=1e-10, gamma=1.0).fit(X, y)
        np.testing.assert_allclose(model.predict(X), y, atol=1e-5)

    def test_generalizes_smooth_function(self, rng):
        X = rng.uniform(-1, 1, size=(200, 1))
        y = np.sin(3 * X[:, 0])
        model = KernelRidge(alpha=1e-4, gamma=5.0).fit(X, y)
        X_test = np.linspace(-0.9, 0.9, 50)[:, None]
        np.testing.assert_allclose(
            model.predict(X_test), np.sin(3 * X_test[:, 0]), atol=0.05
        )

    def test_scale_gamma_heuristic(self, rng):
        X = rng.normal(size=(30, 4))
        model = KernelRidge(gamma="scale").fit(X, rng.normal(size=30))
        expected = 1.0 / (4 * X.var())
        assert model.gamma_ == pytest.approx(expected)

    def test_linear_kernel_fits_linear_map(self, rng):
        # Linear kernel ridge has no intercept term, so use a
        # zero-intercept target.
        X = rng.normal(size=(80, 4))
        y = X @ np.array([1.0, -2.0, 0.5, 3.0])
        model = KernelRidge(alpha=1e-6, kernel="linear").fit(X, y)
        assert model.score(X, y) > 0.999

    def test_unknown_kernel_raises(self, rng):
        with pytest.raises(ValueError):
            KernelRidge(kernel="sigmoid").fit(rng.normal(size=(4, 1)), np.ones(4))


class TestGaussianProcess:
    def test_interpolates_training_points(self, rng):
        X = rng.uniform(-1, 1, size=(25, 1))
        y = np.cos(2 * X[:, 0])
        model = GaussianProcessRegressor(noise=1e-8).fit(X, y)
        np.testing.assert_allclose(model.predict(X), y, atol=1e-3)

    def test_uncertainty_grows_away_from_data(self, rng):
        X = rng.uniform(-1, 1, size=(30, 1))
        y = np.sin(X[:, 0])
        model = GaussianProcessRegressor(noise=1e-6).fit(X, y)
        _, std_near = model.predict(np.array([[0.0]]), return_std=True)
        _, std_far = model.predict(np.array([[50.0]]), return_std=True)
        assert std_far[0] > std_near[0]

    def test_length_scale_selected_by_likelihood(self, rng):
        X = np.linspace(-3, 3, 60)[:, None]
        y = np.sin(X[:, 0])  # smooth: long length scales should win
        model = GaussianProcessRegressor(
            length_scales=(0.01, 1.0, 3.0), noise=1e-4
        ).fit(X, y)
        assert model.length_scale_ >= 1.0

    def test_invalid_noise_raises(self):
        with pytest.raises(ValueError):
            GaussianProcessRegressor(noise=-1.0).fit(np.ones((3, 1)), np.ones(3))

    def test_std_nonnegative(self, rng):
        X = rng.normal(size=(20, 2))
        model = GaussianProcessRegressor().fit(X, rng.normal(size=20))
        _, std = model.predict(rng.normal(size=(10, 2)), return_std=True)
        assert np.all(std >= 0)


class TestMLP:
    def test_learns_linear_function(self, rng):
        X = rng.normal(size=(400, 3))
        y = X @ np.array([1.0, -2.0, 0.5]) + 3.0
        model = MLPRegressor(
            hidden_layer_sizes=(32,), max_iter=200, random_state=0
        ).fit(X, y)
        assert model.score(X, y) > 0.98

    def test_learns_nonlinear_function(self, nonlinear_data):
        X, y = nonlinear_data
        model = MLPRegressor(
            hidden_layer_sizes=(64, 64), max_iter=300, random_state=0
        ).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_reproducible(self, nonlinear_data):
        X, y = nonlinear_data
        a = MLPRegressor(max_iter=20, random_state=4).fit(X, y).predict(X)
        b = MLPRegressor(max_iter=20, random_state=4).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)

    def test_tanh_activation(self, nonlinear_data):
        X, y = nonlinear_data
        model = MLPRegressor(
            activation="tanh", max_iter=200, random_state=0
        ).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_early_stopping_stops_and_restores(self, rng):
        X = rng.normal(size=(200, 2))
        y = rng.normal(size=200)  # pure noise: validation should stall
        model = MLPRegressor(
            max_iter=500,
            early_stopping=True,
            n_iter_no_change=5,
            random_state=0,
        ).fit(X, y)
        assert len(model.loss_curve_) < 500

    def test_loss_curve_decreases_on_learnable_problem(self, nonlinear_data):
        X, y = nonlinear_data
        model = MLPRegressor(max_iter=60, random_state=0).fit(X, y)
        assert model.loss_curve_[-1] < model.loss_curve_[0]

    def test_invalid_params_raise(self):
        X, y = np.ones((4, 1)), np.ones(4)
        with pytest.raises(ValueError):
            MLPRegressor(max_iter=0).fit(X, y)
        with pytest.raises(ValueError):
            MLPRegressor(learning_rate=0).fit(X, y)
        with pytest.raises(ValueError):
            MLPRegressor(hidden_layer_sizes=(0,)).fit(X, y)
        with pytest.raises(ValueError):
            MLPRegressor(activation="gelu").fit(X, y)

    def test_predictions_in_original_units(self, rng):
        X = rng.normal(size=(300, 1))
        y = 1000.0 + 500.0 * X[:, 0]
        model = MLPRegressor(max_iter=200, random_state=0).fit(X, y)
        pred = model.predict(X)
        assert abs(pred.mean() - 1000.0) < 50.0
