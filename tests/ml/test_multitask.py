"""Tests for the multitask lasso (block coordinate descent)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import Lasso, MultiTaskLasso, MultiTaskLassoCV, multitask_alpha_max


def group_kkt_violation(X, Y, W_tasks_by_feat, intercept, alpha):
    """Max violation of the L2,1 group KKT conditions.

    W is given as (n_features, n_tasks).  For active rows the correlation
    block must equal alpha * w / ||w||; for zero rows its norm must be
    <= alpha.
    """
    n = X.shape[0]
    R = Y - X @ W_tasks_by_feat - intercept
    corr = X.T @ R / n  # (n_features, n_tasks)
    viol = 0.0
    for j in range(W_tasks_by_feat.shape[0]):
        wj = W_tasks_by_feat[j]
        nj = np.linalg.norm(wj)
        cj = corr[j]
        if nj > 0:
            viol = max(viol, float(np.max(np.abs(cj - alpha * wj / nj))))
        else:
            viol = max(viol, max(0.0, float(np.linalg.norm(cj)) - alpha))
    return viol


@pytest.fixture
def multitask_data(rng):
    X = rng.normal(size=(150, 8))
    W = np.zeros((8, 3))
    W[0] = [2.0, 1.0, -1.0]
    W[3] = [-1.0, 0.5, 2.0]
    Y = X @ W + np.array([1.0, 0.0, -1.0]) + 0.01 * rng.normal(size=(150, 3))
    return X, Y, W


class TestMultiTaskLassoOptimality:
    def test_group_kkt_conditions(self, multitask_data):
        X, Y, _ = multitask_data
        alpha = 0.05
        model = MultiTaskLasso(alpha=alpha, tol=1e-10, max_iter=5000).fit(X, Y)
        W = model.coef_.T
        assert group_kkt_violation(X, Y, W, model.intercept_, alpha) < 1e-6

    def test_duality_gap_small(self, multitask_data):
        X, Y, _ = multitask_data
        model = MultiTaskLasso(alpha=0.05, tol=1e-8).fit(X, Y)
        assert model.dual_gap_ < 1e-4

    @given(st.floats(0.01, 0.5), st.integers(0, 4))
    @settings(max_examples=15, deadline=None)
    def test_kkt_property_random(self, alpha, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(30, 5))
        Y = rng.normal(size=(30, 3))
        model = MultiTaskLasso(alpha=alpha, tol=1e-10, max_iter=10000).fit(X, Y)
        assert group_kkt_violation(X, Y, model.coef_.T, model.intercept_, alpha) < 1e-5


class TestRowSparsity:
    def test_support_shared_across_tasks(self, multitask_data):
        X, Y, _ = multitask_data
        model = MultiTaskLasso(alpha=0.05).fit(X, Y)
        active_per_task = [set(np.nonzero(model.coef_[t])[0]) for t in range(3)]
        assert active_per_task[0] == active_per_task[1] == active_per_task[2]

    def test_recovers_true_rows(self, multitask_data):
        X, Y, W = multitask_data
        model = MultiTaskLasso(alpha=0.05).fit(X, Y)
        assert set(np.nonzero(model.support_)[0]) == {0, 3}

    def test_alpha_max_boundary(self, multitask_data):
        X, Y, _ = multitask_data
        a_max = multitask_alpha_max(X, Y)
        assert not MultiTaskLasso(alpha=a_max * 1.01).fit(X, Y).support_.any()
        assert MultiTaskLasso(alpha=a_max * 0.9).fit(X, Y).support_.any()

    def test_single_task_matches_lasso(self, linear_data):
        X, y, _ = linear_data
        alpha = 0.05
        mt = MultiTaskLasso(alpha=alpha, tol=1e-10).fit(X, y.reshape(-1, 1))
        la = Lasso(alpha=alpha, tol=1e-10).fit(X, y)
        np.testing.assert_allclose(mt.coef_[0], la.coef_, atol=1e-6)


class TestMultiTaskBehavior:
    def test_predict_shape(self, multitask_data):
        X, Y, _ = multitask_data
        model = MultiTaskLasso(alpha=0.01).fit(X, Y)
        assert model.predict(X).shape == Y.shape

    def test_accuracy_on_shared_support_problem(self, multitask_data):
        X, Y, _ = multitask_data
        model = MultiTaskLasso(alpha=0.01).fit(X, Y)
        resid = Y - model.predict(X)
        assert np.sqrt(np.mean(resid**2)) < 0.1

    def test_1d_target_promoted(self, linear_data):
        X, y, _ = linear_data
        model = MultiTaskLasso(alpha=0.1).fit(X, y)
        assert model.coef_.shape == (1, X.shape[1])

    def test_warm_start(self, multitask_data):
        X, Y, _ = multitask_data
        model = MultiTaskLasso(alpha=0.05, warm_start=True).fit(X, Y)
        first = model.n_iter_
        model.fit(X, Y)
        assert model.n_iter_ <= first

    def test_negative_alpha_raises(self):
        with pytest.raises(ValueError):
            MultiTaskLasso(alpha=-1).fit(np.ones((3, 2)), np.ones((3, 2)))


class TestMultiTaskLassoCV:
    def test_selects_alpha_and_predicts(self, multitask_data):
        X, Y, _ = multitask_data
        model = MultiTaskLassoCV(cv=3, n_alphas=15).fit(X, Y)
        assert model.alpha_ > 0
        assert set(np.nonzero(model.support_)[0]) == {0, 3}

    def test_mse_path_shape(self, multitask_data):
        X, Y, _ = multitask_data
        model = MultiTaskLassoCV(cv=4, n_alphas=6).fit(X, Y)
        assert model.mse_path_.shape == (6, 4)
