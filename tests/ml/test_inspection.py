"""Tests for permutation feature importance."""

import numpy as np
import pytest

from repro.ml import (
    LinearRegression,
    RandomForestRegressor,
    permutation_importance,
)


class TestPermutationImportance:
    def test_identifies_relevant_features(self, rng):
        X = rng.normal(size=(300, 4))
        y = 5.0 * X[:, 0] + 0.1 * X[:, 2]  # x0 dominant, x2 weak
        model = LinearRegression().fit(X, y)
        imp = permutation_importance(model, X, y, random_state=0)
        assert np.argmax(imp.importances_mean) == 0
        # Irrelevant features get (near-)zero importance.
        assert abs(imp.importances_mean[1]) < 0.05
        assert abs(imp.importances_mean[3]) < 0.05

    def test_ranking_sorted(self, rng):
        X = rng.normal(size=(200, 3))
        y = 2.0 * X[:, 1]
        model = LinearRegression().fit(X, y)
        imp = permutation_importance(
            model, X, y, feature_names=["a", "b", "c"], random_state=0
        )
        ranking = imp.ranking()
        assert ranking[0][0] == "b"
        values = [v for _, v in ranking]
        assert values == sorted(values, reverse=True)

    def test_baseline_score_reported(self, nonlinear_data):
        X, y = nonlinear_data
        model = RandomForestRegressor(n_estimators=20, random_state=0).fit(X, y)
        imp = permutation_importance(model, X, y, n_repeats=3, random_state=0)
        assert imp.baseline_score > 0.9

    def test_X_not_mutated(self, rng):
        X = rng.normal(size=(50, 2))
        y = X[:, 0]
        model = LinearRegression().fit(X, y)
        X_copy = X.copy()
        permutation_importance(model, X, y, random_state=0)
        np.testing.assert_array_equal(X, X_copy)

    def test_custom_scorer(self, rng):
        X = rng.normal(size=(100, 2))
        y = X[:, 0]
        model = LinearRegression().fit(X, y)
        neg_mse = lambda yt, yp: -float(np.mean((yt - yp) ** 2))
        imp = permutation_importance(model, X, y, scorer=neg_mse,
                                     random_state=0)
        assert imp.importances_mean[0] > imp.importances_mean[1]

    def test_invalid_args(self, rng):
        X = rng.normal(size=(20, 2))
        y = X[:, 0]
        model = LinearRegression().fit(X, y)
        with pytest.raises(ValueError):
            permutation_importance(model, X, y, n_repeats=0)
        with pytest.raises(ValueError):
            permutation_importance(model, X, y, feature_names=["only-one"])

    def test_reproducible(self, rng):
        X = rng.normal(size=(80, 3))
        y = X @ np.array([1.0, 2.0, 3.0])
        model = LinearRegression().fit(X, y)
        a = permutation_importance(model, X, y, random_state=5)
        b = permutation_importance(model, X, y, random_state=5)
        np.testing.assert_array_equal(a.importances_mean, b.importances_mean)
