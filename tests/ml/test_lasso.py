"""Tests for the coordinate-descent lasso / elastic net.

The KKT and duality-gap tests are machine-checkable optimality proofs of
the solver, not just behavioral checks.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import ElasticNet, Lasso, LassoCV, LinearRegression, lasso_path
from repro.ml.linear.coordinate_descent import alpha_max


def kkt_violation(X, y, coef, intercept, alpha):
    """Max violation of the lasso KKT conditions at (coef, intercept)."""
    n = X.shape[0]
    r = y - X @ coef - intercept
    corr = X.T @ r / n
    viol = 0.0
    for j in range(len(coef)):
        if coef[j] != 0.0:
            viol = max(viol, abs(corr[j] - alpha * np.sign(coef[j])))
        else:
            viol = max(viol, max(0.0, abs(corr[j]) - alpha))
    return viol


class TestLassoOptimality:
    def test_kkt_conditions_hold(self, linear_data):
        X, y, _ = linear_data
        alpha = 0.05
        model = Lasso(alpha=alpha, tol=1e-10, max_iter=5000).fit(X, y)
        assert kkt_violation(X, y, model.coef_, model.intercept_, alpha) < 1e-6

    def test_duality_gap_small(self, linear_data):
        X, y, _ = linear_data
        model = Lasso(alpha=0.02, tol=1e-8).fit(X, y)
        assert model.dual_gap_ < 1e-4

    @given(st.floats(0.005, 0.5), st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_kkt_property_random_problems(self, alpha, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(40, 6))
        y = rng.normal(size=40)
        model = Lasso(alpha=alpha, tol=1e-10, max_iter=10000).fit(X, y)
        assert kkt_violation(X, y, model.coef_, model.intercept_, alpha) < 1e-5

    def test_alpha_above_max_gives_zero(self, linear_data):
        X, y, _ = linear_data
        a_max = alpha_max(X, y)
        model = Lasso(alpha=a_max * 1.01).fit(X, y)
        np.testing.assert_array_equal(model.coef_, 0.0)
        assert model.intercept_ == pytest.approx(y.mean())

    def test_alpha_below_max_gives_nonzero(self, linear_data):
        X, y, _ = linear_data
        a_max = alpha_max(X, y)
        model = Lasso(alpha=a_max * 0.9).fit(X, y)
        assert np.any(model.coef_ != 0.0)


class TestLassoBehavior:
    def test_recovers_true_support(self, linear_data):
        X, y, w = linear_data
        model = Lasso(alpha=0.05).fit(X, y)
        assert set(np.nonzero(model.coef_)[0]) == set(np.nonzero(w)[0])

    def test_sparsity_monotone_in_alpha(self, linear_data):
        X, y, _ = linear_data
        counts = [
            int(np.sum(Lasso(alpha=a).fit(X, y).coef_ != 0.0))
            for a in [0.001, 0.05, 0.5, 2.0]
        ]
        assert counts == sorted(counts, reverse=True)

    def test_alpha_zero_close_to_ols(self, linear_data):
        X, y, _ = linear_data
        la = Lasso(alpha=1e-10, max_iter=20000, tol=1e-12).fit(X, y)
        ols = LinearRegression().fit(X, y)
        np.testing.assert_allclose(la.coef_, ols.coef_, atol=1e-4)

    def test_warm_start_reuses_solution(self, linear_data):
        X, y, _ = linear_data
        model = Lasso(alpha=0.1, warm_start=True).fit(X, y)
        first_iters = model.n_iter_
        model.fit(X, y)  # identical problem: should converge immediately
        assert model.n_iter_ <= first_iters

    def test_negative_alpha_raises(self):
        with pytest.raises(ValueError):
            Lasso(alpha=-0.1).fit(np.ones((3, 1)), np.ones(3))

    def test_constant_feature_gets_zero_weight(self, rng):
        X = np.column_stack([np.ones(50), rng.normal(size=50)])
        y = X[:, 1] * 2.0
        model = Lasso(alpha=0.01).fit(X, y)
        assert model.coef_[0] == 0.0


class TestElasticNet:
    def test_l1_ratio_one_equals_lasso(self, linear_data):
        X, y, _ = linear_data
        en = ElasticNet(alpha=0.05, l1_ratio=1.0).fit(X, y)
        la = Lasso(alpha=0.05).fit(X, y)
        np.testing.assert_allclose(en.coef_, la.coef_, atol=1e-10)

    def test_l2_component_shrinks_more_densely(self, linear_data):
        X, y, _ = linear_data
        en = ElasticNet(alpha=0.1, l1_ratio=0.3).fit(X, y)
        la = Lasso(alpha=0.1).fit(X, y)
        # Elastic net keeps at least as many features active.
        assert np.sum(en.coef_ != 0) >= np.sum(la.coef_ != 0)

    def test_invalid_l1_ratio_raises(self):
        with pytest.raises(ValueError):
            ElasticNet(l1_ratio=1.5).fit(np.ones((3, 1)), np.ones(3))


class TestLassoPath:
    def test_path_shapes_and_order(self, linear_data):
        X, y, _ = linear_data
        alphas, coefs = lasso_path(X, y, n_alphas=10)
        assert coefs.shape == (10, X.shape[1])
        assert np.all(np.diff(alphas) < 0)  # decreasing

    def test_first_point_all_zero(self, linear_data):
        X, y, _ = linear_data
        _, coefs = lasso_path(X, y, n_alphas=5)
        np.testing.assert_allclose(coefs[0], 0.0, atol=1e-8)

    def test_support_grows_along_path(self, linear_data):
        X, y, _ = linear_data
        _, coefs = lasso_path(X, y, n_alphas=20)
        sizes = (coefs != 0).sum(axis=1)
        assert sizes[-1] >= sizes[0]

    def test_custom_alphas_sorted_internally(self, linear_data):
        X, y, _ = linear_data
        alphas, _ = lasso_path(X, y, alphas=np.array([0.01, 1.0, 0.1]))
        assert list(alphas) == sorted(alphas, reverse=True)


class TestLassoCV:
    def test_finds_reasonable_alpha(self, linear_data):
        X, y, _ = linear_data
        model = LassoCV(cv=4, n_alphas=20).fit(X, y)
        # Low-noise data: CV must not over-regularize.
        assert model.alpha_ < 0.5 * alpha_max(X, y)
        assert model.score(X, y) > 0.99

    def test_mse_path_shape(self, linear_data):
        X, y, _ = linear_data
        model = LassoCV(cv=3, n_alphas=7).fit(X, y)
        assert model.mse_path_.shape == (7, 3)

    def test_predictions_match_inner_model(self, linear_data):
        X, y, _ = linear_data
        model = LassoCV(cv=3).fit(X, y)
        direct = Lasso(alpha=model.alpha_).fit(X, y)
        np.testing.assert_allclose(model.predict(X), direct.predict(X), atol=1e-8)
