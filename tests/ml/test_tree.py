"""Tests for the CART regression tree and its flat-array representation."""

import numpy as np
import pytest

from repro.ml import DecisionTreeRegressor
from repro.ml.tree.decision_tree import _best_split_for_feature


class TestSplitter:
    def test_finds_obvious_split(self):
        values = np.array([1.0, 2.0, 3.0, 10.0, 11.0, 12.0])
        y = np.array([0.0, 0.0, 0.0, 5.0, 5.0, 5.0])
        decrease, threshold = _best_split_for_feature(values, y, 1)
        assert 3.0 < threshold <= 10.0
        # Splitting removes all SSE: decrease equals total SSE.
        assert decrease == pytest.approx(np.sum((y - y.mean()) ** 2))

    def test_constant_feature_no_split(self):
        decrease, threshold = _best_split_for_feature(
            np.ones(5), np.arange(5.0), 1
        )
        assert decrease == -np.inf and np.isnan(threshold)

    def test_min_samples_leaf_respected(self):
        values = np.arange(6.0)
        y = np.array([0.0, 0, 0, 0, 0, 100.0])
        # With leaf size 2 the best cut (isolating the last point) is
        # forbidden; the returned split must leave >= 2 on each side.
        _, threshold = _best_split_for_feature(values, y, 2)
        n_left = int(np.sum(values <= threshold))
        assert 2 <= n_left <= 4

    def test_ties_stay_together(self):
        values = np.array([1.0, 1.0, 1.0, 2.0])
        y = np.array([0.0, 5.0, 10.0, 20.0])
        _, threshold = _best_split_for_feature(values, y, 1)
        assert 1.0 < threshold <= 2.0  # cannot split between equal values


class TestDecisionTree:
    def test_fits_training_data_exactly_when_unrestricted(self, rng):
        X = rng.normal(size=(50, 3))
        y = rng.normal(size=50)
        model = DecisionTreeRegressor().fit(X, y)
        np.testing.assert_allclose(model.predict(X), y, atol=1e-12)

    def test_max_depth_limits_tree(self, nonlinear_data):
        X, y = nonlinear_data
        model = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert model.get_depth() <= 3
        assert model.get_n_leaves() <= 8

    def test_depth_one_is_stump(self, nonlinear_data):
        X, y = nonlinear_data
        model = DecisionTreeRegressor(max_depth=1).fit(X, y)
        assert model.get_n_leaves() <= 2

    def test_min_samples_leaf(self, nonlinear_data):
        X, y = nonlinear_data
        model = DecisionTreeRegressor(min_samples_leaf=20).fit(X, y)
        leaves = model.tree_.n_node_samples[model.tree_.feature == -1]
        assert np.all(leaves >= 20)

    def test_min_samples_split(self, nonlinear_data):
        X, y = nonlinear_data
        model = DecisionTreeRegressor(min_samples_split=50).fit(X, y)
        internal = model.tree_.n_node_samples[model.tree_.feature != -1]
        assert np.all(internal >= 50)

    def test_constant_target_single_leaf(self, rng):
        X = rng.normal(size=(20, 2))
        model = DecisionTreeRegressor().fit(X, np.full(20, 3.0))
        assert model.get_n_leaves() == 1
        np.testing.assert_allclose(model.predict(X), 3.0)

    def test_prediction_is_leaf_mean(self, rng):
        X = rng.normal(size=(100, 2))
        y = rng.normal(size=100)
        model = DecisionTreeRegressor(max_depth=2).fit(X, y)
        preds = model.predict(X)
        for value in np.unique(preds):
            members = preds == value
            assert y[members].mean() == pytest.approx(value)

    def test_feature_importances_sum_to_one(self, nonlinear_data):
        X, y = nonlinear_data
        model = DecisionTreeRegressor(max_depth=5).fit(X, y)
        assert model.feature_importances_.sum() == pytest.approx(1.0)

    def test_irrelevant_feature_zero_importance(self, rng):
        X = np.column_stack([rng.normal(size=200), np.zeros(200)])
        y = (X[:, 0] > 0).astype(float)
        model = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert model.feature_importances_[1] == 0.0

    def test_deterministic_given_seed(self, nonlinear_data):
        X, y = nonlinear_data
        p1 = DecisionTreeRegressor(max_features=2, random_state=3).fit(X, y).predict(X)
        p2 = DecisionTreeRegressor(max_features=2, random_state=3).fit(X, y).predict(X)
        np.testing.assert_array_equal(p1, p2)

    def test_min_impurity_decrease_prunes(self, nonlinear_data):
        X, y = nonlinear_data
        full = DecisionTreeRegressor().fit(X, y)
        pruned = DecisionTreeRegressor(min_impurity_decrease=0.05).fit(X, y)
        assert pruned.get_n_leaves() < full.get_n_leaves()

    def test_sample_indices_bootstrap_view(self, rng):
        X = rng.normal(size=(30, 2))
        y = rng.normal(size=30)
        idx = np.array([0, 1, 2, 3, 4] * 6)
        model = DecisionTreeRegressor().fit(X, y, sample_indices=idx)
        # Only the first five samples were visible to the tree.
        np.testing.assert_allclose(model.predict(X[:5]), y[:5], atol=1e-12)

    def test_invalid_params_raise(self):
        X, y = np.ones((4, 1)), np.ones(4)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0).fit(X, y)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_split=1).fit(X, y)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0).fit(X, y)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_features=0).fit(X, y)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_features="bogus").fit(X, y)

    def test_max_features_strings(self, nonlinear_data):
        X, y = nonlinear_data
        for mf in ["sqrt", "log2", 0.5, 2]:
            model = DecisionTreeRegressor(max_features=mf, random_state=0).fit(X, y)
            assert model.score(X, y) > 0.5


class TestTreeArrays:
    def test_node_bookkeeping_consistent(self, nonlinear_data):
        X, y = nonlinear_data
        tree = DecisionTreeRegressor(max_depth=4).fit(X, y).tree_
        internal = tree.feature != -1
        # Children of every internal node partition its samples.
        left_n = tree.n_node_samples[tree.left[internal]]
        right_n = tree.n_node_samples[tree.right[internal]]
        np.testing.assert_array_equal(
            left_n + right_n, tree.n_node_samples[internal]
        )

    def test_decision_path_depth_bounded(self, nonlinear_data):
        X, y = nonlinear_data
        model = DecisionTreeRegressor(max_depth=4).fit(X, y)
        depths = model.tree_.decision_path_depth(X)
        assert depths.max() <= 4
        assert depths.min() >= 0
