"""Tests for CV splitters, train/test split, scorers, and grid search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    GridSearchCV,
    KFold,
    ParameterGrid,
    Ridge,
    cross_val_predict,
    cross_val_score,
    train_test_split,
)
from repro.ml.model_selection import get_scorer


class TestKFold:
    @given(st.integers(5, 60), st.integers(2, 5), st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_partition_property(self, n, k, shuffle):
        if n < k:
            return
        kf = KFold(n_splits=k, shuffle=shuffle, random_state=0)
        X = np.zeros(n)
        all_test = np.concatenate([te for _, te in kf.split(X)])
        assert sorted(all_test.tolist()) == list(range(n))

    def test_fold_sizes_balanced(self):
        kf = KFold(n_splits=3)
        sizes = [len(te) for _, te in kf.split(np.zeros(10))]
        assert sorted(sizes) == [3, 3, 4]

    def test_train_test_disjoint(self):
        kf = KFold(n_splits=4, shuffle=True, random_state=1)
        for tr, te in kf.split(np.zeros(20)):
            assert not set(tr) & set(te)

    def test_shuffle_changes_order(self):
        a = [te.tolist() for _, te in KFold(3).split(np.zeros(9))]
        b = [
            te.tolist()
            for _, te in KFold(3, shuffle=True, random_state=0).split(np.zeros(9))
        ]
        assert a != b

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(np.zeros(3)))

    def test_single_split_raises(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)


class TestTrainTestSplit:
    def test_sizes(self, rng):
        X = rng.normal(size=(40, 2))
        y = rng.normal(size=40)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.25)
        assert len(X_te) == 10 and len(X_tr) == 30
        assert len(y_te) == 10 and len(y_tr) == 30

    def test_rows_stay_aligned(self, rng):
        X = np.arange(20).reshape(-1, 1).astype(float)
        y = np.arange(20).astype(float)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, random_state=0)
        np.testing.assert_array_equal(X_tr[:, 0], y_tr)
        np.testing.assert_array_equal(X_te[:, 0], y_te)

    def test_reproducible(self, rng):
        X = rng.normal(size=(30, 1))
        a = train_test_split(X, random_state=3)[1]
        b = train_test_split(X, random_state=3)[1]
        np.testing.assert_array_equal(a, b)

    def test_invalid_test_size_raises(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((5, 1)), test_size=1.5)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((5, 1)), np.zeros(4))


class TestScorers:
    def test_known_names(self):
        for name in ["r2", "neg_mean_squared_error", "neg_mape"]:
            assert callable(get_scorer(name))

    def test_callable_passthrough(self):
        fn = lambda a, b: 1.0
        assert get_scorer(fn) is fn

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="Unknown scoring"):
            get_scorer("accuracy")

    def test_neg_metrics_are_negative(self):
        s = get_scorer("neg_mean_squared_error")
        assert s(np.array([1.0, 2.0]), np.array([2.0, 3.0])) < 0


class TestCrossVal:
    def test_scores_shape(self, linear_data):
        X, y, _ = linear_data
        scores = cross_val_score(Ridge(alpha=0.1), X, y, cv=5)
        assert scores.shape == (5,)
        assert scores.mean() > 0.99

    def test_estimator_not_mutated(self, linear_data):
        X, y, _ = linear_data
        model = Ridge()
        cross_val_score(model, X, y, cv=3)
        assert not hasattr(model, "coef_")

    def test_cross_val_predict_covers_all(self, linear_data):
        X, y, _ = linear_data
        preds = cross_val_predict(Ridge(alpha=0.1), X, y, cv=4)
        assert preds.shape == y.shape
        assert np.corrcoef(preds, y)[0, 1] > 0.99

    def test_custom_splitter_accepted(self, linear_data):
        X, y, _ = linear_data
        kf = KFold(n_splits=3, shuffle=True, random_state=0)
        scores = cross_val_score(Ridge(), X, y, cv=kf)
        assert len(scores) == 3


class TestParameterGrid:
    def test_cartesian_product(self):
        grid = ParameterGrid({"a": [1, 2], "b": ["x", "y", "z"]})
        combos = list(grid)
        assert len(combos) == len(grid) == 6
        assert {"a": 1, "b": "z"} in combos

    def test_empty_grid_raises(self):
        with pytest.raises(ValueError):
            ParameterGrid({})

    def test_empty_values_raise(self):
        with pytest.raises(ValueError):
            ParameterGrid({"a": []})


class TestGridSearchCV:
    def test_picks_best_alpha(self, rng):
        # Noisy overparameterized problem: moderate ridge wins over
        # near-zero and huge alphas.
        X = rng.normal(size=(60, 30))
        w = rng.normal(size=30)
        y = X @ w + 5.0 * rng.normal(size=60)
        gs = GridSearchCV(Ridge(), {"alpha": [1e-8, 10.0, 1e6]}, cv=4).fit(X, y)
        assert gs.best_params_["alpha"] == 10.0

    def test_refits_on_full_data(self, linear_data):
        X, y, _ = linear_data
        gs = GridSearchCV(Ridge(), {"alpha": [0.1, 1.0]}, cv=3).fit(X, y)
        direct = Ridge(alpha=gs.best_params_["alpha"]).fit(X, y)
        np.testing.assert_allclose(gs.predict(X), direct.predict(X), atol=1e-10)

    def test_cv_results_complete(self, linear_data):
        X, y, _ = linear_data
        gs = GridSearchCV(Ridge(), {"alpha": [0.1, 1.0, 10.0]}, cv=3).fit(X, y)
        assert len(gs.cv_results_) == 3
        assert all("mean_score" in r for r in gs.cv_results_)

    def test_score_uses_configured_scorer(self, linear_data):
        X, y, _ = linear_data
        gs = GridSearchCV(
            Ridge(), {"alpha": [0.1]}, cv=3, scoring="neg_mean_squared_error"
        ).fit(X, y)
        assert gs.score(X, y) <= 0.0
