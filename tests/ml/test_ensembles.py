"""Tests for random forest and gradient boosting."""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    RandomForestRegressor,
)
from repro.ml.model_selection import cross_val_score


class TestRandomForest:
    def test_reduces_cv_error_vs_single_deep_tree(self, nonlinear_data):
        X, y = nonlinear_data
        tree_cv = cross_val_score(
            DecisionTreeRegressor(random_state=0), X, y, cv=4
        ).mean()
        rf_cv = cross_val_score(
            RandomForestRegressor(n_estimators=40, random_state=0), X, y, cv=4
        ).mean()
        assert rf_cv > tree_cv

    def test_reproducible_with_seed(self, nonlinear_data):
        X, y = nonlinear_data
        a = RandomForestRegressor(n_estimators=10, random_state=5).fit(X, y)
        b = RandomForestRegressor(n_estimators=10, random_state=5).fit(X, y)
        np.testing.assert_array_equal(a.predict(X), b.predict(X))

    def test_different_seeds_differ(self, nonlinear_data):
        X, y = nonlinear_data
        a = RandomForestRegressor(n_estimators=10, random_state=1).fit(X, y)
        b = RandomForestRegressor(n_estimators=10, random_state=2).fit(X, y)
        assert not np.array_equal(a.predict(X), b.predict(X))

    def test_prediction_is_mean_of_trees(self, nonlinear_data):
        X, y = nonlinear_data
        model = RandomForestRegressor(n_estimators=7, random_state=0).fit(X, y)
        np.testing.assert_allclose(
            model.predict(X[:10]), model.predict_all(X[:10]).mean(axis=0)
        )

    def test_oob_score_reasonable(self, nonlinear_data):
        X, y = nonlinear_data
        model = RandomForestRegressor(
            n_estimators=60, oob_score=True, random_state=0
        ).fit(X, y)
        assert 0.5 < model.oob_score_ <= 1.0
        covered = ~np.isnan(model.oob_prediction_)
        assert covered.mean() > 0.95

    def test_oob_without_bootstrap_raises(self):
        with pytest.raises(ValueError, match="bootstrap"):
            RandomForestRegressor(bootstrap=False, oob_score=True).fit(
                np.ones((10, 1)), np.ones(10)
            )

    def test_no_bootstrap_full_fit(self, nonlinear_data):
        X, y = nonlinear_data
        model = RandomForestRegressor(
            n_estimators=5, bootstrap=False, random_state=0
        ).fit(X, y)
        # Every tree sees all data and is unrestricted -> fits exactly.
        np.testing.assert_allclose(model.predict(X), y, atol=1e-10)

    def test_prediction_std_nonnegative_and_varies(self, nonlinear_data):
        X, y = nonlinear_data
        model = RandomForestRegressor(n_estimators=20, random_state=0).fit(X, y)
        std = model.prediction_std(X)
        assert np.all(std >= 0)
        assert std.max() > 0

    def test_feature_importances_normalized(self, nonlinear_data):
        X, y = nonlinear_data
        model = RandomForestRegressor(n_estimators=15, random_state=0).fit(X, y)
        assert model.feature_importances_.sum() == pytest.approx(1.0)

    def test_zero_estimators_raises(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0).fit(np.ones((5, 1)), np.ones(5))


class TestGradientBoosting:
    def test_train_loss_decreases(self, nonlinear_data):
        X, y = nonlinear_data
        model = GradientBoostingRegressor(
            n_estimators=60, learning_rate=0.1, random_state=0
        ).fit(X, y)
        losses = np.asarray(model.train_score_)
        assert losses[-1] < losses[0]
        # Overall trend is downward (allow tiny local bumps with subsample).
        assert losses[-1] < 0.5 * losses[0]

    def test_staged_predict_converges_to_predict(self, nonlinear_data):
        X, y = nonlinear_data
        model = GradientBoostingRegressor(n_estimators=25, random_state=0).fit(X, y)
        *_, last = model.staged_predict(X)
        np.testing.assert_allclose(last, model.predict(X), atol=1e-12)

    def test_single_stage_is_shrunk_tree(self, nonlinear_data):
        X, y = nonlinear_data
        lr = 0.5
        model = GradientBoostingRegressor(
            n_estimators=1, learning_rate=lr, max_depth=2, random_state=0
        ).fit(X, y)
        tree = DecisionTreeRegressor(max_depth=2, random_state=0).fit(
            X, y - y.mean()
        )
        np.testing.assert_allclose(
            model.predict(X), y.mean() + lr * tree.predict(X), atol=1e-10
        )

    def test_more_stages_fit_better_in_sample(self, nonlinear_data):
        X, y = nonlinear_data
        small = GradientBoostingRegressor(n_estimators=10, random_state=0).fit(X, y)
        big = GradientBoostingRegressor(n_estimators=100, random_state=0).fit(X, y)
        assert big.score(X, y) > small.score(X, y)

    def test_subsample_stochastic(self, nonlinear_data):
        X, y = nonlinear_data
        model = GradientBoostingRegressor(
            n_estimators=30, subsample=0.5, random_state=0
        ).fit(X, y)
        assert model.score(X, y) > 0.8

    def test_invalid_params_raise(self):
        X, y = np.ones((5, 1)), np.ones(5)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(learning_rate=0.0).fit(X, y)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(subsample=0.0).fit(X, y)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(n_estimators=0).fit(X, y)

    def test_reproducible(self, nonlinear_data):
        X, y = nonlinear_data
        a = GradientBoostingRegressor(
            n_estimators=15, subsample=0.7, random_state=9
        ).fit(X, y)
        b = GradientBoostingRegressor(
            n_estimators=15, subsample=0.7, random_state=9
        ).fit(X, y)
        np.testing.assert_array_equal(a.predict(X), b.predict(X))
