"""Tests for OLS and ridge regression."""

import numpy as np
import pytest

from repro.ml import LinearRegression, Ridge, RidgeCV


class TestLinearRegression:
    def test_exact_recovery_noise_free(self, rng):
        X = rng.normal(size=(50, 4))
        w = np.array([1.0, -2.0, 0.5, 3.0])
        y = X @ w + 7.0
        model = LinearRegression().fit(X, y)
        np.testing.assert_allclose(model.coef_, w, atol=1e-10)
        assert model.intercept_ == pytest.approx(7.0, abs=1e-10)

    def test_no_intercept(self, rng):
        X = rng.normal(size=(50, 2))
        y = X @ np.array([2.0, -1.0])
        model = LinearRegression(fit_intercept=False).fit(X, y)
        assert model.intercept_ == 0.0
        np.testing.assert_allclose(model.coef_, [2.0, -1.0], atol=1e-10)

    def test_rank_deficient_uses_min_norm(self):
        # Two identical columns: infinitely many solutions; lstsq picks
        # the minimum-norm one, splitting the weight evenly.
        X = np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        y = np.array([2.0, 4.0, 6.0])
        model = LinearRegression(fit_intercept=False).fit(X, y)
        np.testing.assert_allclose(model.coef_, [1.0, 1.0], atol=1e-10)
        assert model.rank_ == 1

    def test_multi_output(self, rng):
        X = rng.normal(size=(40, 3))
        W = rng.normal(size=(3, 2))
        Y = X @ W + np.array([1.0, -1.0])
        model = LinearRegression().fit(X, Y)
        assert model.coef_.shape == (2, 3)
        np.testing.assert_allclose(model.predict(X), Y, atol=1e-10)

    def test_sample_weight_zero_ignores_rows(self, rng):
        X = rng.normal(size=(30, 2))
        y = X @ np.array([1.0, 2.0])
        # Corrupt 10 rows but give them zero weight.
        y2 = y.copy()
        y2[:10] += 100.0
        w = np.ones(30)
        w[:10] = 0.0
        model = LinearRegression().fit(X, y2, sample_weight=w)
        np.testing.assert_allclose(model.coef_, [1.0, 2.0], atol=1e-8)

    def test_negative_sample_weight_raises(self, rng):
        X = rng.normal(size=(5, 2))
        with pytest.raises(ValueError):
            LinearRegression().fit(X, np.ones(5), sample_weight=-np.ones(5))

    def test_wrong_feature_count_predict_raises(self, linear_data):
        X, y, _ = linear_data
        model = LinearRegression().fit(X, y)
        with pytest.raises(ValueError, match="features"):
            model.predict(X[:, :3])

    def test_score_r2(self, linear_data):
        X, y, _ = linear_data
        assert LinearRegression().fit(X, y).score(X, y) > 0.999


class TestRidge:
    def test_alpha_zero_matches_ols(self, linear_data):
        X, y, _ = linear_data
        r = Ridge(alpha=0.0).fit(X, y)
        o = LinearRegression().fit(X, y)
        np.testing.assert_allclose(r.coef_, o.coef_, atol=1e-8)

    def test_shrinkage_monotone_in_alpha(self, linear_data):
        X, y, _ = linear_data
        norms = [
            np.linalg.norm(Ridge(alpha=a).fit(X, y).coef_)
            for a in [0.0, 1.0, 10.0, 100.0]
        ]
        assert norms == sorted(norms, reverse=True)

    def test_intercept_not_penalized(self, rng):
        X = rng.normal(size=(100, 2))
        y = X @ np.array([0.1, -0.1]) + 1000.0
        model = Ridge(alpha=100.0).fit(X, y)
        assert model.intercept_ == pytest.approx(1000.0, rel=1e-3)

    def test_negative_alpha_raises(self):
        with pytest.raises(ValueError):
            Ridge(alpha=-1.0).fit(np.ones((3, 1)), np.ones(3))

    def test_multi_output_shapes(self, rng):
        X = rng.normal(size=(20, 3))
        Y = rng.normal(size=(20, 2))
        model = Ridge(alpha=1.0).fit(X, Y)
        assert model.predict(X).shape == (20, 2)

    def test_solves_normal_equations(self, rng):
        X = rng.normal(size=(30, 4))
        y = rng.normal(size=30)
        alpha = 2.5
        model = Ridge(alpha=alpha, fit_intercept=False).fit(X, y)
        lhs = (X.T @ X + alpha * np.eye(4)) @ model.coef_
        np.testing.assert_allclose(lhs, X.T @ y, atol=1e-8)


class TestRidgeCV:
    def test_selects_small_alpha_for_clean_data(self, rng):
        X = rng.normal(size=(100, 3))
        y = X @ np.array([1.0, 2.0, 3.0])
        model = RidgeCV(alphas=(1e-4, 1.0, 100.0)).fit(X, y)
        assert model.alpha_ == 1e-4

    def test_selects_large_alpha_for_pure_noise(self, rng):
        X = rng.normal(size=(30, 20))
        y = rng.normal(size=30)
        model = RidgeCV(alphas=(1e-6, 1e4)).fit(X, y)
        assert model.alpha_ == 1e4

    def test_prediction_matches_refit_ridge(self, linear_data):
        X, y, _ = linear_data
        cv = RidgeCV(alphas=(0.5,)).fit(X, y)
        direct = Ridge(alpha=0.5).fit(X, y)
        np.testing.assert_allclose(cv.predict(X), direct.predict(X), atol=1e-10)

    def test_empty_alphas_raises(self):
        with pytest.raises(ValueError):
            RidgeCV(alphas=()).fit(np.ones((4, 1)), np.ones(4))

    def test_loo_error_recorded(self, linear_data):
        X, y, _ = linear_data
        model = RidgeCV().fit(X, y)
        assert model.loo_error_ >= 0.0
