"""PackedForest: arena packing + batched traversal vs the object path.

The load-bearing property is *bit-identity*: every packed prediction
must equal the tree/forest object path exactly (same floats, not just
allclose), across batch sizes that exercise all three traversal paths
(single-sample, mid-size fixed-depth, large active-set).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, DataValidationError
from repro.ml.tree import PackedForest, RandomForestRegressor
from repro.ml.tree.packed import ordered_sum_axis0


@pytest.fixture(scope="module")
def forest(rng_module):
    X = rng_module.uniform(-2, 2, size=(300, 4))
    y = np.sin(X[:, 0]) + X[:, 1] ** 2 + 0.3 * X[:, 2] * X[:, 3]
    return RandomForestRegressor(n_estimators=40, random_state=0).fit(X, y)


@pytest.fixture(scope="module")
def rng_module():
    return np.random.default_rng(7)


@pytest.fixture(scope="module")
def packed(forest):
    return PackedForest.from_forest(forest)


class TestPacking:
    def test_arena_shape_bookkeeping(self, forest, packed):
        assert packed.n_trees == 40
        assert packed.tree_offsets.shape == (41,)
        assert packed.tree_offsets[0] == 0
        assert packed.tree_offsets[-1] == packed.n_nodes
        assert packed.max_depth_ >= 1

    def test_bad_arena_rejected(self, packed):
        arrays = packed.to_arrays("a_")
        bad = dict(arrays)
        bad["a_left"] = bad["a_left"].copy()
        bad["a_left"][0] = 10**9  # child index outside the arena
        with pytest.raises(DataValidationError):
            PackedForest.from_arrays(bad, "a_")

    def test_missing_arrays_rejected(self, packed):
        arrays = dict(packed.to_arrays("a_"))
        del arrays["a_threshold"]
        with pytest.raises(DataValidationError):
            PackedForest.from_arrays(arrays, "a_")

    def test_round_trip_is_exact(self, packed, rng_module):
        clone = PackedForest.from_arrays(packed.to_arrays("p_"), "p_")
        X = rng_module.uniform(-2, 2, size=(23, 4))
        assert (clone.predict(X) == packed.predict(X)).all()


class TestBitIdentity:
    @pytest.mark.parametrize("n", [1, 2, 7, 33])
    def test_predict_matches_object_path(self, forest, packed, rng_module, n):
        X = rng_module.uniform(-2.5, 2.5, size=(n, 4))
        assert (packed.predict(X) == forest.predict(X)).all()

    def test_active_set_path_matches(self, forest, packed, rng_module):
        # n_trees * n above the threshold forces the active-set path.
        n = 32768 // packed.n_trees + 10
        X = rng_module.uniform(-2, 2, size=(n, 4))
        assert (packed.predict(X) == forest.predict(X)).all()

    def test_predict_all_matches_per_tree(self, forest, packed, rng_module):
        X = rng_module.uniform(-2, 2, size=(9, 4))
        per_tree = packed.predict_all(X)
        assert per_tree.shape == (40, 9)
        for k, est in enumerate(forest.estimators_):
            assert (per_tree[k] == est.predict(X)).all()

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("order", ["C", "F"])
    def test_dtype_and_layout_invariance(
        self, forest, packed, rng_module, dtype, order
    ):
        X = rng_module.uniform(-2, 2, size=(11, 4))
        Xv = np.asarray(np.asarray(X, dtype=dtype), order=order)
        assert (packed.predict(Xv) == forest.predict(Xv)).all()

    def test_empty_input(self, forest, packed):
        X = np.empty((0, 4))
        out = packed.predict(X)
        assert out.shape == (0,)
        assert (out == forest.predict(X)).all()

    def test_tree_subset_matches_objects(self, forest, packed, rng_module):
        X = rng_module.uniform(-2, 2, size=(5, 4))
        idx = np.array([0, 3, 17], dtype=np.intp)
        values = packed.leaf_values(X, idx)
        for row, k in enumerate(idx):
            assert (values[row] == forest.estimators_[k].predict(X)).all()


class TestOrderedSum:
    def test_single_column_matches_sequential(self, rng_module):
        # Pairwise summation would diverge from the sequential object
        # path here; ordered_sum_axis0 must not.
        V = rng_module.normal(size=(1553, 1)) * 1e6
        acc = V[0].copy()
        for row in V[1:]:
            acc = acc + row
        assert (ordered_sum_axis0(V) == acc).all()

    def test_multi_column_matches_sequential(self, rng_module):
        V = rng_module.normal(size=(257, 3))
        acc = V[0].copy()
        for row in V[1:]:
            acc = acc + row
        assert (ordered_sum_axis0(V) == acc).all()


class TestValidation:
    def test_wrong_feature_count(self, packed):
        with pytest.raises(DataValidationError):
            packed.predict(np.zeros((2, 7)))

    def test_non_finite_rejected(self, packed):
        X = np.zeros((2, 4))
        X[1, 2] = np.nan
        with pytest.raises(DataValidationError):
            packed.predict(X)

    def test_one_dim_rejected(self, packed):
        with pytest.raises(DataValidationError):
            packed.predict(np.zeros(4))

    def test_unfitted_forest_rejected(self):
        with pytest.raises(ConfigurationError):
            PackedForest.from_forest(RandomForestRegressor(n_estimators=3))


class TestForestGuards:
    def test_zero_estimators_rejected_at_construction(self):
        with pytest.raises(ConfigurationError):
            RandomForestRegressor(n_estimators=0)

    def test_zero_estimators_rejected_at_fit(self, rng_module):
        forest = RandomForestRegressor(n_estimators=2)
        forest.n_estimators = 0  # post-construction mutation
        X = rng_module.normal(size=(20, 3))
        with pytest.raises(ConfigurationError):
            forest.fit(X, X[:, 0])

    def test_configuration_error_is_value_error(self):
        # Upgraded guards must not break callers catching ValueError.
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)

    def test_predict_equals_mean_of_predict_all(self, forest, rng_module):
        X = rng_module.uniform(-2, 2, size=(17, 4))
        assert (
            forest.predict(X) == forest.predict_all(X).mean(axis=0)
        ).all()

    def test_predict_all_validates_features(self, forest):
        with pytest.raises(ValueError):
            forest.predict_all(np.zeros((3, 9)))

    def test_empty_predict_paths(self, forest):
        X = np.empty((0, 4))
        assert forest.predict(X).shape == (0,)
        assert forest.predict_all(X).shape == (40, 0)
