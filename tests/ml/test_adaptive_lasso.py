"""Tests for the adaptive (reweighted) lasso."""

import numpy as np
import pytest

from repro.ml import AdaptiveLasso, Lasso


class TestAdaptiveLasso:
    def test_recovers_true_support(self, linear_data):
        X, y, w = linear_data
        model = AdaptiveLasso(alpha=0.05).fit(X, y)
        assert set(np.nonzero(model.support_)[0]) == set(np.nonzero(w)[0])

    def test_less_bias_than_plain_lasso(self, linear_data):
        # On the active coefficients, adaptive reweighting shrinks less
        # than plain lasso at the same alpha.
        X, y, w = linear_data
        active = np.nonzero(w)[0]
        plain = Lasso(alpha=0.3).fit(X, y)
        adaptive = AdaptiveLasso(alpha=0.3).fit(X, y)
        bias_plain = np.abs(plain.coef_[active] - w[active]).sum()
        bias_adaptive = np.abs(adaptive.coef_[active] - w[active]).sum()
        assert bias_adaptive < bias_plain

    def test_weights_inverse_of_pilot(self, linear_data):
        X, y, _ = linear_data
        model = AdaptiveLasso(alpha=0.05, gamma=1.0).fit(X, y)
        big = np.argmax(np.abs(model.pilot_coef_))
        small = np.argmin(np.abs(model.pilot_coef_))
        assert model.weights_[big] > model.weights_[small]

    def test_prediction_accuracy(self, linear_data):
        X, y, _ = linear_data
        model = AdaptiveLasso(alpha=0.01).fit(X, y)
        assert model.score(X, y) > 0.99

    def test_invalid_params_raise(self):
        X, y = np.ones((4, 2)), np.ones(4)
        with pytest.raises(ValueError):
            AdaptiveLasso(alpha=-1).fit(X, y)
        with pytest.raises(ValueError):
            AdaptiveLasso(gamma=0).fit(X, y)

    def test_gamma_increases_sparsity_pressure(self, rng):
        X = rng.normal(size=(100, 10))
        w = np.zeros(10); w[0] = 5.0
        y = X @ w + 0.5 * rng.normal(size=100)
        lo = AdaptiveLasso(alpha=0.2, gamma=0.5).fit(X, y)
        hi = AdaptiveLasso(alpha=0.2, gamma=2.0).fit(X, y)
        assert hi.support_.sum() <= lo.support_.sum()

    def test_predict_before_fit_raises(self):
        with pytest.raises(Exception):
            AdaptiveLasso().predict(np.ones((2, 2)))
