"""Tests for the estimator base protocol (params, clone, fitted checks)."""

import numpy as np
import pytest

from repro.ml import (
    Lasso,
    LinearRegression,
    NotFittedError,
    RandomForestRegressor,
    Ridge,
    check_is_fitted,
    clone,
)
from repro.ml.base import BaseEstimator


class _Nested(BaseEstimator):
    def __init__(self, inner=None, alpha=1.0):
        self.inner = inner if inner is not None else Ridge(alpha=0.5)
        self.alpha = alpha


class TestGetParams:
    def test_returns_constructor_args(self):
        model = Ridge(alpha=2.5, fit_intercept=False)
        params = model.get_params()
        assert params["alpha"] == 2.5
        assert params["fit_intercept"] is False

    def test_deep_expands_nested_estimators(self):
        model = _Nested(inner=Ridge(alpha=7.0))
        params = model.get_params(deep=True)
        assert params["inner__alpha"] == 7.0

    def test_shallow_excludes_nested_expansion(self):
        model = _Nested()
        params = model.get_params(deep=False)
        assert "inner__alpha" not in params

    def test_lasso_hides_fixed_l1_ratio(self):
        assert "l1_ratio" not in Lasso().get_params()


class TestSetParams:
    def test_sets_simple_param(self):
        model = Ridge().set_params(alpha=9.0)
        assert model.alpha == 9.0

    def test_sets_nested_param(self):
        model = _Nested().set_params(inner__alpha=3.0)
        assert model.inner.alpha == 3.0

    def test_unknown_param_raises(self):
        with pytest.raises(ValueError, match="Invalid parameter"):
            Ridge().set_params(bogus=1)

    def test_unknown_nested_head_raises(self):
        with pytest.raises(ValueError, match="Invalid parameter"):
            Ridge().set_params(bogus__x=1)

    def test_nested_on_non_estimator_raises(self):
        with pytest.raises(ValueError, match="not an estimator"):
            _Nested().set_params(alpha__x=1)

    def test_returns_self(self):
        model = Ridge()
        assert model.set_params(alpha=1.0) is model


class TestClone:
    def test_clone_copies_params(self):
        model = Ridge(alpha=4.0, fit_intercept=False)
        c = clone(model)
        assert c.alpha == 4.0 and c.fit_intercept is False
        assert c is not model

    def test_clone_drops_fitted_state(self, linear_data):
        X, y, _ = linear_data
        model = Ridge().fit(X, y)
        c = clone(model)
        assert not hasattr(c, "coef_")

    def test_clone_deep_copies_nested(self):
        inner = Ridge(alpha=1.0)
        c = clone(_Nested(inner=inner))
        assert c.inner is not inner
        assert c.inner.alpha == 1.0

    def test_clone_deep_copies_mutable_values(self):
        model = _Nested(alpha=1.0)
        model2 = clone(model)
        model2.alpha = 99
        assert model.alpha == 1.0


class TestCheckIsFitted:
    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            check_is_fitted(Ridge())

    def test_fitted_passes(self, linear_data):
        X, y, _ = linear_data
        check_is_fitted(Ridge().fit(X, y))

    def test_explicit_attribute_list(self, linear_data):
        X, y, _ = linear_data
        model = Ridge().fit(X, y)
        check_is_fitted(model, ["coef_", "intercept_"])
        with pytest.raises(NotFittedError, match="missing"):
            check_is_fitted(model, ["nonexistent_"])

    def test_predict_before_fit_raises(self):
        for est in [Ridge(), LinearRegression(), Lasso(), RandomForestRegressor()]:
            with pytest.raises((NotFittedError, RuntimeError)):
                est.predict(np.zeros((2, 3)))


class TestRepr:
    def test_repr_contains_params(self):
        text = repr(Ridge(alpha=3.5))
        assert "Ridge" in text and "alpha=3.5" in text
