"""Tests for k-means and agglomerative clustering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import AgglomerativeClustering, KMeans
from repro.ml.cluster.kmeans import kmeans_plus_plus_init


@pytest.fixture
def blobs(rng):
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    X = np.vstack([rng.normal(c, 0.5, size=(30, 2)) for c in centers])
    labels = np.repeat(np.arange(3), 30)
    return X, labels, centers


def label_agreement(pred, true):
    """Best-permutation agreement between two labelings (3 clusters)."""
    from itertools import permutations

    best = 0.0
    for perm in permutations(range(3)):
        mapped = np.array([perm[p] for p in pred])
        best = max(best, float(np.mean(mapped == true)))
    return best


class TestKMeans:
    def test_recovers_separated_blobs(self, blobs):
        X, true, _ = blobs
        km = KMeans(n_clusters=3, random_state=0).fit(X)
        assert label_agreement(km.labels_, true) == 1.0

    def test_centers_near_truth(self, blobs):
        X, _, centers = blobs
        km = KMeans(n_clusters=3, random_state=0).fit(X)
        # Every true center must have a found center within 0.5, 1:1.
        dists = np.linalg.norm(
            centers[:, None, :] - km.cluster_centers_[None, :, :], axis=2
        )
        matches = np.argmin(dists, axis=1)
        assert sorted(matches.tolist()) == [0, 1, 2]
        assert np.all(dists[np.arange(3), matches] < 0.5)

    def test_inertia_decreases_with_k(self, blobs):
        X, _, _ = blobs
        inertias = [
            KMeans(n_clusters=k, random_state=0).fit(X).inertia_
            for k in [1, 2, 3, 5]
        ]
        assert inertias == sorted(inertias, reverse=True)

    def test_inertia_matches_definition(self, blobs):
        X, _, _ = blobs
        km = KMeans(n_clusters=3, random_state=0).fit(X)
        manual = sum(
            np.sum((X[km.labels_ == c] - km.cluster_centers_[c]) ** 2)
            for c in range(3)
        )
        assert km.inertia_ == pytest.approx(manual)

    def test_predict_self_consistent(self, blobs):
        X, _, _ = blobs
        km = KMeans(n_clusters=3, random_state=0).fit(X)
        np.testing.assert_array_equal(km.predict(X), km.labels_)

    def test_fit_predict_shortcut(self, blobs):
        X, _, _ = blobs
        km = KMeans(n_clusters=3, random_state=0)
        labels = km.fit_predict(X)
        np.testing.assert_array_equal(labels, km.labels_)

    def test_transform_distances(self, blobs):
        X, _, _ = blobs
        km = KMeans(n_clusters=3, random_state=0).fit(X)
        D = km.transform(X[:5])
        assert D.shape == (5, 3)
        np.testing.assert_array_equal(np.argmin(D, axis=1), km.labels_[:5])

    def test_k_equals_n_zero_inertia(self, rng):
        X = rng.normal(size=(6, 2))
        km = KMeans(n_clusters=6, n_init=3, random_state=0).fit(X)
        assert km.inertia_ == pytest.approx(0.0, abs=1e-12)

    def test_reproducible(self, blobs):
        X, _, _ = blobs
        a = KMeans(n_clusters=3, random_state=7).fit(X).labels_
        b = KMeans(n_clusters=3, random_state=7).fit(X).labels_
        np.testing.assert_array_equal(a, b)

    def test_fewer_samples_than_clusters_raises(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=5).fit(np.ones((3, 2)))

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=0).fit(np.ones((3, 2)))
        with pytest.raises(ValueError):
            KMeans(n_init=0).fit(np.ones((3, 2)))

    @given(st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_every_cluster_nonempty(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(30, 2))
        km = KMeans(n_clusters=4, n_init=2, random_state=seed).fit(X)
        assert len(np.unique(km.labels_)) == 4


class TestKMeansPlusPlus:
    def test_centers_are_data_points(self, blobs):
        X, _, _ = blobs
        centers = kmeans_plus_plus_init(X, 3, np.random.default_rng(0))
        for c in centers:
            assert np.any(np.all(np.isclose(X, c), axis=1))

    def test_duplicate_points_handled(self):
        X = np.ones((10, 2))
        centers = kmeans_plus_plus_init(X, 3, np.random.default_rng(0))
        assert centers.shape == (3, 2)


class TestAgglomerative:
    def test_recovers_separated_blobs(self, blobs):
        X, true, _ = blobs
        for linkage in ["single", "complete", "average"]:
            model = AgglomerativeClustering(n_clusters=3, linkage=linkage).fit(X)
            assert label_agreement(model.labels_, true) == 1.0, linkage

    def test_n_clusters_respected(self, rng):
        X = rng.normal(size=(20, 2))
        model = AgglomerativeClustering(n_clusters=4).fit(X)
        assert len(np.unique(model.labels_)) == 4

    def test_merge_history_length(self, rng):
        X = rng.normal(size=(12, 2))
        model = AgglomerativeClustering(n_clusters=3).fit(X)
        assert len(model.merge_history_) == 12 - 3

    def test_merge_distances_nondecreasing_complete(self, rng):
        X = rng.normal(size=(15, 2))
        model = AgglomerativeClustering(n_clusters=1, linkage="complete").fit(X)
        dists = [d for _, _, d in model.merge_history_]
        # Complete linkage produces monotone merge heights.
        assert all(b >= a - 1e-9 for a, b in zip(dists, dists[1:]))

    def test_invalid_linkage_raises(self):
        with pytest.raises(ValueError):
            AgglomerativeClustering(linkage="ward").fit(np.ones((4, 2)))

    def test_labels_relabeled_contiguously(self, rng):
        X = rng.normal(size=(10, 2))
        model = AgglomerativeClustering(n_clusters=3).fit(X)
        assert set(model.labels_) == {0, 1, 2}
