"""Cross-cutting property-based tests of core ML invariants.

These complement the per-module tests with randomized invariants that
must hold for *any* input: prediction ranges of averaging learners,
scale equivariance of linear models, idempotence of transforms, and
determinism under fixed seeds.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    DecisionTreeRegressor,
    KMeans,
    KNeighborsRegressor,
    Lasso,
    LinearRegression,
    MultiTaskLasso,
    RandomForestRegressor,
    Ridge,
    StandardScaler,
)

seeds = st.integers(0, 2**31 - 1)


def make_problem(seed, n=40, f=4):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, f))
    y = rng.normal(size=n)
    return X, y


class TestAveragingLearnersPredictInRange:
    """Learners that average training targets can never predict outside
    [min(y), max(y)] — the very property that breaks them under scale
    extrapolation (the paper's motivation)."""

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_tree_in_range(self, seed):
        X, y = make_problem(seed)
        model = DecisionTreeRegressor(max_depth=4, random_state=0).fit(X, y)
        far = np.full((5, X.shape[1]), 100.0)
        preds = model.predict(far)
        assert np.all(preds >= y.min() - 1e-12)
        assert np.all(preds <= y.max() + 1e-12)

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_forest_in_range(self, seed):
        X, y = make_problem(seed)
        model = RandomForestRegressor(n_estimators=10, random_state=0).fit(X, y)
        far = np.full((5, X.shape[1]), -100.0)
        preds = model.predict(far)
        assert np.all(preds >= y.min() - 1e-12)
        assert np.all(preds <= y.max() + 1e-12)

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_knn_in_range(self, seed):
        X, y = make_problem(seed)
        model = KNeighborsRegressor(n_neighbors=3).fit(X, y)
        far = np.full((5, X.shape[1]), 50.0)
        preds = model.predict(far)
        assert np.all(preds >= y.min() - 1e-12)
        assert np.all(preds <= y.max() + 1e-12)


class TestLinearModelEquivariance:
    @given(seeds, st.floats(0.1, 100.0))
    @settings(max_examples=15, deadline=None)
    def test_ols_target_scale_equivariant(self, seed, c):
        X, y = make_problem(seed)
        a = LinearRegression().fit(X, y)
        b = LinearRegression().fit(X, c * y)
        np.testing.assert_allclose(b.coef_, c * a.coef_, rtol=1e-6, atol=1e-9)

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_ridge_between_zero_and_ols(self, seed):
        X, y = make_problem(seed)
        ols = np.linalg.norm(LinearRegression().fit(X, y).coef_)
        ridge = np.linalg.norm(Ridge(alpha=5.0).fit(X, y).coef_)
        assert ridge <= ols + 1e-9

    @given(seeds, st.floats(0.01, 1.0))
    @settings(max_examples=10, deadline=None)
    def test_lasso_subset_of_smaller_alpha_cost(self, seed, alpha):
        # Objective value at the solution must not exceed the objective
        # at w = 0 (optimality sanity).
        X, y = make_problem(seed)
        model = Lasso(alpha=alpha, tol=1e-9).fit(X, y)
        n = len(y)
        r = y - model.predict(X)
        obj = (r @ r) / (2 * n) + alpha * np.abs(model.coef_).sum()
        yc = y - y.mean()
        obj_zero = (yc @ yc) / (2 * n)
        assert obj <= obj_zero + 1e-9

    @given(seeds, st.floats(0.01, 1.0))
    @settings(max_examples=10, deadline=None)
    def test_multitask_objective_no_worse_than_zero(self, seed, alpha):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(30, 4))
        Y = rng.normal(size=(30, 2))
        model = MultiTaskLasso(alpha=alpha, tol=1e-9).fit(X, Y)
        n = len(Y)
        R = Y - model.predict(X)
        row_norms = np.sqrt((model.coef_.T**2).sum(axis=1))
        obj = np.sum(R * R) / (2 * n) + alpha * row_norms.sum()
        Yc = Y - Y.mean(axis=0)
        obj_zero = np.sum(Yc * Yc) / (2 * n)
        assert obj <= obj_zero + 1e-9


class TestTransformIdempotence:
    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_standardizing_twice_is_stable(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(3.0, 2.0, size=(30, 3))
        once = StandardScaler().fit_transform(X)
        twice = StandardScaler().fit_transform(once)
        np.testing.assert_allclose(once, twice, atol=1e-9)


class TestKMeansInvariants:
    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_assignment_is_nearest_center(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(30, 2))
        km = KMeans(n_clusters=3, n_init=2, random_state=seed).fit(X)
        D = np.linalg.norm(
            X[:, None, :] - km.cluster_centers_[None, :, :], axis=2
        )
        np.testing.assert_array_equal(km.labels_, np.argmin(D, axis=1))

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_translation_invariance_of_inertia(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(25, 2))
        a = KMeans(n_clusters=2, n_init=3, random_state=0).fit(X).inertia_
        b = KMeans(n_clusters=2, n_init=3, random_state=0).fit(X + 37.0).inertia_
        assert a == pytest.approx(b, rel=1e-6)
