"""Tests for scalers, log transform, polynomial features, and Pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml import (
    LinearRegression,
    LogTransformer,
    MinMaxScaler,
    Pipeline,
    PolynomialFeatures,
    StandardScaler,
)

mat = arrays(
    np.float64,
    st.tuples(st.integers(2, 20), st.integers(1, 5)),
    elements=st.floats(-100, 100, allow_nan=False),
)


class TestStandardScaler:
    def test_zero_mean_unit_std(self, rng):
        X = rng.normal(3.0, 5.0, size=(100, 4))
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_feature_passthrough(self):
        X = np.column_stack([np.full(5, 7.0), np.arange(5.0)])
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z[:, 0], 0.0)

    @given(mat)
    @settings(max_examples=30)
    def test_inverse_roundtrip(self, X):
        sc = StandardScaler().fit(X)
        np.testing.assert_allclose(
            sc.inverse_transform(sc.transform(X)), X, atol=1e-8
        )

    def test_feature_count_mismatch_raises(self, rng):
        sc = StandardScaler().fit(rng.normal(size=(5, 3)))
        with pytest.raises(ValueError, match="features"):
            sc.transform(rng.normal(size=(5, 2)))

    def test_without_mean_or_std(self, rng):
        X = rng.normal(2.0, 3.0, size=(50, 2))
        Z = StandardScaler(with_mean=False).fit_transform(X)
        assert abs(Z.mean()) > 0.1  # mean not removed
        Z2 = StandardScaler(with_std=False).fit_transform(X)
        np.testing.assert_allclose(Z2.mean(axis=0), 0.0, atol=1e-10)
        assert Z2.std() > 1.5  # std untouched


class TestMinMaxScaler:
    def test_maps_to_unit_interval(self, rng):
        X = rng.normal(size=(40, 3)) * 10
        Z = MinMaxScaler().fit_transform(X)
        np.testing.assert_allclose(Z.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(Z.max(axis=0), 1.0, atol=1e-12)

    def test_custom_range(self, rng):
        X = rng.normal(size=(30, 2))
        Z = MinMaxScaler(feature_range=(-1, 1)).fit_transform(X)
        np.testing.assert_allclose(Z.min(axis=0), -1.0, atol=1e-12)
        np.testing.assert_allclose(Z.max(axis=0), 1.0, atol=1e-12)

    def test_invalid_range_raises(self):
        with pytest.raises(ValueError):
            MinMaxScaler(feature_range=(1, 1)).fit(np.ones((3, 1)))

    @given(mat)
    @settings(max_examples=30)
    def test_inverse_roundtrip(self, X):
        sc = MinMaxScaler().fit(X)
        np.testing.assert_allclose(
            sc.inverse_transform(sc.transform(X)), X, atol=1e-7
        )

    def test_subnormal_span_stays_finite(self):
        # Regression: a subnormal span passed the exact-zero guard and
        # overflowed scale_ to inf, so inverse_transform emitted
        # non-finite values that check_array rejects.
        subnormal = 2.2e-311
        X = np.column_stack([
            np.array([0.0, subnormal]),      # subnormal span
            np.array([7.0, 7.0]),            # exactly constant
            np.array([50.0, 50.0 + 1e-13]),  # span below relative epsilon
            np.array([0.0, 1.0]),            # healthy column
        ])
        sc = MinMaxScaler().fit(X)
        assert np.all(np.isfinite(sc.scale_))
        Z = sc.transform(X)
        assert np.all(np.isfinite(Z))
        np.testing.assert_allclose(sc.inverse_transform(Z), X, atol=1e-7)
        # The healthy column still maps onto [0, 1].
        np.testing.assert_allclose(Z[:, 3], [0.0, 1.0], atol=1e-12)

    def test_standard_scaler_subnormal_std_stays_finite(self):
        X = np.column_stack([
            np.array([0.0, 2.2e-311, 0.0]),
            np.array([1.0, 2.0, 3.0]),
        ])
        sc = StandardScaler().fit(X)
        assert np.all(np.isfinite(sc.scale_))
        Z = sc.transform(X)
        assert np.all(np.isfinite(Z))
        np.testing.assert_allclose(sc.inverse_transform(Z), X, atol=1e-8)


class TestLogTransformer:
    def test_roundtrip(self, rng):
        X = rng.uniform(0.1, 100.0, size=(20, 3))
        tr = LogTransformer().fit(X)
        np.testing.assert_allclose(tr.inverse_transform(tr.transform(X)), X)

    def test_base_2(self):
        X = np.array([[8.0]])
        assert LogTransformer(base=2).fit_transform(X)[0, 0] == pytest.approx(3.0)

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            LogTransformer().fit(np.array([[0.0]]))

    def test_shift_allows_zero(self):
        out = LogTransformer(shift=1.0).fit_transform(np.array([[0.0]]))
        assert out[0, 0] == pytest.approx(0.0)


class TestPolynomialFeatures:
    def test_degree_two_columns(self):
        X = np.array([[2.0, 3.0]])
        out = PolynomialFeatures(degree=2).fit_transform(X)
        # bias, x0, x1, x0^2, x0*x1, x1^2
        np.testing.assert_allclose(out[0], [1, 2, 3, 4, 6, 9])

    def test_no_bias(self):
        out = PolynomialFeatures(degree=1, include_bias=False).fit_transform(
            np.array([[5.0]])
        )
        np.testing.assert_allclose(out, [[5.0]])

    def test_interaction_only_drops_squares(self):
        X = np.array([[2.0, 3.0]])
        out = PolynomialFeatures(degree=2, interaction_only=True).fit_transform(X)
        np.testing.assert_allclose(out[0], [1, 2, 3, 6])

    def test_n_output_features_matches(self, rng):
        X = rng.normal(size=(4, 3))
        pf = PolynomialFeatures(degree=3).fit(X)
        assert pf.transform(X).shape[1] == pf.n_output_features_

    def test_degree_zero_raises(self):
        with pytest.raises(ValueError):
            PolynomialFeatures(degree=0).fit(np.ones((2, 2)))


class TestPipeline:
    def test_fit_predict_chains(self, linear_data):
        X, y, _ = linear_data
        pipe = Pipeline(
            [("scale", StandardScaler()), ("ols", LinearRegression())]
        ).fit(X, y)
        assert pipe.score(X, y) > 0.99

    def test_named_steps(self):
        pipe = Pipeline([("s", StandardScaler()), ("m", LinearRegression())])
        assert isinstance(pipe.named_steps["s"], StandardScaler)

    def test_duplicate_names_raise(self):
        with pytest.raises(ValueError, match="unique"):
            Pipeline([("a", StandardScaler()), ("a", LinearRegression())])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Pipeline([])

    def test_predict_before_fit_raises(self, linear_data):
        X, _, _ = linear_data
        pipe = Pipeline([("s", StandardScaler()), ("m", LinearRegression())])
        with pytest.raises(Exception):
            pipe.predict(X)

    def test_transform_only_pipeline_end(self, rng):
        X = rng.normal(size=(10, 2)) * 5 + 3
        pipe = Pipeline([("a", StandardScaler()), ("b", MinMaxScaler())]).fit(X)
        out = pipe.transform(X)
        np.testing.assert_allclose(out.min(axis=0), 0.0, atol=1e-12)
