"""Tests for input-validation helpers."""

import numpy as np
import pytest

from repro.ml.validation import (
    check_array,
    check_consistent_length,
    check_random_state,
    check_X_y,
    column_or_1d,
    spawn_rngs,
)


class TestCheckArray:
    def test_returns_contiguous_float64(self):
        out = check_array([[1, 2], [3, 4]])
        assert out.dtype == np.float64
        assert out.flags["C_CONTIGUOUS"]

    def test_1d_raises_with_hint(self):
        with pytest.raises(ValueError, match="reshape"):
            check_array([1.0, 2.0])

    def test_3d_raises(self):
        with pytest.raises(ValueError, match="2-D"):
            check_array(np.zeros((2, 2, 2)))

    def test_zero_features_raises(self):
        with pytest.raises(ValueError, match="0 features"):
            check_array(np.zeros((3, 0)))

    def test_nan_raises(self):
        with pytest.raises(ValueError, match="NaN"):
            check_array([[1.0, np.nan]])

    def test_inf_raises(self):
        with pytest.raises(ValueError, match="NaN or infinity"):
            check_array([[np.inf, 1.0]])

    def test_nan_allowed_when_requested(self):
        out = check_array([[1.0, np.nan]], allow_nan=True)
        assert np.isnan(out[0, 1])

    def test_min_samples_enforced(self):
        with pytest.raises(ValueError, match="at least 3"):
            check_array([[1.0], [2.0]], min_samples=3)

    def test_1d_allowed_when_ensure_2d_false(self):
        out = check_array([1.0, 2.0], ensure_2d=False)
        assert out.shape == (2,)

    def test_custom_name_in_message(self):
        with pytest.raises(ValueError, match="weights"):
            check_array([[np.nan]], name="weights")


class TestColumnOr1d:
    def test_flattens_single_column(self):
        assert column_or_1d(np.ones((4, 1))).shape == (4,)

    def test_wide_2d_raises(self):
        with pytest.raises(ValueError, match="1-D"):
            column_or_1d(np.ones((4, 2)))

    def test_nan_raises(self):
        with pytest.raises(ValueError):
            column_or_1d([1.0, np.nan])


class TestCheckXY:
    def test_joint_validation(self):
        X, y = check_X_y([[1.0], [2.0]], [1.0, 2.0])
        assert X.shape == (2, 1) and y.shape == (2,)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="Inconsistent"):
            check_X_y([[1.0], [2.0]], [1.0])

    def test_multi_output_promotes_1d(self):
        _, y = check_X_y([[1.0], [2.0]], [1.0, 2.0], multi_output=True)
        assert y.shape == (2, 1)

    def test_multi_output_keeps_2d(self):
        _, y = check_X_y([[1.0], [2.0]], [[1.0, 2.0], [3.0, 4.0]], multi_output=True)
        assert y.shape == (2, 2)

    def test_multi_output_nan_raises(self):
        with pytest.raises(ValueError):
            check_X_y([[1.0]], [[np.nan]], multi_output=True)


class TestCheckRandomState:
    def test_none_gives_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = check_random_state(5).random(3)
        b = check_random_state(5).random(3)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert check_random_state(g) is g

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            check_random_state("seed")


class TestSpawnRngs:
    def test_spawned_streams_differ(self):
        rng = np.random.default_rng(0)
        children = spawn_rngs(rng, 3)
        draws = [c.random(4).tolist() for c in children]
        assert draws[0] != draws[1] != draws[2]

    def test_reproducible_given_same_parent_seed(self):
        a = [g.random() for g in spawn_rngs(np.random.default_rng(1), 4)]
        b = [g.random() for g in spawn_rngs(np.random.default_rng(1), 4)]
        assert a == b


class TestConsistentLength:
    def test_passes_on_equal(self):
        check_consistent_length([1, 2], [3, 4])

    def test_ignores_none(self):
        check_consistent_length([1, 2], None, [3, 4])

    def test_raises_on_mismatch(self):
        with pytest.raises(ValueError):
            check_consistent_length([1], [1, 2])
