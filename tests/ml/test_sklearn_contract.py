"""Estimator-contract conformance tests applied to every regressor.

A single parametrized battery mirroring (a small subset of)
scikit-learn's estimator checks: clonability, parameter round trips,
fit-returns-self, fitted-attribute conventions, pickling, and
input-validation behavior.  Catches contract drift in any estimator
without writing the same boilerplate per module.
"""

import pickle

import numpy as np
import pytest

from repro.ml import (
    AdaptiveLasso,
    DecisionTreeRegressor,
    ElasticNet,
    GaussianProcessRegressor,
    GradientBoostingRegressor,
    KernelRidge,
    KNeighborsRegressor,
    Lasso,
    LinearRegression,
    MLPRegressor,
    RandomForestRegressor,
    Ridge,
    clone,
)

REGRESSORS = [
    LinearRegression(),
    Ridge(alpha=0.5),
    Lasso(alpha=0.05),
    ElasticNet(alpha=0.05, l1_ratio=0.5),
    AdaptiveLasso(alpha=0.05),
    DecisionTreeRegressor(max_depth=4, random_state=0),
    RandomForestRegressor(n_estimators=8, random_state=0),
    GradientBoostingRegressor(n_estimators=8, random_state=0),
    KNeighborsRegressor(n_neighbors=3),
    KernelRidge(alpha=0.1),
    GaussianProcessRegressor(noise=1e-4),
    MLPRegressor(hidden_layer_sizes=(16,), max_iter=80, random_state=0),
]

IDS = [type(r).__name__ for r in REGRESSORS]


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(60, 3))
    y = X @ np.array([1.0, -0.5, 2.0]) + 0.05 * rng.normal(size=60)
    return X, y


@pytest.mark.parametrize("estimator", REGRESSORS, ids=IDS)
class TestEstimatorContract:
    def test_fit_returns_self(self, estimator, data):
        X, y = data
        model = clone(estimator)
        assert model.fit(X, y) is model

    def test_predict_shape_and_finiteness(self, estimator, data):
        X, y = data
        model = clone(estimator).fit(X, y)
        pred = model.predict(X[:7])
        assert pred.shape == (7,)
        assert np.all(np.isfinite(pred))

    def test_params_roundtrip(self, estimator, data):
        params = estimator.get_params(deep=False)
        rebuilt = type(estimator)(**params)
        assert rebuilt.get_params(deep=False).keys() == params.keys()

    def test_clone_is_unfitted_copy(self, estimator, data):
        X, y = data
        fitted = clone(estimator).fit(X, y)
        fresh = clone(fitted)
        fitted_attrs = [
            a for a in vars(fresh)
            if a.endswith("_") and not a.endswith("__")
        ]
        assert not fitted_attrs

    def test_pickle_roundtrip_preserves_predictions(self, estimator, data):
        X, y = data
        model = clone(estimator).fit(X, y)
        expected = model.predict(X[:5])
        restored = pickle.loads(pickle.dumps(model))
        np.testing.assert_allclose(restored.predict(X[:5]), expected)

    def test_rejects_nan_input(self, estimator, data):
        X, y = data
        model = clone(estimator)
        X_bad = X.copy()
        X_bad[0, 0] = np.nan
        with pytest.raises(ValueError):
            model.fit(X_bad, y)

    def test_rejects_length_mismatch(self, estimator, data):
        X, y = data
        with pytest.raises(ValueError):
            clone(estimator).fit(X, y[:-3])

    def test_learns_signal_better_than_mean(self, estimator, data):
        X, y = data
        model = clone(estimator).fit(X, y)
        assert model.score(X, y) > 0.5
