"""Tests for regression/clustering metrics, including property-based
invariants (scale behavior, bounds, perfect-prediction zeros)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.metrics import (
    explained_variance_score,
    max_error,
    mean_absolute_error,
    mean_absolute_percentage_error,
    mean_squared_error,
    median_absolute_percentage_error,
    pairwise_distances,
    r2_score,
    root_mean_squared_error,
    silhouette_score,
    symmetric_mean_absolute_percentage_error,
)

finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)
positive = st.floats(1e-3, 1e6, allow_nan=False, allow_infinity=False)


def vec(elements, min_size=1, max_size=30):
    return arrays(np.float64, st.integers(min_size, max_size), elements=elements)


class TestKnownValues:
    def test_mae(self):
        assert mean_absolute_error([1.0, 2.0], [2.0, 4.0]) == pytest.approx(1.5)

    def test_mse_rmse(self):
        assert mean_squared_error([0.0, 0.0], [3.0, 4.0]) == pytest.approx(12.5)
        assert root_mean_squared_error([0.0, 0.0], [3.0, 4.0]) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_mape(self):
        assert mean_absolute_percentage_error([10.0, 20.0], [11.0, 18.0]) == (
            pytest.approx(0.1)
        )

    def test_median_ape(self):
        got = median_absolute_percentage_error([10, 10, 10], [11, 15, 10])
        assert got == pytest.approx(0.1)

    def test_smape_bounds_value(self):
        assert symmetric_mean_absolute_percentage_error([1.0], [3.0]) == (
            pytest.approx(1.0)
        )

    def test_max_error(self):
        assert max_error([1.0, 5.0], [1.5, 2.0]) == pytest.approx(3.0)

    def test_r2_perfect_and_mean(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == pytest.approx(1.0)
        assert r2_score(y, np.full(3, y.mean())) == pytest.approx(0.0)

    def test_explained_variance_ignores_bias(self):
        y = np.array([1.0, 2.0, 3.0])
        assert explained_variance_score(y, y + 5.0) == pytest.approx(1.0)
        assert r2_score(y, y + 5.0) < 0.0


class TestEdgeCases:
    def test_mape_zero_true_raises(self):
        with pytest.raises(ValueError, match="zero"):
            mean_absolute_percentage_error([0.0, 1.0], [1.0, 1.0])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mean_absolute_error([1.0, 2.0], [1.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_squared_error([], [])

    def test_r2_constant_target(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r2_score([2.0, 2.0], [1.0, 3.0]) == 0.0

    def test_smape_double_zero_raises(self):
        with pytest.raises(ValueError):
            symmetric_mean_absolute_percentage_error([0.0], [0.0])


class TestProperties:
    @given(vec(finite))
    def test_perfect_prediction_zero_errors(self, y):
        assert mean_absolute_error(y, y) == 0.0
        assert mean_squared_error(y, y) == 0.0
        assert max_error(y, y) == 0.0

    @given(vec(positive), st.floats(0.1, 10.0))
    def test_mape_scale_invariant(self, y, c):
        pred = y * 1.07
        a = mean_absolute_percentage_error(y, pred)
        b = mean_absolute_percentage_error(c * y, c * pred)
        assert a == pytest.approx(b, rel=1e-9)

    @given(vec(finite, min_size=2), vec(finite, min_size=2))
    @settings(max_examples=50)
    def test_r2_at_most_one(self, y, p):
        if len(y) != len(p):
            n = min(len(y), len(p))
            y, p = y[:n], p[:n]
        assert r2_score(y, p) <= 1.0 + 1e-12

    @given(vec(positive, min_size=2), vec(positive, min_size=2))
    @settings(max_examples=50)
    def test_smape_bounded(self, y, p):
        n = min(len(y), len(p))
        s = symmetric_mean_absolute_percentage_error(y[:n], p[:n])
        assert 0.0 <= s <= 2.0 + 1e-12

    @given(vec(finite, min_size=2), vec(finite, min_size=2))
    @settings(max_examples=50)
    def test_rmse_at_least_mae(self, y, p):
        n = min(len(y), len(p))
        y, p = y[:n], p[:n]
        assert root_mean_squared_error(y, p) >= mean_absolute_error(y, p) - 1e-9


class TestPairwiseDistances:
    def test_matches_naive(self, rng):
        A = rng.normal(size=(7, 3))
        B = rng.normal(size=(5, 3))
        D = pairwise_distances(A, B)
        naive = np.sqrt(((A[:, None, :] - B[None, :, :]) ** 2).sum(-1))
        np.testing.assert_allclose(D, naive, atol=1e-10)

    def test_self_distance_zero_diagonal(self, rng):
        A = rng.normal(size=(6, 4))
        D = pairwise_distances(A)
        np.testing.assert_allclose(np.diag(D), 0.0, atol=1e-7)

    def test_symmetry(self, rng):
        A = rng.normal(size=(6, 2))
        D = pairwise_distances(A)
        np.testing.assert_allclose(D, D.T, atol=1e-10)

    def test_1d_input_raises(self):
        with pytest.raises(ValueError):
            pairwise_distances(np.ones(3))


class TestSilhouette:
    def test_well_separated_high_score(self, rng):
        X = np.vstack(
            [rng.normal(0, 0.1, (20, 2)), rng.normal(10, 0.1, (20, 2))]
        )
        labels = np.array([0] * 20 + [1] * 20)
        assert silhouette_score(X, labels) > 0.9

    def test_random_labels_low_score(self, rng):
        X = rng.normal(size=(40, 2))
        labels = rng.integers(0, 2, size=40)
        assert silhouette_score(X, labels) < 0.5

    def test_single_cluster_raises(self):
        with pytest.raises(ValueError):
            silhouette_score(np.ones((5, 2)), np.zeros(5))

    def test_range(self, rng):
        X = rng.normal(size=(30, 3))
        labels = rng.integers(0, 3, size=30)
        s = silhouette_score(X, labels)
        assert -1.0 <= s <= 1.0
