"""Chunked builds must be bit-identical to in-memory ones.

The store's fingerprints are chunking-invariant by construction: the
hash streams columns in canonical order across shard boundaries, so a
store built from one shard, many uniform shards, or shards of shuffled
ragged sizes must produce the same manifest fingerprints, the same
``to_dataset`` arrays, and — since fits are deterministic in their
inputs — identical downstream predictions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TwoLevelModel
from repro.data import dataset_fingerprint
from repro.store import DatasetExtractor, HistoryStore, IngestPipeline

from .conftest import make_dataset


def build_store(root, dataset, chunk_sizes):
    """Append ``dataset`` split into consecutive chunks of the given sizes."""
    store = HistoryStore.create(root, dataset.app_name, dataset.param_names)
    start = 0
    for size in chunk_sizes:
        stop = min(start + size, len(dataset))
        if stop == start:
            break
        store.append(dataset.select(np.arange(start, stop)))
        start = stop
    if start < len(dataset):
        store.append(dataset.select(np.arange(start, len(dataset))))
    return store


@pytest.fixture(scope="module")
def big_dataset():
    return make_dataset(n=240, scales=(8, 16, 32, 64), seed=42)


CHUNKINGS = {
    "one-chunk": [1000],
    "uniform": [48] * 5,
    "ragged-shuffled": [7, 101, 3, 64, 29, 17, 50],
}


class TestChunkingInvariance:
    @pytest.mark.parametrize("name", sorted(CHUNKINGS))
    def test_store_fingerprint_matches_in_memory(
        self, tmp_path, big_dataset, name
    ):
        store = build_store(tmp_path / name, big_dataset, CHUNKINGS[name])
        assert store.fingerprint == dataset_fingerprint(big_dataset)

    def test_all_chunkings_agree_on_manifest_fingerprints(
        self, tmp_path, big_dataset
    ):
        stores = {
            name: build_store(tmp_path / name, big_dataset, sizes)
            for name, sizes in CHUNKINGS.items()
        }
        fps = {s.fingerprint for s in stores.values()}
        assert len(fps) == 1
        scale_fps = [s.scale_fingerprints for s in stores.values()]
        assert all(sf == scale_fps[0] for sf in scale_fps[1:])

    @pytest.mark.parametrize("name", sorted(CHUNKINGS))
    def test_to_dataset_arrays_identical(self, tmp_path, big_dataset, name):
        store = build_store(tmp_path / name, big_dataset, CHUNKINGS[name])
        out = store.to_dataset()
        np.testing.assert_array_equal(out.X, big_dataset.X)
        np.testing.assert_array_equal(out.nprocs, big_dataset.nprocs)
        np.testing.assert_array_equal(out.runtime, big_dataset.runtime)
        np.testing.assert_array_equal(
            out.model_runtime, big_dataset.model_runtime
        )
        np.testing.assert_array_equal(out.rep, big_dataset.rep)

    def test_etl_chunk_size_does_not_change_the_store(
        self, tmp_path, big_dataset
    ):
        """The full pipeline (extract -> transform -> sanitize -> append)
        is chunking-invariant too, not just raw appends."""
        fps = set()
        for chunk_rows in (17, 64, 10_000):
            pipe = IngestPipeline(
                tmp_path / f"etl-{chunk_rows}", chunk_rows=chunk_rows
            )
            report = pipe.run(DatasetExtractor(big_dataset))
            fps.add(report.fingerprint)
        assert len(fps) == 1
        assert fps.pop() == dataset_fingerprint(big_dataset)


class TestDownstreamFitEquivalence:
    def test_fits_from_any_chunking_predict_identically(
        self, tmp_path, big_dataset
    ):
        test = make_dataset(n=40, scales=(128,), seed=99)
        preds = []
        for name, sizes in CHUNKINGS.items():
            store = build_store(tmp_path / name, big_dataset, sizes)
            model = TwoLevelModel(small_scales=store.scales, random_state=0)
            model.fit(store.to_dataset())
            preds.append(model.predict(test.X, [128]))
        np.testing.assert_array_equal(preds[0], preds[1])
        np.testing.assert_array_equal(preds[0], preds[2])

    def test_store_fit_identical_to_in_memory_fit(
        self, tmp_path, big_dataset
    ):
        test = make_dataset(n=40, scales=(128,), seed=99)
        store = build_store(
            tmp_path / "s", big_dataset, CHUNKINGS["ragged-shuffled"]
        )
        scales = store.scales
        m_store = TwoLevelModel(small_scales=scales, random_state=0)
        m_store.fit(store.to_dataset())
        m_mem = TwoLevelModel(small_scales=scales, random_state=0)
        m_mem.fit(big_dataset)
        np.testing.assert_array_equal(
            m_store.predict(test.X, [128]),
            m_mem.predict(test.X, [128]),
        )
