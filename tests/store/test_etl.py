"""Tests for the streaming ETL layer (extractors + IngestPipeline)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data import dataset_fingerprint
from repro.errors import (
    ConfigurationError,
    DatasetFormatError,
    DataValidationError,
)
from repro.store import (
    CSVExtractor,
    DatasetExtractor,
    HistoryStore,
    IngestPipeline,
    JSONLExtractor,
    RecordStreamExtractor,
    extractor_for_path,
    normalize_record,
)

from .conftest import make_dataset, write_jsonl


class TestNormalizeRecord:
    def test_nested_params_pass_through(self):
        rec = normalize_record(
            {"app_name": "a", "params": {"x": 1.0}, "nprocs": 8, "runtime": 2.0},
            origin="t",
        )
        assert rec["params"] == {"x": 1.0}

    def test_flat_record_gathers_params(self):
        rec = normalize_record(
            {"app_name": "a", "x": 1.0, "y": 2.0, "nprocs": 8, "runtime": 2.0},
            origin="t",
        )
        assert rec["params"] == {"x": 1.0, "y": 2.0}


class TestExtractors:
    def test_jsonl_chunks_respect_chunk_rows(self, tmp_path, dataset):
        path = write_jsonl(tmp_path / "runs.jsonl", dataset)
        chunks = list(JSONLExtractor(path).chunks(chunk_rows=13))
        assert all(len(c) <= 13 for c in chunks)
        assert sum(len(c) for c in chunks) == len(dataset)

    def test_jsonl_bad_line_reports_file_and_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json at all\n')
        with pytest.raises(DatasetFormatError, match=r"bad\.jsonl:2"):
            list(JSONLExtractor(path).chunks(chunk_rows=10))

    def test_jsonl_skips_blank_lines(self, tmp_path, dataset):
        path = write_jsonl(tmp_path / "runs.jsonl", dataset)
        text = path.read_text().replace("\n", "\n\n", 3)
        path.write_text(text)
        total = sum(len(c) for c in JSONLExtractor(path).chunks(chunk_rows=50))
        assert total == len(dataset)

    def test_csv_requires_nprocs_and_runtime(self, tmp_path):
        path = tmp_path / "runs.csv"
        path.write_text("alpha,beta\n1,2\n")
        with pytest.raises(DatasetFormatError, match="nprocs"):
            list(CSVExtractor(path).chunks(chunk_rows=10))

    def test_record_stream_extractor_is_single_use(self, dataset):
        ex = RecordStreamExtractor(iter([]))
        list(ex.chunks(chunk_rows=10))
        with pytest.raises(ConfigurationError):
            list(ex.chunks(chunk_rows=10))

    def test_extractor_for_path_by_suffix(self, tmp_path):
        assert isinstance(
            extractor_for_path(tmp_path / "x.jsonl"), JSONLExtractor
        )
        assert isinstance(
            extractor_for_path(tmp_path / "x.ndjson"), JSONLExtractor
        )
        assert isinstance(extractor_for_path(tmp_path / "x.csv"), CSVExtractor)
        with pytest.raises(DatasetFormatError):
            extractor_for_path(tmp_path / "x.xml")


class TestIngestPipeline:
    def test_clean_jsonl_round_trip(self, tmp_path, dataset):
        path = write_jsonl(tmp_path / "runs.jsonl", dataset)
        pipe = IngestPipeline(tmp_path / "store", chunk_rows=16)
        report = pipe.run(JSONLExtractor(path), source="batch")
        assert report.rows_read == len(dataset)
        assert report.rows_rejected == 0
        assert report.rows_appended == len(dataset)
        assert report.fingerprint == dataset_fingerprint(dataset)
        store = HistoryStore.open(tmp_path / "store")
        assert store.sources() == ["batch"]

    def test_value_garbage_rejected_and_counted(self, tmp_path, dataset):
        def mutate(i, rec):
            if i == 0:
                rec["nprocs"] = 0  # invalid scale
            elif i == 1:
                rec["runtime"] = -3.0  # nonpositive
            elif i == 2:
                rec["params"]["alpha"] = "garbage"
            return rec

        path = write_jsonl(tmp_path / "runs.jsonl", dataset, mutate=mutate)
        pipe = IngestPipeline(tmp_path / "store", chunk_rows=16)
        report = pipe.run(JSONLExtractor(path))
        assert report.rows_read == len(dataset)
        assert report.rows_rejected == 3
        assert report.rows_appended == len(dataset) - 3
        assert report.rejections["bad_nprocs"] == 1
        assert report.rejections["nonpositive_runtime"] == 1
        assert report.rejections["bad_param_value"] == 1

    def test_missing_runtime_becomes_nan_then_sanitized(self, tmp_path, dataset):
        def mutate(i, rec):
            if i == 0:
                rec["runtime"] = None
            return rec

        path = write_jsonl(tmp_path / "runs.jsonl", dataset, mutate=mutate)
        pipe = IngestPipeline(tmp_path / "store", chunk_rows=100)
        report = pipe.run(JSONLExtractor(path))
        # the NaN row is accepted by the transform, then dropped by the
        # per-chunk sanitizer (nonfinite_runtime rule)
        assert report.rows_rejected == 0
        assert report.rows_dropped == 1
        assert report.rows_appended == len(dataset) - 1

    def test_app_mismatch_across_files_raises(self, tmp_path, dataset):
        other = make_dataset(10, app_name="different")
        p1 = write_jsonl(tmp_path / "a.jsonl", dataset)
        p2 = write_jsonl(tmp_path / "b.jsonl", other)
        pipe = IngestPipeline(tmp_path / "store")
        pipe.run(JSONLExtractor(p1))
        with pytest.raises(DataValidationError):
            pipe.run(JSONLExtractor(p2))

    def test_param_key_mismatch_raises_format_error(self, tmp_path, dataset):
        def mutate(i, rec):
            if i == 5:
                rec["params"] = {"weird": 1.0}
            return rec

        path = write_jsonl(tmp_path / "runs.jsonl", dataset, mutate=mutate)
        pipe = IngestPipeline(tmp_path / "store", chunk_rows=100)
        with pytest.raises(DatasetFormatError):
            pipe.run(JSONLExtractor(path))

    def test_all_rows_garbage_raises(self, tmp_path, dataset):
        def mutate(i, rec):
            rec["nprocs"] = 0
            return rec

        path = write_jsonl(tmp_path / "runs.jsonl", dataset, mutate=mutate)
        pipe = IngestPipeline(tmp_path / "store")
        with pytest.raises(DataValidationError):
            pipe.run(JSONLExtractor(path))

    def test_ingest_into_existing_store_appends(self, tmp_path, dataset):
        pipe = IngestPipeline(tmp_path / "store")
        pipe.run(DatasetExtractor(dataset))
        more = make_dataset(20, scales=(64,), seed=5)
        pipe2 = IngestPipeline(tmp_path / "store")
        pipe2.run(DatasetExtractor(more))
        store = HistoryStore.open(tmp_path / "store")
        assert store.n_rows == len(dataset) + len(more)
        assert 64 in store.scales

    def test_censor_limit_enables_censoring_rule(self, tmp_path, dataset):
        limit = float(np.median(dataset.runtime))
        pipe = IngestPipeline(
            tmp_path / "store", censor_limit=limit, repair="drop"
        )
        report = pipe.run(DatasetExtractor(dataset))
        censored = int(np.sum(dataset.runtime >= limit))
        assert report.rows_appended == len(dataset) - censored
        assert report.rows_dropped == censored

    def test_no_sanitize_keeps_nan_rows(self, tmp_path, dataset):
        def mutate(i, rec):
            if i == 0:
                rec["runtime"] = None
            return rec

        path = write_jsonl(tmp_path / "runs.jsonl", dataset, mutate=mutate)
        pipe = IngestPipeline(tmp_path / "store", sanitize=False)
        report = pipe.run(JSONLExtractor(path))
        assert report.rows_appended == len(dataset)
        store = HistoryStore.open(tmp_path / "store")
        out = store.to_dataset()
        assert np.isnan(out.runtime).sum() == 1

    def test_report_summary_and_to_dict(self, tmp_path, dataset):
        pipe = IngestPipeline(tmp_path / "store")
        report = pipe.run(DatasetExtractor(dataset))
        blob = json.dumps(report.to_dict())
        assert "rows_appended" in blob
        assert str(len(dataset)) in report.summary()
