"""Tests for the columnar history store (repro.store.HistoryStore)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data import dataset_fingerprint, load_dataset
from repro.errors import (
    ConfigurationError,
    DatasetFormatError,
    DataValidationError,
)
from repro.store import DEFAULT_CHUNK_ROWS, MANIFEST_NAME, HistoryStore

from .conftest import make_dataset


class TestCreateOpen:
    def test_create_then_open_round_trips_schema(self, tmp_path, dataset):
        store = HistoryStore.create(tmp_path / "s", "synth", ("alpha", "beta"))
        store.append(dataset)
        reopened = HistoryStore.open(tmp_path / "s")
        assert reopened.app_name == "synth"
        assert reopened.param_names == ("alpha", "beta")
        assert reopened.n_rows == len(dataset)
        assert reopened.fingerprint == store.fingerprint

    def test_create_refuses_existing_store(self, tmp_path):
        HistoryStore.create(tmp_path / "s", "synth", ("a",))
        with pytest.raises(ConfigurationError):
            HistoryStore.create(tmp_path / "s", "synth", ("a",))

    def test_open_non_store_dir_raises_format_error(self, tmp_path):
        (tmp_path / "d").mkdir()
        with pytest.raises(DatasetFormatError):
            HistoryStore.open(tmp_path / "d")

    def test_open_corrupt_manifest_raises_format_error(self, tmp_path):
        root = tmp_path / "s"
        root.mkdir()
        (root / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(DatasetFormatError):
            HistoryStore.open(root)

    def test_is_store(self, tmp_path):
        assert not HistoryStore.is_store(tmp_path)
        HistoryStore.create(tmp_path / "s", "synth", ("a",))
        assert HistoryStore.is_store(tmp_path / "s")

    def test_empty_store_properties(self, tmp_path):
        store = HistoryStore.create(tmp_path / "s", "synth", ("a",))
        assert store.n_rows == 0
        assert store.n_shards == 0
        assert store.scales == ()
        assert len(store) == 0


class TestAppend:
    def test_append_updates_rows_scales_and_fingerprint(self, tmp_path, dataset):
        store = HistoryStore.create(tmp_path / "s", "synth", ("alpha", "beta"))
        store.append(dataset)
        assert store.n_rows == len(dataset)
        assert store.scales == tuple(int(s) for s in dataset.scales)
        assert store.fingerprint == dataset_fingerprint(dataset)

    def test_append_wrong_app_raises(self, tmp_path, dataset):
        store = HistoryStore.create(tmp_path / "s", "other", ("alpha", "beta"))
        with pytest.raises(DataValidationError):
            store.append(dataset)

    def test_append_wrong_params_raises(self, tmp_path, dataset):
        store = HistoryStore.create(tmp_path / "s", "synth", ("x", "y"))
        with pytest.raises(DataValidationError):
            store.append(dataset)

    def test_source_tags_enable_exactly_once(self, tmp_path, dataset):
        store = HistoryStore.create(tmp_path / "s", "synth", ("alpha", "beta"))
        store.append(dataset, source="round-0/bundle-0")
        assert store.has_source("round-0/bundle-0")
        assert not store.has_source("round-0/bundle-1")
        assert store.sources() == ["round-0/bundle-0"]

    def test_deferred_fingerprints_stale_until_refreshed(self, tmp_path, dataset):
        store = HistoryStore.create(tmp_path / "s", "synth", ("alpha", "beta"))
        store.append(dataset, defer_fingerprints=True)
        assert store.fingerprint is None
        assert store.scale_fingerprints == {}
        fp = store.refresh_fingerprints()
        assert fp == dataset_fingerprint(dataset)

    def test_per_scale_fingerprints_match_sliced_datasets(self, tmp_path, dataset):
        store = HistoryStore.create(tmp_path / "s", "synth", ("alpha", "beta"))
        store.append(dataset)
        for scale, fp in store.scale_fingerprints.items():
            assert fp == dataset_fingerprint(dataset.at_scale(scale))

    def test_append_only_recomputes_touched_scales(self, tmp_path):
        a = make_dataset(30, scales=(8, 16), seed=1)
        b = make_dataset(10, scales=(32,), seed=2)
        store = HistoryStore.create(tmp_path / "s", "synth", ("alpha", "beta"))
        store.append(a)
        before = dict(store.scale_fingerprints)
        store.append(b)
        after = store.scale_fingerprints
        assert after[8] == before[8] and after[16] == before[16]
        assert after[32] == dataset_fingerprint(b.at_scale(32))


class TestReads:
    def test_to_dataset_round_trips_exactly(self, tmp_path, dataset):
        store = HistoryStore.create(tmp_path / "s", "synth", ("alpha", "beta"))
        store.append(dataset)
        out = store.to_dataset()
        np.testing.assert_array_equal(out.X, dataset.X)
        np.testing.assert_array_equal(out.nprocs, dataset.nprocs)
        np.testing.assert_array_equal(out.runtime, dataset.runtime)
        np.testing.assert_array_equal(out.model_runtime, dataset.model_runtime)
        np.testing.assert_array_equal(out.rep, dataset.rep)

    def test_scale_slice_matches_at_scales(self, tmp_path, dataset):
        store = HistoryStore.create(tmp_path / "s", "synth", ("alpha", "beta"))
        store.append(dataset)
        sliced = store.to_dataset(scales=[8, 32])
        expected = dataset.at_scales([8, 32])
        np.testing.assert_array_equal(sliced.X, expected.X)
        np.testing.assert_array_equal(sliced.runtime, expected.runtime)

    def test_to_dataset_empty_slice_raises(self, tmp_path, dataset):
        store = HistoryStore.create(tmp_path / "s", "synth", ("alpha", "beta"))
        store.append(dataset)
        with pytest.raises(DataValidationError):
            store.to_dataset(scales=[4096])

    def test_column_subset_returns_dict(self, tmp_path, dataset):
        store = HistoryStore.create(tmp_path / "s", "synth", ("alpha", "beta"))
        store.append(dataset)
        cols = store.to_dataset(columns=["nprocs", "runtime"])
        assert isinstance(cols, dict)
        assert set(cols) == {"nprocs", "runtime"}
        np.testing.assert_array_equal(cols["runtime"], dataset.runtime)

    def test_load_columns_unknown_column_raises(self, tmp_path, dataset):
        store = HistoryStore.create(tmp_path / "s", "synth", ("alpha", "beta"))
        store.append(dataset)
        with pytest.raises(ConfigurationError):
            store.load_columns(["bogus"])

    def test_iter_chunks_covers_every_row_in_order(self, tmp_path, dataset):
        store = HistoryStore.create(tmp_path / "s", "synth", ("alpha", "beta"))
        store.append(dataset)
        chunks = list(store.iter_chunks(chunk_rows=7))
        assert all(len(c["runtime"]) <= 7 for c in chunks)
        runtime = np.concatenate([c["runtime"] for c in chunks])
        np.testing.assert_array_equal(runtime, dataset.runtime)

    def test_iter_chunks_respects_scale_filter(self, tmp_path, dataset):
        store = HistoryStore.create(tmp_path / "s", "synth", ("alpha", "beta"))
        store.append(dataset)
        rows = sum(
            len(c["nprocs"])
            for c in store.iter_chunks(chunk_rows=11, scales=[16])
        )
        assert rows == int(np.sum(dataset.nprocs == 16))


class TestIntegrity:
    def test_verify_passes_on_clean_store(self, tmp_path, dataset):
        store = HistoryStore.create(tmp_path / "s", "synth", ("alpha", "beta"))
        store.append(dataset)
        summary = store.verify()
        assert summary["shards"] == 1
        assert summary["rows"] == len(dataset)
        assert not summary["stale"]

    def test_verify_detects_flipped_bytes(self, tmp_path, dataset):
        store = HistoryStore.create(tmp_path / "s", "synth", ("alpha", "beta"))
        store.append(dataset)
        victim = tmp_path / "s" / "shards" / "shard-00000" / "runtime.npy"
        blob = bytearray(victim.read_bytes())
        blob[-8] ^= 0xFF  # corrupt one float in place
        victim.write_bytes(bytes(blob))
        store = HistoryStore.open(tmp_path / "s")
        with pytest.raises(DatasetFormatError, match="hash"):
            store.verify()

    def test_verify_detects_truncated_shard(self, tmp_path, dataset):
        store = HistoryStore.create(tmp_path / "s", "synth", ("alpha", "beta"))
        store.append(dataset)
        manifest_path = tmp_path / "s" / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["shards"][0]["rows"] += 5
        manifest_path.write_text(json.dumps(manifest))
        store = HistoryStore.open(tmp_path / "s")
        with pytest.raises(DatasetFormatError, match="rows"):
            store.verify()


class TestExport:
    def test_export_json_round_trips_via_load_dataset(self, tmp_path, dataset):
        store = HistoryStore.create(tmp_path / "s", "synth", ("alpha", "beta"))
        store.append(dataset)
        out = store.export_json(tmp_path / "copy.json")
        loaded = load_dataset(out)
        assert dataset_fingerprint(loaded) == store.fingerprint

    def test_load_dataset_reads_store_directory(self, tmp_path, dataset):
        store = HistoryStore.create(tmp_path / "s", "synth", ("alpha", "beta"))
        store.append(dataset)
        loaded = load_dataset(tmp_path / "s")
        assert dataset_fingerprint(loaded) == store.fingerprint

    def test_export_parquet_gated_without_pyarrow(self, tmp_path, dataset):
        try:
            import pyarrow  # noqa: F401

            pytest.skip("pyarrow available; gate not exercised")
        except ImportError:
            pass
        store = HistoryStore.create(tmp_path / "s", "synth", ("alpha", "beta"))
        store.append(dataset)
        with pytest.raises(ConfigurationError, match="pyarrow"):
            store.export_parquet(tmp_path / "out.parquet")

    def test_describe_mentions_rows_and_sources(self, tmp_path, dataset):
        store = HistoryStore.create(tmp_path / "s", "synth", ("alpha", "beta"))
        store.append(dataset, source="batch-1")
        text = store.describe()
        assert "synth" in text
        assert str(len(dataset)) in text
        assert "batch-1" in text


class TestChunkDefaults:
    def test_default_chunk_rows_is_sane(self):
        assert DEFAULT_CHUNK_ROWS >= 1024
