"""Back-compat: version-1 stores (no ``wait_seconds`` column) still
load under the v2 schema, with zero waits synthesized everywhere the
column is asked for."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import DatasetFormatError
from repro.store import STORE_FORMAT_VERSION, HistoryStore

MANIFEST = "manifest.json"


@pytest.fixture()
def v1_store_root(tmp_path, tiny_history):
    """A store written by this build, then stripped down to v1 layout."""
    root = tmp_path / "hist"
    store = HistoryStore.create(
        root,
        app_name=tiny_history.app_name,
        param_names=tiny_history.param_names,
    )
    store.append(tiny_history)
    for column_file in (root / "shards").glob("*/wait_seconds.npy"):
        column_file.unlink()
    manifest = json.loads((root / MANIFEST).read_text())
    manifest["format_version"] = 1
    (root / MANIFEST).write_text(json.dumps(manifest))
    return root


def test_current_format_version_is_two():
    assert STORE_FORMAT_VERSION == 2


def test_v1_store_opens_and_synthesizes_zero_waits(
    v1_store_root, tiny_history
):
    store = HistoryStore.open(v1_store_root)
    assert store.n_rows == len(tiny_history)
    cols = store.load_columns(("nprocs", "runtime", "wait_seconds"))
    assert np.array_equal(
        np.sort(cols["runtime"]), np.sort(tiny_history.runtime)
    )
    assert np.array_equal(
        cols["wait_seconds"], np.zeros(len(tiny_history))
    )


def test_v1_store_streams_chunks_with_zero_waits(v1_store_root, tiny_history):
    store = HistoryStore.open(v1_store_root)
    rows = 0
    for chunk in store.iter_chunks(
        columns=("nprocs", "wait_seconds"), chunk_rows=16
    ):
        assert np.all(chunk["wait_seconds"] == 0.0)
        rows += len(chunk["nprocs"])
    assert rows == len(tiny_history)


def test_v1_store_materializes_dataset(v1_store_root, tiny_history):
    ds = HistoryStore.open(v1_store_root).to_dataset()
    assert len(ds) == len(tiny_history)
    assert np.array_equal(ds.wait_seconds, np.zeros(len(tiny_history)))


def test_missing_required_column_still_fails(v1_store_root):
    for column_file in (v1_store_root / "shards").glob("*/runtime.npy"):
        column_file.unlink()
    store = HistoryStore.open(v1_store_root)
    with pytest.raises(DatasetFormatError, match="runtime"):
        store.load_columns(("runtime",))


def test_future_format_version_is_refused(v1_store_root):
    manifest = json.loads((v1_store_root / MANIFEST).read_text())
    manifest["format_version"] = STORE_FORMAT_VERSION + 1
    (v1_store_root / MANIFEST).write_text(json.dumps(manifest))
    with pytest.raises(DatasetFormatError, match="newer"):
        HistoryStore.open(v1_store_root)
