"""Shared fixtures for the history-store test suite."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data import ExecutionDataset


def make_dataset(
    n: int = 60,
    scales=(8, 16, 32),
    seed: int = 0,
    app_name: str = "synth",
    param_names=("alpha", "beta"),
) -> ExecutionDataset:
    """Small deterministic synthetic history (no simulator needed).

    Every configuration is run at every scale (the two-level fit needs
    scale-complete configs), so the row count is rounded to a multiple
    of ``len(scales)``.
    """
    rng = np.random.default_rng(seed)
    n_configs = max(1, n // len(scales))
    configs = rng.uniform(1.0, 10.0, size=(n_configs, len(param_names)))
    X = np.repeat(configs, len(scales), axis=0)
    nprocs = np.tile(np.asarray(scales, dtype=np.int64), n_configs)
    n = len(nprocs)
    runtime = 100.0 / nprocs + X[:, 0] * 0.5 + rng.uniform(0.01, 0.1, n)
    return ExecutionDataset(
        app_name=app_name,
        param_names=tuple(param_names),
        X=X,
        nprocs=nprocs,
        runtime=runtime,
        model_runtime=runtime * 0.97,
        rep=np.zeros(n, dtype=np.int64),
    )


def write_jsonl(path, dataset: ExecutionDataset, mutate=None):
    """Dump a dataset as one-record-per-line JSON; ``mutate(i, rec)``
    can corrupt individual records for rejection tests."""
    with open(path, "w") as fh:
        for i in range(len(dataset)):
            rec = {
                "app_name": dataset.app_name,
                "params": {
                    name: float(v)
                    for name, v in zip(dataset.param_names, dataset.X[i])
                },
                "nprocs": int(dataset.nprocs[i]),
                "runtime": float(dataset.runtime[i]),
                "model_runtime": float(dataset.model_runtime[i]),
                "rep": int(dataset.rep[i]),
            }
            if mutate is not None:
                rec = mutate(i, rec)
                if rec is None:
                    continue
            fh.write(json.dumps(rec) + "\n")
    return path


@pytest.fixture
def dataset() -> ExecutionDataset:
    return make_dataset()
