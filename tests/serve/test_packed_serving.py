"""Schema-v2 packed sidecar: artifact I/O, registry fsck, serving path.

The contract under test: a v2 artifact carries a ``packed.npz`` sidecar
whose checksum is verified at load, the service answers cache misses
through the packed pipeline with predictions bit-identical to the
object path, and every degradation (v1 artifact, corrupt sidecar,
unpackable predictor, ``--no-packed``) fails safe instead of silently
serving wrong numbers.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.baselines import make_baseline
from repro.errors import (
    ArtifactIntegrityError,
    ConfigurationError,
)
from repro.serve import ModelArtifact, ModelRegistry, PredictionService
from repro.serve.artifacts import MANIFEST_NAME, PACKED_NAME

from .conftest import LARGE_SCALES, SMALL_SCALES


@pytest.fixture
def saved(artifact, tmp_path):
    path = tmp_path / "art"
    artifact.save(path)  # packed="auto" is the default
    return path


# -- artifact save/load ----------------------------------------------------


def test_save_writes_sidecar_and_manifest_entry(saved):
    assert (saved / PACKED_NAME).exists()
    manifest = json.loads((saved / MANIFEST_NAME).read_text())
    assert manifest["schema_version"] == 2
    entry = manifest["packed"]
    assert entry["file"] == PACKED_NAME
    assert entry["compressed"] is False
    assert len(entry["sha256"]) == 64


def test_loaded_sidecar_serves_bit_identical(saved, fitted_model, query_X):
    loaded = ModelArtifact.load(saved)
    assert loaded.packed_state == "sidecar"
    pp = loaded.packed_pipeline
    assert pp is not None
    scales = SMALL_SCALES + list(LARGE_SCALES)
    np.testing.assert_array_equal(
        pp.predict(query_X, scales),
        fitted_model.predict(query_X, scales),
    )


def test_compressed_sidecar_round_trips(artifact, fitted_model, query_X, tmp_path):
    path = tmp_path / "art"
    artifact.save(path, packed=True, packed_compress=True)
    manifest = json.loads((path / MANIFEST_NAME).read_text())
    assert manifest["packed"]["compressed"] is True
    loaded = ModelArtifact.load(path)
    np.testing.assert_array_equal(
        loaded.packed_pipeline.predict(query_X, LARGE_SCALES),
        fitted_model.predict(query_X, LARGE_SCALES),
    )


def test_corrupt_sidecar_refused_at_load(saved):
    blob = bytearray((saved / PACKED_NAME).read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    (saved / PACKED_NAME).write_bytes(bytes(blob))
    with pytest.raises(ArtifactIntegrityError, match="checksum"):
        ModelArtifact.load(saved)


def test_missing_sidecar_refused_at_load(saved):
    (saved / PACKED_NAME).unlink()
    with pytest.raises(ArtifactIntegrityError, match="unreadable"):
        ModelArtifact.load(saved)


def test_v1_manifest_without_packed_key_lazy_packs(
    saved, fitted_model, query_X
):
    # A v1 artifact predates the "packed" manifest key entirely.
    manifest = json.loads((saved / MANIFEST_NAME).read_text())
    del manifest["packed"]
    (saved / MANIFEST_NAME).write_text(json.dumps(manifest))
    (saved / PACKED_NAME).unlink()
    loaded = ModelArtifact.load(saved)
    assert loaded.info.packed is None
    assert loaded.packed_state == "unknown"
    pp = loaded.packed_pipeline  # packs lazily on first access
    assert loaded.packed_state == "lazy"
    np.testing.assert_array_equal(
        pp.predict(query_X, LARGE_SCALES),
        fitted_model.predict(query_X, LARGE_SCALES),
    )


def test_packed_false_writes_no_sidecar(artifact, tmp_path):
    path = tmp_path / "art"
    artifact.save(path, packed=False)
    assert not (path / PACKED_NAME).exists()
    manifest = json.loads((path / MANIFEST_NAME).read_text())
    assert manifest["packed"] is None
    assert ModelArtifact.load(path).info.packed is None


def test_overwrite_downgrade_unlinks_stale_sidecar(artifact, tmp_path):
    path = tmp_path / "art"
    artifact.save(path, packed=True)
    assert (path / PACKED_NAME).exists()
    artifact.save(path, overwrite=True, packed=False)
    assert not (path / PACKED_NAME).exists()
    assert ModelArtifact.load(path).info.packed is None


def _unpackable_artifact(tiny_history):
    baseline = make_baseline("direct-rf", seed=0).fit(tiny_history)
    return ModelArtifact.create(
        baseline,
        app_name=tiny_history.app_name,
        param_names=tiny_history.param_names,
        train=tiny_history,
    )


def test_packed_true_on_unpackable_predictor_raises(tiny_history, tmp_path):
    art = _unpackable_artifact(tiny_history)
    with pytest.raises(ConfigurationError):
        art.save(tmp_path / "art", packed=True)


def test_packed_auto_on_unpackable_predictor_degrades(
    tiny_history, tmp_path
):
    art = _unpackable_artifact(tiny_history)
    art.save(tmp_path / "art")  # auto: skips the sidecar, still saves
    loaded = ModelArtifact.load(tmp_path / "art")
    assert loaded.info.packed is None
    assert loaded.packed_pipeline is None
    assert loaded.packed_state == "unavailable"


def test_save_rejects_bad_packed_value(artifact, tmp_path):
    with pytest.raises(ConfigurationError):
        artifact.save(tmp_path / "art", packed="yes-please")


# -- registry --------------------------------------------------------------


def test_registry_fsck_quarantines_corrupt_sidecar(tmp_path, artifact):
    reg = ModelRegistry(tmp_path / "registry")
    reg.register("stencil", artifact)
    sidecar = tmp_path / "registry" / "stencil" / "v0001" / PACKED_NAME
    assert sidecar.exists()
    blob = bytearray(sidecar.read_bytes())
    blob[-1] ^= 0xFF
    sidecar.write_bytes(bytes(blob))
    report = reg.fsck(repair=False)
    assert any("sidecar" in reason for reason in report.damaged.values())


def test_registry_register_packed_false(tmp_path, artifact, query_X):
    reg = ModelRegistry(tmp_path / "registry")
    reg.register("stencil", artifact, packed=False)
    version_dir = tmp_path / "registry" / "stencil" / "v0001"
    assert version_dir.exists()
    assert not (version_dir / PACKED_NAME).exists()
    assert reg.fsck(repair=False).clean


# -- service ---------------------------------------------------------------


def test_service_miss_fill_is_bit_identical_to_object_path(
    saved, fitted_model, tiny_history, query_X
):
    loaded = ModelArtifact.load(saved)
    service = PredictionService(loaded, cache_size=0)
    params = {
        n: float(v)
        for n, v in zip(tiny_history.param_names, query_X[0])
    }
    got = service.predict_one(params, LARGE_SCALES)
    want = fitted_model.predict(query_X[:1], LARGE_SCALES)[0]
    assert got == [float(v) for v in want]
    assert service.metrics()["packed"] == "sidecar"


def test_service_use_packed_false_takes_object_path(
    saved, fitted_model, tiny_history, query_X, monkeypatch
):
    loaded = ModelArtifact.load(saved)
    service = PredictionService(loaded, cache_size=0, use_packed=False)
    pp = loaded.packed_pipeline
    monkeypatch.setattr(
        pp,
        "predict",
        lambda *a, **k: pytest.fail("packed path used with use_packed=False"),
    )
    params = {
        n: float(v)
        for n, v in zip(tiny_history.param_names, query_X[0])
    }
    want = fitted_model.predict(query_X[:1], LARGE_SCALES)[0]
    assert service.predict_one(params, LARGE_SCALES) == [
        float(v) for v in want
    ]
    assert service.metrics()["packed"] == "disabled"
