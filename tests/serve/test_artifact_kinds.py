"""Artifact-kind generalization: the wait-model kind round-trips
bit-exactly through every persistence surface (save/load, registry,
fsck, pin/prune), and an artifact claiming an unknown kind is refused
*before* its payload is unpickled."""

from __future__ import annotations

import hashlib
import json
import pickle

import numpy as np
import pytest

from repro.errors import ArtifactFormatError, PredictionRequestError
from repro.sched import WaitTimePredictor
from repro.serve import (
    KIND_WAIT_MODEL,
    KNOWN_KINDS,
    ModelArtifact,
    ModelRegistry,
    detect_kind,
)
from repro.serve.artifacts import (
    KIND_CURVE_FIT,
    KIND_DIRECT_ML,
    KIND_PICKLE,
    KIND_TWO_LEVEL,
    MANIFEST_NAME,
    PAYLOAD_NAME,
)

QUEUE_STATE = {
    "nodes": 16.0,
    "time_limit": 3600.0,
    "queue_depth": 10.0,
    "free_nodes": 30.0,
    "running_jobs": 8.0,
    "pending_node_seconds": 1.5e6,
}


class _Poison:
    """Pickles fine; unpickling it is the tripwire."""

    def __reduce__(self):
        return (_explode, ())


def _explode():
    raise RuntimeError("payload was unpickled")


def test_known_kinds_inventory():
    assert KNOWN_KINDS == {
        KIND_TWO_LEVEL,
        KIND_DIRECT_ML,
        KIND_CURVE_FIT,
        KIND_WAIT_MODEL,
        KIND_PICKLE,
    }


def test_detect_kind_wait_model(wait_predictor, fitted_model):
    assert detect_kind(wait_predictor) == KIND_WAIT_MODEL
    assert detect_kind(fitted_model) == KIND_TWO_LEVEL
    assert detect_kind(object()) == KIND_PICKLE


def test_unknown_kind_refused_before_unpickling(wait_artifact, tmp_path):
    path = wait_artifact.save(tmp_path / "art")
    poison = pickle.dumps(_Poison(), protocol=pickle.HIGHEST_PROTOCOL)
    (path / PAYLOAD_NAME).write_bytes(poison)
    manifest = json.loads((path / MANIFEST_NAME).read_text())
    manifest["kind"] = "alien-kind"
    # Keep the checksum consistent so the only possible refusal reason
    # is the kind itself, not an integrity failure.
    manifest["payload_sha256"] = hashlib.sha256(poison).hexdigest()
    (path / MANIFEST_NAME).write_text(json.dumps(manifest))
    with pytest.raises(ArtifactFormatError, match="unknown artifact kind"):
        ModelArtifact.load(path)


def test_wait_model_roundtrip_bit_identical(
    wait_predictor, wait_artifact, tmp_path
):
    path = wait_artifact.save(tmp_path / "art")
    loaded = ModelArtifact.load(path)
    assert loaded.info.kind == KIND_WAIT_MODEL
    assert not loaded.servable
    obs = [
        {**QUEUE_STATE, "nodes": float(n), "queue_depth": float(d)}
        for n in (1, 8, 64)
        for d in (0, 5, 40)
    ]
    assert np.array_equal(
        wait_predictor.predict(obs), loaded.predictor.predict(obs)
    )
    assert np.array_equal(
        wait_predictor.predict_quantiles(obs),
        loaded.predictor.predict_quantiles(obs),
    )


def test_wait_model_payload_not_a_raw_pickle_of_the_class(
    wait_artifact, tmp_path
):
    """The payload stores params + fitted state, not the instance."""
    path = wait_artifact.save(tmp_path / "art")
    decoded = pickle.loads((path / PAYLOAD_NAME).read_bytes())
    assert decoded["format"] == KIND_WAIT_MODEL
    assert set(decoded) == {"format", "params", "state"}
    assert not isinstance(decoded["state"], WaitTimePredictor)


def test_predict_wait_surface(wait_artifact):
    out = wait_artifact.predict_wait([QUEUE_STATE], quantiles=(0.1, 0.9))
    assert len(out["wait_seconds"]) == 1
    assert out["wait_seconds"][0] >= 0.0
    assert out["quantiles"] == [0.1, 0.9]
    lo, hi = out["wait_quantiles"][0]
    assert 0.0 <= lo <= hi + 1e-9


def test_predict_wait_refused_on_runtime_artifact(artifact):
    with pytest.raises(PredictionRequestError, match="wait"):
        artifact.predict_wait([QUEUE_STATE])


class TestRegistryParity:
    """Registry operations treat wait-model versions like any other."""

    @pytest.fixture()
    def mixed_registry(self, tmp_path, artifact, wait_artifact):
        reg = ModelRegistry(tmp_path / "reg")
        reg.register("stencil", artifact)
        reg.register("queue-wait", wait_artifact)
        reg.register("queue-wait", wait_artifact)
        return reg

    def test_register_load_both_kinds(self, mixed_registry):
        assert mixed_registry.models() == ["queue-wait", "stencil"]
        assert mixed_registry.versions("queue-wait") == [1, 2]
        loaded = mixed_registry.load("queue-wait")
        assert loaded.info.kind == KIND_WAIT_MODEL
        assert loaded.predictor.is_fitted

    def test_pin_resolves_wait_model(self, mixed_registry):
        mixed_registry.pin("queue-wait", 1)
        assert mixed_registry.resolve("queue-wait") == 1
        mixed_registry.unpin("queue-wait")
        assert mixed_registry.resolve("queue-wait") == 2

    def test_prune_wait_model_versions(self, mixed_registry):
        removed = mixed_registry.prune("queue-wait", keep_last=1)
        assert removed == {"queue-wait": [1]}
        assert mixed_registry.versions("queue-wait") == [2]

    def test_fsck_clean_with_mixed_kinds(self, mixed_registry):
        report = mixed_registry.fsck()
        assert report.clean

    def test_fsck_quarantines_corrupt_wait_model(self, mixed_registry):
        payload = mixed_registry.path("queue-wait", 2) / PAYLOAD_NAME
        blob = payload.read_bytes()
        payload.write_bytes(blob[:-1] + bytes([blob[-1] ^ 1]))
        report = mixed_registry.fsck(repair=True)
        assert not report.clean
        assert mixed_registry.versions("queue-wait") == [1]
        # The healthy runtime model is untouched.
        assert mixed_registry.versions("stencil") == [1]
