"""Fixtures for the serving-layer tests.

The fitted model and its artifact are session-scoped (fitting is the
slow part); tests that mutate artifacts on disk re-save into their own
tmp_path first.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TwoLevelModel
from repro.sched import QueueConfig, QueueSimulator, WaitTimePredictor
from repro.serve import ModelArtifact, ModelRegistry

SMALL_SCALES = [32, 64, 128, 256]
LARGE_SCALES = [512, 1024]


@pytest.fixture(scope="session")
def fitted_model(tiny_history):
    return TwoLevelModel(
        small_scales=SMALL_SCALES, n_clusters=2, random_state=0
    ).fit(tiny_history)


@pytest.fixture(scope="session")
def artifact(tiny_history, fitted_model):
    return ModelArtifact.create(
        fitted_model,
        app_name=tiny_history.app_name,
        param_names=tiny_history.param_names,
        train=tiny_history,
    )


@pytest.fixture(scope="session")
def query_X(tiny_history):
    """A handful of held-out query configurations."""
    rng = np.random.default_rng(99)
    lo = tiny_history.X.min(axis=0)
    hi = tiny_history.X.max(axis=0)
    return np.round(lo + (hi - lo) * rng.uniform(size=(4, len(lo))))


@pytest.fixture
def registry(tmp_path, artifact):
    reg = ModelRegistry(tmp_path / "registry")
    reg.register("stencil", artifact)
    return reg


@pytest.fixture(scope="session")
def wait_predictor():
    """A small fitted wait model (queue build is the slow part)."""
    sim = QueueSimulator(
        QueueConfig(n_nodes=128, arrival_rate=0.006, horizon=43200.0, seed=2)
    )
    probes = sim.sample_observations(150, seed=4)
    return WaitTimePredictor(n_estimators=8, random_state=0).fit(
        [o.features() for o in probes],
        [o.wait_seconds for o in probes],
    )


@pytest.fixture(scope="session")
def wait_artifact(wait_predictor):
    return ModelArtifact.create(
        wait_predictor,
        app_name="queue",
        param_names=[],
        n_train_rows=150,
        metadata={"n_nodes": "128"},
    )
