"""Scheduler-intelligence endpoints (/wait, /whatif, /waste) and bearer
authentication, over a real socket."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve import ModelRegistry, create_server
from repro.store import HistoryStore

from .conftest import SMALL_SCALES

TOKEN = "sched-secret"


@pytest.fixture
def sched_registry(tmp_path, artifact, wait_artifact):
    reg = ModelRegistry(tmp_path / "registry")
    reg.register("stencil", artifact)
    reg.register("queue-wait", wait_artifact)
    return reg


@pytest.fixture
def history_store(tmp_path, tiny_history):
    store = HistoryStore.create(
        tmp_path / "hist",
        app_name=tiny_history.app_name,
        param_names=tiny_history.param_names,
    )
    store.append(tiny_history)
    return store


def _serve(srv):
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    return thread


@pytest.fixture
def server(sched_registry, history_store):
    srv = create_server(
        sched_registry, port=0, auth_token=TOKEN, waste_store=history_store
    )
    thread = _serve(srv)
    yield srv
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=5)


@pytest.fixture
def open_server(sched_registry):
    srv = create_server(sched_registry, port=0)
    thread = _serve(srv)
    yield srv
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=5)


def _url(server, path):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def _get(server, path):
    try:
        with urllib.request.urlopen(_url(server, path), timeout=10) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _post(server, path, payload, token=TOKEN):
    headers = {"Content-Type": "application/json"}
    if token is not None:
        headers["Authorization"] = f"Bearer {token}"
    req = urllib.request.Request(
        _url(server, path),
        data=json.dumps(payload).encode(),
        headers=headers,
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def _params(tiny_history, row=0):
    return {
        name: float(v)
        for name, v in zip(tiny_history.param_names, tiny_history.X[row])
    }


QUEUE_STATE = {
    "queue_depth": 12.0,
    "free_nodes": 40.0,
    "running_jobs": 9.0,
    "pending_node_seconds": 2.0e6,
}


class TestAuthentication:
    def test_post_without_token_is_401(self, server, tiny_history):
        code, body, headers = _post(
            server,
            "/predict",
            {"params": _params(tiny_history), "scales": SMALL_SCALES},
            token=None,
        )
        assert code == 401
        assert "bearer" in body["message"].lower()
        assert headers.get("WWW-Authenticate") == 'Bearer realm="repro"'

    def test_post_with_wrong_token_is_401(self, server, tiny_history):
        code, _, _ = _post(
            server,
            "/predict",
            {"params": _params(tiny_history), "scales": SMALL_SCALES},
            token="wrong",
        )
        assert code == 401

    @pytest.mark.parametrize(
        "path", ["/wait", "/whatif", "/waste", "/batch"]
    )
    def test_every_post_route_guarded(self, server, path):
        code, _, _ = _post(server, path, {}, token=None)
        assert code == 401

    def test_get_routes_exempt(self, server):
        assert _get(server, "/healthz")[0] == 200
        assert _get(server, "/models")[0] == 200

    def test_post_with_token_succeeds(self, server, tiny_history):
        code, body, _ = _post(
            server,
            "/predict",
            {
                "model": "stencil",
                "params": _params(tiny_history),
                "scales": SMALL_SCALES,
            },
        )
        assert code == 200
        assert len(body["predictions"]) == len(SMALL_SCALES)

    def test_no_token_configured_means_open(self, open_server, tiny_history):
        code, _, _ = _post(
            open_server,
            "/predict",
            {
                "model": "stencil",
                "params": _params(tiny_history),
                "scales": SMALL_SCALES,
            },
            token=None,
        )
        assert code == 200


class TestWaitEndpoint:
    def test_single_queue_state(self, server):
        code, body, _ = _post(
            server,
            "/wait",
            {
                "model": "queue-wait",
                "queue_state": {**QUEUE_STATE, "nodes": 16, "time_limit": 3600},
            },
        )
        assert code == 200
        assert body["version"] == 1
        assert len(body["wait_seconds"]) == 1
        assert body["wait_seconds"][0] >= 0.0

    def test_observation_batch_with_quantiles(self, server):
        obs = [
            {**QUEUE_STATE, "nodes": n, "time_limit": 3600.0}
            for n in (4, 16, 64)
        ]
        code, body, _ = _post(
            server,
            "/wait",
            {
                "model": "queue-wait",
                "observations": obs,
                "quantiles": [0.1, 0.9],
            },
        )
        assert code == 200
        assert len(body["wait_seconds"]) == 3
        assert body["quantiles"] == [0.1, 0.9]
        assert len(body["wait_quantiles"]) == 3
        for lo, hi in body["wait_quantiles"]:
            assert 0.0 <= lo <= hi + 1e-9

    def test_runtime_model_kind_is_400(self, server):
        code, body, _ = _post(
            server,
            "/wait",
            {"model": "stencil", "queue_state": QUEUE_STATE},
        )
        assert code == 400
        assert "not a wait model" in body["message"]

    def test_missing_observations_is_400(self, server):
        code, _, _ = _post(server, "/wait", {"model": "queue-wait"})
        assert code == 400

    def test_unknown_model_is_404(self, server):
        code, _, _ = _post(
            server, "/wait", {"model": "nope", "queue_state": QUEUE_STATE}
        )
        assert code == 404


class TestWhatIfEndpoint:
    def test_frontier_and_recommendation(self, server, tiny_history):
        code, body, _ = _post(
            server,
            "/whatif",
            {
                "model": "stencil",
                "params": _params(tiny_history),
                "scales": SMALL_SCALES,
                "wait_model": "queue-wait",
                "queue_state": QUEUE_STATE,
            },
        )
        assert code == 200
        assert body["model"] == "stencil"
        assert body["wait_model"] == "queue-wait"
        assert len(body["points"]) == len(SMALL_SCALES)
        assert 1 <= len(body["frontier"]) <= len(SMALL_SCALES)
        costs = [p["core_hours"] for p in body["frontier"]]
        turns = [p["turnaround"] for p in body["frontier"]]
        assert costs == sorted(costs)
        assert all(a > b for a, b in zip(turns, turns[1:]))
        assert body["recommended"] is not None
        for p in body["points"]:
            assert p["wait_p90"] is not None

    def test_without_wait_model(self, server, tiny_history):
        code, body, _ = _post(
            server,
            "/whatif",
            {
                "model": "stencil",
                "params": _params(tiny_history),
                "scales": SMALL_SCALES,
                "deadline": 1e9,
            },
        )
        assert code == 200
        assert body["wait_model"] is None
        assert all(p["wait"] == 0.0 for p in body["points"])
        assert body["recommended"]["feasible"]

    def test_bad_limit_margin_is_400(self, server, tiny_history):
        code, _, _ = _post(
            server,
            "/whatif",
            {
                "model": "stencil",
                "params": _params(tiny_history),
                "scales": SMALL_SCALES,
                "limit_margin": 0.1,
            },
        )
        assert code == 400

    def test_missing_param_is_400(self, server):
        code, _, _ = _post(
            server,
            "/whatif",
            {"model": "stencil", "params": {}, "scales": SMALL_SCALES},
        )
        assert code == 400


class TestWasteEndpoint:
    def test_report_over_store(self, server, tiny_history):
        code, body, _ = _post(server, "/waste", {})
        assert code == 200
        assert body["totals"]["runs"] == len(tiny_history.runtime)
        scales = {b["nprocs"] for b in body["buckets"]}
        assert scales == set(SMALL_SCALES)

    def test_time_limit_changes_accounting(self, server, tiny_history):
        limit = float(sorted(tiny_history.runtime)[len(tiny_history.runtime) // 2])
        code, body, _ = _post(
            server, "/waste", {"time_limit": limit, "chunk_rows": 16}
        )
        assert code == 200
        assert body["totals"]["censored_runs"] > 0
        assert body["totals"]["overrequest_core_seconds"] > 0

    def test_bad_time_limit_is_400(self, server):
        code, _, _ = _post(server, "/waste", {"time_limit": -5})
        assert code == 400

    def test_unconfigured_store_is_400(self, open_server):
        code, body, _ = _post(open_server, "/waste", {}, token=None)
        assert code == 400
        assert "store" in body["message"].lower()
