"""PredictionService: validation, caching, batching, and metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import CurveFitBaseline
from repro.errors import ConfigurationError, PredictionRequestError
from repro.serve import ModelArtifact, PredictionService

from .conftest import LARGE_SCALES, SMALL_SCALES


@pytest.fixture
def service(artifact):
    return PredictionService(artifact, name="stencil", version=1)


def _params(tiny_history, row=0):
    return dict(zip(tiny_history.param_names, tiny_history.X[row]))


# -- validation ------------------------------------------------------------


def test_validate_params_orders_by_schema(service, tiny_history):
    params = _params(tiny_history)
    shuffled = dict(reversed(list(params.items())))
    np.testing.assert_array_equal(
        service.validate_params(shuffled), tiny_history.X[0]
    )


@pytest.mark.parametrize(
    "mutate, match",
    [
        (lambda p: p.pop(next(iter(p))), "Missing parameters"),
        (lambda p: p.update(bogus=1), "Unknown parameters"),
        (lambda p: p.update({next(iter(p)): "abc"}), "must be numbers"),
        (lambda p: p.update({next(iter(p)): float("nan")}), "not finite"),
        (lambda p: p.update({next(iter(p)): float("inf")}), "not finite"),
    ],
)
def test_bad_params_raise(service, tiny_history, mutate, match):
    params = _params(tiny_history)
    mutate(params)
    with pytest.raises(PredictionRequestError, match=match):
        service.validate_params(params)


def test_params_must_be_mapping(service):
    with pytest.raises(PredictionRequestError, match="mapping"):
        service.validate_params([1, 2, 3])


@pytest.mark.parametrize("bad", [[], [0], [-4], [1.5], ["512"], "512", [True]])
def test_bad_scales_raise(service, bad):
    with pytest.raises(PredictionRequestError):
        service.validate_scales(bad)


def test_scales_accept_integral_floats(service):
    assert service.validate_scales([512.0, 1024]) == [512, 1024]


def test_non_servable_artifact_is_refused(tiny_history):
    _, S = tiny_history.runtime_matrix(SMALL_SCALES)
    cf = CurveFitBaseline(SMALL_SCALES).fit(S)
    art = ModelArtifact.create(
        cf,
        app_name=tiny_history.app_name,
        param_names=tiny_history.param_names,
    )
    with pytest.raises(ConfigurationError, match="cannot serve"):
        PredictionService(art)


# -- prediction + cache ----------------------------------------------------


def test_predict_one_matches_model(service, fitted_model, tiny_history):
    params = _params(tiny_history)
    got = service.predict_one(params, LARGE_SCALES)
    want = fitted_model.predict(tiny_history.X[:1], LARGE_SCALES)[0]
    np.testing.assert_array_equal(got, want)


def test_cache_hits_and_misses_are_counted(service, tiny_history):
    params = _params(tiny_history)
    service.predict_one(params, [512, 1024])
    m = service.metrics()
    assert m["cache"] == {
        "size": 2,
        "capacity": service.cache_size,
        "hits": 0,
        "misses": 2,
        "hit_rate": 0.0,
    }
    service.predict_one(params, [512, 1024])
    m = service.metrics()
    assert m["cache"]["hits"] == 2
    assert m["cache"]["misses"] == 2
    assert m["cache"]["hit_rate"] == 0.5
    assert m["requests"] == 2
    assert m["predictions"] == 4


def test_cached_values_are_bit_identical(service, tiny_history):
    params = _params(tiny_history)
    first = service.predict_one(params, LARGE_SCALES)
    second = service.predict_one(params, LARGE_SCALES)
    assert first == second


def test_batch_matches_singles(service, tiny_history):
    reqs = [
        (_params(tiny_history, i), LARGE_SCALES) for i in range(0, 12, 4)
    ]
    batched = service.predict_batch(reqs)
    service.clear_cache()
    singles = [service.predict_one(p, s) for p, s in reqs]
    assert batched == singles


def test_batch_miss_fill_is_one_model_call(service, tiny_history, monkeypatch):
    # Cache misses are answered by the packed pipeline when available.
    calls = []
    packed = service.artifact.packed_pipeline
    real = packed.predict

    def spy(X, scales):
        calls.append((len(X), list(scales)))
        return real(X, scales)

    monkeypatch.setattr(packed, "predict", spy)
    # Rows 0 and 4 are distinct configs (the history has 4 rows per
    # config, one per scale).
    reqs = [
        (_params(tiny_history, 0), [512]),
        (_params(tiny_history, 4), [1024]),
        (_params(tiny_history, 0), [512, 2048]),
    ]
    service.predict_batch(reqs)
    # Distinct rows x union of missing scales, answered in one call.
    assert calls == [(2, [512, 1024, 2048])]


def test_bad_request_fails_whole_batch_without_side_effects(
    service, tiny_history
):
    reqs = [
        (_params(tiny_history, 0), [512]),
        ({"bogus": 1}, [512]),
    ]
    with pytest.raises(PredictionRequestError):
        service.predict_batch(reqs)
    m = service.metrics()
    assert m["requests"] == 0
    assert m["cache"]["size"] == 0


def test_empty_batch_returns_empty_list(service):
    assert service.predict_batch([]) == []
    # The empty request is still metered like any other.
    assert service.metrics()["requests"] == 1
    assert service.metrics()["predictions"] == 0


def test_lru_eviction(artifact, tiny_history):
    service = PredictionService(artifact, cache_size=2)
    a, b, c = (_params(tiny_history, i) for i in (0, 4, 8))  # distinct configs
    service.predict_one(a, [512])
    service.predict_one(b, [512])
    service.predict_one(a, [512])  # refresh a; b is now LRU
    service.predict_one(c, [512])  # evicts b
    service.reset_metrics()
    service.predict_one(a, [512])
    assert service.metrics()["cache"]["hits"] == 1
    service.predict_one(b, [512])
    assert service.metrics()["cache"]["misses"] == 1


def test_zero_cache_size_disables_caching(artifact, tiny_history):
    service = PredictionService(artifact, cache_size=0)
    params = _params(tiny_history)
    service.predict_one(params, [512])
    service.predict_one(params, [512])
    m = service.metrics()
    assert m["cache"]["size"] == 0
    assert m["cache"]["hits"] == 0
    assert m["cache"]["misses"] == 2


def test_cache_keys_include_version(artifact, tiny_history):
    s1 = PredictionService(artifact, version=1)
    s2 = PredictionService(artifact, version=2)
    params = _params(tiny_history)
    k1 = (s1.version, s1.validate_params(params).tobytes(), 512)
    k2 = (s2.version, s2.validate_params(params).tobytes(), 512)
    assert k1 != k2


# -- metrics ---------------------------------------------------------------


def test_metrics_latency_snapshot(service, tiny_history):
    for i in range(3):
        service.predict_one(_params(tiny_history, i), [512])
    lat = service.metrics()["latency"]
    assert lat["count"] == 3
    assert 0 <= lat["p50_ms"] <= lat["p95_ms"] <= lat["max_ms"]
    assert lat["mean_ms"] > 0


def test_reset_metrics_keeps_cache(service, tiny_history):
    params = _params(tiny_history)
    service.predict_one(params, [512])
    service.reset_metrics()
    m = service.metrics()
    assert m["requests"] == 0 and m["latency"] == {"count": 0}
    assert m["cache"]["size"] == 1  # cache survives the reset
    service.predict_one(params, [512])
    assert service.metrics()["cache"]["hits"] == 1
