"""Artifact round-trip and corruption tests.

The acceptance bar is *bit-identical* predictions: a loaded artifact
must return exactly the same floats as the live model it was saved
from, for every predictor kind the library ships.
"""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro.baselines import BASELINE_FACTORIES, CurveFitBaseline, make_baseline
from repro.core import TwoLevelModel
from repro.errors import (
    ArtifactFormatError,
    ArtifactIntegrityError,
    ArtifactVersionError,
    ConfigurationError,
    PredictionRequestError,
)
from repro.serve import SCHEMA_VERSION, ModelArtifact, detect_kind
from repro.serve.artifacts import (
    KIND_CURVE_FIT,
    KIND_DIRECT_ML,
    KIND_TWO_LEVEL,
    MANIFEST_NAME,
    PAYLOAD_NAME,
)

from .conftest import LARGE_SCALES, SMALL_SCALES


def _roundtrip(artifact, tmp_path):
    artifact.save(tmp_path / "art")
    return ModelArtifact.load(tmp_path / "art")


# -- round-trips -----------------------------------------------------------


def test_two_level_roundtrip_bit_identical(
    tiny_history, fitted_model, artifact, tmp_path, query_X
):
    loaded = _roundtrip(artifact, tmp_path)
    want = fitted_model.predict(query_X, LARGE_SCALES)
    got = loaded.predict_matrix(query_X, LARGE_SCALES)
    np.testing.assert_array_equal(got, want)
    assert loaded.info.kind == KIND_TWO_LEVEL
    assert loaded.info.app_name == tiny_history.app_name
    assert loaded.info.param_names == tuple(tiny_history.param_names)


@pytest.mark.parametrize("name", sorted(BASELINE_FACTORIES))
def test_every_baseline_roundtrip_bit_identical(
    name, tiny_history, tmp_path, query_X
):
    baseline = make_baseline(name, seed=0).fit(tiny_history)
    art = ModelArtifact.create(
        baseline,
        app_name=tiny_history.app_name,
        param_names=tiny_history.param_names,
        train=tiny_history,
    )
    loaded = _roundtrip(art, tmp_path)
    for p in LARGE_SCALES:
        np.testing.assert_array_equal(
            loaded.predictor.predict(query_X, p),
            baseline.predict(query_X, p),
        )
    np.testing.assert_array_equal(
        loaded.predict_matrix(query_X, LARGE_SCALES),
        np.column_stack([baseline.predict(query_X, p) for p in LARGE_SCALES]),
    )
    assert loaded.info.kind == KIND_DIRECT_ML


def test_curve_fit_roundtrip(tiny_history, tmp_path):
    _, S = tiny_history.runtime_matrix(SMALL_SCALES)
    cf = CurveFitBaseline(SMALL_SCALES).fit(S)
    art = ModelArtifact.create(
        cf,
        app_name=tiny_history.app_name,
        param_names=tiny_history.param_names,
    )
    loaded = _roundtrip(art, tmp_path)
    np.testing.assert_array_equal(
        loaded.predictor.predict(LARGE_SCALES), cf.predict(LARGE_SCALES)
    )
    assert loaded.info.kind == KIND_CURVE_FIT
    assert not loaded.servable
    with pytest.raises(PredictionRequestError, match="no parameter model"):
        loaded.predict_matrix(np.zeros((1, len(tiny_history.param_names))), [512])


def test_degraded_fit_roundtrip(tiny_history, tmp_path, query_X):
    # 16 is absent from the history -> degraded fit with a FallbackEvent.
    model = TwoLevelModel(
        small_scales=[16] + list(SMALL_SCALES),
        n_clusters=2,
        random_state=0,
        strict=False,
    ).fit(tiny_history)
    assert model.fit_report.degraded
    art = ModelArtifact.create(
        model,
        app_name=tiny_history.app_name,
        param_names=tiny_history.param_names,
        train=tiny_history,
    )
    assert art.info.degraded
    loaded = _roundtrip(art, tmp_path)
    assert loaded.info.degraded
    assert loaded.predictor.fit_report.degraded
    np.testing.assert_array_equal(
        loaded.predict_matrix(query_X, LARGE_SCALES),
        model.predict(query_X, LARGE_SCALES),
    )


def test_manifest_provenance(tiny_history, artifact, tmp_path):
    path = artifact.save(tmp_path / "art")
    manifest = json.loads((path / MANIFEST_NAME).read_text())
    assert manifest["schema_version"] == SCHEMA_VERSION
    assert manifest["app_name"] == tiny_history.app_name
    assert manifest["train_hash"].startswith("sha256:")
    assert manifest["n_train_rows"] == len(tiny_history)
    assert manifest["scales"] == list(SMALL_SCALES)
    assert manifest["payload_sha256"]
    # describe() renders without touching the payload
    assert tiny_history.app_name in artifact.info.describe()


# -- rejection paths -------------------------------------------------------


def test_corrupt_payload_is_refused(artifact, tmp_path):
    path = artifact.save(tmp_path / "art")
    payload = (path / PAYLOAD_NAME).read_bytes()
    (path / PAYLOAD_NAME).write_bytes(payload[:-1] + bytes([payload[-1] ^ 1]))
    with pytest.raises(ArtifactIntegrityError, match="refusing to unpickle"):
        ModelArtifact.load(path)


def test_truncated_payload_is_refused(artifact, tmp_path):
    path = artifact.save(tmp_path / "art")
    payload = (path / PAYLOAD_NAME).read_bytes()
    (path / PAYLOAD_NAME).write_bytes(payload[: len(payload) // 2])
    with pytest.raises(ArtifactIntegrityError):
        ModelArtifact.load(path)


def test_future_schema_version_is_refused(artifact, tmp_path):
    path = artifact.save(tmp_path / "art")
    manifest = json.loads((path / MANIFEST_NAME).read_text())
    manifest["schema_version"] = SCHEMA_VERSION + 1
    (path / MANIFEST_NAME).write_text(json.dumps(manifest))
    with pytest.raises(ArtifactVersionError, match="newer than"):
        ModelArtifact.load(path)


def test_missing_manifest_keys_are_refused(artifact, tmp_path):
    path = artifact.save(tmp_path / "art")
    manifest = json.loads((path / MANIFEST_NAME).read_text())
    del manifest["payload_sha256"]
    (path / MANIFEST_NAME).write_text(json.dumps(manifest))
    with pytest.raises(ArtifactFormatError, match="missing keys"):
        ModelArtifact.load(path)


def test_garbage_manifest_is_refused(artifact, tmp_path):
    path = artifact.save(tmp_path / "art")
    (path / MANIFEST_NAME).write_text("not json {")
    with pytest.raises(ArtifactFormatError, match="not valid JSON"):
        ModelArtifact.load(path)


def test_not_an_artifact_dir(tmp_path):
    with pytest.raises(ArtifactFormatError, match="no manifest.json"):
        ModelArtifact.load(tmp_path)


def test_non_payload_pickle_is_refused(artifact, tmp_path):
    path = artifact.save(tmp_path / "art")
    payload = pickle.dumps({"oops": 1})
    (path / PAYLOAD_NAME).write_bytes(payload)
    manifest = json.loads((path / MANIFEST_NAME).read_text())
    import hashlib

    manifest["payload_sha256"] = hashlib.sha256(payload).hexdigest()
    (path / MANIFEST_NAME).write_text(json.dumps(manifest))
    with pytest.raises(ArtifactFormatError, match="payload"):
        ModelArtifact.load(path)


def test_save_refuses_overwrite_by_default(artifact, tmp_path):
    artifact.save(tmp_path / "art")
    with pytest.raises(ArtifactFormatError, match="already exists"):
        artifact.save(tmp_path / "art")
    artifact.save(tmp_path / "art", overwrite=True)  # explicit is fine


def test_unfitted_model_cannot_become_artifact(tiny_history):
    with pytest.raises(ConfigurationError, match="unfitted"):
        ModelArtifact.create(
            TwoLevelModel(small_scales=SMALL_SCALES),
            app_name=tiny_history.app_name,
            param_names=tiny_history.param_names,
        )


def test_predict_matrix_validates_shape(artifact):
    with pytest.raises(PredictionRequestError, match="shape"):
        artifact.predict_matrix(np.zeros((2, 99)), [512])


def test_detect_kind(fitted_model):
    assert detect_kind(fitted_model) == KIND_TWO_LEVEL
    assert detect_kind(make_baseline("direct-rf")) == KIND_DIRECT_ML
    assert detect_kind(CurveFitBaseline(SMALL_SCALES)) == KIND_CURVE_FIT
    assert detect_kind(object()) == "pickle"
