"""HTTP server endpoint tests (real socket, ephemeral port)."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve import create_server

from .conftest import LARGE_SCALES


@pytest.fixture
def server(registry):
    srv = create_server(registry, port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=5)


def _url(server, path):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def _get(server, path):
    try:
        with urllib.request.urlopen(_url(server, path), timeout=10) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _post(server, path, payload):
    req = urllib.request.Request(
        _url(server, path),
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _params(tiny_history, row=0):
    return {
        name: float(v)
        for name, v in zip(tiny_history.param_names, tiny_history.X[row])
    }


def test_healthz(server):
    status, body = _get(server, "/healthz")
    assert status == 200
    assert body == {
        "status": "ok",
        "degraded": False,
        "models": ["stencil"],
        "stale": {},
    }


def test_models_listing(server, tiny_history):
    status, body = _get(server, "/models")
    assert status == 200
    (entry,) = body["models"]
    assert entry["name"] == "stencil"
    assert entry["version"] == 1 and entry["latest"]
    assert entry["manifest"]["app_name"] == tiny_history.app_name


def test_predict_roundtrip(server, tiny_history, fitted_model):
    status, body = _post(
        server,
        "/predict",
        {"params": _params(tiny_history), "scales": list(LARGE_SCALES)},
    )
    assert status == 200
    assert body["model"] == "stencil" and body["version"] == 1
    assert body["scales"] == list(LARGE_SCALES)
    want = fitted_model.predict(tiny_history.X[:1], LARGE_SCALES)[0]
    assert body["predictions"] == [float(v) for v in want]


def test_batch_roundtrip(server, tiny_history):
    reqs = [
        {"params": _params(tiny_history, i), "scales": [512, 1024]}
        for i in range(3)
    ]
    status, body = _post(server, "/batch", {"requests": reqs})
    assert status == 200
    assert len(body["results"]) == 3
    assert all(len(row) == 2 for row in body["results"])
    # Same request through /predict agrees bit-for-bit.
    status, single = _post(server, "/predict", reqs[0])
    assert single["predictions"] == body["results"][0]


def test_empty_batch_is_200_with_empty_results(server):
    status, body = _post(server, "/batch", {"requests": []})
    assert status == 200
    assert body["results"] == []


def test_batch_requests_must_be_a_list(server):
    status, body = _post(server, "/batch", {"requests": {}})
    assert status == 400
    assert body["error"] == "PredictionRequestError"


def test_server_serves_through_packed_pipeline(server, tiny_history):
    _post(
        server,
        "/predict",
        {"params": _params(tiny_history), "scales": [512]},
    )
    status, body = _get(server, "/metrics")
    assert status == 200
    assert body["server"]["use_packed"] is True
    (svc,) = body["services"]
    # The registry artifact was saved with the default packed="auto",
    # so the service answers misses from the mmap'd sidecar.
    assert svc["packed"] == "sidecar"


def test_metrics_after_traffic(server, tiny_history):
    payload = {"params": _params(tiny_history), "scales": [512]}
    _post(server, "/predict", payload)
    _post(server, "/predict", payload)
    status, body = _get(server, "/metrics")
    assert status == 200
    (svc,) = body["services"]
    assert svc["model"] == "stencil"
    assert svc["cache"]["hits"] == 1 and svc["cache"]["misses"] == 1
    assert svc["latency"]["count"] == 2


def test_missing_param_is_400(server, tiny_history):
    params = _params(tiny_history)
    params.pop(next(iter(params)))
    status, body = _post(
        server, "/predict", {"params": params, "scales": [512]}
    )
    assert status == 400
    assert body["error"] == "PredictionRequestError"
    assert "Missing parameters" in body["message"]


def test_unknown_model_is_404(server, tiny_history):
    status, body = _post(
        server,
        "/predict",
        {
            "params": _params(tiny_history),
            "scales": [512],
            "model": "nope",
        },
    )
    assert status == 404
    assert body["error"] == "RegistryError"


def test_unknown_version_is_404(server, tiny_history):
    status, body = _post(
        server,
        "/predict",
        {
            "params": _params(tiny_history),
            "scales": [512],
            "version": 99,
        },
    )
    assert status == 404


def test_unknown_route_is_404(server):
    status, body = _get(server, "/nope")
    assert status == 404
    assert body["error"] == "NotFound"
    status, body = _post(server, "/nope", {})
    assert status == 404


def test_invalid_json_body_is_400(server):
    req = urllib.request.Request(
        _url(server, "/predict"),
        data=b"not json",
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with pytest.raises(urllib.error.HTTPError) as exc_info:
        urllib.request.urlopen(req, timeout=10)
    assert exc_info.value.code == 400


def test_empty_body_is_400(server):
    req = urllib.request.Request(
        _url(server, "/predict"), data=b"", method="POST"
    )
    with pytest.raises(urllib.error.HTTPError) as exc_info:
        urllib.request.urlopen(req, timeout=10)
    assert exc_info.value.code == 400


def test_bad_batch_shape_is_400(server):
    status, body = _post(server, "/batch", {"requests": "nope"})
    assert status == 400
    status, body = _post(server, "/batch", {"requests": [1, 2]})
    assert status == 400


def test_model_field_optional_with_single_model(server, tiny_history):
    # The registry holds exactly one model, so 'model' can be omitted
    # (covered by test_predict_roundtrip) AND named explicitly:
    status, body = _post(
        server,
        "/predict",
        {
            "params": _params(tiny_history),
            "scales": [512],
            "model": "stencil",
        },
    )
    assert status == 200


def test_default_model_failfast_on_unknown(registry):
    from repro.errors import RegistryError

    with pytest.raises(RegistryError):
        create_server(registry, port=0, default_model="nope")
