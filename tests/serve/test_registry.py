"""Registry versioning, resolution, pinning, and deletion semantics."""

from __future__ import annotations

import pytest

from repro.errors import RegistryError
from repro.serve import ModelArtifact, ModelRegistry


def test_register_assigns_monotonic_versions(tmp_path, artifact):
    reg = ModelRegistry(tmp_path / "reg")
    assert reg.register("m", artifact) == 1
    assert reg.register("m", artifact) == 2
    assert reg.register("m", artifact) == 3
    assert reg.versions("m") == [1, 2, 3]
    assert reg.latest("m") == 3


def test_layout_is_human_inspectable(tmp_path, artifact):
    reg = ModelRegistry(tmp_path / "reg")
    reg.register("m", artifact)
    assert (tmp_path / "reg" / "m" / "v0001" / "manifest.json").exists()
    assert (tmp_path / "reg" / "m" / "v0001" / "payload.pkl").exists()


def test_resolution_order_explicit_pin_latest(tmp_path, artifact):
    reg = ModelRegistry(tmp_path / "reg")
    for _ in range(3):
        reg.register("m", artifact)
    assert reg.resolve("m") == 3  # latest
    reg.pin("m", 2)
    assert reg.pinned("m") == 2
    assert reg.resolve("m") == 2  # pin beats latest
    assert reg.resolve("m", 1) == 1  # explicit beats pin
    reg.unpin("m")
    assert reg.pinned("m") is None
    assert reg.resolve("m") == 3


def test_delete_version_and_model(tmp_path, artifact):
    reg = ModelRegistry(tmp_path / "reg")
    for _ in range(2):
        reg.register("m", artifact)
    reg.pin("m", 1)
    reg.delete("m", 1)  # deleting the pinned version clears the pin
    assert reg.versions("m") == [2]
    assert reg.pinned("m") is None
    reg.delete("m")
    assert reg.models() == []
    with pytest.raises(RegistryError, match="Unknown model"):
        reg.versions("m")


def test_delete_last_version_removes_model(tmp_path, artifact):
    reg = ModelRegistry(tmp_path / "reg")
    reg.register("m", artifact)
    reg.delete("m", 1)
    assert reg.models() == []


def test_versions_never_renumber_after_delete(tmp_path, artifact):
    reg = ModelRegistry(tmp_path / "reg")
    for _ in range(3):
        reg.register("m", artifact)
    reg.delete("m", 2)
    assert reg.versions("m") == [1, 3]
    assert reg.register("m", artifact) == 4


def test_unknown_lookups_raise_registry_error(registry):
    with pytest.raises(RegistryError, match="Unknown model"):
        registry.resolve("nope")
    with pytest.raises(RegistryError, match="no version 42"):
        registry.resolve("stencil", 42)
    with pytest.raises(RegistryError, match="no version"):
        registry.pin("stencil", 42)


@pytest.mark.parametrize(
    "bad", ["", ".hidden", "has space", "a/b", "x" * 65, "-lead"]
)
def test_invalid_names_are_rejected(tmp_path, artifact, bad):
    reg = ModelRegistry(tmp_path / "reg")
    with pytest.raises(RegistryError, match="Invalid model name"):
        reg.register(bad, artifact)


def test_missing_root_without_create(tmp_path):
    with pytest.raises(RegistryError, match="not a directory"):
        ModelRegistry(tmp_path / "absent", create=False)


def test_inspect_reads_manifest_only(registry, tiny_history):
    info = registry.inspect("stencil")
    assert info.app_name == tiny_history.app_name
    assert info.n_train_rows == len(tiny_history)


def test_load_roundtrips_through_registry(registry, artifact, query_X):
    loaded = registry.load("stencil")
    assert isinstance(loaded, ModelArtifact)
    import numpy as np

    np.testing.assert_array_equal(
        loaded.predict_matrix(query_X, [512]),
        artifact.predict_matrix(query_X, [512]),
    )


def test_entries_and_describe(registry, artifact):
    registry.register("stencil", artifact)
    registry.pin("stencil", 1)
    entries = registry.entries()
    assert [(e.name, e.version) for e in entries] == [
        ("stencil", 1),
        ("stencil", 2),
    ]
    assert entries[0].pinned and not entries[0].latest
    assert entries[1].latest and not entries[1].pinned
    text = registry.describe()
    assert "stencil" in text and "v0001" in text and "v0002" in text


def test_corrupt_pin_file(registry):
    (registry.root / "stencil" / "PINNED").write_text("garbage")
    with pytest.raises(RegistryError, match="Corrupt pin"):
        registry.pinned("stencil")


def test_staging_dirs_are_invisible(tmp_path, artifact):
    reg = ModelRegistry(tmp_path / "reg")
    reg.register("m", artifact)
    # Simulate a crashed registration: a leftover staging dir must not
    # show up as a version or break the next registration.
    (tmp_path / "reg" / "m" / ".staging-v0002").mkdir()
    assert reg.versions("m") == [1]
    assert reg.register("m", artifact) == 2


def test_prune_keeps_newest_and_reports_removals(tmp_path, artifact):
    reg = ModelRegistry(tmp_path / "reg")
    for _ in range(5):
        reg.register("m", artifact)
    removed = reg.prune("m", keep_last=2)
    assert removed == {"m": [1, 2, 3]}
    assert reg.versions("m") == [4, 5]
    # Version numbering keeps advancing past pruned versions.
    assert reg.register("m", artifact) == 6


def test_prune_never_deletes_pinned_version(tmp_path, artifact):
    reg = ModelRegistry(tmp_path / "reg")
    for _ in range(4):
        reg.register("m", artifact)
    reg.pin("m", 1)
    removed = reg.prune("m", keep_last=1)
    assert removed == {"m": [2, 3]}
    assert reg.versions("m") == [1, 4]  # pin survived outside the window
    assert reg.pinned("m") == 1


def test_prune_all_models_when_unnamed(tmp_path, artifact):
    reg = ModelRegistry(tmp_path / "reg")
    for _ in range(3):
        reg.register("a", artifact)
    reg.register("b", artifact)
    removed = reg.prune(keep_last=1)
    assert removed == {"a": [1, 2]}  # "b" had nothing to lose
    assert reg.versions("a") == [3]
    assert reg.versions("b") == [1]


def test_prune_noop_returns_empty(tmp_path, artifact):
    reg = ModelRegistry(tmp_path / "reg")
    reg.register("m", artifact)
    assert reg.prune("m", keep_last=3) == {}
    assert reg.versions("m") == [1]


def test_prune_rejects_nonpositive_retention(tmp_path, artifact):
    reg = ModelRegistry(tmp_path / "reg")
    reg.register("m", artifact)
    with pytest.raises(RegistryError, match="keep_last"):
        reg.prune("m", keep_last=0)
