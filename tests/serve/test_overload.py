"""Overload hardening: rate limiting, deadlines, circuit breaker,
stale-while-revalidate fallback, and hot reload.

Unit tests drive :class:`TokenBucket` / :class:`CircuitBreaker` with a
fake clock; integration tests hit a real socket server whose latest
artifact is corrupted on disk.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from contextlib import contextmanager

import pytest

from repro.chaos import corrupt_file
from repro.serve import CircuitBreaker, TokenBucket, create_server


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestTokenBucket:
    def test_burst_then_throttle(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refill_restores_admission(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1, clock=clock)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)  # 2 tokens/s * 0.5s = 1 token
        assert bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
        clock.advance(100.0)
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_retry_after_is_time_to_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1, clock=clock)
        bucket.try_acquire()
        assert bucket.retry_after() == pytest.approx(0.5)
        clock.advance(0.25)
        assert bucket.retry_after() == pytest.approx(0.25)

    def test_snapshot_counts_traffic(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2, clock=clock)
        for _ in range(3):
            bucket.try_acquire()
        snap = bucket.snapshot()
        assert snap["allowed"] == 2 and snap["throttled"] == 1
        assert snap["rate"] == 1.0 and snap["burst"] == 2.0

    def test_default_burst_is_at_least_one(self):
        assert TokenBucket(rate=0.5).burst == 1.0
        assert TokenBucket(rate=8.0).burst == 8.0

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate=1.0, burst=0.5)


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=2, cooldown=10.0, clock=clock)
        assert breaker.state == CircuitBreaker.CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_failure_count(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=2, cooldown=10.0, clock=clock)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_allows_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # everyone else waits on it

    def test_probe_success_recloses(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(5.0)
        assert breaker.state == CircuitBreaker.OPEN  # cooldown restarted
        clock.advance(5.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.trips == 1  # a re-open is not a new trip

    def test_snapshot(self):
        breaker = CircuitBreaker(threshold=3, cooldown=2.0, clock=FakeClock())
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap == {
            "state": "closed", "failures": 1, "threshold": 3,
            "cooldown": 2.0, "trips": 0,
        }

    def test_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker(cooldown=0.0)


# -- integration over a real socket ---------------------------------------


@contextmanager
def _serve(registry, **kwargs):
    srv = create_server(registry, port=0, **kwargs)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5)


def _url(server, path):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def _get(server, path):
    try:
        with urllib.request.urlopen(_url(server, path), timeout=10) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def _post(server, path, payload):
    req = urllib.request.Request(
        _url(server, path),
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def _params(tiny_history, row=0):
    return {
        name: float(v)
        for name, v in zip(tiny_history.param_names, tiny_history.X[row])
    }


class TestRateLimiting:
    def test_over_budget_is_429_with_retry_after(self, registry, tiny_history):
        payload = {"params": _params(tiny_history), "scales": [512]}
        # rate so slow that nothing refills during the test
        with _serve(registry, rate=0.001, burst=1) as srv:
            status, _, _ = _post(srv, "/predict", payload)
            assert status == 200
            status, body, headers = _post(srv, "/predict", payload)
            assert status == 429
            assert body["error"] == "RateLimitedError"
            assert float(headers["Retry-After"]) > 0
            # health and metrics routes are never rate limited
            assert _get(srv, "/healthz")[0] == 200
            _, metrics, _ = _get(srv, "/metrics")
            limiter = metrics["server"]["rate_limiter"]
            assert limiter["allowed"] == 1 and limiter["throttled"] == 1

    def test_batch_route_is_gated_too(self, registry, tiny_history):
        reqs = {"requests": [{"params": _params(tiny_history), "scales": [512]}]}
        with _serve(registry, rate=0.001, burst=1) as srv:
            assert _post(srv, "/batch", reqs)[0] == 200
            assert _post(srv, "/batch", reqs)[0] == 429

    def test_no_limiter_by_default(self, registry, tiny_history):
        payload = {"params": _params(tiny_history), "scales": [512]}
        with _serve(registry) as srv:
            for _ in range(5):
                assert _post(srv, "/predict", payload)[0] == 200
            assert _get(srv, "/metrics")[1]["server"]["rate_limiter"] is None


class TestDeadline:
    def test_blown_deadline_is_504(self, registry, tiny_history):
        payload = {"params": _params(tiny_history), "scales": [512]}
        with _serve(registry, deadline=0.0) as srv:
            status, body, _ = _post(srv, "/predict", payload)
            assert status == 504
            assert body["error"] == "DeadlineExceededError"

    def test_generous_deadline_passes(self, registry, tiny_history):
        payload = {"params": _params(tiny_history), "scales": [512]}
        with _serve(registry, deadline=30.0) as srv:
            assert _post(srv, "/predict", payload)[0] == 200


class TestStaleFallback:
    def test_corrupt_latest_serves_previous_version_stale(
        self, registry, artifact, tiny_history
    ):
        registry.register("stencil", artifact)  # v2 = latest
        corrupt_file(
            registry.root / "stencil" / "v0002" / "payload.pkl",
            mode="bitflip", seed=1,
        )
        payload = {"params": _params(tiny_history), "scales": [512]}
        with _serve(registry, breaker_threshold=1) as srv:
            status, body, _ = _post(srv, "/predict", payload)
            assert status == 200
            assert body["version"] == 1
            assert body["stale"] is True
            assert body["requested_version"] == 2
            status, health, _ = _get(srv, "/healthz")
            assert health["status"] == "degraded" and health["degraded"]
            assert health["stale"] == {
                "stencil": {"requested": 2, "serving": 1}
            }
            _, metrics, _ = _get(srv, "/metrics")
            breaker = metrics["server"]["breakers"]["stencil"]
            assert breaker["state"] == "open"
            assert metrics["server"]["degraded"] is True

    def test_only_version_corrupt_is_503(self, registry, tiny_history):
        corrupt_file(
            registry.root / "stencil" / "v0001" / "payload.pkl",
            mode="bitflip", seed=1,
        )
        payload = {"params": _params(tiny_history), "scales": [512]}
        with _serve(registry) as srv:
            status, body, _ = _post(srv, "/predict", payload)
            assert status == 503
            assert body["error"] == "ServiceUnavailableError"

    def test_allow_stale_false_fails_instead_of_falling_back(
        self, registry, artifact, tiny_history
    ):
        registry.register("stencil", artifact)
        corrupt_file(
            registry.root / "stencil" / "v0002" / "payload.pkl",
            mode="bitflip", seed=1,
        )
        payload = {"params": _params(tiny_history), "scales": [512]}
        with _serve(registry, allow_stale=False) as srv:
            status, body, _ = _post(srv, "/predict", payload)
            assert status == 503

    def test_recovery_clears_the_stale_flag(
        self, registry, artifact, tiny_history
    ):
        registry.register("stencil", artifact)
        victim = registry.root / "stencil" / "v0002" / "payload.pkl"
        intact = victim.read_bytes()
        corrupt_file(victim, mode="bitflip", seed=1)
        payload = {"params": _params(tiny_history), "scales": [512]}
        with _serve(
            registry, breaker_threshold=3, reload_interval=0.0
        ) as srv:
            assert _post(srv, "/predict", payload)[1]["stale"] is True
            victim.write_bytes(intact)  # "operator restores the artifact"
            status, body, _ = _post(srv, "/predict", payload)
            assert status == 200
            assert body["version"] == 2 and "stale" not in body
            assert _get(srv, "/healthz")[1]["degraded"] is False


class TestHotReload:
    def test_new_version_picked_up_without_restart(
        self, registry, artifact, tiny_history
    ):
        payload = {"params": _params(tiny_history), "scales": [512]}
        with _serve(registry, reload_interval=0.0) as srv:
            assert _post(srv, "/predict", payload)[1]["version"] == 1
            registry.register("stencil", artifact)
            status, body, _ = _post(srv, "/predict", payload)
            assert status == 200 and body["version"] == 2
            assert srv.reloads == 1
            assert _get(srv, "/metrics")[1]["server"]["reloads"] == 1

    def test_pin_move_is_picked_up(self, registry, artifact, tiny_history):
        registry.register("stencil", artifact)
        payload = {"params": _params(tiny_history), "scales": [512]}
        with _serve(registry, reload_interval=0.0) as srv:
            assert _post(srv, "/predict", payload)[1]["version"] == 2
            registry.pin("stencil", 1)
            assert _post(srv, "/predict", payload)[1]["version"] == 1

    def test_long_interval_serves_cached_resolution(
        self, registry, artifact, tiny_history
    ):
        payload = {"params": _params(tiny_history), "scales": [512]}
        with _serve(registry, reload_interval=3600.0) as srv:
            assert _post(srv, "/predict", payload)[1]["version"] == 1
            registry.register("stencil", artifact)
            # within the interval the cached resolution stands
            assert _post(srv, "/predict", payload)[1]["version"] == 1

    def test_explicit_version_bypasses_the_cache(
        self, registry, artifact, tiny_history
    ):
        registry.register("stencil", artifact)
        payload = {
            "params": _params(tiny_history), "scales": [512], "version": 1
        }
        with _serve(registry, reload_interval=3600.0) as srv:
            assert _post(srv, "/predict", payload)[1]["version"] == 1
