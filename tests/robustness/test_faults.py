"""Tests for the fault injector."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.robustness import FaultInjector, FaultSpec, corrupt_runtimes


class TestFaultSpec:
    def test_defaults_are_no_faults(self):
        spec = FaultSpec()
        assert spec.nan_rate == 0.0 and spec.drop_scales == 0

    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_rates_validated(self, rate):
        with pytest.raises(ConfigurationError):
            FaultSpec(nan_rate=rate)

    def test_negative_drop_scales_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(drop_scales=-1)

    def test_runtime_corruption_splits_rate(self):
        spec = FaultSpec.runtime_corruption(0.3)
        assert spec.nan_rate == pytest.approx(0.1)
        assert spec.spike_rate == pytest.approx(0.1)
        assert spec.heavy_tail_rate == pytest.approx(0.1)


class TestInjection:
    def test_noop_spec_returns_identical_data(self, tiny_history):
        dirty, log = FaultInjector(FaultSpec(), seed=0).inject(tiny_history)
        np.testing.assert_array_equal(dirty.runtime, tiny_history.runtime)
        assert log.total_affected == 0

    def test_original_dataset_untouched(self, tiny_history):
        before = tiny_history.runtime.copy()
        FaultInjector(nan_rate=0.5, seed=1).inject(tiny_history)
        np.testing.assert_array_equal(tiny_history.runtime, before)

    def test_deterministic_in_seed(self, tiny_history):
        spec = FaultSpec(nan_rate=0.1, spike_rate=0.1, duplicate_rate=0.05)
        a, _ = FaultInjector(spec, seed=9).inject(tiny_history)
        b, _ = FaultInjector(spec, seed=9).inject(tiny_history)
        np.testing.assert_array_equal(a.runtime, b.runtime)
        c, _ = FaultInjector(spec, seed=10).inject(tiny_history)
        assert not np.array_equal(
            np.isnan(a.runtime), np.isnan(c.runtime)
        ) or not np.allclose(
            a.runtime[~np.isnan(a.runtime)], c.runtime[~np.isnan(c.runtime)]
        )

    def test_nan_rate_hits_expected_count(self, tiny_history):
        dirty, log = FaultInjector(nan_rate=0.25, seed=2).inject(tiny_history)
        expected = round(0.25 * len(tiny_history))
        assert int(np.isnan(dirty.runtime).sum()) == expected
        assert log.affected["nan_runtime"] == expected

    def test_spikes_inflate_runtimes(self, tiny_history):
        dirty, log = FaultInjector(
            spike_rate=0.2, spike_factor=10.0, seed=3
        ).inject(tiny_history)
        n_spiked = int((dirty.runtime > 5 * tiny_history.runtime).sum())
        assert n_spiked == log.affected["spike_runtime"] > 0

    def test_censoring_clips_at_limit(self, tiny_history):
        dirty, log = FaultInjector(censor_rate=0.2, seed=4).inject(tiny_history)
        limit = log.details["censor_limit"]
        assert np.nanmax(dirty.runtime) <= limit
        assert log.affected["censor_runtime"] > 0

    def test_explicit_censor_limit(self, tiny_history):
        limit = float(np.median(tiny_history.runtime))
        dirty, log = FaultInjector(
            censor_rate=0.0, censor_limit=limit, seed=4
        ).inject(tiny_history)
        assert np.nanmax(dirty.runtime) <= limit
        assert log.details["censor_limit"] == limit

    def test_censor_retries_append_resubmitted_rows(self, tiny_history):
        dirty, log = FaultInjector(
            censor_rate=0.2, censor_retries=3, censor_escalation=2.0,
            seed=4,
        ).inject(tiny_history)
        n_resub = log.affected["censor_resubmitted"]
        assert n_resub > 0
        assert len(dirty) == len(tiny_history) + n_resub
        limit = log.details["censor_limit"]
        # Killed attempts sit exactly at the base limit; successful
        # reruns fit under the escalated limit and got fresh rep ids.
        n_at_limit = int(np.sum(dirty.runtime == limit))
        assert n_at_limit == log.affected["censor_runtime"]
        resub = dirty.runtime[len(tiny_history):]
        assert np.all(resub <= limit * 2.0**3)
        assert np.all(dirty.rep[len(tiny_history):] > tiny_history.rep.max())

    def test_censor_retries_deterministic(self, tiny_history):
        spec = dict(censor_rate=0.2, censor_retries=2, censor_escalation=1.5)
        a, _ = FaultInjector(seed=4, **spec).inject(tiny_history)
        b, _ = FaultInjector(seed=4, **spec).inject(tiny_history)
        np.testing.assert_array_equal(a.runtime, b.runtime)
        np.testing.assert_array_equal(a.rep, b.rep)

    def test_censor_retry_spec_validation(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(censor_retries=-1)
        with pytest.raises(ConfigurationError):
            FaultSpec(censor_escalation=0.5)
        with pytest.raises(ConfigurationError):
            FaultSpec(resubmit_sigma=-0.1)

    def test_drop_scales_removes_interior_scale(self, tiny_history):
        dirty, log = FaultInjector(drop_scales=1, seed=5).inject(tiny_history)
        gone = log.details["dropped_scales"]
        assert len(gone) == 1
        remaining = set(int(s) for s in dirty.scales)
        assert gone[0] not in remaining
        # Endpoints survive so the scale range is preserved.
        assert {32, 256} <= remaining

    def test_duplicates_appended(self, tiny_history):
        dirty, log = FaultInjector(duplicate_rate=0.1, seed=6).inject(
            tiny_history
        )
        assert len(dirty) == len(tiny_history) + log.affected["duplicate_rows"]
        assert log.affected["duplicate_rows"] > 0

    def test_truncate_repeats(self, noisy_history):
        dirty, log = FaultInjector(
            truncate_repeat_rate=0.5, seed=7
        ).inject(noisy_history)
        assert log.affected["truncate_repeats"] > 0
        assert len(dirty) < len(noisy_history)

    def test_kwarg_overrides_build_spec(self, tiny_history):
        injector = FaultInjector(nan_rate=0.1, seed=0)
        assert injector.spec.nan_rate == 0.1

    def test_corrupt_runtimes_convenience(self, tiny_history):
        dirty, log = corrupt_runtimes(tiny_history, 0.3, seed=11)
        assert len(dirty) == len(tiny_history)
        assert log.total_affected > 0

    def test_log_summary_mentions_faults(self, tiny_history):
        _, log = FaultInjector(nan_rate=0.2, seed=1).inject(tiny_history)
        assert "nan_runtime" in log.summary()
