"""Rule-scoped sanitization, chunk-report merging, and informational
(non-degrading) fit-report events — the robustness surface the chunked
ETL (repro.store) builds on."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import ExecutionDataset
from repro.errors import ConfigurationError
from repro.robustness import ROW_LOCAL_RULES, sanitize_dataset
from repro.robustness.report import FitReport


def make_dirty(n=40, seed=0):
    """History with one NaN runtime, one NaN param, and duplicates."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(1, 10, size=(n, 2))
    nprocs = np.full(n, 8, dtype=np.int64)
    runtime = rng.uniform(1.0, 2.0, n)
    runtime[0] = np.nan
    X[1, 0] = np.nan
    X[3] = X[2]
    runtime[3] = runtime[2]  # exact duplicate of row 2
    return ExecutionDataset(
        app_name="synth",
        param_names=("a", "b"),
        X=X,
        nprocs=nprocs,
        runtime=runtime,
        model_runtime=runtime,
        rep=np.zeros(n, dtype=np.int64),
    )


class TestRuleScoping:
    def test_default_applies_all_drop_rules(self):
        clean, report = sanitize_dataset(make_dirty())
        assert report.dropped.get("nonfinite_runtime", 0) == 1
        assert report.dropped.get("nonfinite_params", 0) == 1
        assert report.dropped.get("duplicate_row", 0) == 1

    def test_row_local_subset_skips_global_rules(self):
        clean, report = sanitize_dataset(make_dirty(), rules=ROW_LOCAL_RULES)
        assert report.dropped.get("nonfinite_runtime", 0) == 1
        assert report.dropped.get("nonfinite_params", 0) == 1
        # duplicate detection is a whole-dataset rule; scoped out here
        assert "duplicate_row" not in report.dropped

    def test_unknown_rule_raises(self):
        with pytest.raises(ConfigurationError, match="Unknown sanitize"):
            sanitize_dataset(make_dirty(), rules=("bogus_rule",))

    def test_row_local_sanitize_is_chunking_invariant(self):
        dirty = make_dirty(60)
        whole, _ = sanitize_dataset(dirty, rules=ROW_LOCAL_RULES)
        parts = [
            sanitize_dataset(
                dirty.select(np.arange(a, b)), rules=ROW_LOCAL_RULES
            )[0]
            for a, b in ((0, 13), (13, 41), (41, 60))
        ]
        chunked = ExecutionDataset.concat(parts)
        np.testing.assert_array_equal(whole.X, chunked.X)
        np.testing.assert_array_equal(whole.runtime, chunked.runtime)


class TestReportMerge:
    def test_merge_sums_counts(self):
        dirty = make_dirty(60)
        _, whole = sanitize_dataset(dirty, rules=ROW_LOCAL_RULES)
        _, r1 = sanitize_dataset(
            dirty.select(np.arange(0, 30)), rules=ROW_LOCAL_RULES
        )
        _, r2 = sanitize_dataset(
            dirty.select(np.arange(30, 60)), rules=ROW_LOCAL_RULES
        )
        merged = r1.merge(r2)
        assert merged.rows_in == whole.rows_in
        assert merged.rows_out == whole.rows_out
        assert merged.dropped == whole.dropped


class TestNonDegradingEvents:
    def test_informational_event_does_not_degrade(self):
        report = FitReport()
        report.record("interpolation", "warm_start", "reused", degrades=False)
        assert not report.degraded
        assert len(report.events) == 1

    def test_degrading_event_still_degrades(self):
        report = FitReport()
        report.record("interpolation", "warm_start", "x", degrades=False)
        report.record("interpolation", "pooled_fallback", "y")
        assert report.degraded
