"""Tests for dataset validation and sanitization."""

import numpy as np
import pytest

from repro.data.dataset import ExecutionDataset
from repro.errors import DataValidationError
from repro.robustness import (
    FaultInjector,
    drop_invalid_rows,
    sanitize_dataset,
    validate_dataset,
)


def _with_runtime(ds, runtime):
    return ExecutionDataset(
        app_name=ds.app_name,
        param_names=ds.param_names,
        X=ds.X,
        nprocs=ds.nprocs,
        runtime=runtime,
        model_runtime=ds.model_runtime,
        rep=ds.rep,
    )


class TestValidate:
    def test_clean_dataset_passes_all_rules(self, tiny_history):
        report = validate_dataset(tiny_history)
        assert report.ok and report.clean
        assert "clean" in report.summary()
        report.raise_on_error()  # must not raise

    def test_nan_runtime_is_error(self, tiny_history):
        runtime = tiny_history.runtime.copy()
        runtime[[1, 5]] = np.nan
        report = validate_dataset(_with_runtime(tiny_history, runtime))
        result = report.by_rule("nonfinite_runtime")
        assert result.n_rows == 2 and set(result.row_indices) == {1, 5}
        assert not report.ok
        with pytest.raises(DataValidationError, match="nonfinite_runtime"):
            report.raise_on_error()

    def test_censoring_detected_from_repeated_maxima(self, tiny_history):
        runtime = tiny_history.runtime.copy()
        limit = float(np.quantile(runtime, 0.9))
        runtime[runtime >= limit] = limit
        report = validate_dataset(_with_runtime(tiny_history, runtime))
        result = report.by_rule("censored_runtime")
        assert result.n_rows >= 3
        assert report.ok  # warning severity, not error

    def test_explicit_censor_limit(self, tiny_history):
        limit = float(np.median(tiny_history.runtime))
        report = validate_dataset(tiny_history, censor_limit=limit)
        assert report.by_rule("censored_runtime").n_rows > 0

    def test_duplicates_detected(self, tiny_history):
        dup = tiny_history.merge(tiny_history.select(np.array([0, 3])))
        report = validate_dataset(dup)
        assert report.by_rule("duplicate_row").n_rows == 2

    def test_outlier_spike_detected(self, noisy_history):
        runtime = noisy_history.runtime.copy()
        runtime[0] *= 50.0
        report = validate_dataset(_with_runtime(noisy_history, runtime))
        assert 0 in report.by_rule("outlier_runtime").row_indices

    def test_sparse_scale_flagged(self, tiny_history):
        keep = np.ones(len(tiny_history), dtype=bool)
        at_64 = np.nonzero(tiny_history.nprocs == 64)[0]
        keep[at_64[1:]] = False  # leave a single row at p=64
        report = validate_dataset(tiny_history.select(keep))
        result = report.by_rule("sparse_scale")
        assert result.n_rows == 1
        assert "64" in result.message

    def test_report_to_dict_round_trips(self, tiny_history):
        d = validate_dataset(tiny_history).to_dict()
        assert d["ok"] and d["clean"]
        assert len(d["results"]) == 6


class TestSanitize:
    def test_clean_dataset_untouched(self, tiny_history):
        clean, report = sanitize_dataset(tiny_history)
        assert len(clean) == len(tiny_history)
        assert report.rows_dropped == 0
        assert "clean" in report.summary()

    def test_drops_nan_and_duplicates(self, tiny_history):
        dirty, _ = FaultInjector(
            nan_rate=0.1, duplicate_rate=0.1, seed=13
        ).inject(tiny_history)
        clean, report = sanitize_dataset(dirty)
        assert np.isfinite(clean.runtime).all()
        assert report.dropped["nonfinite_runtime"] > 0
        assert report.dropped["duplicate_row"] > 0
        assert report.rows_out == len(clean)

    def test_sparse_scale_never_dropped(self, tiny_history):
        keep = np.ones(len(tiny_history), dtype=bool)
        at_64 = np.nonzero(tiny_history.nprocs == 64)[0]
        keep[at_64[1:]] = False
        ds = tiny_history.select(keep)
        clean, report = sanitize_dataset(ds)
        assert 64 in clean.scales
        assert len(clean) == len(ds)
        assert report.validation.by_rule("sparse_scale").n_rows == 1

    def test_rules_do_not_double_count(self, tiny_history):
        # A duplicated row that is also censored may fire two rules; the
        # drop accounting must still sum to the rows actually removed.
        dirty, _ = FaultInjector(
            nan_rate=0.1, censor_rate=0.1, duplicate_rate=0.2, seed=17
        ).inject(tiny_history)
        clean, report = sanitize_dataset(dirty)
        assert sum(report.dropped.values()) == report.rows_dropped
        assert report.rows_in - report.rows_dropped == len(clean)

    def test_sanitized_injected_history_is_mostly_clean(self, noisy_history):
        dirty, _ = FaultInjector(
            nan_rate=0.1, spike_rate=0.1, spike_factor=20.0, seed=19
        ).inject(noisy_history)
        clean, _ = sanitize_dataset(dirty)
        report = validate_dataset(clean)
        assert report.ok
        assert report.by_rule("outlier_runtime").n_rows == 0


class TestImputeRepair:
    def test_nan_runtime_imputed_from_group_median(self, noisy_history):
        # noisy_history has 2 reps per (config, scale): killing one rep
        # leaves exactly one donor, so the median IS the donor value.
        runtime = noisy_history.runtime.copy()
        victim = 0
        donors = np.nonzero(
            np.all(noisy_history.X == noisy_history.X[victim], axis=1)
            & (noisy_history.nprocs == noisy_history.nprocs[victim])
        )[0]
        donors = donors[donors != victim]
        assert len(donors) == 1
        runtime[victim] = np.nan
        clean, report = sanitize_dataset(
            _with_runtime(noisy_history, runtime), repair="impute"
        )
        assert len(clean) == len(noisy_history)  # nothing dropped
        assert report.imputed == {"nonfinite_runtime": 1}
        assert report.rows_imputed == 1
        assert clean.runtime[victim] == noisy_history.runtime[donors[0]]

    def test_censored_runtime_imputed(self, noisy_history):
        # Censor exactly one rep (clamped to a ceiling above everything
        # else) so its un-censored partner rep remains as donor.
        runtime = noisy_history.runtime.copy()
        victim = 0
        donors = np.nonzero(
            np.all(noisy_history.X == noisy_history.X[victim], axis=1)
            & (noisy_history.nprocs == noisy_history.nprocs[victim])
        )[0]
        donors = donors[donors != victim]
        limit = float(runtime.max()) * 2.0
        runtime[victim] = limit
        clean, report = sanitize_dataset(
            _with_runtime(noisy_history, runtime),
            censor_limit=limit,
            repair="impute",
        )
        assert report.imputed == {"censored_runtime": 1}
        assert report.dropped["censored_runtime"] == 0
        assert len(clean) == len(noisy_history)
        assert clean.runtime[victim] == noisy_history.runtime[donors[0]]

    def test_no_donor_rows_are_still_dropped(self, tiny_history):
        # tiny_history has a single rep per (config, scale) — a NaN row
        # has no repeat group left to impute from.
        runtime = tiny_history.runtime.copy()
        runtime[3] = np.nan
        clean, report = sanitize_dataset(
            _with_runtime(tiny_history, runtime), repair="impute"
        )
        assert len(clean) == len(tiny_history) - 1
        assert report.imputed == {}
        assert report.dropped["nonfinite_runtime"] == 1

    def test_non_runtime_defects_still_dropped_in_impute_mode(
        self, noisy_history
    ):
        dup = noisy_history.merge(noisy_history.select(np.array([0, 3])))
        clean, report = sanitize_dataset(dup, repair="impute")
        assert report.dropped["duplicate_row"] == 2
        assert len(clean) == len(noisy_history)

    def test_flagged_rows_never_donate(self, noisy_history):
        # Kill BOTH reps of a group: neither can serve as the other's
        # donor, so both must be dropped, not imputed from garbage.
        runtime = noisy_history.runtime.copy()
        victim = 0
        group = np.nonzero(
            np.all(noisy_history.X == noisy_history.X[victim], axis=1)
            & (noisy_history.nprocs == noisy_history.nprocs[victim])
        )[0]
        runtime[group] = np.nan
        clean, report = sanitize_dataset(
            _with_runtime(noisy_history, runtime), repair="impute"
        )
        assert report.dropped["nonfinite_runtime"] == len(group)
        assert report.imputed == {}
        assert len(clean) == len(noisy_history) - len(group)

    def test_summary_mentions_imputation(self, noisy_history):
        runtime = noisy_history.runtime.copy()
        runtime[0] = np.nan
        _, report = sanitize_dataset(
            _with_runtime(noisy_history, runtime), repair="impute"
        )
        text = report.summary()
        assert "imputed 1 rows from repeat-group medians" in text
        assert "nonfinite_runtime=1" in text
        assert report.to_dict()["imputed"] == {"nonfinite_runtime": 1}

    def test_drop_mode_unchanged_by_default(self, noisy_history):
        runtime = noisy_history.runtime.copy()
        runtime[0] = np.nan
        clean, report = sanitize_dataset(_with_runtime(noisy_history, runtime))
        assert len(clean) == len(noisy_history) - 1
        assert report.imputed == {} and report.rows_imputed == 0

    def test_bad_repair_value_rejected(self, tiny_history):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="repair"):
            sanitize_dataset(tiny_history, repair="fix")

    def test_imputed_history_passes_validation(self, noisy_history):
        runtime = noisy_history.runtime.copy()
        runtime[[0, 7, 20]] = np.nan
        clean, _ = sanitize_dataset(
            _with_runtime(noisy_history, runtime), repair="impute"
        )
        assert validate_dataset(clean).ok


class TestDropInvalidRows:
    def test_noop_on_clean_data(self, tiny_history):
        clean, counts = drop_invalid_rows(tiny_history)
        assert clean is tiny_history and counts == {}

    def test_drops_only_nonfinite(self, tiny_history):
        runtime = tiny_history.runtime.copy()
        runtime[2] = np.nan
        clean, counts = drop_invalid_rows(_with_runtime(tiny_history, runtime))
        assert counts == {"nonfinite_runtime": 1}
        assert len(clean) == len(tiny_history) - 1
