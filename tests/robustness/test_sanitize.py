"""Tests for dataset validation and sanitization."""

import numpy as np
import pytest

from repro.data.dataset import ExecutionDataset
from repro.errors import DataValidationError
from repro.robustness import (
    FaultInjector,
    drop_invalid_rows,
    sanitize_dataset,
    validate_dataset,
)


def _with_runtime(ds, runtime):
    return ExecutionDataset(
        app_name=ds.app_name,
        param_names=ds.param_names,
        X=ds.X,
        nprocs=ds.nprocs,
        runtime=runtime,
        model_runtime=ds.model_runtime,
        rep=ds.rep,
    )


class TestValidate:
    def test_clean_dataset_passes_all_rules(self, tiny_history):
        report = validate_dataset(tiny_history)
        assert report.ok and report.clean
        assert "clean" in report.summary()
        report.raise_on_error()  # must not raise

    def test_nan_runtime_is_error(self, tiny_history):
        runtime = tiny_history.runtime.copy()
        runtime[[1, 5]] = np.nan
        report = validate_dataset(_with_runtime(tiny_history, runtime))
        result = report.by_rule("nonfinite_runtime")
        assert result.n_rows == 2 and set(result.row_indices) == {1, 5}
        assert not report.ok
        with pytest.raises(DataValidationError, match="nonfinite_runtime"):
            report.raise_on_error()

    def test_censoring_detected_from_repeated_maxima(self, tiny_history):
        runtime = tiny_history.runtime.copy()
        limit = float(np.quantile(runtime, 0.9))
        runtime[runtime >= limit] = limit
        report = validate_dataset(_with_runtime(tiny_history, runtime))
        result = report.by_rule("censored_runtime")
        assert result.n_rows >= 3
        assert report.ok  # warning severity, not error

    def test_explicit_censor_limit(self, tiny_history):
        limit = float(np.median(tiny_history.runtime))
        report = validate_dataset(tiny_history, censor_limit=limit)
        assert report.by_rule("censored_runtime").n_rows > 0

    def test_duplicates_detected(self, tiny_history):
        dup = tiny_history.merge(tiny_history.select(np.array([0, 3])))
        report = validate_dataset(dup)
        assert report.by_rule("duplicate_row").n_rows == 2

    def test_outlier_spike_detected(self, noisy_history):
        runtime = noisy_history.runtime.copy()
        runtime[0] *= 50.0
        report = validate_dataset(_with_runtime(noisy_history, runtime))
        assert 0 in report.by_rule("outlier_runtime").row_indices

    def test_sparse_scale_flagged(self, tiny_history):
        keep = np.ones(len(tiny_history), dtype=bool)
        at_64 = np.nonzero(tiny_history.nprocs == 64)[0]
        keep[at_64[1:]] = False  # leave a single row at p=64
        report = validate_dataset(tiny_history.select(keep))
        result = report.by_rule("sparse_scale")
        assert result.n_rows == 1
        assert "64" in result.message

    def test_report_to_dict_round_trips(self, tiny_history):
        d = validate_dataset(tiny_history).to_dict()
        assert d["ok"] and d["clean"]
        assert len(d["results"]) == 6


class TestSanitize:
    def test_clean_dataset_untouched(self, tiny_history):
        clean, report = sanitize_dataset(tiny_history)
        assert len(clean) == len(tiny_history)
        assert report.rows_dropped == 0
        assert "clean" in report.summary()

    def test_drops_nan_and_duplicates(self, tiny_history):
        dirty, _ = FaultInjector(
            nan_rate=0.1, duplicate_rate=0.1, seed=13
        ).inject(tiny_history)
        clean, report = sanitize_dataset(dirty)
        assert np.isfinite(clean.runtime).all()
        assert report.dropped["nonfinite_runtime"] > 0
        assert report.dropped["duplicate_row"] > 0
        assert report.rows_out == len(clean)

    def test_sparse_scale_never_dropped(self, tiny_history):
        keep = np.ones(len(tiny_history), dtype=bool)
        at_64 = np.nonzero(tiny_history.nprocs == 64)[0]
        keep[at_64[1:]] = False
        ds = tiny_history.select(keep)
        clean, report = sanitize_dataset(ds)
        assert 64 in clean.scales
        assert len(clean) == len(ds)
        assert report.validation.by_rule("sparse_scale").n_rows == 1

    def test_rules_do_not_double_count(self, tiny_history):
        # A duplicated row that is also censored may fire two rules; the
        # drop accounting must still sum to the rows actually removed.
        dirty, _ = FaultInjector(
            nan_rate=0.1, censor_rate=0.1, duplicate_rate=0.2, seed=17
        ).inject(tiny_history)
        clean, report = sanitize_dataset(dirty)
        assert sum(report.dropped.values()) == report.rows_dropped
        assert report.rows_in - report.rows_dropped == len(clean)

    def test_sanitized_injected_history_is_mostly_clean(self, noisy_history):
        dirty, _ = FaultInjector(
            nan_rate=0.1, spike_rate=0.1, spike_factor=20.0, seed=19
        ).inject(noisy_history)
        clean, _ = sanitize_dataset(dirty)
        report = validate_dataset(clean)
        assert report.ok
        assert report.by_rule("outlier_runtime").n_rows == 0


class TestDropInvalidRows:
    def test_noop_on_clean_data(self, tiny_history):
        clean, counts = drop_invalid_rows(tiny_history)
        assert clean is tiny_history and counts == {}

    def test_drops_only_nonfinite(self, tiny_history):
        runtime = tiny_history.runtime.copy()
        runtime[2] = np.nan
        clean, counts = drop_invalid_rows(_with_runtime(tiny_history, runtime))
        assert counts == {"nonfinite_runtime": 1}
        assert len(clean) == len(tiny_history) - 1
