"""Queue simulator: determinism, schedule invariants, probe semantics,
and the Executor integration contract (runtimes bit-identical with or
without a queue attached)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sched import QueueConfig, QueueSimulator
from repro.sim import ExecutionBudget, Executor, NoiseModel, RetryPolicy

from .conftest import BUSY_CONFIG


class TestQueueConfig:
    def test_defaults_valid(self):
        QueueConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_nodes": 0},
            {"arrival_rate": 0.0},
            {"arrival_rate": -1.0},
            {"horizon": 0.0},
            {"runtime_median": 0.0},
            {"runtime_sigma": -0.1},
            {"nodes_median": 0.5},
            {"limit_slack_min": 0.9},
            {"limit_slack_min": 2.0, "limit_slack_max": 1.5},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            QueueConfig(**kwargs)


class TestSchedule:
    def test_deterministic_rebuild(self, busy_queue):
        again = QueueSimulator(BUSY_CONFIG)
        assert np.array_equal(busy_queue._start, again._start)
        assert np.array_equal(busy_queue._prof_t, again._prof_t)
        assert np.array_equal(busy_queue._prof_free, again._prof_free)
        assert busy_queue.stats() == again.stats()

    def test_seed_changes_schedule(self, busy_queue):
        other = QueueSimulator(
            QueueConfig(
                n_nodes=BUSY_CONFIG.n_nodes,
                arrival_rate=BUSY_CONFIG.arrival_rate,
                horizon=BUSY_CONFIG.horizon,
                seed=BUSY_CONFIG.seed + 1,
            )
        )
        assert not np.array_equal(busy_queue._start, other._start)

    def test_capacity_never_exceeded(self, busy_queue):
        assert busy_queue._prof_free.min() >= 0
        # After the last event every job has finished: all nodes free.
        assert busy_queue._prof_free[-1] == BUSY_CONFIG.n_nodes

    def test_jobs_start_after_arrival(self, busy_queue):
        assert np.all(busy_queue._start >= busy_queue._arrival - 1e-9)

    def test_stats_sane(self, busy_queue):
        s = busy_queue.stats()
        assert s["n_jobs"] == busy_queue.n_background_jobs > 100
        assert 0.0 < s["utilization"] <= 1.0
        assert 0.0 <= s["p50_wait"] <= s["max_wait"]
        assert s["makespan"] > 0.0


class TestProbe:
    def test_probe_deterministic_across_instances(self, busy_queue):
        again = QueueSimulator(BUSY_CONFIG)
        for t, nodes, limit in [(500.0, 4, 1200.0), (40000.0, 128, 7200.0)]:
            a = busy_queue.probe(t, nodes, limit)
            b = again.probe(t, nodes, limit)
            assert a == b

    def test_probe_window_actually_fits(self, busy_queue):
        rng = np.random.default_rng(11)
        for _ in range(50):
            t = float(rng.uniform(0, BUSY_CONFIG.horizon))
            nodes = int(rng.integers(1, 128))
            limit = float(rng.uniform(300.0, 10800.0))
            obs = busy_queue.probe(t, nodes, limit)
            assert obs.start_time >= t
            assert obs.wait_seconds >= 0.0
            assert (
                busy_queue._window_min(
                    obs.start_time, obs.start_time + limit
                )
                >= nodes
            )

    def test_probe_earliest_no_gap_before_start(self, busy_queue):
        """A waiting probe could not have started at submission."""
        obs = None
        rng = np.random.default_rng(13)
        for _ in range(200):
            t = float(rng.uniform(0, BUSY_CONFIG.horizon * 0.8))
            cand = busy_queue.probe(t, 192, 7200.0)
            if cand.wait_seconds > 0:
                obs = cand
                break
        assert obs is not None, "busy queue never made a 192-node probe wait"
        assert (
            busy_queue._window_min(
                obs.submit_time, obs.submit_time + obs.time_limit
            )
            < obs.nodes
        )

    def test_wait_monotone_in_nodes(self, busy_queue):
        """Any window that fits N nodes also fits fewer."""
        for t in (1000.0, 20000.0, 60000.0):
            waits = [
                busy_queue.probe(t, n, 3600.0).wait_seconds
                for n in (1, 16, 64, 192, 256)
            ]
            assert waits == sorted(waits)

    def test_probe_validation(self, busy_queue):
        with pytest.raises(ConfigurationError):
            busy_queue.probe(0.0, 0, 600.0)
        with pytest.raises(ConfigurationError):
            busy_queue.probe(0.0, BUSY_CONFIG.n_nodes + 1, 600.0)
        with pytest.raises(ConfigurationError):
            busy_queue.probe(0.0, 4, 0.0)
        with pytest.raises(ConfigurationError):
            busy_queue.probe(-1.0, 4, 600.0)

    def test_submit_keyed_determinism(self, busy_queue):
        a = busy_queue.submit(key=123456789, nodes=8, time_limit=1800.0)
        b = busy_queue.submit(key=123456789, nodes=8, time_limit=1800.0)
        assert a == b
        c = busy_queue.submit(key=987654321, nodes=8, time_limit=1800.0)
        assert c.submit_time != a.submit_time

    def test_empty_background_trace(self):
        quiet = QueueSimulator(
            QueueConfig(n_nodes=64, arrival_rate=1e-9, horizon=3600.0, seed=0)
        )
        assert quiet.n_background_jobs == 0
        obs = quiet.probe(100.0, 64, 600.0)
        assert obs.wait_seconds == 0.0
        assert obs.free_nodes == 64
        assert obs.queue_depth == 0


class TestObservations:
    def test_sample_observations(self, busy_queue, probes):
        assert len(probes) == 300
        feats = probes[0].features()
        for key in (
            "nodes",
            "time_limit",
            "queue_depth",
            "free_nodes",
            "running_jobs",
            "pending_node_seconds",
            "wait_seconds",
        ):
            assert key in feats
        assert all(o.wait_seconds >= 0.0 for o in probes)
        assert all(1 <= o.nodes <= 64 for o in probes)
        # A busy queue must make at least some probes wait.
        assert sum(o.wait_seconds > 0 for o in probes) > 10
        # Same seed resamples identically.
        again = busy_queue.sample_observations(10, seed=5)
        assert again == probes[:10]

    def test_sample_observations_validation(self, busy_queue):
        with pytest.raises(ConfigurationError):
            busy_queue.sample_observations(0)


class TestExecutorIntegration:
    def _executors(self, **kwargs):
        queue = QueueSimulator(BUSY_CONFIG)
        plain = Executor(
            noise=NoiseModel(sigma=0.05, jitter_prob=0.0), seed=7, **kwargs
        )
        queued = Executor(
            noise=NoiseModel(sigma=0.05, jitter_prob=0.0),
            seed=7,
            queue=queue,
            **kwargs,
        )
        return plain, queued

    def test_runtimes_bit_identical_unbounded(self, stencil_app):
        plain, queued = self._executors()
        rng = np.random.default_rng(0)
        for rep in range(3):
            params = stencil_app.sample_params(rng)
            for nprocs in (8, 64):
                a = plain.run(stencil_app, params, nprocs, rep=rep)
                b = queued.run(stencil_app, params, nprocs, rep=rep)
                assert a.runtime == b.runtime
                assert a.wait_seconds == 0.0
                assert a.queue_state is None
                assert b.wait_seconds >= 0.0
                assert b.queue_state is not None

    def test_runtimes_bit_identical_bounded(self, stencil_app):
        budget = ExecutionBudget(limit=1e6)
        retry = RetryPolicy(max_attempts=2)
        plain, queued = self._executors(budget=budget, retry=retry)
        rng = np.random.default_rng(1)
        params = stencil_app.sample_params(rng)
        a = plain.run(stencil_app, params, 16)
        b = queued.run(stencil_app, params, 16)
        assert a.runtime == b.runtime

    def test_queue_wait_lands_in_record(self, stencil_app):
        _, queued = self._executors()
        rng = np.random.default_rng(2)
        waits = []
        for rep in range(20):
            params = stencil_app.sample_params(rng)
            r = queued.run(stencil_app, params, 200, rep=rep)
            waits.append(r.wait_seconds)
            if r.attempts is not None:
                assert r.wait_seconds == pytest.approx(
                    r.attempts.total_wait
                )
        assert any(w > 0 for w in waits)
