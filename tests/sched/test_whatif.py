"""What-if planner: frontier invariants, constraint handling, the
infeasible fallback, wait-model integration, and input validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sched import WaitTimePredictor, WhatIfPlanner

SCALES = [1, 2, 4, 8, 16, 32, 64, 128]


def amdahl_runtime(x, scales):
    """Strong-scaling stub: runtime falls then rises past scale 32."""
    s = np.asarray(scales, dtype=np.float64)
    return 10000.0 / s + 10.0 * s


class TestFrontier:
    def test_points_cover_all_scales(self):
        result = WhatIfPlanner(amdahl_runtime).evaluate([1.0], SCALES)
        assert [p.scale for p in result.points] == SCALES
        for p in result.points:
            assert p.turnaround == pytest.approx(p.wait + p.runtime)
            assert p.core_hours == pytest.approx(
                p.runtime * p.scale / 3600.0
            )
            assert p.wait == 0.0 and p.wait_p90 is None

    def test_frontier_monotone(self):
        result = WhatIfPlanner(amdahl_runtime).evaluate([1.0], SCALES)
        costs = [p.core_hours for p in result.frontier]
        turns = [p.turnaround for p in result.frontier]
        assert costs == sorted(costs)
        assert all(a > b for a, b in zip(turns, turns[1:]))

    def test_dominated_scales_excluded(self):
        # Past the runtime minimum (scale 32) both cost and turnaround
        # rise, so 64 and 128 are dominated.
        result = WhatIfPlanner(amdahl_runtime).evaluate([1.0], SCALES)
        frontier_scales = [p.scale for p in result.frontier]
        assert frontier_scales == [1, 2, 4, 8, 16, 32]

    def test_duplicate_scales_deduped(self):
        result = WhatIfPlanner(amdahl_runtime).evaluate([1.0], [8, 8, 4])
        assert [p.scale for p in result.points] == [4, 8]


class TestRecommendation:
    def test_unconstrained_picks_cheapest_frontier_point(self):
        result = WhatIfPlanner(amdahl_runtime).evaluate([1.0], SCALES)
        assert result.recommended.scale == 1
        assert result.recommended.feasible

    def test_deadline_picks_cheapest_fast_enough(self):
        # turnaround(1)=10010, (2)=5020, (4)=2540, (8)=1330; deadline
        # 3000 rules out 1 and 2, so the cheapest feasible is scale 4.
        result = WhatIfPlanner(amdahl_runtime).evaluate(
            [1.0], SCALES, deadline=3000.0
        )
        assert result.recommended.scale == 4
        assert result.recommended.meets_deadline

    def test_budget_excludes_expensive_scales(self):
        # core_hours(32)=3.6, (16)=3.5; budget 3.0 keeps scales <= 8.
        result = WhatIfPlanner(amdahl_runtime).evaluate(
            [1.0], SCALES, budget_core_hours=3.0
        )
        assert result.recommended.within_budget
        assert result.recommended.core_hours <= 3.0

    def test_infeasible_falls_back_to_fastest(self):
        result = WhatIfPlanner(amdahl_runtime).evaluate(
            [1.0], SCALES, deadline=1.0
        )
        assert result.recommended is not None
        assert not result.recommended.feasible
        assert result.recommended.turnaround == min(
            p.turnaround for p in result.points
        )

    def test_result_to_dict_round_trips(self):
        result = WhatIfPlanner(amdahl_runtime).evaluate(
            [1.0], SCALES, deadline=3000.0
        )
        d = result.to_dict()
        assert d["deadline"] == 3000.0
        assert d["recommended"]["scale"] == result.recommended.scale
        assert len(d["points"]) == len(SCALES)
        assert all(p["feasible"] in (True, False) for p in d["points"])


class TestWaitModel:
    def test_waits_from_queue_state_without_model(self):
        result = WhatIfPlanner(amdahl_runtime).evaluate(
            [1.0], [4, 8], queue_state={"wait_seconds": 120.0}
        )
        assert all(p.wait == 120.0 for p in result.points)

    def test_wait_model_fills_per_scale_waits(self, fitted_wait_model, probes):
        state = probes[0].features()
        planner = WhatIfPlanner(
            amdahl_runtime, wait_model=fitted_wait_model, limit_margin=1.5
        )
        result = planner.evaluate([1.0], SCALES, queue_state=state)
        for p in result.points:
            assert p.wait >= 0.0
            assert p.wait_p90 is not None and p.wait_p90 >= 0.0
        # The model must actually read the substituted nodes feature:
        # on a busy queue bigger requests cannot be uniformly cheaper.
        waits = [p.wait for p in result.points]
        assert len(set(waits)) > 1

    def test_nodes_for_mapping_used(self, fitted_wait_model):
        seen = []

        def nodes_for(scale):
            seen.append(scale)
            return max(1, scale // 4)

        WhatIfPlanner(
            amdahl_runtime,
            wait_model=fitted_wait_model,
            nodes_for=nodes_for,
        ).evaluate([1.0], [8, 32])
        assert seen == [8, 32]

    def test_unfitted_wait_model_rejected(self):
        with pytest.raises(ConfigurationError):
            WhatIfPlanner(amdahl_runtime, wait_model=WaitTimePredictor())


class TestValidation:
    def test_constructor_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            WhatIfPlanner("not callable")
        with pytest.raises(ConfigurationError):
            WhatIfPlanner(amdahl_runtime, limit_margin=0.5)

    def test_evaluate_rejects_bad_inputs(self):
        planner = WhatIfPlanner(amdahl_runtime)
        with pytest.raises(ConfigurationError):
            planner.evaluate([1.0], [])
        with pytest.raises(ConfigurationError):
            planner.evaluate([1.0], [0, 4])
        with pytest.raises(ConfigurationError):
            planner.evaluate([1.0], [4], deadline=0.0)
        with pytest.raises(ConfigurationError):
            planner.evaluate([1.0], [4], budget_core_hours=-1.0)

    def test_bad_runtime_predictions_rejected(self):
        wrong_shape = WhatIfPlanner(lambda x, s: np.ones(len(s) + 1))
        with pytest.raises(ConfigurationError):
            wrong_shape.evaluate([1.0], [4, 8])
        non_finite = WhatIfPlanner(lambda x, s: np.full(len(s), np.nan))
        with pytest.raises(ConfigurationError):
            non_finite.evaluate([1.0], [4, 8])
        negative = WhatIfPlanner(lambda x, s: -np.ones(len(s)))
        with pytest.raises(ConfigurationError):
            negative.evaluate([1.0], [4, 8])
