"""Wait-time predictor: fit/predict contracts, quantile bands,
validation, and the get_params/get_fitted_state persistence protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, NotFittedError
from repro.sched import WAIT_FEATURES, WaitTimePredictor


def _xy(probes):
    return [o.features() for o in probes], [o.wait_seconds for o in probes]


class TestConstruction:
    def test_bad_hyperparams(self):
        with pytest.raises(ConfigurationError):
            WaitTimePredictor(n_estimators=0)
        with pytest.raises(ConfigurationError):
            WaitTimePredictor(min_samples_leaf=0)

    def test_not_fitted_raises(self):
        model = WaitTimePredictor()
        assert not model.is_fitted
        state = {"queue_depth": 3.0}
        with pytest.raises(NotFittedError):
            model.predict([state])
        with pytest.raises(NotFittedError):
            model.predict_quantiles([state])
        with pytest.raises(NotFittedError):
            model.get_fitted_state()


class TestFeatures:
    def test_feature_vector_order_and_defaults(self):
        v = WaitTimePredictor.feature_vector({"nodes": 8, "free_nodes": 100})
        assert v.shape == (len(WAIT_FEATURES),)
        assert v[WAIT_FEATURES.index("nodes")] == 8.0
        assert v[WAIT_FEATURES.index("free_nodes")] == 100.0
        assert v[WAIT_FEATURES.index("queue_depth")] == 0.0

    def test_feature_matrix_accepts_ndarray(self):
        F = np.ones((3, len(WAIT_FEATURES)))
        assert np.array_equal(WaitTimePredictor.feature_matrix(F), F)

    def test_feature_matrix_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            WaitTimePredictor.feature_matrix(np.ones((3, 2)))
        with pytest.raises(ConfigurationError):
            WaitTimePredictor.feature_matrix([])


class TestFitPredict:
    def test_fit_validation(self, probes):
        obs, waits = _xy(probes)
        model = WaitTimePredictor(n_estimators=4)
        with pytest.raises(ConfigurationError):
            model.fit(obs, waits[:-1])
        with pytest.raises(ConfigurationError):
            model.fit(obs, [-1.0] * len(obs))
        with pytest.raises(ConfigurationError):
            model.fit(obs, [np.nan] * len(obs))

    def test_predictions_nonnegative_and_correlated(
        self, fitted_wait_model, probes
    ):
        obs, waits = _xy(probes)
        pred = fitted_wait_model.predict(obs)
        assert pred.shape == (len(obs),)
        assert np.all(pred >= 0.0)
        # In-sample fit on a forest must track the truth closely.
        y = np.asarray(waits)
        corr = np.corrcoef(np.log1p(pred), np.log1p(y))[0, 1]
        assert corr > 0.8

    def test_beats_constant_baseline(self, fitted_wait_model, probes):
        obs, waits = _xy(probes)
        y = np.asarray(waits)
        pred = fitted_wait_model.predict(obs)
        err_model = np.abs(np.log1p(pred) - np.log1p(y)).mean()
        err_mean = np.abs(
            np.log1p(np.full_like(y, y.mean())) - np.log1p(y)
        ).mean()
        assert err_model < err_mean

    def test_quantile_bands_ordered(self, fitted_wait_model, probes):
        obs, _ = _xy(probes[:40])
        q = fitted_wait_model.predict_quantiles(obs, quantiles=(0.1, 0.5, 0.9))
        assert q.shape == (40, 3)
        assert np.all(q >= 0.0)
        assert np.all(q[:, 0] <= q[:, 1] + 1e-9)
        assert np.all(q[:, 1] <= q[:, 2] + 1e-9)

    def test_quantile_validation(self, fitted_wait_model, probes):
        obs, _ = _xy(probes[:2])
        with pytest.raises(ConfigurationError):
            fitted_wait_model.predict_quantiles(obs, quantiles=())
        with pytest.raises(ConfigurationError):
            fitted_wait_model.predict_quantiles(obs, quantiles=(1.5,))


class TestPersistence:
    def test_round_trip_bit_exact(self, fitted_wait_model, probes):
        obs, _ = _xy(probes[:50])
        params = fitted_wait_model.get_params()
        state = fitted_wait_model.get_fitted_state()
        clone = WaitTimePredictor(**params).set_fitted_state(state)
        assert np.array_equal(
            fitted_wait_model.predict(obs), clone.predict(obs)
        )
        assert np.array_equal(
            fitted_wait_model.predict_quantiles(obs),
            clone.predict_quantiles(obs),
        )

    def test_set_fitted_state_rejects_feature_drift(self, fitted_wait_model):
        state = dict(fitted_wait_model.get_fitted_state())
        state["features"] = ["nodes", "bogus"]
        with pytest.raises(ConfigurationError):
            WaitTimePredictor().set_fitted_state(state)

    def test_set_fitted_state_rejects_missing_forest(self):
        with pytest.raises(ConfigurationError):
            WaitTimePredictor().set_fitted_state(
                {"features": list(WAIT_FEATURES), "forest": None}
            )
