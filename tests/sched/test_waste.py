"""Waste report: record-path attempt accounting, chunk-path math,
store streaming equivalence, and the totals/summary surface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sched import WasteReport
from repro.sim import ExecutionRecord
from repro.sim.budget import Attempt, AttemptTrace
from repro.store import HistoryStore


def _record(
    nprocs=8,
    runtime=100.0,
    censored=False,
    attempts=None,
    wait_seconds=0.0,
):
    return ExecutionRecord(
        app_name="stencil3d",
        params={"nx": 64.0},
        nprocs=nprocs,
        runtime=runtime,
        model_runtime=runtime,
        censored=censored,
        attempts=attempts,
        wait_seconds=wait_seconds,
    )


class TestRecordPath:
    def test_plain_record_counts_as_used(self):
        report = WasteReport().add_records([_record(runtime=100.0, nprocs=8)])
        (b,) = report.buckets
        assert b.runs == 1
        assert b.used_core_seconds == 100.0 * 8
        assert b.wasted_core_seconds == 0.0
        assert b.waste_fraction == 0.0

    def test_wait_is_charged_per_core(self):
        report = WasteReport().add_records(
            [_record(runtime=100.0, nprocs=8, wait_seconds=50.0)]
        )
        (b,) = report.buckets
        assert b.wait_core_seconds == 50.0 * 8
        assert b.waste_fraction == pytest.approx(400.0 / (800.0 + 400.0))

    def test_attempt_trace_kill_and_overrequest(self):
        # Attempt 0 killed at limit 60; attempt 1 finished in 80 under
        # limit 120 → killed 60, over-request 40, used 80 (× cores).
        trace = AttemptTrace(
            attempts=(
                Attempt(
                    index=0, seed=1, limit=60.0, runtime=60.0, timed_out=True
                ),
                Attempt(
                    index=1,
                    seed=2,
                    limit=120.0,
                    runtime=80.0,
                    timed_out=False,
                    backoff=30.0,
                ),
            )
        )
        report = WasteReport().add_records(
            [
                _record(
                    nprocs=4,
                    runtime=80.0,
                    attempts=trace,
                    wait_seconds=trace.total_wait,
                )
            ]
        )
        (b,) = report.buckets
        assert b.resubmitted_runs == 1
        assert b.killed_core_seconds == 60.0 * 4
        assert b.requested_core_seconds == (60.0 + 120.0) * 4
        assert b.overrequest_core_seconds == 40.0 * 4
        assert b.used_core_seconds == 80.0 * 4
        assert b.wait_core_seconds == 30.0 * 4

    def test_fully_censored_run_is_all_waste(self):
        trace = AttemptTrace(
            attempts=(
                Attempt(
                    index=0, seed=1, limit=60.0, runtime=60.0, timed_out=True
                ),
            )
        )
        report = WasteReport().add_records(
            [_record(nprocs=2, runtime=60.0, censored=True, attempts=trace)]
        )
        (b,) = report.buckets
        assert b.censored_runs == 1
        assert b.used_core_seconds == 0.0
        assert b.killed_core_seconds == 60.0 * 2
        assert b.waste_fraction == 1.0


class TestChunkPath:
    def _chunk(self):
        return {
            "nprocs": np.array([8, 8, 16]),
            "runtime": np.array([100.0, 200.0, 50.0]),
            "wait_seconds": np.array([10.0, 0.0, 5.0]),
        }

    def test_basic_aggregation(self):
        report = WasteReport().add_chunk("stencil3d", self._chunk())
        b8, b16 = report.buckets
        assert (b8.nprocs, b16.nprocs) == (8, 16)
        assert b8.runs == 2 and b16.runs == 1
        assert b8.used_core_seconds == (100.0 + 200.0) * 8
        assert b8.wait_core_seconds == 10.0 * 8
        assert b16.used_core_seconds == 50.0 * 16

    def test_missing_wait_column_defaults_to_zero(self):
        chunk = self._chunk()
        del chunk["wait_seconds"]
        report = WasteReport().add_chunk("stencil3d", chunk)
        assert all(b.wait_core_seconds == 0.0 for b in report.buckets)

    def test_time_limit_accounting(self):
        # Limit 150: run at 100 over-requests 50; run at 200 is recorded
        # past the limit → a censored kill, moved out of "used".
        report = WasteReport().add_chunk(
            "stencil3d", self._chunk(), time_limit=150.0
        )
        b8 = report.buckets[0]
        assert b8.requested_core_seconds == 150.0 * 8 * 2
        assert b8.overrequest_core_seconds == 50.0 * 8
        assert b8.censored_runs == 1
        assert b8.killed_core_seconds == 200.0 * 8
        assert b8.used_core_seconds == 100.0 * 8

    def test_time_limit_validation(self):
        with pytest.raises(ConfigurationError):
            WasteReport().add_chunk(
                "stencil3d", self._chunk(), time_limit=0.0
            )


class TestStorePath:
    @pytest.fixture()
    def store(self, tmp_path, tiny_history):
        st = HistoryStore.create(
            tmp_path / "store",
            app_name=tiny_history.app_name,
            param_names=tiny_history.param_names,
        )
        st.append(tiny_history)
        return st

    def test_add_store_matches_single_chunk(self, store, tiny_history):
        streamed = WasteReport().add_store(store, chunk_rows=7)
        direct = WasteReport().add_chunk(
            tiny_history.app_name,
            {
                "nprocs": tiny_history.nprocs,
                "runtime": tiny_history.runtime,
                "wait_seconds": tiny_history.wait_seconds,
            },
        )
        assert streamed.to_dict() == direct.to_dict()

    def test_add_store_with_limit(self, store, tiny_history):
        limit = float(np.median(tiny_history.runtime))
        report = WasteReport().add_store(store, time_limit=limit)
        t = report.totals()
        assert t["runs"] == len(tiny_history.runtime)
        assert t["censored_runs"] > 0
        assert t["killed_core_seconds"] > 0
        assert t["overrequest_core_seconds"] > 0


class TestReporting:
    def test_totals_and_summary(self):
        report = WasteReport().add_records(
            [
                _record(nprocs=8, runtime=100.0, wait_seconds=10.0),
                _record(nprocs=16, runtime=50.0),
            ]
        )
        t = report.totals()
        assert t["runs"] == 2
        assert t["used_core_seconds"] == 100.0 * 8 + 50.0 * 16
        assert t["wasted_core_seconds"] == 10.0 * 8
        d = report.to_dict()
        assert len(d["buckets"]) == 2
        assert d["totals"] == t
        text = report.summary()
        assert "TOTAL" in text and "stencil3d" in text

    def test_empty_report(self):
        report = WasteReport()
        assert report.buckets == []
        assert report.totals()["waste_fraction"] == 0.0
