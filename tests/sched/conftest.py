"""Shared fixtures for the scheduler-intelligence tests.

The queue simulator build (event loop over ~700 background jobs) is the
slow part, so simulators and their sampled probes are session-scoped —
both are immutable after construction.
"""

from __future__ import annotations

import pytest

from repro.sched import QueueConfig, QueueSimulator, WaitTimePredictor

#: Deliberately busy: ~50% utilization so probes see real contention.
BUSY_CONFIG = QueueConfig(
    n_nodes=256, arrival_rate=0.008, horizon=86400.0, seed=3
)


@pytest.fixture(scope="session")
def busy_queue():
    return QueueSimulator(BUSY_CONFIG)


@pytest.fixture(scope="session")
def probes(busy_queue):
    return busy_queue.sample_observations(300, seed=5)


@pytest.fixture(scope="session")
def fitted_wait_model(probes):
    return WaitTimePredictor(n_estimators=16, random_state=0).fit(
        [o.features() for o in probes],
        [o.wait_seconds for o in probes],
    )
