"""Smoke tests for the example scripts.

Each example is importable without side effects (work happens under
``if __name__ == "__main__"`` / ``main()``), so importing catches
syntax errors, missing symbols, and API drift without paying the
multi-minute cost of running the studies.  The quickstart additionally
runs end-to-end at a reduced size by monkeypatching its constants.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_example(path: Path):
    name = f"example_{path.stem}"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesImport:
    def test_examples_exist(self):
        names = {p.stem for p in EXAMPLE_FILES}
        assert {
            "quickstart",
            "capacity_planning",
            "topology_study",
            "transfer_mode",
            "history_planning",
        } <= names

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_importable_without_side_effects(self, path):
        module = load_example(path)
        assert hasattr(module, "main"), path.stem

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_has_module_docstring(self, path):
        module = load_example(path)
        assert module.__doc__ and len(module.__doc__) > 50


class TestCapacityPlanningReduced:
    def test_runs_end_to_end_small(self, capsys, monkeypatch):
        module = load_example(EXAMPLES_DIR / "capacity_planning.py")
        monkeypatch.setattr(module, "SMALL_SCALES", [32, 64, 128])
        monkeypatch.setattr(module, "CANDIDATE_SCALES", [128, 256, 512])
        # Shrink the history by intercepting the generator's sampler.
        from repro.data import HistoryGenerator

        orig = HistoryGenerator.sample_configs

        def small_sample(self, n, method="lhs"):
            return orig(self, min(n, 12), method=method)

        monkeypatch.setattr(HistoryGenerator, "sample_configs", small_sample)
        module.main()
        out = capsys.readouterr().out
        assert "Capacity plan" in out
        assert "interpolation-noise bands" in out
