"""Shared fixtures for the test suite.

Heavier fixtures (simulated histories) are session-scoped: the datasets
are immutable, so sharing them across tests is safe and keeps the suite
fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import get_app
from repro.data import HistoryGenerator
from repro.sim import Executor, NoiseModel


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def linear_data(rng):
    """Well-conditioned sparse linear problem (200 x 8, 3 active)."""
    X = rng.normal(size=(200, 8))
    w = np.array([3.0, -2.0, 0.0, 0.0, 1.5, 0.0, 0.0, 0.0])
    y = X @ w + 0.5 + 0.01 * rng.normal(size=200)
    return X, y, w


@pytest.fixture
def nonlinear_data(rng):
    """Smooth nonlinear regression problem for tree/kernel learners."""
    X = rng.uniform(-2, 2, size=(300, 3))
    y = np.sin(X[:, 0]) + X[:, 1] ** 2 + 0.5 * X[:, 2] + 0.05 * rng.normal(size=300)
    return X, y


@pytest.fixture(scope="session")
def stencil_app():
    return get_app("stencil3d")


@pytest.fixture(scope="session")
def noise_free_executor():
    return Executor(noise=NoiseModel(sigma=0.0, jitter_prob=0.0), seed=7)


@pytest.fixture(scope="session")
def tiny_history(noise_free_executor):
    """20 configs x 4 scales x 1 rep noise-free stencil history."""
    app = get_app("stencil3d")
    gen = HistoryGenerator(app, executor=noise_free_executor, seed=3)
    return gen.generate(20, scales=[32, 64, 128, 256], repetitions=1)


@pytest.fixture(scope="session")
def noisy_history():
    """30 configs x 5 small scales x 2 reps noisy stencil history."""
    app = get_app("stencil3d")
    gen = HistoryGenerator(app, seed=11)
    return gen.generate(30, scales=[32, 64, 128, 256, 512], repetitions=2)
