"""Golden parity suite: PackedPipeline vs TwoLevelModel, bit for bit.

Every fitted-model shape the two-level pipeline can end up in —
basis mode, transfer mode, pooled degraded fallback, analytic Amdahl
fallback, warm-started refits — must predict the *same floats* through
the packed path as through the object path, for every input dtype and
memory layout, including n=0, and must survive a round-trip through
the schema-v2 artifact sidecar.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TwoLevelModel
from repro.core.extrapolation import ClusteredScalingExtrapolator
from repro.core.packed_pipeline import (
    PackedPipeline,
    load_npz_arrays,
    save_npz_bytes,
)
from repro.data import ExecutionDataset
from repro.errors import (
    ConfigurationError,
    DataValidationError,
    ExtrapolationError,
    FitDegenerateError,
)
from repro.ml.tree import RandomForestRegressor

SCALES = [32, 64, 128, 256]
EXTRAP = [512, 2048]


def small_forest(random_state=None):
    return RandomForestRegressor(n_estimators=16, random_state=random_state)


def synth_history(n_configs=24, scales=(8, 16, 32, 64, 128, 256), seed=5):
    rng = np.random.default_rng(seed)
    configs = rng.uniform(1.0, 10.0, size=(n_configs, 3))
    X = np.repeat(configs, len(scales), axis=0)
    nprocs = np.tile(np.asarray(scales, dtype=np.int64), n_configs)
    runtime = (
        300.0 / nprocs
        + X[:, 0] * 0.5
        + 0.03 * X[:, 1] * X[:, 2]
        + rng.uniform(0.01, 0.05, len(nprocs))
    )
    return ExecutionDataset(
        app_name="synth",
        param_names=("a", "b", "c"),
        X=X,
        nprocs=nprocs,
        runtime=runtime,
        model_runtime=runtime,
        rep=np.zeros(len(nprocs), dtype=np.int64),
    )


@pytest.fixture(scope="module")
def basis_model(tiny_history):
    return TwoLevelModel(
        small_scales=SCALES,
        n_clusters=2,
        random_state=0,
        interp_factory=small_forest,
    ).fit(tiny_history)


@pytest.fixture(scope="module")
def pooled_model(tiny_history):
    # A single training row at p=64 forces the pooled interpolator
    # fallback for that scale.
    keep = np.ones(len(tiny_history), dtype=bool)
    at_64 = np.nonzero(tiny_history.nprocs == 64)[0]
    keep[at_64[1:]] = False
    model = TwoLevelModel(
        small_scales=SCALES, random_state=0, interp_factory=small_forest
    ).fit(tiny_history.select(keep))
    assert 64 in model.interpolator_.fallback_scales_
    return model


@pytest.fixture(scope="module")
def amdahl_model(tiny_history):
    mp = pytest.MonkeyPatch()

    def boom(self, S, report=None):
        raise FitDegenerateError("forced degeneracy")

    mp.setattr(ClusteredScalingExtrapolator, "fit", boom)
    try:
        model = TwoLevelModel(
            small_scales=SCALES, random_state=0, interp_factory=small_forest
        ).fit(tiny_history)
    finally:
        mp.undo()
    assert model.used_analytic_fallback_
    return model


@pytest.fixture(scope="module")
def warm_model(tiny_history):
    cold = TwoLevelModel(
        small_scales=SCALES, random_state=0, interp_factory=small_forest
    ).fit(tiny_history)
    warm = TwoLevelModel(
        small_scales=SCALES, random_state=0, interp_factory=small_forest
    )
    warm.fit(tiny_history, warm_start_from=cold)
    assert warm.interpolator_.warm_reused_scales_ == tuple(SCALES)
    return warm


@pytest.fixture(scope="module")
def transfer_model():
    full = synth_history()
    train = full.at_scales([8, 16, 32, 64])
    return TwoLevelModel(
        small_scales=[8, 16, 32, 64],
        mode="transfer",
        large_scales=[128, 256],
        n_clusters=2,
        random_state=0,
        interp_factory=small_forest,
    ).fit(train, large_train=full)


@pytest.fixture(scope="module")
def query_X(tiny_history):
    rng = np.random.default_rng(17)
    base = tiny_history.unique_configs().astype(float)
    jitter = rng.uniform(0.92, 1.08, size=(12, base.shape[1]))
    return base[rng.integers(0, len(base), size=12)] * jitter


ALL_SHAPES = ["basis_model", "pooled_model", "amdahl_model", "warm_model"]


class TestGoldenParity:
    @pytest.mark.parametrize("shape", ALL_SHAPES)
    @pytest.mark.parametrize(
        "scales",
        [SCALES, EXTRAP, [64, 1024, 32, 1024], [512]],
        ids=["interp", "extrap", "mixed-dup", "single-extrap"],
    )
    def test_batch_parity(self, request, query_X, shape, scales):
        model = request.getfixturevalue(shape)
        packed = model.pack()
        a = model.predict(query_X, scales)
        b = packed.predict(query_X, scales)
        assert a.dtype == b.dtype and a.shape == b.shape
        assert (a == b).all()

    @pytest.mark.parametrize("shape", ALL_SHAPES)
    def test_single_row_parity(self, request, query_X, shape):
        model = request.getfixturevalue(shape)
        packed = model.pack()
        x1 = np.ascontiguousarray(query_X[:1])
        for scales in (SCALES, [4096], [64, 512]):
            assert (
                model.predict(x1, scales) == packed.predict(x1, scales)
            ).all()

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("order", ["C", "F"])
    def test_dtype_layout_parity(self, basis_model, query_X, dtype, order):
        packed = basis_model.pack()
        Xv = np.asarray(np.asarray(query_X, dtype=dtype), order=order)
        scales = [32, 1024]
        assert (
            basis_model.predict(Xv, scales) == packed.predict(Xv, scales)
        ).all()

    @pytest.mark.parametrize("shape", ALL_SHAPES)
    def test_empty_input_parity(self, request, query_X, shape):
        model = request.getfixturevalue(shape)
        packed = model.pack()
        X0 = query_X[:0]
        a = model.predict(X0, [64, 512])
        b = packed.predict(X0, [64, 512])
        assert a.shape == b.shape == (0, 2)
        assert (a == b).all()

    def test_small_matrix_parity(self, basis_model, query_X):
        packed = basis_model.pack()
        assert (
            basis_model.predict_small_matrix(query_X)
            == packed.predict_small_matrix(query_X)
        ).all()

    def test_transfer_parity(self, transfer_model):
        packed = transfer_model.pack()
        X = synth_history(seed=9).unique_configs().astype(float)[:8]
        for scales in ([128, 256], [256], [8, 128]):
            assert (
                transfer_model.predict(X, scales)
                == packed.predict(X, scales)
            ).all()

    def test_transfer_unknown_scale_raises_on_both_paths(
        self, transfer_model
    ):
        packed = transfer_model.pack()
        X = np.full((2, 3), 4.0)
        with pytest.raises(ExtrapolationError):
            transfer_model.predict(X, [8192])
        with pytest.raises(ExtrapolationError):
            packed.predict(X, [8192])


class TestSidecarRoundTrip:
    @pytest.mark.parametrize("compress", [False, True])
    def test_npz_round_trip_is_exact(
        self, basis_model, query_X, tmp_path, compress
    ):
        packed = basis_model.pack()
        blob = save_npz_bytes(packed.to_arrays(), compress=compress)
        path = tmp_path / "packed.npz"
        path.write_bytes(blob)
        arrays = load_npz_arrays(path)
        clone = PackedPipeline.from_arrays(arrays, basis_model)
        scales = [32, 64, 700]
        assert (
            clone.predict(query_X, scales) == packed.predict(query_X, scales)
        ).all()

    def test_uncompressed_sidecar_is_mmapped(
        self, basis_model, tmp_path
    ):
        packed = basis_model.pack()
        path = tmp_path / "packed.npz"
        path.write_bytes(save_npz_bytes(packed.to_arrays()))
        arrays = load_npz_arrays(path)
        assert any(isinstance(a, np.memmap) for a in arrays.values())

    def test_mismatched_model_rejected(self, basis_model, pooled_model):
        arrays = basis_model.pack().to_arrays()
        # pooled_model was fitted on different data (thin p=64), so its
        # scale layout disagrees with the sidecar's forests.
        with pytest.raises((DataValidationError, ConfigurationError)):
            PackedPipeline.from_arrays(arrays, pooled_model)

    def test_bad_format_version_rejected(self, basis_model):
        arrays = dict(basis_model.pack().to_arrays())
        arrays["packed_format"] = np.asarray(99, dtype=np.int64)
        with pytest.raises(DataValidationError):
            PackedPipeline.from_arrays(arrays, basis_model)


class TestConstruction:
    def test_unfitted_model_rejected(self):
        with pytest.raises(ConfigurationError):
            PackedPipeline.from_model(TwoLevelModel(small_scales=SCALES))

    def test_non_two_level_rejected(self):
        with pytest.raises(ConfigurationError):
            PackedPipeline.from_model(object())

    def test_non_forest_interpolator_rejected(self, tiny_history):
        from repro.core import kernel_interpolation_model

        model = TwoLevelModel(
            small_scales=SCALES,
            interp_factory=kernel_interpolation_model,
            random_state=0,
        ).fit(tiny_history)
        with pytest.raises(ConfigurationError):
            model.pack()

    def test_validation_errors(self, basis_model):
        packed = basis_model.pack()
        with pytest.raises(ConfigurationError):
            packed.predict(np.ones(4), [512])  # 1-D
        with pytest.raises(DataValidationError):
            packed.predict(np.ones((2, 9)), [512])  # wrong width
        with pytest.raises(DataValidationError):
            packed.predict(np.full((1, 4), np.nan), [512])
        with pytest.raises(ConfigurationError):
            packed.predict(np.ones((1, 4)), [0])  # scale < 1
