"""Tests for the interpolation level (per-scale forests)."""

import numpy as np
import pytest

from repro.core import PerScaleInterpolator
from repro.ml import Ridge


class TestFitPredict:
    def test_one_model_per_scale(self, tiny_history):
        interp = PerScaleInterpolator(random_state=0).fit(tiny_history)
        assert interp.scales_ == (32, 64, 128, 256)
        assert set(interp.models_) == {32, 64, 128, 256}

    def test_predict_matrix_shape_and_order(self, tiny_history):
        interp = PerScaleInterpolator(random_state=0).fit(tiny_history)
        X = tiny_history.unique_configs()
        S = interp.predict_matrix(X)
        assert S.shape == (len(X), 4)
        np.testing.assert_allclose(S[:, 0], interp.predict_scale(X, 32))

    def test_predictions_positive(self, tiny_history):
        interp = PerScaleInterpolator(random_state=0).fit(tiny_history)
        S = interp.predict_matrix(tiny_history.unique_configs())
        assert np.all(S > 0)

    def test_training_accuracy_noise_free(self, tiny_history):
        # Bootstrap forests on 20 configs cannot memorize, but training
        # error on noise-free data must still be moderate.
        interp = PerScaleInterpolator(random_state=0).fit(tiny_history)
        sub = tiny_history.at_scale(64)
        pred = interp.predict_scale(sub.X, 64)
        rel = np.abs(pred - sub.runtime) / sub.runtime
        assert np.median(rel) < 0.25

    def test_unknown_scale_raises(self, tiny_history):
        interp = PerScaleInterpolator(random_state=0).fit(tiny_history)
        with pytest.raises(ValueError, match="No interpolation model"):
            interp.predict_scale(tiny_history.unique_configs(), 512)

    def test_unfitted_raises(self, tiny_history):
        interp = PerScaleInterpolator()
        with pytest.raises(RuntimeError):
            interp.predict_matrix(tiny_history.unique_configs())

    def test_custom_model_factory(self, tiny_history):
        interp = PerScaleInterpolator(
            model_factory=lambda seed: Ridge(alpha=1.0), random_state=0
        ).fit(tiny_history)
        S = interp.predict_matrix(tiny_history.unique_configs())
        assert np.all(np.isfinite(S))

    def test_log_target_off(self, tiny_history):
        interp = PerScaleInterpolator(log_target=False, random_state=0).fit(
            tiny_history
        )
        S = interp.predict_matrix(tiny_history.unique_configs())
        assert np.all(S > 0)

    def test_reproducible(self, tiny_history):
        X = tiny_history.unique_configs()
        a = PerScaleInterpolator(random_state=1).fit(tiny_history).predict_matrix(X)
        b = PerScaleInterpolator(random_state=1).fit(tiny_history).predict_matrix(X)
        np.testing.assert_array_equal(a, b)

    def test_empty_dataset_raises(self, tiny_history):
        empty = tiny_history.select(np.zeros(len(tiny_history), dtype=bool))
        with pytest.raises(ValueError):
            PerScaleInterpolator().fit(empty)


class TestDiagnostics:
    def test_cv_mape_per_scale(self, noisy_history):
        interp = PerScaleInterpolator(random_state=0).fit(noisy_history)
        cv = interp.cv_mape(n_splits=3)
        assert set(cv) == set(interp.scales_)
        for scale, err in cv.items():
            assert 0.0 < err < 1.0, (scale, err)

    def test_measured_matrix_matches_dataset(self, tiny_history):
        interp = PerScaleInterpolator(random_state=0).fit(tiny_history)
        cfgs, S = interp.small_scale_matrix_from_measurements()
        cfgs2, S2 = tiny_history.runtime_matrix([32, 64, 128, 256])
        np.testing.assert_allclose(S, S2)
        np.testing.assert_allclose(cfgs, cfgs2)
