"""Tests for the extrapolation level (clustered multitask-lasso
scalability models), including exact-recovery and positivity properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ClusteredScalingExtrapolator, ScaleBasis, TransferExtrapolator

SMALL = (32, 64, 128, 256, 512)
LARGE = (1024, 2048, 4096)


def synthetic_curves(n, rng, kind="mixed"):
    """Curves that are exact combinations of basis terms.

    kind: "decay" -> a + b/p; "rise" -> a + c*log2(p); "mixed" -> both
    families, which gives k-means something real to separate.
    """
    p = np.asarray(SMALL, dtype=float)
    curves, truth = [], []
    for i in range(n):
        a = rng.uniform(0.01, 0.1)
        if kind == "decay" or (kind == "mixed" and i % 2 == 0):
            b = rng.uniform(5.0, 50.0)
            fn = lambda q, a=a, b=b: a + b / q
        else:
            c = rng.uniform(0.01, 0.1)
            fn = lambda q, a=a, c=c: a + c * np.log2(q)
        curves.append(fn(p))
        truth.append(fn)
    return np.array(curves), truth


class TestExactRecovery:
    def test_recovers_pure_decay_curves(self, rng):
        S, truth = synthetic_curves(30, rng, kind="decay")
        model = ClusteredScalingExtrapolator(SMALL, n_clusters=1, random_state=0)
        model.fit(S)
        pred = model.predict(S, LARGE)
        expected = np.array([fn(np.asarray(LARGE, float)) for fn in truth])
        np.testing.assert_allclose(pred, expected, rtol=0.02)

    def test_recovers_rising_curves(self, rng):
        S, truth = synthetic_curves(30, rng, kind="rise")
        model = ClusteredScalingExtrapolator(SMALL, n_clusters=1, random_state=0)
        model.fit(S)
        pred = model.predict(S, LARGE)
        expected = np.array([fn(np.asarray(LARGE, float)) for fn in truth])
        np.testing.assert_allclose(pred, expected, rtol=0.05)

    def test_clusters_separate_curve_families(self, rng):
        S, _ = synthetic_curves(40, rng, kind="mixed")
        model = ClusteredScalingExtrapolator(SMALL, n_clusters=2, random_state=0)
        model.fit(S)
        labels = model.labels_
        # Even indices are decay, odd are rise: clustering must align.
        fam = np.arange(40) % 2
        agreement = max(
            np.mean(labels == fam), np.mean(labels == 1 - fam)
        )
        assert agreement > 0.95

    def test_mixed_families_with_clustering_accurate(self, rng):
        S, truth = synthetic_curves(40, rng, kind="mixed")
        model = ClusteredScalingExtrapolator(SMALL, n_clusters=2, random_state=0)
        model.fit(S)
        pred = model.predict(S, LARGE)
        expected = np.array([fn(np.asarray(LARGE, float)) for fn in truth])
        rel = np.abs(pred - expected) / expected
        assert np.median(rel) < 0.05


class TestPositivityProperty:
    @pytest.mark.slow
    @given(st.integers(0, 30))
    @settings(max_examples=15, deadline=None)
    def test_predictions_always_positive(self, seed):
        rng = np.random.default_rng(seed)
        # Arbitrary positive noisy curves, not necessarily basis-shaped.
        S = np.exp(rng.normal(0.0, 1.0, size=(12, len(SMALL))))
        model = ClusteredScalingExtrapolator(SMALL, n_clusters=2,
                                             random_state=seed).fit(S)
        pred = model.predict(S, [600, 1024, 8192])
        assert np.all(pred > 0)

    def test_ols_refit_also_floored(self, rng):
        S, _ = synthetic_curves(10, rng)
        model = ClusteredScalingExtrapolator(
            SMALL, n_clusters=1, refit="ols", random_state=0
        ).fit(S)
        assert np.all(model.predict(S, LARGE) > 0)


class TestValidationSplit:
    def test_ratio_split_geometry(self):
        model = ClusteredScalingExtrapolator(SMALL, val_ratio=4.0)
        model._design_small = model.basis.design_matrix(SMALL)
        fit_idx, val_idx = model._validation_split()
        # 512/4 = 128: scales {32,64,128} fit, {256,512} validate.
        assert list(fit_idx) == [0, 1, 2]
        assert list(val_idx) == [3, 4]

    def test_two_scale_fallback(self):
        model = ClusteredScalingExtrapolator((64, 128), val_ratio=4.0)
        model._design_small = model.basis.design_matrix((64, 128))
        fit_idx, val_idx = model._validation_split()
        assert list(fit_idx) == [0] and list(val_idx) == [1]

    def test_oversized_support_scores_infeasible(self, rng):
        model = ClusteredScalingExtrapolator(SMALL, max_terms=3, random_state=0)
        model._design_small = model.basis.design_matrix(SMALL)
        big_support = np.ones(len(model.basis), dtype=bool)
        S = np.exp(rng.normal(size=(3, len(SMALL))))
        assert model._score_support(big_support, S) == np.inf


class TestAblationModes:
    @pytest.mark.parametrize("selection", ["multitask", "independent", "none"])
    def test_all_selection_modes_run(self, rng, selection):
        S, truth = synthetic_curves(16, rng)
        model = ClusteredScalingExtrapolator(
            SMALL, n_clusters=2, selection=selection, random_state=0
        ).fit(S)
        pred = model.predict(S, LARGE)
        assert pred.shape == (16, len(LARGE))
        assert np.all(pred > 0)

    def test_invalid_selection_raises(self):
        with pytest.raises(ValueError):
            ClusteredScalingExtrapolator(SMALL, selection="bayes")

    def test_invalid_refit_raises(self):
        with pytest.raises(ValueError):
            ClusteredScalingExtrapolator(SMALL, refit="huber")

    def test_single_cluster_no_kmeans(self, rng):
        S, _ = synthetic_curves(8, rng)
        model = ClusteredScalingExtrapolator(SMALL, n_clusters=1,
                                             random_state=0).fit(S)
        assert model.kmeans_ is None
        np.testing.assert_array_equal(model.labels_, 0)


class TestInputValidation:
    def test_wrong_width_raises(self, rng):
        model = ClusteredScalingExtrapolator(SMALL)
        with pytest.raises(ValueError, match="shape"):
            model.fit(np.ones((5, 3)))

    def test_nonpositive_curve_raises(self):
        model = ClusteredScalingExtrapolator(SMALL)
        S = np.ones((3, len(SMALL)))
        S[0, 0] = 0.0
        with pytest.raises(ValueError, match="positive"):
            model.fit(S)

    def test_too_few_scales_raises(self):
        with pytest.raises(ValueError):
            ClusteredScalingExtrapolator((64,))

    def test_duplicate_scales_raise(self):
        with pytest.raises(ValueError):
            ClusteredScalingExtrapolator((64, 64, 128))

    def test_predict_before_fit_raises(self, rng):
        model = ClusteredScalingExtrapolator(SMALL)
        with pytest.raises(RuntimeError):
            model.predict(np.ones((2, len(SMALL))), LARGE)

    def test_invalid_target_scale_raises(self, rng):
        S, _ = synthetic_curves(5, rng)
        model = ClusteredScalingExtrapolator(SMALL, n_clusters=1,
                                             random_state=0).fit(S)
        with pytest.raises(ValueError):
            model.predict(S, [0])

    def test_support_names_structure(self, rng):
        S, _ = synthetic_curves(10, rng)
        model = ClusteredScalingExtrapolator(SMALL, n_clusters=2,
                                             random_state=0).fit(S)
        names = model.support_names()
        assert set(names) == {0, 1}
        # "1" denotes the (validated) intercept; all other entries must
        # be basis-term names.
        basis_names = set(ScaleBasis().names) | {"1"}
        for terms in names.values():
            assert set(terms) <= basis_names


class TestTransferExtrapolator:
    def make_pair(self, rng, n=40):
        S, truth = synthetic_curves(n, rng, kind="mixed")
        Y = np.array([fn(np.asarray(LARGE, float)) for fn in truth])
        return S, Y

    def test_fits_and_predicts_heldout(self, rng):
        S, Y = self.make_pair(rng, 60)
        model = TransferExtrapolator(SMALL, LARGE, n_clusters=2,
                                     random_state=0).fit(S[:40], Y[:40])
        pred = model.predict(S[40:])
        rel = np.abs(pred - Y[40:]) / Y[40:]
        assert np.median(rel) < 0.15

    def test_predictions_positive(self, rng):
        S, Y = self.make_pair(rng)
        model = TransferExtrapolator(SMALL, LARGE, random_state=0).fit(S, Y)
        assert np.all(model.predict(S) > 0)

    def test_shape_validation(self, rng):
        S, Y = self.make_pair(rng)
        model = TransferExtrapolator(SMALL, LARGE)
        with pytest.raises(ValueError):
            model.fit(S, Y[:, :1])
        with pytest.raises(ValueError):
            model.fit(S[:, :2], Y)

    def test_small_cluster_fallback(self, rng):
        # Only 5 configs: clusters must collapse to avoid starved fits.
        S, Y = self.make_pair(rng, 5)
        model = TransferExtrapolator(SMALL, LARGE, n_clusters=4,
                                     random_state=0).fit(S, Y)
        assert model.n_clusters_ == 1

    def test_predict_before_fit_raises(self, rng):
        with pytest.raises(RuntimeError):
            TransferExtrapolator(SMALL, LARGE).predict(np.ones((2, len(SMALL))))
