"""Tests for ensemble-based prediction intervals."""

import numpy as np
import pytest

from repro.apps import get_app
from repro.core import EnsembleUncertainty, TwoLevelModel, kernel_interpolation_model
from repro.data import HistoryGenerator

SMALL = [32, 64, 128, 256]
LARGE = [512, 1024]


@pytest.fixture(scope="module")
def fitted_model():
    app = get_app("stencil3d")
    gen = HistoryGenerator(app, seed=5)
    train = gen.collect(gen.sample_configs(40), SMALL, repetitions=2)
    model = TwoLevelModel(small_scales=SMALL, n_clusters=2, random_state=0)
    return model.fit(train), gen


class TestPredictInterval:
    def test_shapes(self, fitted_model):
        model, gen = fitted_model
        X = np.vstack(
            [get_app("stencil3d").params_to_vector(c)
             for c in gen.sample_configs(6)]
        )
        unc = EnsembleUncertainty(model, n_samples=20, random_state=0)
        interval = unc.predict_interval(X, LARGE)
        assert interval.median.shape == (6, 2)
        assert interval.lower.shape == (6, 2)
        assert interval.scales == tuple(LARGE)

    def test_band_ordering_and_positivity(self, fitted_model):
        model, gen = fitted_model
        X = np.vstack(
            [get_app("stencil3d").params_to_vector(c)
             for c in gen.sample_configs(5)]
        )
        unc = EnsembleUncertainty(model, n_samples=25, random_state=1)
        interval = unc.predict_interval(X, LARGE)
        assert np.all(interval.lower > 0)
        assert np.all(interval.lower <= interval.median + 1e-15)
        assert np.all(interval.median <= interval.upper + 1e-15)

    def test_band_nonzero_width(self, fitted_model):
        model, gen = fitted_model
        X = np.vstack(
            [get_app("stencil3d").params_to_vector(c)
             for c in gen.sample_configs(5)]
        )
        unc = EnsembleUncertainty(model, n_samples=25, random_state=1)
        interval = unc.predict_interval(X, LARGE)
        assert np.all(interval.relative_width >= 0)
        assert interval.relative_width.max() > 0

    def test_reproducible(self, fitted_model):
        model, gen = fitted_model
        X = np.vstack(
            [get_app("stencil3d").params_to_vector(c)
             for c in gen.sample_configs(3)]
        )
        a = EnsembleUncertainty(model, n_samples=15, random_state=2)
        b = EnsembleUncertainty(model, n_samples=15, random_state=2)
        np.testing.assert_array_equal(
            a.predict_interval(X, LARGE).median,
            b.predict_interval(X, LARGE).median,
        )

    def test_wider_level_wider_band(self, fitted_model):
        model, gen = fitted_model
        X = np.vstack(
            [get_app("stencil3d").params_to_vector(c)
             for c in gen.sample_configs(4)]
        )
        narrow = EnsembleUncertainty(
            model, n_samples=40, level=0.5, random_state=3
        ).predict_interval(X, LARGE)
        wide = EnsembleUncertainty(
            model, n_samples=40, level=0.95, random_state=3
        ).predict_interval(X, LARGE)
        assert np.all(
            wide.upper - wide.lower >= narrow.upper - narrow.lower - 1e-12
        )


class TestDegradedFit:
    @pytest.fixture(scope="class")
    def degraded_model(self):
        """Fit whose scale 64 fell back to the pooled interpolator."""
        app = get_app("stencil3d")
        gen = HistoryGenerator(app, seed=5)
        train = gen.collect(gen.sample_configs(20), SMALL, repetitions=1)
        keep = np.ones(len(train), dtype=bool)
        at_64 = np.nonzero(train.nprocs == 64)[0]
        keep[at_64[1:]] = False  # single row at p=64 -> pooled fallback
        model = TwoLevelModel(small_scales=SMALL, n_clusters=2,
                              random_state=0).fit(train.select(keep))
        assert 64 in model.interpolator_.fallback_scales_
        return model, gen

    def test_intervals_survive_pooled_fallback(self, degraded_model):
        model, gen = degraded_model
        X = np.vstack(
            [get_app("stencil3d").params_to_vector(c)
             for c in gen.sample_configs(4)]
        )
        unc = EnsembleUncertainty(model, n_samples=15, random_state=0)
        interval = unc.predict_interval(X, LARGE)
        assert np.isfinite(interval.median).all()
        assert np.all(interval.lower > 0)
        assert np.all(interval.lower <= interval.upper + 1e-15)

    def test_degraded_intervals_reproducible(self, degraded_model):
        model, gen = degraded_model
        X = np.vstack(
            [get_app("stencil3d").params_to_vector(c)
             for c in gen.sample_configs(3)]
        )
        a = EnsembleUncertainty(model, n_samples=12, random_state=7)
        b = EnsembleUncertainty(model, n_samples=12, random_state=7)
        np.testing.assert_array_equal(
            a.predict_interval(X, LARGE).median,
            b.predict_interval(X, LARGE).median,
        )


class TestValidation:
    def test_unfitted_model_rejected(self):
        model = TwoLevelModel(small_scales=SMALL)
        with pytest.raises(ValueError, match="fitted"):
            EnsembleUncertainty(model)

    def test_transfer_mode_rejected(self, fitted_model):
        model, _ = fitted_model
        tm = TwoLevelModel(small_scales=SMALL, mode="transfer",
                           large_scales=LARGE)
        tm.extrapolator_ = object()
        tm.interpolator_ = model.interpolator_
        with pytest.raises(ValueError, match="basis"):
            EnsembleUncertainty(tm)

    @pytest.mark.slow
    def test_non_ensemble_interpolator_rejected(self):
        app = get_app("stencil3d")
        gen = HistoryGenerator(app, seed=5)
        train = gen.collect(gen.sample_configs(20), SMALL, repetitions=1)
        model = TwoLevelModel(
            small_scales=SMALL,
            interp_factory=kernel_interpolation_model,
            random_state=0,
        ).fit(train)
        with pytest.raises(ValueError, match="predict_all"):
            EnsembleUncertainty(model)

    def test_invalid_params(self, fitted_model):
        model, _ = fitted_model
        with pytest.raises(ValueError):
            EnsembleUncertainty(model, n_samples=1)
        with pytest.raises(ValueError):
            EnsembleUncertainty(model, level=1.0)
