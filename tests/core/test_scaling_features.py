"""Tests for the scalability basis."""

import numpy as np
import pytest

from repro.core import DEFAULT_BASIS_TERMS, ScaleBasis


class TestScaleBasis:
    def test_default_terms_present(self):
        basis = ScaleBasis()
        assert set(DEFAULT_BASIS_TERMS) == set(basis.names)

    def test_design_matrix_values(self):
        basis = ScaleBasis(["inv_p", "log_p", "p"])
        M = basis.design_matrix([2, 4])
        np.testing.assert_allclose(M[:, 0], [0.5, 0.25])
        np.testing.assert_allclose(M[:, 1], [1.0, 2.0])
        np.testing.assert_allclose(M[:, 2], [2.0, 4.0])

    def test_design_matrix_shape(self):
        basis = ScaleBasis()
        M = basis.design_matrix([2, 4, 8, 16])
        assert M.shape == (4, len(basis))

    def test_unknown_term_raises(self):
        with pytest.raises(ValueError, match="Unknown basis term"):
            ScaleBasis(["inv_p", "exp_p"])

    def test_duplicate_terms_raise(self):
        with pytest.raises(ValueError, match="Duplicate"):
            ScaleBasis(["inv_p", "inv_p"])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ScaleBasis([])

    def test_custom_callable_term(self):
        basis = ScaleBasis([("cube", lambda p: p**3), "log_p"])
        M = basis.design_matrix([2])
        assert M[0, 0] == pytest.approx(8.0)

    def test_scale_below_one_raises(self):
        with pytest.raises(ValueError):
            ScaleBasis().design_matrix([0])

    def test_2d_scales_raise(self):
        with pytest.raises(ValueError):
            ScaleBasis().design_matrix(np.ones((2, 2)))

    def test_subset(self):
        basis = ScaleBasis(["inv_p", "log_p", "p"])
        sub = basis.subset(np.array([True, False, True]))
        assert sub.names == ("inv_p", "p")

    def test_subset_empty_raises(self):
        basis = ScaleBasis(["inv_p"])
        with pytest.raises(ValueError):
            basis.subset(np.array([False]))

    def test_subset_wrong_length_raises(self):
        basis = ScaleBasis(["inv_p", "p"])
        with pytest.raises(ValueError):
            basis.subset(np.array([True]))

    def test_all_default_terms_positive_for_p_ge_2(self):
        M = ScaleBasis().design_matrix([2, 16, 1024])
        assert np.all(M > 0)

    def test_repr_lists_names(self):
        assert "inv_p" in repr(ScaleBasis(["inv_p"]))
