"""Tests for graceful degradation in the two-level model.

Every fallback the model takes must appear on ``model.fit_report``;
strict mode must refuse to degrade and raise instead.
"""

import numpy as np
import pytest

from repro.core import AnalyticSpeedupExtrapolator, TwoLevelModel
from repro.core.extrapolation import ClusteredScalingExtrapolator
from repro.data.dataset import ExecutionDataset
from repro.errors import (
    DataValidationError,
    FitDegenerateError,
    NotFittedError,
    ReproError,
)

SCALES = [32, 64, 128, 256]


def _with_runtime(ds, runtime):
    return ExecutionDataset(
        app_name=ds.app_name,
        param_names=ds.param_names,
        X=ds.X,
        nprocs=ds.nprocs,
        runtime=runtime,
        model_runtime=ds.model_runtime,
        rep=ds.rep,
    )


class TestCleanFit:
    @pytest.mark.slow
    def test_clean_fit_has_empty_report(self, tiny_history):
        model = TwoLevelModel(small_scales=SCALES).fit(tiny_history)
        assert not model.fit_report.degraded
        assert len(model.fit_report) == 0
        assert "clean" in model.fit_report.summary()

    def test_fit_report_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            TwoLevelModel(small_scales=SCALES).fit_report


class TestNaNRows:
    def test_scattered_nans_are_scrubbed(self, tiny_history):
        runtime = tiny_history.runtime.copy()
        runtime[[0, 7, 13]] = np.nan
        model = TwoLevelModel(small_scales=SCALES).fit(
            _with_runtime(tiny_history, runtime)
        )
        events = model.fit_report.by_kind("dropped_invalid_rows")
        assert len(events) == 1
        assert events[0].context["nonfinite_runtime"] == 3
        preds = model.predict(tiny_history.unique_configs()[:3], [512])
        assert np.isfinite(preds).all()

    def test_strict_mode_rejects_nans(self, tiny_history):
        runtime = tiny_history.runtime.copy()
        runtime[0] = np.nan
        with pytest.raises(DataValidationError, match="strict"):
            TwoLevelModel(small_scales=SCALES, strict=True).fit(
                _with_runtime(tiny_history, runtime)
            )


class TestAllNaNScale:
    def test_all_nan_scale_is_dropped(self, tiny_history):
        runtime = tiny_history.runtime.copy()
        runtime[tiny_history.nprocs == 64] = np.nan
        model = TwoLevelModel(small_scales=SCALES).fit(
            _with_runtime(tiny_history, runtime)
        )
        assert list(model.effective_small_scales_) == [32, 128, 256]
        dropped = model.fit_report.by_kind("scale_dropped")
        assert len(dropped) == 1
        assert dropped[0].context["missing_scales"] == [64]
        preds = model.predict(tiny_history.unique_configs()[:3], [1024])
        assert np.isfinite(preds).all() and (preds > 0).all()

    def test_too_few_surviving_scales_is_degenerate(self, tiny_history):
        runtime = tiny_history.runtime.copy()
        runtime[np.isin(tiny_history.nprocs, [64, 128, 256])] = np.nan
        with pytest.raises(FitDegenerateError, match="at least two"):
            TwoLevelModel(small_scales=SCALES).fit(
                _with_runtime(tiny_history, runtime)
            )


class TestCensoredRows:
    @pytest.fixture()
    def censored_history(self, tiny_history):
        """History whose slowest rows were killed at a shared limit."""
        limit = float(np.quantile(tiny_history.runtime, 0.9))
        runtime = np.minimum(tiny_history.runtime, limit)
        return _with_runtime(tiny_history, runtime), limit

    def test_censored_rows_dropped_and_reported(self, censored_history):
        ds, limit = censored_history
        model = TwoLevelModel(small_scales=SCALES).fit(ds)
        events = model.fit_report.by_kind("censored_rows_dropped")
        assert len(events) == 1
        ctx = events[0].context
        assert ctx["censored"] == int(np.sum(ds.runtime == limit))
        assert ctx["censored"] >= 3
        assert "resubmitted" in ctx and "lost_groups" in ctx

    def test_strict_mode_refuses_censored_rows(self, censored_history):
        ds, _ = censored_history
        with pytest.raises(DataValidationError, match="censored"):
            TwoLevelModel(small_scales=SCALES, strict=True).fit(ds)

    def test_resubmitted_repeats_accounted(self, tiny_history):
        # Censor one row of a (config, scale) pair that keeps a healthy
        # "resubmitted" repeat: the drop report must count the recovery.
        from repro.robustness import drop_censored_rows

        ds = tiny_history.merge(tiny_history.select(np.arange(4)))
        runtime = ds.runtime.copy()
        limit = float(runtime.max() * 2.0)
        runtime[-4:] = limit  # 4 bit-identical ceiling rows
        rep = ds.rep.copy()
        rep[-4:] = 1
        ds = ExecutionDataset(
            app_name=ds.app_name, param_names=ds.param_names, X=ds.X,
            nprocs=ds.nprocs, runtime=runtime,
            model_runtime=ds.model_runtime, rep=rep,
        )
        clean, info = drop_censored_rows(ds)
        assert info == {"censored": 4, "resubmitted": 4, "lost_groups": 0}
        assert len(clean) == len(ds) - 4


class TestThinScale:
    def test_single_sample_scale_uses_pooled_fallback(self, tiny_history):
        keep = np.ones(len(tiny_history), dtype=bool)
        at_64 = np.nonzero(tiny_history.nprocs == 64)[0]
        keep[at_64[1:]] = False  # a single training row at p=64
        model = TwoLevelModel(small_scales=SCALES).fit(
            tiny_history.select(keep)
        )
        pooled = model.fit_report.by_kind("pooled_interpolator")
        assert len(pooled) == 1
        assert pooled[0].context["scale"] == 64
        assert 64 in model.interpolator_.fallback_scales_
        # The degraded scale still answers predictions.
        preds = model.predict(tiny_history.unique_configs()[:3], [64, 512])
        assert np.isfinite(preds).all() and (preds > 0).all()

    def test_strict_mode_fits_thin_scale_directly(self, tiny_history):
        keep = np.ones(len(tiny_history), dtype=bool)
        at_64 = np.nonzero(tiny_history.nprocs == 64)[0]
        keep[at_64[1:]] = False
        model = TwoLevelModel(small_scales=SCALES, strict=True).fit(
            tiny_history.select(keep)
        )
        assert 64 not in model.interpolator_.fallback_scales_


class TestAnalyticFallback:
    def test_degenerate_extrapolation_falls_back_to_amdahl(
        self, tiny_history, monkeypatch
    ):
        def boom(self, S, report=None):
            raise FitDegenerateError("forced degeneracy")

        monkeypatch.setattr(ClusteredScalingExtrapolator, "fit", boom)
        model = TwoLevelModel(small_scales=SCALES).fit(tiny_history)
        assert model.used_analytic_fallback_
        events = model.fit_report.by_kind("analytic_extrapolator")
        assert len(events) == 1
        assert events[0].context["reason"] == "FitDegenerateError"
        assert model.support_names() == {0: ("amdahl",)}
        assert model.cluster_sizes_.tolist() == [20]
        preds = model.predict(tiny_history.unique_configs()[:4], [1024, 2048])
        assert np.isfinite(preds).all() and (preds > 0).all()
        assert "Amdahl" in model.report(cv_splits=2)

    def test_strict_mode_propagates_degeneracy(self, tiny_history, monkeypatch):
        def boom(self, S, report=None):
            raise FitDegenerateError("forced degeneracy")

        monkeypatch.setattr(ClusteredScalingExtrapolator, "fit", boom)
        with pytest.raises(ReproError):
            TwoLevelModel(small_scales=SCALES, strict=True).fit(tiny_history)


class TestAnalyticExtrapolator:
    def test_fits_amdahl_per_config(self, tiny_history):
        configs, S = tiny_history.runtime_matrix(SCALES)
        ext = AnalyticSpeedupExtrapolator(SCALES).fit(S)
        preds = ext.predict(S, [512, 1024])
        assert preds.shape == (S.shape[0], 2)
        assert np.isfinite(preds).all() and (preds > 0).all()
        # Runtimes keep falling (or at worst flatten) as p grows for a
        # strong-scaling stencil.
        assert np.median(preds[:, 1] / S[:, -1]) < 1.0

    def test_handles_invalid_curves_via_pooled_shape(self, tiny_history):
        _, S = tiny_history.runtime_matrix(SCALES)
        S = S.copy()
        S[0] = np.nan
        ext = AnalyticSpeedupExtrapolator(SCALES).fit(S)
        preds = ext.predict(S, [1024])
        assert np.isfinite(preds).all()

    def test_all_invalid_is_degenerate(self):
        S = np.full((3, 4), np.nan)
        with pytest.raises(FitDegenerateError):
            AnalyticSpeedupExtrapolator(SCALES).fit(S)


class TestSingleClusterHistories:
    @pytest.mark.slow
    def test_fewer_configs_than_clusters_still_fits(self, tiny_history):
        # 3 configurations with n_clusters=3 leaves at most one config
        # per cluster; the fit must complete (possibly via fallbacks)
        # and every degradation must be enumerable from the report.
        configs = tiny_history.unique_configs()[:3]
        mask = np.zeros(len(tiny_history), dtype=bool)
        for cfg in configs:
            mask |= np.all(tiny_history.X == cfg, axis=1)
        model = TwoLevelModel(small_scales=SCALES, n_clusters=3).fit(
            tiny_history.select(mask)
        )
        preds = model.predict(configs, [512, 1024])
        assert np.isfinite(preds).all() and (preds > 0).all()
        for event in model.fit_report:
            assert event.stage in {
                "sanitize", "interpolation", "extrapolation"
            }
