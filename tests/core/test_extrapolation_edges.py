"""Additional edge cases for the extrapolation level: intercept
hypotheses, validation-ratio knob, and the independent-selection
predict path."""

import numpy as np
import pytest

from repro.core import ClusteredScalingExtrapolator

SMALL = (32, 64, 128, 256, 512)
LARGE = (1024, 4096)


def decay_curves(n, rng):
    """Pure a/p curves — the intercept-free hypothesis is exactly
    right and a fitted floor would cause premature flattening."""
    p = np.asarray(SMALL, dtype=float)
    amps = rng.uniform(5.0, 50.0, size=n)
    return amps[:, None] / p[None, :], amps


class TestInterceptHypothesis:
    def test_pure_decay_selects_no_intercept(self, rng):
        S, amps = decay_curves(25, rng)
        model = ClusteredScalingExtrapolator(SMALL, n_clusters=1,
                                             random_state=0).fit(S)
        assert model.intercepts_[0] is False or model.intercepts_[0] == False  # noqa: E712
        # Extrapolation continues the decay exactly.
        pred = model.predict(S, LARGE)
        expected = amps[:, None] / np.asarray(LARGE, dtype=float)[None, :]
        np.testing.assert_allclose(pred, expected, rtol=1e-3)

    def test_flat_curves_select_intercept(self, rng):
        # Constant runtimes: intercept-only is the right hypothesis.
        levels = rng.uniform(1.0, 5.0, size=15)
        S = np.repeat(levels[:, None], len(SMALL), axis=1)
        model = ClusteredScalingExtrapolator(SMALL, n_clusters=1,
                                             random_state=0).fit(S)
        assert model.intercepts_[0] is True or model.intercepts_[0] == True  # noqa: E712
        pred = model.predict(S, LARGE)
        np.testing.assert_allclose(
            pred, np.repeat(levels[:, None], len(LARGE), axis=1), rtol=1e-6
        )

    def test_support_names_flag_intercept(self, rng):
        levels = rng.uniform(1.0, 5.0, size=10)
        S = np.repeat(levels[:, None], len(SMALL), axis=1)
        model = ClusteredScalingExtrapolator(SMALL, n_clusters=1,
                                             random_state=0).fit(S)
        assert "1" in model.support_names()[0]


class TestValRatio:
    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            ClusteredScalingExtrapolator(SMALL, val_ratio=0.5)

    def test_ratio_changes_split(self):
        a = ClusteredScalingExtrapolator(SMALL, val_ratio=2.0)
        a._design_small = a.basis.design_matrix(SMALL)
        b = ClusteredScalingExtrapolator(SMALL, val_ratio=8.0)
        b._design_small = b.basis.design_matrix(SMALL)
        fit_a, val_a = a._validation_split()
        fit_b, val_b = b._validation_split()
        # Larger ratio holds out more scales.
        assert len(val_b) >= len(val_a)

    def test_extreme_ratio_falls_back(self):
        model = ClusteredScalingExtrapolator(SMALL, val_ratio=1000.0)
        model._design_small = model.basis.design_matrix(SMALL)
        fit_idx, val_idx = model._validation_split()
        assert len(fit_idx) >= 2 and len(val_idx) >= 1


class TestIndependentPredictPath:
    def test_reselects_per_config(self, rng):
        # Mix decaying and rising curves; independent mode must fit
        # each test curve with its own hypothesis.
        p = np.asarray(SMALL, dtype=float)
        S = np.vstack([10.0 / p, 0.01 * np.log2(p) + 0.02])
        model = ClusteredScalingExtrapolator(
            SMALL, n_clusters=1, selection="independent", random_state=0
        ).fit(S)
        pred = model.predict(S, LARGE)
        # Decaying keeps decaying, rising keeps rising.
        assert pred[0, 1] < pred[0, 0]
        assert pred[1, 1] > pred[1, 0]

    def test_single_config_fit(self, rng):
        p = np.asarray(SMALL, dtype=float)
        S = (3.0 / p)[None, :]
        model = ClusteredScalingExtrapolator(SMALL, n_clusters=1,
                                             random_state=0).fit(S)
        pred = model.predict(S, LARGE)
        assert pred.shape == (1, 2)
        assert pred[0, 0] > pred[0, 1] > 0


class TestClusterAssignmentConsistency:
    def test_train_configs_assigned_to_fitted_labels(self, rng):
        S, _ = decay_curves(20, rng)
        rising = 0.01 * np.log2(np.asarray(SMALL, float))[None, :] + 0.02
        S = np.vstack([S, np.repeat(rising, 20, axis=0)
                       * rng.uniform(0.5, 2.0, size=(20, 1))])
        model = ClusteredScalingExtrapolator(SMALL, n_clusters=2,
                                             random_state=0).fit(S)
        reassigned = model.assign_clusters(S)
        agreement = np.mean(reassigned == model.labels_)
        assert agreement > 0.95
