"""Tests for the interpolation-learner factory registry (Ext. D)."""

import numpy as np
import pytest

from repro.core import (
    INTERPOLATION_FACTORIES,
    PerScaleInterpolator,
    TwoLevelModel,
    default_interpolation_model,
    gbdt_interpolation_model,
    kernel_interpolation_model,
)


class TestRegistry:
    def test_expected_factories(self):
        assert {"random-forest", "kernel-ridge", "gbdt"} == set(
            INTERPOLATION_FACTORIES
        )

    def test_default_is_random_forest(self):
        assert (
            INTERPOLATION_FACTORIES["random-forest"]
            is default_interpolation_model
        )

    @pytest.mark.parametrize("name", sorted(INTERPOLATION_FACTORIES))
    def test_factories_build_fresh_estimators(self, name):
        factory = INTERPOLATION_FACTORIES[name]
        a, b = factory(0), factory(0)
        assert a is not b


@pytest.mark.parametrize(
    "factory", [kernel_interpolation_model, gbdt_interpolation_model]
)
class TestAlternativeLearnersEndToEnd:
    def test_interpolator_fit_predict(self, tiny_history, factory):
        interp = PerScaleInterpolator(
            model_factory=factory, random_state=0
        ).fit(tiny_history)
        S = interp.predict_matrix(tiny_history.unique_configs())
        assert np.all(S > 0)
        assert np.all(np.isfinite(S))

    @pytest.mark.slow
    def test_two_level_fit_predict(self, tiny_history, factory):
        model = TwoLevelModel(
            small_scales=[32, 64, 128, 256],
            interp_factory=factory,
            n_clusters=2,
            random_state=0,
        ).fit(tiny_history)
        pred = model.predict(tiny_history.unique_configs()[:5], [1024])
        assert np.all(pred > 0)


class TestKernelInterpolationAccuracy:
    def test_beats_forest_on_smooth_noise_free_response(self, tiny_history):
        """On the smooth noise-free stencil response, kernel ridge over
        log parameters must interpolate at least as well as the forest
        (the Ext. D premise)."""
        rf = PerScaleInterpolator(random_state=0).fit(tiny_history)
        kr = PerScaleInterpolator(
            model_factory=kernel_interpolation_model, random_state=0
        ).fit(tiny_history)
        cv_rf = np.mean(list(rf.cv_mape(n_splits=4).values()))
        cv_kr = np.mean(list(kr.cv_mape(n_splits=4).values()))
        assert cv_kr < cv_rf
