"""End-to-end tests of the TwoLevelModel facade."""

import numpy as np
import pytest

from repro.apps import get_app
from repro.core import TwoLevelModel
from repro.data import HistoryGenerator, scale_split
from repro.ml.metrics import mean_absolute_percentage_error as mape
from repro.sim import Executor, NoiseModel

SMALL = [32, 64, 128, 256]
LARGE = [512, 1024]


@pytest.fixture(scope="module")
def histories():
    app = get_app("stencil3d")
    ex = Executor(noise=NoiseModel(sigma=0.02, jitter_prob=0.0), seed=21)
    gen = HistoryGenerator(app, executor=ex, seed=21)
    train = gen.collect(gen.sample_configs(50), SMALL, repetitions=2)
    test = gen.collect(gen.sample_configs(15), LARGE, repetitions=1)
    full = gen.collect(gen.sample_configs(25), SMALL + LARGE, repetitions=1)
    return train, test, full


@pytest.fixture(scope="module")
def fitted(histories):
    train, _, _ = histories
    return TwoLevelModel(small_scales=SMALL, n_clusters=2, random_state=0).fit(
        train
    )


class TestBasisMode:
    def test_extrapolates_with_bounded_error(self, histories, fitted):
        _, test, _ = histories
        for s in LARGE:
            sub = test.at_scale(s)
            pred = fitted.predict(sub.X, [s])[:, 0]
            err = mape(sub.runtime, pred)
            assert err < 0.8, f"MAPE at p={s} is {err:.2f}"

    def test_beats_naive_constant_extrapolation(self, histories, fitted):
        # Naive: predict the runtime measured at the largest small scale.
        train, test, _ = histories
        sub = test.at_scale(1024)
        pred = fitted.predict(sub.X, [1024])[:, 0]
        naive = fitted.predict_small_matrix(sub.X)[:, -1]
        assert mape(sub.runtime, pred) < mape(sub.runtime, naive)

    def test_predictions_positive(self, histories, fitted):
        _, test, _ = histories
        pred = fitted.predict(test.unique_configs(), [512, 1024, 4096])
        assert np.all(pred > 0)

    def test_small_scale_queries_use_interpolation(self, histories, fitted):
        _, test, _ = histories
        X = test.unique_configs()
        direct = fitted.interpolator_.predict_scale(X, 64)
        via_model = fitted.predict(X, [64])[:, 0]
        np.testing.assert_allclose(via_model, direct)

    def test_mixed_small_and_large_scales(self, histories, fitted):
        _, test, _ = histories
        X = test.unique_configs()[:4]
        out = fitted.predict(X, [64, 512])
        assert out.shape == (4, 2)
        np.testing.assert_allclose(out[:, 0],
                                   fitted.interpolator_.predict_scale(X, 64))

    def test_predict_dataset_rowwise(self, histories, fitted):
        _, test, _ = histories
        preds = fitted.predict_dataset(test)
        assert preds.shape == (len(test),)
        assert np.all(preds > 0)

    def test_evaluate_split(self, histories, fitted):
        train, test, _ = histories
        merged = train.merge(test)
        split = scale_split(merged, SMALL, LARGE)
        scores = fitted.evaluate_split(split)
        assert set(scores) == set(LARGE)
        assert all(v > 0 for v in scores.values())


class TestDiagnostics:
    def test_interpolation_cv(self, fitted):
        cv = fitted.interpolation_cv_mape(n_splits=3)
        assert set(cv) == set(SMALL)

    def test_support_names(self, fitted):
        names = fitted.support_names()
        assert len(names) == fitted.extrapolator_.n_clusters_

    def test_cluster_sizes(self, fitted):
        sizes = fitted.cluster_sizes_
        assert sizes.sum() == 50

    @pytest.mark.slow
    def test_reproducible(self, histories):
        train, test, _ = histories
        X = test.unique_configs()
        a = TwoLevelModel(small_scales=SMALL, random_state=3).fit(train)
        b = TwoLevelModel(small_scales=SMALL, random_state=3).fit(train)
        np.testing.assert_array_equal(
            a.predict(X, LARGE), b.predict(X, LARGE)
        )


class TestTransferMode:
    def test_fit_predict(self, histories):
        train, test, full = histories
        model = TwoLevelModel(
            small_scales=SMALL,
            mode="transfer",
            large_scales=LARGE,
            n_clusters=2,
            random_state=0,
        ).fit(train, large_train=full)
        sub = test.at_scale(1024)
        pred = model.predict(sub.X, [1024])[:, 0]
        assert mape(sub.runtime, pred) < 1.0
        assert np.all(pred > 0)

    def test_requires_large_train(self, histories):
        train, _, _ = histories
        model = TwoLevelModel(
            small_scales=SMALL, mode="transfer", large_scales=LARGE
        )
        with pytest.raises(ValueError, match="large_train"):
            model.fit(train)

    @pytest.mark.slow
    def test_rejects_unfitted_target_scale(self, histories):
        train, test, full = histories
        model = TwoLevelModel(
            small_scales=SMALL, mode="transfer", large_scales=LARGE,
            random_state=0,
        ).fit(train, large_train=full)
        with pytest.raises(ValueError, match="fitted large scales"):
            model.predict(test.unique_configs(), [8192])

    def test_transfer_without_large_scales_raises(self):
        with pytest.raises(ValueError, match="requires large_scales"):
            TwoLevelModel(small_scales=SMALL, mode="transfer")


class TestValidation:
    def test_invalid_mode_raises(self):
        with pytest.raises(ValueError):
            TwoLevelModel(small_scales=SMALL, mode="hybrid")

    def test_missing_small_scale_raises_in_strict_mode(self, histories):
        train, _, _ = histories
        model = TwoLevelModel(small_scales=[32, 64, 999], strict=True)
        with pytest.raises(ValueError, match="lacks small scales"):
            model.fit(train)

    @pytest.mark.slow
    def test_missing_small_scale_degrades_by_default(self, histories):
        train, _, _ = histories
        model = TwoLevelModel(small_scales=[32, 64, 128, 999])
        model.fit(train)
        assert list(model.effective_small_scales_) == [32, 64, 128]
        assert any(e.kind == "scale_dropped" for e in model.fit_report)

    def test_predict_before_fit_raises(self):
        model = TwoLevelModel(small_scales=SMALL)
        with pytest.raises(RuntimeError):
            model.predict(np.ones((2, 4)), [512])

    def test_predict_1d_x_raises(self, histories, fitted):
        with pytest.raises(ValueError, match="2-D"):
            fitted.predict(np.ones(4), [512])

    def test_invalid_fit_curves_on_raises(self):
        with pytest.raises(ValueError):
            TwoLevelModel(small_scales=SMALL, fit_curves_on="oracle")

    @pytest.mark.slow
    def test_measurements_mode_fits(self, histories):
        train, test, _ = histories
        model = TwoLevelModel(
            small_scales=SMALL, fit_curves_on="measurements", random_state=0
        ).fit(train)
        pred = model.predict(test.unique_configs(), [512])
        assert np.all(pred > 0)


class TestParameterImportance:
    def test_structure_and_normalization(self, histories, fitted):
        imp = fitted.parameter_importance(n_repeats=2)
        assert set(imp) == set(SMALL)
        for scale, values in imp.items():
            assert set(values) == set(histories[0].param_names)
            total = sum(values.values())
            assert total == pytest.approx(1.0, abs=1e-6) or total == 0.0

    def test_grid_size_dominates_stencil(self, fitted):
        # nx enters the runtime cubed; it must dominate importance.
        imp = fitted.parameter_importance(n_repeats=3)
        for scale, values in imp.items():
            assert max(values, key=values.get) in ("nx", "iterations"), scale


class TestCapacityPlanningAPI:
    def test_speedup_base_is_one(self, histories, fitted):
        _, test, _ = histories
        X = test.unique_configs()[:4]
        sp = fitted.predict_speedup(X, [32, 512], base_scale=32)
        np.testing.assert_allclose(sp[:, 0], 1.0)
        assert np.all(sp[:, 1] > 0)

    def test_efficiency_bounded_reasonably(self, histories, fitted):
        _, test, _ = histories
        X = test.unique_configs()[:4]
        eff = fitted.predict_efficiency(X, [64, 512], base_scale=32)
        assert np.all(eff > 0)
        assert np.all(eff < 2.0)  # no superlinear nonsense at this size

    def test_recommend_scale_monotone_in_floor(self, histories, fitted):
        _, test, _ = histories
        x = test.unique_configs()[0]
        candidates = [64, 128, 256, 512, 1024]
        lax = fitted.recommend_scale(x, candidates, efficiency_floor=0.1)
        strict = fitted.recommend_scale(x, candidates, efficiency_floor=0.95)
        assert lax >= strict
        assert lax in candidates and strict in candidates

    def test_recommend_scale_validation(self, fitted):
        with pytest.raises(ValueError):
            fitted.recommend_scale(np.ones(4), [64], efficiency_floor=0.0)
        with pytest.raises(ValueError):
            fitted.recommend_scale(np.ones(4), [], efficiency_floor=0.5)
