"""Tests for the history-augmentation planner."""

import numpy as np
import pytest

from repro.apps import get_app
from repro.core import HistoryPlanner, TwoLevelModel, kernel_interpolation_model
from repro.data import HistoryGenerator

SMALL = [32, 64, 128]


@pytest.fixture(scope="module")
def fitted():
    app = get_app("stencil3d")
    gen = HistoryGenerator(app, seed=8)
    train = gen.collect(gen.sample_configs(25), SMALL, repetitions=1)
    model = TwoLevelModel(small_scales=SMALL, n_clusters=2,
                          random_state=0).fit(train)
    return app, model


class TestScoring:
    def test_one_bundle_per_candidate(self, fitted):
        app, model = fitted
        planner = HistoryPlanner(model, app, n_candidates=10, random_state=0)
        recs = planner.score_candidates()
        assert len(recs) == 10
        for r in recs:
            assert r.scales == tuple(SMALL)

    def test_sorted_by_utility(self, fitted):
        app, model = fitted
        planner = HistoryPlanner(model, app, n_candidates=10, random_state=0)
        utils = [r.utility for r in planner.score_candidates()]
        assert utils == sorted(utils, reverse=True)

    def test_fields_positive(self, fitted):
        app, model = fitted
        planner = HistoryPlanner(model, app, n_candidates=5, random_state=0)
        for r in planner.score_candidates():
            assert r.disagreement >= 0
            assert r.est_cost_core_seconds > 0
            app.validate_params(r.params)


class TestPlanning:
    def test_budget_respected(self, fitted):
        app, model = fitted
        planner = HistoryPlanner(model, app, n_candidates=30, random_state=0)
        budget = 200.0
        plan = planner.plan(budget)
        assert plan
        assert sum(r.est_cost_core_seconds for r in plan) <= budget

    def test_bundles_unique_configs(self, fitted):
        app, model = fitted
        planner = HistoryPlanner(model, app, n_candidates=5, random_state=0)
        plan = planner.plan(1e9)
        keys = [tuple(sorted(r.params.items())) for r in plan]
        assert len(keys) == len(set(keys))

    def test_invalid_budget_raises(self, fitted):
        app, model = fitted
        planner = HistoryPlanner(model, app)
        with pytest.raises(ValueError):
            planner.plan(0.0)


class TestValidation:
    def test_unfitted_model_rejected(self, fitted):
        app, _ = fitted
        with pytest.raises(ValueError, match="fitted"):
            HistoryPlanner(TwoLevelModel(small_scales=SMALL), app)

    @pytest.mark.slow
    def test_non_ensemble_interpolator_rejected(self):
        app = get_app("stencil3d")
        gen = HistoryGenerator(app, seed=8)
        train = gen.collect(gen.sample_configs(15), SMALL, repetitions=1)
        model = TwoLevelModel(
            small_scales=SMALL,
            interp_factory=kernel_interpolation_model,
            random_state=0,
        ).fit(train)
        with pytest.raises(ValueError, match="spread"):
            HistoryPlanner(model, app)
