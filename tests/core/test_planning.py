"""Tests for the history-augmentation planner."""

import numpy as np
import pytest

from repro.apps import get_app
from repro.core import HistoryPlanner, TwoLevelModel, kernel_interpolation_model
from repro.data import HistoryGenerator

SMALL = [32, 64, 128]


@pytest.fixture(scope="module")
def fitted():
    app = get_app("stencil3d")
    gen = HistoryGenerator(app, seed=8)
    train = gen.collect(gen.sample_configs(25), SMALL, repetitions=1)
    model = TwoLevelModel(small_scales=SMALL, n_clusters=2,
                          random_state=0).fit(train)
    return app, model


class TestScoring:
    def test_one_bundle_per_candidate(self, fitted):
        app, model = fitted
        planner = HistoryPlanner(model, app, n_candidates=10, random_state=0)
        recs = planner.score_candidates()
        assert len(recs) == 10
        for r in recs:
            assert r.scales == tuple(SMALL)

    def test_sorted_by_utility(self, fitted):
        app, model = fitted
        planner = HistoryPlanner(model, app, n_candidates=10, random_state=0)
        utils = [r.utility for r in planner.score_candidates()]
        assert utils == sorted(utils, reverse=True)

    def test_fields_positive(self, fitted):
        app, model = fitted
        planner = HistoryPlanner(model, app, n_candidates=5, random_state=0)
        for r in planner.score_candidates():
            assert r.disagreement >= 0
            assert r.est_cost_core_seconds > 0
            app.validate_params(r.params)


class TestPlanning:
    def test_budget_respected(self, fitted):
        app, model = fitted
        planner = HistoryPlanner(model, app, n_candidates=30, random_state=0)
        budget = 200.0
        plan = planner.plan(budget)
        assert plan
        assert sum(r.est_cost_core_seconds for r in plan) <= budget

    def test_bundles_unique_configs(self, fitted):
        app, model = fitted
        planner = HistoryPlanner(model, app, n_candidates=5, random_state=0)
        plan = planner.plan(1e9)
        keys = [tuple(sorted(r.params.items())) for r in plan]
        assert len(keys) == len(set(keys))

    def test_invalid_budget_raises(self, fitted):
        app, model = fitted
        planner = HistoryPlanner(model, app)
        with pytest.raises(ValueError):
            planner.plan(0.0)


class TestCensorAwarePlanning:
    def test_no_limit_means_no_risk(self, fitted):
        app, model = fitted
        planner = HistoryPlanner(model, app, n_candidates=20, random_state=0)
        assert all(r.censor_risk == 0.0 for r in planner.score_candidates())

    def test_tight_limit_flags_risky_bundles(self, fitted):
        app, model = fitted
        free = HistoryPlanner(model, app, n_candidates=40, random_state=0)
        runtimes = [
            r.est_cost_core_seconds / sum(r.scales)
            for r in free.score_candidates()
        ]
        # A limit below the median predicted runtime must put a real
        # fraction of the pool at risk — and never the whole pool at 0.
        limit = float(np.median(runtimes))
        tight = HistoryPlanner(
            model, app, n_candidates=40, time_limit=limit, random_state=0
        )
        risks = [r.censor_risk for r in tight.score_candidates()]
        assert any(r > 0 for r in risks)
        assert all(0.0 <= r <= 1.0 for r in risks)

    def test_risk_discounts_utility(self, fitted):
        app, model = fitted
        free = HistoryPlanner(model, app, n_candidates=40, random_state=0)
        limit = float(
            np.median(
                [
                    r.est_cost_core_seconds / sum(r.scales)
                    for r in free.score_candidates()
                ]
            )
        )
        tight = HistoryPlanner(
            model, app, n_candidates=40, time_limit=limit, random_state=0
        )
        for r in tight.score_candidates():
            expected = (
                r.disagreement
                * (1.0 - r.censor_risk)
                / max(r.est_cost_core_seconds, 1e-12)
            )
            assert r.utility == pytest.approx(expected)
            if r.censor_risk == 1.0:
                assert r.utility == 0.0

    def test_margin_widens_the_risk_band(self, fitted):
        app, model = fitted
        limit = 2.0
        plain = HistoryPlanner(
            model, app, n_candidates=40, time_limit=limit, random_state=0
        )
        cautious = HistoryPlanner(
            model, app, n_candidates=40, time_limit=limit,
            censor_margin=0.5, random_state=0,
        )
        by_key = {
            tuple(sorted(r.params.items())): r.censor_risk
            for r in plain.score_candidates()
        }
        for r in cautious.score_candidates():
            assert r.censor_risk >= by_key[tuple(sorted(r.params.items()))]

    def test_invalid_censor_settings_rejected(self, fitted):
        app, model = fitted
        with pytest.raises(ValueError, match="time_limit"):
            HistoryPlanner(model, app, time_limit=0.0)
        with pytest.raises(ValueError, match="censor_margin"):
            HistoryPlanner(model, app, censor_margin=-0.1)


class TestDegradedFitPlanning:
    @pytest.fixture(scope="class")
    def degraded(self):
        """Model whose scale 64 degraded to the pooled fallback."""
        app = get_app("stencil3d")
        gen = HistoryGenerator(app, seed=8)
        train = gen.collect(gen.sample_configs(20), SMALL, repetitions=1)
        keep = np.ones(len(train), dtype=bool)
        at_64 = np.nonzero(train.nprocs == 64)[0]
        keep[at_64[1:]] = False  # a single training row at p=64
        model = TwoLevelModel(small_scales=SMALL, n_clusters=2,
                              random_state=0).fit(train.select(keep))
        assert 64 in model.interpolator_.fallback_scales_
        return app, model

    def test_planner_accepts_pooled_fallback_fit(self, degraded):
        app, model = degraded
        planner = HistoryPlanner(model, app, n_candidates=15, random_state=1)
        recs = planner.score_candidates()
        assert len(recs) == 15
        for r in recs:
            assert np.isfinite(r.utility)
            assert np.isfinite(r.disagreement) and r.disagreement >= 0
            assert r.est_cost_core_seconds > 0

    def test_plan_on_degraded_fit_respects_budget(self, degraded):
        app, model = degraded
        planner = HistoryPlanner(model, app, n_candidates=25, random_state=1)
        plan = planner.plan(300.0)
        assert plan
        assert sum(r.est_cost_core_seconds for r in plan) <= 300.0


class TestValidation:
    def test_unfitted_model_rejected(self, fitted):
        app, _ = fitted
        with pytest.raises(ValueError, match="fitted"):
            HistoryPlanner(TwoLevelModel(small_scales=SMALL), app)

    @pytest.mark.slow
    def test_non_ensemble_interpolator_rejected(self):
        app = get_app("stencil3d")
        gen = HistoryGenerator(app, seed=8)
        train = gen.collect(gen.sample_configs(15), SMALL, repetitions=1)
        model = TwoLevelModel(
            small_scales=SMALL,
            interp_factory=kernel_interpolation_model,
            random_state=0,
        ).fit(train)
        with pytest.raises(ValueError, match="spread"):
            HistoryPlanner(model, app)
