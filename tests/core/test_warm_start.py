"""Warm-start refits: reuse per-scale interpolators whose training
slice is unchanged (matched by per-scale dataset fingerprints) and
stay bit-identical to a cold fit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TwoLevelModel
from repro.data import ExecutionDataset
from repro.errors import ConfigurationError

SCALES = (8, 16, 32, 64)


def make_history(n_configs=40, scales=SCALES, seed=0):
    rng = np.random.default_rng(seed)
    configs = rng.uniform(1.0, 10.0, size=(n_configs, 3))
    X = np.repeat(configs, len(scales), axis=0)
    nprocs = np.tile(np.asarray(scales, dtype=np.int64), n_configs)
    runtime = (
        200.0 / nprocs
        + X[:, 0] * 0.4
        + 0.02 * X[:, 1]
        + rng.uniform(0.01, 0.05, len(nprocs))
    )
    return ExecutionDataset(
        app_name="synth",
        param_names=("a", "b", "c"),
        X=X,
        nprocs=nprocs,
        runtime=runtime,
        model_runtime=runtime,
        rep=np.zeros(len(nprocs), dtype=np.int64),
    )


@pytest.fixture(scope="module")
def history():
    return make_history()


@pytest.fixture(scope="module")
def test_points():
    return make_history(n_configs=10, scales=(128,), seed=9)


def fit_model(history, warm=None, **kwargs):
    model = TwoLevelModel(small_scales=SCALES, random_state=0, **kwargs)
    model.fit(history, warm_start_from=warm)
    return model


class TestWarmStartIdentity:
    def test_warm_fit_identical_on_unchanged_data(self, history, test_points):
        cold = fit_model(history)
        warm = fit_model(history, warm=cold)
        np.testing.assert_array_equal(
            cold.predict(test_points.X, [128]),
            warm.predict(test_points.X, [128]),
        )

    def test_all_scales_reused_on_unchanged_data(self, history):
        cold = fit_model(history)
        warm = fit_model(history, warm=cold)
        assert warm.interpolator_.warm_reused_scales_ == SCALES
        assert cold.interpolator_.warm_reused_scales_ == ()

    def test_warm_fit_after_single_scale_append(self, history, test_points):
        extra = make_history(n_configs=6, scales=(64,), seed=7)
        grown = ExecutionDataset.concat([history, extra])
        prev = fit_model(history)
        warm = fit_model(grown, warm=prev)
        cold = fit_model(grown)
        # only the untouched scales are reused...
        assert warm.interpolator_.warm_reused_scales_ == (8, 16, 32)
        # ...and the result is still bit-identical to a cold fit
        np.testing.assert_array_equal(
            cold.predict(test_points.X, [128]),
            warm.predict(test_points.X, [128]),
        )

    def test_warm_start_records_non_degrading_event(self, history):
        cold = fit_model(history)
        warm = fit_model(history, warm=cold)
        assert not warm.fit_report_.degraded
        kinds = [e.kind for e in warm.fit_report_.events]
        assert "warm_start" in kinds

    def test_fingerprints_stored_per_scale(self, history):
        model = fit_model(history)
        assert set(model.scale_data_fingerprints_) == set(SCALES)


class TestWarmStartGuards:
    def test_mismatched_hyperparams_raise(self, history):
        cold = fit_model(history)
        other = TwoLevelModel(small_scales=SCALES, random_state=1)
        with pytest.raises(ConfigurationError):
            other.fit(history, warm_start_from=cold)

    def test_empty_state_is_unusable_not_fatal(self, history):
        model = TwoLevelModel(small_scales=SCALES, random_state=0)
        model.fit(history, warm_start_from={})
        assert model.interpolator_.warm_reused_scales_ == ()
        kinds = [e.kind for e in model.fit_report_.events]
        assert "warm_start_unusable" in kinds
        assert not model.fit_report_.degraded

    def test_bogus_warm_source_raises(self, history):
        model = TwoLevelModel(small_scales=SCALES, random_state=0)
        with pytest.raises(ConfigurationError):
            model.fit(history, warm_start_from=42)

    def test_state_dict_round_trip_still_warm_starts(self, history):
        cold = fit_model(history)
        state = cold.get_fitted_state()
        warm = fit_model(history, warm=state)
        assert warm.interpolator_.warm_reused_scales_ == SCALES
