"""End-to-end integration tests: the full pipeline on every shipped
application, at miniature sizes.

These guard the contract the benchmarks and examples rely on — history
generation -> two-level fit -> large-scale prediction -> evaluation —
across all applications, not just the two primary ones.
"""

import numpy as np
import pytest

from repro.apps import ALL_APPS, get_app
from repro.core import TwoLevelModel
from repro.data import HistoryGenerator, load_dataset, save_dataset, scale_split
from repro.ml.metrics import mean_absolute_percentage_error as mape
from repro.sim import Executor, NoiseModel

SMALL = [32, 64, 128]
LARGE = [256, 512]


@pytest.fixture(scope="module", params=sorted(ALL_APPS))
def app_pipeline(request):
    """Tiny fitted pipeline per application."""
    app = get_app(request.param)
    ex = Executor(noise=NoiseModel(sigma=0.02, jitter_prob=0.0), seed=17)
    gen = HistoryGenerator(app, executor=ex, seed=17)
    train = gen.collect(gen.sample_configs(40), SMALL, repetitions=1)
    test = gen.collect(gen.sample_configs(8), LARGE, repetitions=1)
    model = TwoLevelModel(small_scales=SMALL, n_clusters=2,
                          random_state=0).fit(train)
    return request.param, model, train, test


class TestFullPipelinePerApp:
    def test_predictions_positive_and_finite(self, app_pipeline):
        _, model, _, test = app_pipeline
        preds = model.predict_dataset(test)
        assert np.all(preds > 0)
        assert np.all(np.isfinite(preds))

    def test_error_bounded(self, app_pipeline):
        name, model, _, test = app_pipeline
        for s in LARGE:
            sub = test.at_scale(s)
            pred = model.predict(sub.X, [s])[:, 0]
            err = mape(sub.runtime, pred)
            # Tiny training set and 2-4x extrapolation: generous bound,
            # but catastrophic blowups (order-of-magnitude) must not
            # happen on any application.
            assert err < 2.0, f"{name} p={s}: {err:.2f}"

    def test_right_order_of_magnitude(self, app_pipeline):
        name, model, _, test = app_pipeline
        sub = test.at_scale(512)
        pred = model.predict(sub.X, [512])[:, 0]
        ratio = pred / sub.runtime
        assert np.median(np.maximum(ratio, 1.0 / ratio)) < 3.0, name


class TestPipelineWithPersistence:
    def test_roundtrip_through_disk(self, tmp_path):
        app = get_app("stencil3d")
        gen = HistoryGenerator(app, seed=3)
        train = gen.collect(gen.sample_configs(15), SMALL, repetitions=1)
        path = tmp_path / "train.npz"
        save_dataset(train, path)
        loaded = load_dataset(path)
        model = TwoLevelModel(small_scales=SMALL, n_clusters=2,
                              random_state=0).fit(loaded)
        pred = model.predict(loaded.unique_configs()[:3], [512])
        assert np.all(pred > 0)

    def test_model_pickle_roundtrip(self, tmp_path):
        import pickle

        app = get_app("cg")
        gen = HistoryGenerator(app, seed=4)
        train = gen.collect(gen.sample_configs(12), SMALL, repetitions=1)
        model = TwoLevelModel(small_scales=SMALL, n_clusters=2,
                              random_state=0).fit(train)
        X = train.unique_configs()[:4]
        expected = model.predict(X, LARGE)
        blob = pickle.dumps(model)
        restored = pickle.loads(blob)
        np.testing.assert_allclose(restored.predict(X, LARGE), expected)


class TestScaleSplitProtocol:
    def test_split_then_fit_then_evaluate(self):
        app = get_app("nbody")
        gen = HistoryGenerator(app, seed=6)
        full = gen.collect(gen.sample_configs(15), SMALL + LARGE,
                           repetitions=1)
        split = scale_split(full, SMALL, LARGE)
        model = TwoLevelModel(small_scales=SMALL, n_clusters=2,
                              random_state=0).fit(split.train)
        scores = model.evaluate_split(split)
        assert set(scores) == set(LARGE)
        assert all(0 < v < 5 for v in scores.values())
