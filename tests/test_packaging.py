"""Packaging and public-surface sanity tests."""

import importlib
from pathlib import Path

import pytest

import repro

SUBPACKAGES = [
    "repro.ml",
    "repro.sim",
    "repro.apps",
    "repro.data",
    "repro.core",
    "repro.baselines",
    "repro.analysis",
    "repro.cli",
]


class TestPublicSurface:
    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)

    def test_top_level_exports_two_level_model(self):
        from repro import TwoLevelModel

        assert TwoLevelModel is importlib.import_module(
            "repro.core"
        ).TwoLevelModel

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackage_importable(self, name):
        module = importlib.import_module(name)
        assert module.__doc__

    @pytest.mark.parametrize(
        "name", [n for n in SUBPACKAGES if n != "repro.cli"]
    )
    def test_all_exports_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in module.__all__:
            assert hasattr(module, symbol), (name, symbol)

    def test_py_typed_marker_shipped(self):
        pkg_dir = Path(repro.__file__).parent
        assert (pkg_dir / "py.typed").exists()

    def test_no_sklearn_dependency(self):
        """The environment constraint this build was written under: the
        whole ML stack must work without scikit-learn."""
        import sys

        # Importing everything must not have pulled sklearn in.
        for name in SUBPACKAGES:
            importlib.import_module(name)
        assert "sklearn" not in sys.modules

    @pytest.mark.parametrize("name", SUBPACKAGES[:-1])
    def test_public_classes_have_docstrings(self, name):
        module = importlib.import_module(name)
        for symbol in module.__all__:
            obj = getattr(module, symbol)
            if isinstance(obj, type):
                assert obj.__doc__, f"{name}.{symbol} lacks a docstring"
