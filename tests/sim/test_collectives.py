"""Tests for MPI collective cost models."""

import math

import pytest

from repro.sim import (
    Machine,
    allgather,
    allreduce,
    alltoall,
    barrier,
    broadcast,
    ptp,
    reduce,
)
from repro.sim.collectives import COLLECTIVES


@pytest.fixture
def machine():
    return Machine()


ALL_OPS = [barrier, broadcast, reduce, allreduce, allgather, alltoall]


class TestDegenerateCases:
    @pytest.mark.parametrize("op", ALL_OPS)
    def test_single_process_free(self, machine, op):
        assert op(machine, 1024.0, 1) == 0.0

    def test_ptp_zero_count(self, machine):
        assert ptp(machine, 1024.0, 8, count=0) == 0.0

    def test_ptp_negative_count_raises(self, machine):
        with pytest.raises(ValueError):
            ptp(machine, 1024.0, 8, count=-1)


class TestMonotonicity:
    @pytest.mark.parametrize("op", [broadcast, reduce, allreduce, allgather, alltoall])
    def test_monotone_in_bytes(self, machine, op):
        times = [op(machine, n, 64) for n in [8, 1024, 65536, 1048576]]
        assert times == sorted(times)

    @pytest.mark.parametrize("op", ALL_OPS)
    def test_monotone_in_procs(self, machine, op):
        times = [op(machine, 1024.0, p) for p in [2, 8, 64, 512]]
        assert all(b >= a for a, b in zip(times, times[1:]))


class TestStructure:
    def test_barrier_log_rounds(self, machine):
        # Barrier cost ratio between p=256 and p=2 equals the round ratio
        # up to the hop-count increase.
        t2 = barrier(machine, 0.0, 2)
        t256 = barrier(machine, 0.0, 256)
        assert t256 / t2 >= math.log2(256) / math.log2(2) * 0.9

    def test_broadcast_is_log2_rounds_of_ptp(self, machine):
        for p in [2, 64, 1000, 1024]:
            rounds = math.ceil(math.log2(p))
            assert broadcast(machine, 4096, p) == pytest.approx(
                rounds * ptp(machine, 4096, p)
            )

    def test_reduce_costs_at_least_broadcast(self, machine):
        # Same tree, plus arithmetic.
        assert reduce(machine, 65536, 64) >= broadcast(machine, 65536, 64)

    def test_allreduce_bandwidth_term_scale_free(self, machine):
        # Rabenseifner: bytes moved ~ 2n(p-1)/p, nearly independent of p;
        # doubling p far less than doubles the time for large payloads.
        big = 64 * 1024 * 1024
        t64 = allreduce(machine, big, 64)
        t128 = allreduce(machine, big, 128)
        assert t128 < 1.2 * t64

    def test_allreduce_small_uses_latency_algorithm(self, machine):
        small = allreduce(machine, 8.0, 1024)
        rounds = math.ceil(math.log2(1024))
        # Latency-dominated: roughly rounds x one small message.
        one_msg = ptp(machine, 8.0, 1024)
        assert small == pytest.approx(rounds * one_msg, rel=0.5)

    def test_allgather_linear_in_procs(self, machine):
        t8 = allgather(machine, 4096, 8)
        t64 = allgather(machine, 4096, 64)
        # Ring: (p-1) steps; hop growth makes it slightly superlinear.
        assert t64 / t8 >= (63 / 7) * 0.9

    def test_alltoall_per_step_block_shrinks(self, machine):
        # Total payload fixed: doubling p doubles steps but halves block
        # size, so growth is sub-linear in p for bandwidth-dominated
        # payloads.
        payload = 8 * 1024 * 1024
        t64 = alltoall(machine, payload, 64)
        t128 = alltoall(machine, payload, 128)
        assert t128 < 1.9 * t64

    def test_registry_complete(self):
        assert set(COLLECTIVES) == {
            "ptp",
            "barrier",
            "broadcast",
            "reduce",
            "allreduce",
            "allgather",
            "alltoall",
        }
