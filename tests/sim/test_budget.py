"""Tests for the wall-clock budget / retry / resubmission subsystem."""

import numpy as np
import pytest

from repro.apps import get_app
from repro.errors import (
    ConfigurationError,
    ExecutionTimeoutError,
    SimulationError,
)
from repro.sim import (
    Executor,
    ExecutionBudget,
    Machine,
    NoiseModel,
    RetryPolicy,
)


@pytest.fixture(scope="module")
def app():
    return get_app("stencil3d")


@pytest.fixture(scope="module")
def params(app):
    return {"nx": 128, "iterations": 100, "ghost": 1, "check_freq": 10}


@pytest.fixture(scope="module")
def baseline(app, params):
    """Unbudgeted reference run (seed 5, rep 0)."""
    return Executor(seed=5).run(app, params, 64)


class TestExecutionBudget:
    def test_unlimited_by_default(self):
        b = ExecutionBudget()
        assert not b.bounded
        assert b.limit_for(Machine(), 64) is None

    def test_flat_limit(self):
        b = ExecutionBudget(limit=10.0)
        assert b.bounded
        assert b.limit_for(Machine(), 64) == 10.0
        assert b.limit_for(Machine(), 4096) == 10.0

    def test_node_seconds_shrink_with_job_size(self):
        m = Machine()
        b = ExecutionBudget(node_seconds=3600.0)
        small = b.limit_for(m, m.node.cores)          # 1 node
        large = b.limit_for(m, 4 * m.node.cores)      # 4 nodes
        assert small == pytest.approx(3600.0)
        assert large == pytest.approx(900.0)

    def test_from_machine(self):
        m = Machine()
        b = ExecutionBudget.from_machine(m, node_hours=2.0)
        assert b.limit_for(m, m.node.cores) == pytest.approx(7200.0)

    def test_from_machine_rejects_starvation(self):
        with pytest.raises(ConfigurationError):
            ExecutionBudget.from_machine(Machine(), node_hours=1e-6)

    def test_scaled(self):
        b = ExecutionBudget(limit=10.0).scaled(1.5)
        assert b.limit == pytest.approx(15.0)
        assert ExecutionBudget().scaled(2.0).limit is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExecutionBudget(limit=0.0)
        with pytest.raises(ConfigurationError):
            ExecutionBudget(node_seconds=-1.0)
        with pytest.raises(ConfigurationError):
            ExecutionBudget(limit=1.0, node_seconds=1.0)
        with pytest.raises(ConfigurationError):
            ExecutionBudget(limit=1.0).scaled(0.0)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_jitter=1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(escalation=0.9)

    def test_budget_factor_escalates(self):
        p = RetryPolicy(max_attempts=3, escalation=2.0)
        assert [p.budget_factor(k) for k in range(3)] == [1.0, 2.0, 4.0]

    def test_backoff_exponential_with_bounded_jitter(self):
        p = RetryPolicy(max_attempts=4, backoff_base=60.0,
                        backoff_factor=2.0, backoff_jitter=0.1)
        rng = np.random.default_rng(0)
        assert p.backoff_delay(0, rng) == 0.0
        for k, nominal in [(1, 60.0), (2, 120.0), (3, 240.0)]:
            d = p.backoff_delay(k, np.random.default_rng(k))
            assert nominal * 0.9 <= d <= nominal * 1.1

    def test_backoff_deterministic_per_seed(self):
        p = RetryPolicy(max_attempts=2)
        a = p.backoff_delay(1, np.random.default_rng(42))
        b = p.backoff_delay(1, np.random.default_rng(42))
        assert a == b


class TestBudgetedExecutor:
    def test_generous_budget_matches_unbudgeted_run(self, app, params, baseline):
        ex = Executor(seed=5, budget=ExecutionBudget(limit=baseline.runtime * 10))
        rec = ex.run(app, params, 64)
        assert rec.runtime == baseline.runtime
        assert not rec.censored
        assert rec.n_attempts == 1
        assert rec.attempts.final.timed_out is False

    def test_timeout_without_retries_raises(self, app, params, baseline):
        ex = Executor(seed=5, budget=ExecutionBudget(limit=baseline.runtime / 2))
        with pytest.raises(ExecutionTimeoutError) as ei:
            ex.run(app, params, 64)
        exc = ei.value
        assert exc.partial_runtime == pytest.approx(baseline.runtime / 2)
        assert exc.attempts.n_attempts == 1
        assert exc.record is not None
        assert exc.record.censored
        assert exc.record.runtime == pytest.approx(baseline.runtime / 2)

    def test_resubmission_succeeds_with_escalation(self, app, params, baseline):
        # Attempt 0 is killed just under the observed runtime; escalation
        # then grants enough headroom for a retry to finish.
        ex = Executor(
            seed=5,
            budget=ExecutionBudget(limit=baseline.runtime * 0.999),
            retry=RetryPolicy(max_attempts=4, escalation=1.5),
        )
        rec = ex.run(app, params, 64)
        assert not rec.censored
        assert rec.resubmitted
        assert rec.attempts.attempts[0].timed_out
        assert rec.attempts.final.timed_out is False
        # The killed attempt records the limit itself (censored value).
        first = rec.attempts.attempts[0]
        assert first.runtime == pytest.approx(first.limit)
        # Escalated limits grow geometrically.
        limits = [a.limit for a in rec.attempts]
        assert all(b == pytest.approx(a * 1.5) for a, b in zip(limits, limits[1:]))
        # Resubmissions wait in the queue (backoff recorded).
        assert all(a.backoff > 0 for a in rec.attempts.attempts[1:])
        assert rec.attempts.total_wall_clock > rec.runtime

    def test_attempt_trace_deterministic(self, app, params):
        def trace():
            ex = Executor(
                seed=5,
                budget=ExecutionBudget(limit=0.02),
                retry=RetryPolicy(max_attempts=3, escalation=1.3),
            )
            try:
                return ex.run(app, params, 64).attempts
            except ExecutionTimeoutError as exc:
                return exc.attempts

        assert trace() == trace()

    def test_attempts_use_distinct_seeds(self, app, params, baseline):
        ex = Executor(
            seed=5,
            budget=ExecutionBudget(limit=baseline.runtime * 0.5),
            retry=RetryPolicy(max_attempts=3),
        )
        try:
            rec = ex.run(app, params, 64)
            seeds = [a.seed for a in rec.attempts]
        except ExecutionTimeoutError as exc:
            seeds = [a.seed for a in exc.attempts]
        assert len(set(seeds)) == len(seeds)

    def test_exhausted_retries_raise_with_full_trace(self, app, params, baseline):
        ex = Executor(
            seed=5,
            budget=ExecutionBudget(limit=baseline.runtime / 100),
            retry=RetryPolicy(max_attempts=3, escalation=1.01),
        )
        with pytest.raises(ExecutionTimeoutError) as ei:
            ex.run(app, params, 64)
        trace = ei.value.attempts
        assert trace.n_attempts == 3
        assert trace.timed_out
        assert all(a.timed_out for a in trace)
        rec = ei.value.record
        assert rec.censored and rec.attempts is trace
        # The history value is the final (escalated) limit.
        assert rec.runtime == pytest.approx(trace.final.limit)

    def test_per_call_override_beats_executor_default(self, app, params, baseline):
        ex = Executor(seed=5, budget=ExecutionBudget(limit=baseline.runtime / 2))
        rec = ex.run(app, params, 64, budget=ExecutionBudget.unlimited())
        assert rec.runtime == baseline.runtime

    def test_budget_errors_are_structured(self, app, params):
        with pytest.raises(ConfigurationError):
            Executor().run(app, params, 0)

    def test_zero_runtime_app_raises_simulation_error(self):
        from repro.apps.base import Application, ParamSpec, PhaseSpec

        class Degenerate(Application):
            name = "degenerate"

            def param_specs(self):
                return (ParamSpec("x", 0, 1),)

            def phases(self, params, nprocs):
                return [PhaseSpec("empty", 0.0, 0.0, ())]

        with pytest.raises(SimulationError):
            Executor().run(Degenerate(), {"x": 0.5}, 4)
