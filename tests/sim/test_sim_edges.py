"""Additional edge-case tests for the simulator substrate."""

import math

import numpy as np
import pytest

from repro.apps import get_app
from repro.sim import (
    Executor,
    Machine,
    NodeSpec,
    NoiseModel,
    allreduce,
    get_machine,
    ptp,
)


class TestAllreduceAlgorithmSwitch:
    def test_small_payload_latency_scaling(self):
        """Below the eager limit: recursive doubling, cost ~ log2(p)
        full-size messages."""
        m = Machine()
        t = allreduce(m, 8.0, 1024)
        rounds = math.ceil(math.log2(1024))
        assert t == pytest.approx(
            rounds * ptp(m, 8.0, 1024) + rounds * 8.0 / 4e9, rel=1e-6
        )

    def test_large_payload_bandwidth_bound(self):
        """Above the eager limit: Rabenseifner — ~2n bytes moved plus
        the local reduction arithmetic; latency is negligible."""
        m = Machine()
        n = 64 * 1024 * 1024
        t = allreduce(m, n, 256)
        frac = 255 / 256
        bw_term = 2.0 * n * frac * m.network.params.gap_per_byte
        combine = n * frac / 4e9
        assert t == pytest.approx(bw_term + combine, rel=0.01)

    def test_crossover_continuity_order(self):
        """The algorithm switch must not make a slightly larger payload
        orders of magnitude cheaper."""
        m = Machine()
        limit = m.network.params.eager_limit
        below = allreduce(m, float(limit), 512)
        above = allreduce(m, float(limit + 1), 512)
        assert above > 0.05 * below


class TestMachinePresetExecution:
    @pytest.mark.parametrize(
        "preset", ["default-cluster", "torus-cluster", "dragonfly-cluster"]
    )
    def test_apps_run_on_every_preset(self, preset):
        machine = get_machine(preset)
        ex = Executor(machine=machine, noise=NoiseModel(0, 0, 0))
        app = get_app("cg")
        params = {"n": 1e6, "nnz_per_row": 27, "iterations": 100}
        times = [ex.model_time(app, params, p) for p in [32, 256, 2048]]
        assert all(t > 0 for t in times)
        # Strong scaling holds initially on every preset.
        assert times[1] < times[0]

    def test_torus_slower_collectives_than_fat_tree(self):
        # At large scale the torus pays more hops than the fat tree.
        ft = get_machine("default-cluster")
        torus = get_machine("torus-cluster")
        p = 4096
        assert allreduce(torus, 8.0, p) > allreduce(ft, 8.0, p) * 0.5


class TestExtremeShapes:
    def test_single_core_node_machine(self):
        m = Machine(node=NodeSpec(cores=1))
        assert m.nodes_for(8) == 8
        assert not m.job_is_single_node(2)

    def test_tiny_job_on_big_machine(self):
        ex = Executor(noise=NoiseModel(0, 0, 0))
        app = get_app("stencil3d")
        params = {"nx": 48, "iterations": 50, "ghost": 1, "check_freq": 50}
        t = ex.model_time(app, params, 1)
        assert t > 0

    def test_noise_model_only_scales_runtime(self):
        ex_quiet = Executor(noise=NoiseModel(0, 0, 0), seed=5)
        ex_noisy = Executor(noise=NoiseModel(sigma=0.5, jitter_prob=0.0),
                            seed=5)
        app = get_app("fft2d")
        params = {"n": 1024, "batches": 4}
        quiet = ex_quiet.run(app, params, 64)
        noisy = ex_noisy.run(app, params, 64)
        assert quiet.model_runtime == pytest.approx(noisy.model_runtime)
        assert noisy.runtime != noisy.model_runtime

    def test_phase_volumes_additive_over_batches(self):
        app = get_app("fft2d")
        one = app.phases({"n": 1024, "batches": 1}, 64)
        four = app.phases({"n": 1024, "batches": 4}, 64)
        assert four[0].flops == pytest.approx(4 * one[0].flops)

    def test_runtime_scales_with_machine_speed(self):
        fast = Machine(node=NodeSpec(flops_per_core=32e9))
        slow = Machine(node=NodeSpec(flops_per_core=8e9))
        app = get_app("nbody")
        params = {"n_particles": 2e5, "timesteps": 50, "cutoff": 4.0,
                  "density": 1.0, "rebuild_every": 10}
        t_fast = Executor(machine=fast, noise=NoiseModel(0, 0, 0)).model_time(
            app, params, 32
        )
        t_slow = Executor(machine=slow, noise=NoiseModel(0, 0, 0)).model_time(
            app, params, 32
        )
        assert t_slow > t_fast
