"""Tests for the machine preset registry."""

import pytest

from repro.sim import MACHINE_PRESETS, get_machine


class TestPresets:
    def test_expected_presets(self):
        assert {"default-cluster", "torus-cluster", "dragonfly-cluster"} == set(
            MACHINE_PRESETS
        )

    @pytest.mark.parametrize("name", sorted(MACHINE_PRESETS))
    def test_presets_instantiate_and_allocate(self, name):
        m = get_machine(name)
        assert m.max_procs() >= 4096
        assert m.compute_time(1e9, 1e6, 64) > 0
        assert m.hops(m.node.cores * 4) >= 1.0

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError, match="Unknown machine"):
            get_machine("summit")

    def test_fresh_instances(self):
        a = get_machine("default-cluster")
        b = get_machine("default-cluster")
        assert a is not b

    def test_default_capacity_covers_evaluation_scales(self):
        m = get_machine("default-cluster")
        assert m.max_procs() >= 8192
