"""Tests for topologies: closed-form hop counts validated against
explicit networkx graphs."""

import networkx as nx
import numpy as np
import pytest

from repro.sim import (
    Dragonfly,
    FatTree,
    Torus3D,
    average_compute_hops,
    dragonfly_graph,
    fat_tree_graph,
    torus_3d_graph,
)


class TestFatTreeGraph:
    def test_host_count(self):
        G = fat_tree_graph(4)
        hosts = [n for n, d in G.nodes(data=True) if d["kind"] == "host"]
        assert len(hosts) == 4**3 // 4  # k^3/4

    def test_connected(self):
        assert nx.is_connected(fat_tree_graph(4))

    def test_odd_k_raises(self):
        with pytest.raises(ValueError):
            fat_tree_graph(3)

    def test_max_host_distance_six(self):
        G = fat_tree_graph(4)
        hosts = [n for n, d in G.nodes(data=True) if d["kind"] == "host"]
        lengths = dict(nx.all_pairs_shortest_path_length(G))
        max_d = max(lengths[a][b] for a in hosts for b in hosts)
        assert max_d == 6


class TestTorusGraph:
    def test_node_count_and_degree(self):
        G = torus_3d_graph((3, 3, 3))
        assert G.number_of_nodes() == 27
        assert all(d == 6 for _, d in G.degree())

    def test_wraparound_edges_exist(self):
        G = torus_3d_graph((4, 1, 1))
        assert G.has_edge((0, 0, 0), (3, 0, 0))

    def test_connected(self):
        assert nx.is_connected(torus_3d_graph((3, 4, 2)))

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            torus_3d_graph((0, 2, 2))


class TestDragonflyGraph:
    def test_host_count(self):
        G = dragonfly_graph(3, 2, 4)
        hosts = [n for n, d in G.nodes(data=True) if d["kind"] == "host"]
        assert len(hosts) == 3 * 2 * 4

    def test_connected(self):
        assert nx.is_connected(dragonfly_graph(4, 3, 2))

    def test_intra_group_complete(self):
        G = dragonfly_graph(2, 4, 1)
        for r1 in range(4):
            for r2 in range(r1 + 1, 4):
                assert G.has_edge(("router", 0, r1), ("router", 0, r2))


class TestFatTreeModel:
    def test_hops_match_graph_for_full_machine(self):
        topo = FatTree(k=4)
        exact = average_compute_hops(topo.graph())
        model = topo.average_hops(topo.n_hosts())
        assert model == pytest.approx(exact, rel=0.01)

    def test_hops_increase_with_allocation(self):
        topo = FatTree(k=8)
        hops = [topo.average_hops(n) for n in [1, 4, 16, 64, topo.n_hosts()]]
        assert all(b >= a for a, b in zip(hops, hops[1:]))

    def test_small_alloc_stays_in_edge(self):
        topo = FatTree(k=8)
        assert topo.average_hops(2) == pytest.approx(2.0)

    def test_contention_is_one(self):
        topo = FatTree(k=8)
        assert topo.contention_factor(topo.n_hosts()) == 1.0

    def test_over_allocation_raises(self):
        topo = FatTree(k=4)
        with pytest.raises(ValueError, match="exceeds"):
            topo.average_hops(topo.n_hosts() + 1)


class TestTorusModel:
    def test_ring_mean_distance_formulas(self):
        # Even ring of 4: distances 1,2,1 -> mean 4/3; formula d/4=1.0 is
        # the standard approximation for pairs including self... verify
        # against the exact definition used (distinct points).
        assert Torus3D._ring_mean_dist(1) == 0.0
        assert Torus3D._ring_mean_dist(2) == 0.5
        # Odd ring of 5: distances to others 1,2,2,1 -> mean 6/4 = 1.2
        assert Torus3D._ring_mean_dist(5) == pytest.approx((25 - 1) / 20.0)

    def test_hops_close_to_graph(self):
        topo = Torus3D((4, 4, 4))
        exact = average_compute_hops(topo.graph())
        model = topo.average_hops(topo.n_hosts())
        assert model == pytest.approx(exact, rel=0.15)

    def test_hops_grow_with_allocation(self):
        topo = Torus3D((8, 8, 8))
        hops = [topo.average_hops(n) for n in [2, 8, 64, 512]]
        assert all(b >= a for a, b in zip(hops, hops[1:]))

    def test_contention_grows_with_allocation(self):
        # Needs a torus wider than 8 in x: the model's break-even ring
        # size is 8, below which uniform traffic fits the bisection.
        topo = Torus3D((32, 8, 8))
        assert topo.contention_factor(32 * 8 * 8) > topo.contention_factor(8)
        # Within the break-even regime contention stays clamped at 1.
        small = Torus3D((8, 8, 8))
        assert small.contention_factor(512) == 1.0

    def test_contention_at_least_one(self):
        topo = Torus3D((4, 4, 4))
        for n in [1, 2, 5, 64]:
            assert topo.contention_factor(n) >= 1.0


class TestDragonflyModel:
    def test_hops_bounded_by_graph_diameter(self):
        topo = Dragonfly(groups=4, routers_per_group=2, hosts_per_router=2)
        model = topo.average_hops(topo.n_hosts())
        assert 1.0 <= model <= 6.0

    def test_hops_vs_graph(self):
        topo = Dragonfly(groups=3, routers_per_group=2, hosts_per_router=2)
        exact = average_compute_hops(topo.graph())
        model = topo.average_hops(topo.n_hosts())
        # Simplified wiring: allow a coarse tolerance.
        assert model == pytest.approx(exact, rel=0.35)

    def test_single_group_no_contention(self):
        topo = Dragonfly(groups=4, routers_per_group=4, hosts_per_router=4)
        assert topo.contention_factor(16) == 1.0

    def test_cross_group_contention(self):
        topo = Dragonfly(groups=8, routers_per_group=2, hosts_per_router=2)
        assert topo.contention_factor(topo.n_hosts()) >= 1.0
