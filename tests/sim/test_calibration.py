"""Tests for machine-model calibration (parameter recovery)."""

import numpy as np
import pytest

from repro.sim import (
    LogGPParams,
    Machine,
    NetworkModel,
    NodeSpec,
    calibrate_machine,
    fit_loggp,
    fit_node,
    get_machine,
    measure_node,
    measure_pingpong,
)
from repro.sim.calibration import NodeSample, PingPongSample


class TestPingPongFit:
    def test_exact_recovery_noise_free(self):
        machine = get_machine("default-cluster")
        samples = measure_pingpong(machine)
        fitted = fit_loggp(samples,
                           eager_limit=machine.network.params.eager_limit)
        true = machine.network.params
        assert fitted.latency == pytest.approx(true.latency, rel=1e-6)
        assert fitted.overhead == pytest.approx(true.overhead, rel=1e-6)
        assert fitted.gap_per_byte == pytest.approx(true.gap_per_byte,
                                                    rel=1e-6)

    def test_recovery_under_noise(self):
        machine = get_machine("default-cluster")
        rng = np.random.default_rng(3)
        samples = measure_pingpong(machine, noise_sigma=0.03, rng=rng)
        fitted = fit_loggp(samples,
                           eager_limit=machine.network.params.eager_limit)
        true = machine.network.params
        assert fitted.latency == pytest.approx(true.latency, rel=0.25)
        assert fitted.gap_per_byte == pytest.approx(true.gap_per_byte,
                                                    rel=0.1)

    def test_single_hop_distance_rejected(self):
        machine = get_machine("default-cluster")
        samples = measure_pingpong(machine, hop_distances=(2.0,))
        with pytest.raises(ValueError, match="hop distances"):
            fit_loggp(samples)

    def test_one_sided_sizes_rejected(self):
        machine = get_machine("default-cluster")
        samples = measure_pingpong(machine, sizes=(0, 64, 512))
        with pytest.raises(ValueError, match="eager limit"):
            fit_loggp(samples)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError, match="at least 4"):
            fit_loggp([PingPongSample(0, 1e-6)])

    def test_invalid_sample_rejected(self):
        with pytest.raises(ValueError):
            PingPongSample(-1, 1e-6)
        with pytest.raises(ValueError):
            PingPongSample(0, 0.0)
        with pytest.raises(ValueError):
            PingPongSample(0, 1e-6, hops=0.5)


class TestNodeFit:
    def test_recovers_effective_rates(self):
        machine = get_machine("default-cluster")
        samples = measure_node(machine)
        node = fit_node(samples, cores=machine.node.cores)
        true_flops = (machine.node.flops_per_core
                      * machine.node.compute_efficiency)
        assert node.flops_per_core * node.compute_efficiency == pytest.approx(
            true_flops, rel=0.05
        )
        assert node.mem_bandwidth == pytest.approx(
            machine.node.mem_bandwidth, rel=0.05
        )

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_node([], cores=32)

    def test_bad_sample_rejected(self):
        with pytest.raises(ValueError):
            fit_node([NodeSample(1e9, 1e6, 1, 0.0)], cores=32)


class TestEndToEnd:
    @pytest.mark.parametrize("sigma", [0.0, 0.02])
    def test_calibrated_machine_predicts_like_reference(self, sigma):
        ref = get_machine("default-cluster")
        cal = calibrate_machine(ref, noise_sigma=sigma, seed=1)
        # Compare an application runtime prediction on both machines.
        from repro.apps import get_app
        from repro.sim import Executor, NoiseModel

        app = get_app("stencil3d")
        params = {"nx": 256, "iterations": 200, "ghost": 2, "check_freq": 10}
        quiet = NoiseModel(sigma=0, jitter_prob=0)
        for p in [64, 512, 4096]:
            t_ref = Executor(machine=ref, noise=quiet).model_time(app, params, p)
            t_cal = Executor(machine=cal, noise=quiet).model_time(app, params, p)
            assert t_cal == pytest.approx(t_ref, rel=0.15), p

    def test_topology_carried_over(self):
        ref = get_machine("torus-cluster")
        cal = calibrate_machine(ref)
        assert cal.topology is ref.topology
        assert cal.name.startswith("calibrated-")

    def test_custom_machine_roundtrip(self):
        ref = Machine(
            node=NodeSpec(cores=16, flops_per_core=8e9, mem_bandwidth=80e9,
                          compute_efficiency=0.5),
            network=NetworkModel(LogGPParams(latency=3e-6, overhead=1e-6,
                                             gap_per_byte=1e-9)),
        )
        cal = calibrate_machine(ref)
        assert cal.network.params.latency == pytest.approx(3e-6, rel=1e-6)
        assert cal.network.params.gap_per_byte == pytest.approx(1e-9, rel=1e-6)
