"""Tests for the node/machine roofline model."""

import pytest

from repro.sim import FatTree, Machine, NodeSpec


class TestNodeSpec:
    def test_defaults_valid(self):
        spec = NodeSpec()
        assert spec.cores >= 1

    def test_invalid_values_raise(self):
        with pytest.raises(ValueError):
            NodeSpec(cores=0)
        with pytest.raises(ValueError):
            NodeSpec(flops_per_core=0)
        with pytest.raises(ValueError):
            NodeSpec(mem_bandwidth=-1)
        with pytest.raises(ValueError):
            NodeSpec(compute_efficiency=0.0)
        with pytest.raises(ValueError):
            NodeSpec(compute_efficiency=1.5)


class TestMachineAllocation:
    def test_nodes_for_rounds_up(self):
        m = Machine(node=NodeSpec(cores=32))
        assert m.nodes_for(1) == 1
        assert m.nodes_for(32) == 1
        assert m.nodes_for(33) == 2
        assert m.nodes_for(64) == 2

    def test_capacity_enforced(self):
        m = Machine(node=NodeSpec(cores=2), topology=FatTree(k=2))
        with pytest.raises(ValueError, match="capacity"):
            m.nodes_for(m.max_procs() + 1)

    def test_invalid_nprocs_raises(self):
        with pytest.raises(ValueError):
            Machine().nodes_for(0)

    def test_single_node_detection(self):
        m = Machine(node=NodeSpec(cores=16))
        assert m.job_is_single_node(16)
        assert not m.job_is_single_node(17)


class TestRoofline:
    def test_flop_bound_phase(self):
        m = Machine(node=NodeSpec(cores=4, flops_per_core=1e9,
                                  mem_bandwidth=1e12, compute_efficiency=1.0))
        # 1e9 flops, negligible memory: exactly one second.
        assert m.compute_time(1e9, 1.0, nprocs=1) == pytest.approx(1.0)

    def test_memory_bound_phase(self):
        m = Machine(node=NodeSpec(cores=4, flops_per_core=1e15,
                                  mem_bandwidth=1e9, compute_efficiency=1.0))
        # 1e9 bytes on a fully packed node: bandwidth shared by 4 cores.
        assert m.compute_time(1.0, 1e9, nprocs=4) == pytest.approx(4.0)

    def test_bandwidth_shared_by_residents_only(self):
        m = Machine(node=NodeSpec(cores=4, flops_per_core=1e15,
                                  mem_bandwidth=1e9, compute_efficiency=1.0))
        t_alone = m.compute_time(1.0, 1e9, nprocs=1)
        t_packed = m.compute_time(1.0, 1e9, nprocs=4)
        assert t_packed == pytest.approx(4.0 * t_alone)

    def test_efficiency_scales_flop_bound(self):
        fast = Machine(node=NodeSpec(compute_efficiency=1.0))
        slow = Machine(node=NodeSpec(compute_efficiency=0.25))
        assert slow.compute_time(1e12, 0.0, 1) == pytest.approx(
            4.0 * fast.compute_time(1e12, 0.0, 1)
        )

    def test_max_of_bounds(self):
        m = Machine(node=NodeSpec(cores=1, flops_per_core=1e9,
                                  mem_bandwidth=1e9, compute_efficiency=1.0))
        # 2 s of flops vs 1 s of memory -> flop bound wins.
        assert m.compute_time(2e9, 1e9, 1) == pytest.approx(2.0)

    def test_negative_work_raises(self):
        with pytest.raises(ValueError):
            Machine().compute_time(-1.0, 0.0, 1)


class TestMachineTopologyGlue:
    def test_single_node_hops_is_one(self):
        m = Machine(node=NodeSpec(cores=8))
        assert m.hops(8) == 1.0

    def test_multi_node_hops_at_least_wire(self):
        m = Machine(node=NodeSpec(cores=8))
        assert m.hops(64) >= 2.0

    def test_contention_default_fat_tree_is_one(self):
        m = Machine()
        assert m.contention(4096) == 1.0
