"""Tests for the LogGP network model."""

import pytest

from repro.sim import LogGPParams, NetworkModel
from repro.sim.network import PRESETS


class TestLogGPParams:
    def test_defaults_valid(self):
        p = LogGPParams()
        assert p.latency > 0 and p.gap_per_byte > 0

    def test_invalid_values_raise(self):
        with pytest.raises(ValueError):
            LogGPParams(latency=0.0)
        with pytest.raises(ValueError):
            LogGPParams(gap_per_byte=-1.0)
        with pytest.raises(ValueError):
            LogGPParams(eager_limit=-1)

    def test_presets_exist(self):
        assert {"infiniband-edr", "omnipath", "ethernet-10g"} <= set(PRESETS)

    def test_ethernet_slower_than_infiniband(self):
        eth, ib = PRESETS["ethernet-10g"], PRESETS["infiniband-edr"]
        assert eth.latency > ib.latency
        assert eth.gap_per_byte > ib.gap_per_byte


class TestNetworkModel:
    def test_preset_by_name(self):
        net = NetworkModel("omnipath")
        assert net.params == PRESETS["omnipath"]

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError, match="Unknown interconnect"):
            NetworkModel("carrier-pigeon")

    def test_time_monotone_in_size(self):
        net = NetworkModel()
        sizes = [0, 100, 10_000, 1_000_000]
        times = [net.ptp_time(s) for s in sizes]
        assert times == sorted(times)

    def test_time_monotone_in_hops(self):
        net = NetworkModel()
        assert net.ptp_time(1000, hops=4.0) > net.ptp_time(1000, hops=1.0)

    def test_contention_slows_large_messages(self):
        net = NetworkModel()
        assert net.ptp_time(1_000_000, contention=4.0) > net.ptp_time(
            1_000_000, contention=1.0
        )

    def test_intra_node_faster(self):
        net = NetworkModel()
        assert net.ptp_time(10_000, intra_node=True) < net.ptp_time(10_000)

    def test_rendezvous_jump_at_eager_limit(self):
        net = NetworkModel()
        limit = net.params.eager_limit
        below = net.ptp_time(limit)
        above = net.ptp_time(limit + 1)
        # Crossing the limit adds a round trip, far more than one byte.
        assert above - below > net.params.latency

    def test_bandwidth_dominates_large_messages(self):
        net = NetworkModel()
        t = net.ptp_time(100_000_000)
        expected_bw_term = 100_000_000 * net.params.gap_per_byte
        assert t == pytest.approx(expected_bw_term, rel=0.01)

    def test_latency_dominates_small_messages(self):
        net = NetworkModel()
        t = net.ptp_time(0)
        assert t == pytest.approx(
            net.params.latency + net.params.overhead, rel=1e-9
        )

    def test_invalid_args_raise(self):
        net = NetworkModel()
        with pytest.raises(ValueError):
            net.ptp_time(-1)
        with pytest.raises(ValueError):
            net.ptp_time(10, hops=0.5)
        with pytest.raises(ValueError):
            net.ptp_time(10, contention=0.0)
        with pytest.raises(ValueError):
            NetworkModel(intra_node_speedup=0.5)
