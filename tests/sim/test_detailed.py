"""Tests for the per-rank detailed executor and load-imbalance model."""

import numpy as np
import pytest

from repro.apps import get_app
from repro.data import HistoryGenerator
from repro.sim import (
    DetailedExecutor,
    Executor,
    LoadImbalanceModel,
    NoiseModel,
)
from repro.sim.detailed import _neighbor_sync


@pytest.fixture(scope="module")
def app():
    return get_app("stencil3d")


@pytest.fixture(scope="module")
def params():
    return {"nx": 128, "iterations": 100, "ghost": 1, "check_freq": 10}


ZERO_IMBALANCE = LoadImbalanceModel(
    static_sigma=0.0, dynamic_sigma=0.0, straggler_prob=0.0,
    straggler_factor=1.0,
)


class TestLoadImbalanceModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            LoadImbalanceModel(static_sigma=-0.1)
        with pytest.raises(ValueError):
            LoadImbalanceModel(straggler_prob=2.0)
        with pytest.raises(ValueError):
            LoadImbalanceModel(straggler_factor=0.5)

    def test_zero_model_gives_unit_factors(self):
        rng = np.random.default_rng(0)
        f = ZERO_IMBALANCE.static_factors(100, rng)
        np.testing.assert_array_equal(f, 1.0)
        np.testing.assert_array_equal(
            ZERO_IMBALANCE.dynamic_factors(100, rng), 1.0
        )

    def test_factors_centered_near_one(self):
        rng = np.random.default_rng(0)
        model = LoadImbalanceModel(static_sigma=0.05, straggler_prob=0.0)
        f = model.static_factors(5000, rng)
        assert abs(np.log(f).mean()) < 0.01

    def test_stragglers_appear(self):
        rng = np.random.default_rng(0)
        model = LoadImbalanceModel(
            static_sigma=0.0, straggler_prob=0.5, straggler_factor=2.0
        )
        f = model.static_factors(1000, rng)
        assert 0.3 < np.mean(f > 1.5) < 0.7


class TestNeighborSync:
    def test_propagates_max_locally(self):
        t = np.zeros(10)
        t[4] = 5.0
        out = _neighbor_sync(t, rounds=1)
        assert out[3] == out[4] == out[5] == 5.0
        assert out[0] == 0.0  # only one hop of diffusion

    def test_rounds_widen_diffusion(self):
        t = np.zeros(10)
        t[0] = 3.0
        out = _neighbor_sync(t, rounds=4)
        # Wrap-around ring: 4 hops each way.
        assert np.sum(out == 3.0) >= 9

    def test_monotone(self):
        rng = np.random.default_rng(0)
        t = rng.random(20)
        out = _neighbor_sync(t, rounds=2)
        assert np.all(out >= t)


class TestDetailedExecutor:
    def test_zero_imbalance_matches_quiet_model(self, app, params):
        det = DetailedExecutor(imbalance=ZERO_IMBALANCE, seed=1)
        quiet = Executor(noise=NoiseModel(sigma=0, jitter_prob=0))
        for p in [1, 64, 512]:
            rec = det.run(app, params, p)
            assert rec.runtime == pytest.approx(
                quiet.model_time(app, params, p), rel=1e-9
            )

    def test_imbalance_never_speeds_up(self, app, params):
        det = DetailedExecutor(seed=1)
        for p in [64, 512]:
            rec = det.run(app, params, p)
            assert rec.runtime >= rec.model_runtime * 0.999

    def test_deterministic_per_identity(self, app, params):
        det = DetailedExecutor(seed=3)
        a = det.run(app, params, 64).runtime
        b = det.run(app, params, 64).runtime
        assert a == b
        assert det.run(app, params, 64, rep=1).runtime != a

    def test_more_imbalance_more_slowdown(self, app, params):
        mild = DetailedExecutor(
            imbalance=LoadImbalanceModel(static_sigma=0.01,
                                         dynamic_sigma=0.0,
                                         straggler_prob=0.0), seed=1
        )
        heavy = DetailedExecutor(
            imbalance=LoadImbalanceModel(static_sigma=0.2,
                                         dynamic_sigma=0.0,
                                         straggler_prob=0.0), seed=1
        )
        p = 512
        assert heavy.run(app, params, p).runtime > mild.run(
            app, params, p
        ).runtime

    def test_phase_breakdown_consistent(self, app, params):
        det = DetailedExecutor(seed=1)
        rec = det.run(app, params, 256)
        assert rec.phases
        total = sum(ph.total for ph in rec.phases)
        # Per-rank mean accounting approximates (not exceeds by much)
        # the critical-path runtime.
        assert total <= rec.runtime * 1.05

    def test_works_with_history_generator(self, app):
        det = DetailedExecutor(seed=4)
        gen = HistoryGenerator(app, executor=det, seed=4)
        ds = gen.generate(4, scales=[32, 64], repetitions=1)
        assert len(ds) == 8
        assert np.all(ds.runtime > 0)

    def test_rank_cap_respected(self, app, params):
        det = DetailedExecutor(seed=1, max_tracked_ranks=64)
        rec = det.run(app, params, 4096)
        assert rec.runtime > 0

    def test_invalid_args(self, app, params):
        with pytest.raises(ValueError):
            DetailedExecutor(max_tracked_ranks=0)
        with pytest.raises(ValueError):
            DetailedExecutor().run(app, params, 0)
        with pytest.raises(ValueError):
            DetailedExecutor().run(app, {"nx": 1}, 4)
