"""Tests for the executor and noise model."""

import numpy as np
import pytest

from repro.apps import get_app
from repro.sim import Executor, NoiseModel
from repro.sim.trace import ExecutionRecord, PhaseTiming


@pytest.fixture(scope="module")
def app():
    return get_app("stencil3d")


@pytest.fixture(scope="module")
def params(app):
    return {"nx": 128, "iterations": 100, "ghost": 1, "check_freq": 10}


class TestNoiseModel:
    def test_zero_noise_identity(self):
        nm = NoiseModel(sigma=0.0, jitter_prob=0.0)
        rng = np.random.default_rng(0)
        assert nm.apply(3.0, rng) == 3.0

    def test_noise_centered(self):
        nm = NoiseModel(sigma=0.05, jitter_prob=0.0)
        rng = np.random.default_rng(0)
        samples = np.array([nm.apply(1.0, rng) for _ in range(4000)])
        assert samples.mean() == pytest.approx(1.0, rel=0.02)
        assert samples.std() == pytest.approx(0.05, rel=0.2)

    def test_jitter_only_inflates(self):
        nm = NoiseModel(sigma=0.0, jitter_prob=1.0, jitter_scale=0.2)
        rng = np.random.default_rng(0)
        samples = [nm.apply(1.0, rng) for _ in range(100)]
        assert all(1.0 <= s <= 1.2 for s in samples)

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            NoiseModel(sigma=-0.1)
        with pytest.raises(ValueError):
            NoiseModel(jitter_prob=1.5)
        with pytest.raises(ValueError):
            NoiseModel(jitter_scale=-1.0)


class TestExecutor:
    def test_noise_free_run_matches_model(self, app, params):
        ex = Executor(noise=NoiseModel(sigma=0.0, jitter_prob=0.0))
        rec = ex.run(app, params, 64)
        assert rec.runtime == pytest.approx(rec.model_runtime)
        assert rec.model_runtime == pytest.approx(ex.model_time(app, params, 64))

    def test_runs_deterministic_per_identity(self, app, params):
        ex = Executor(seed=5)
        a = ex.run(app, params, 64, rep=0)
        b = ex.run(app, params, 64, rep=0)
        assert a.runtime == b.runtime

    def test_reps_differ(self, app, params):
        ex = Executor(seed=5)
        assert ex.run(app, params, 64, rep=0).runtime != ex.run(
            app, params, 64, rep=1
        ).runtime

    def test_order_independence(self, app, params):
        ex = Executor(seed=9)
        first = ex.run(app, params, 128).runtime
        ex.run(app, params, 64)  # interleave another run
        again = ex.run(app, params, 128).runtime
        assert first == again

    def test_different_seeds_differ(self, app, params):
        a = Executor(seed=1).run(app, params, 64).runtime
        b = Executor(seed=2).run(app, params, 64).runtime
        assert a != b

    def test_invalid_params_rejected(self, app):
        ex = Executor()
        with pytest.raises(ValueError, match="missing"):
            ex.run(app, {"nx": 128}, 64)
        with pytest.raises(ValueError, match="unknown"):
            ex.run(
                app,
                {"nx": 128, "iterations": 100, "ghost": 1, "check_freq": 10,
                 "bogus": 1},
                64,
            )

    def test_invalid_nprocs_raises(self, app, params):
        with pytest.raises(ValueError):
            Executor().run(app, params, 0)

    def test_record_phases_sum_to_model(self, app, params):
        ex = Executor()
        rec = ex.run(app, params, 64)
        assert sum(p.total for p in rec.phases) == pytest.approx(
            rec.model_runtime
        )

    def test_unknown_comm_op_rejected(self, params):
        from repro.apps.base import Application, CommOp, ParamSpec, PhaseSpec

        class Bad(Application):
            name = "bad"

            def param_specs(self):
                return (ParamSpec("x", 0, 1),)

            def phases(self, params, nprocs):
                return [PhaseSpec("p", 1.0, 1.0, (CommOp("gatherv", 8.0),))]

        with pytest.raises(ValueError, match="Unknown communication op"):
            Executor().run(Bad(), {"x": 0.5}, 4)


class TestTraceRecords:
    def test_phase_timing_validation(self):
        with pytest.raises(ValueError):
            PhaseTiming("x", -1.0, 0.0)

    def test_record_validation(self):
        with pytest.raises(ValueError):
            ExecutionRecord("a", {}, 0, 1.0, 1.0)
        with pytest.raises(ValueError):
            ExecutionRecord("a", {}, 4, -1.0, 1.0)

    def test_comm_fraction_bounds(self, app, params):
        rec = Executor().run(app, params, 256)
        assert 0.0 <= rec.comm_fraction <= 1.0

    def test_comm_fraction_zero_single_proc(self, app, params):
        # Single process: halo message count is zero.
        small = dict(params)
        rec = Executor().run(app, small, 1)
        assert rec.comm_fraction == pytest.approx(0.0)
