"""Tests for the experiment protocol (miniature end-to-end runs)."""

import numpy as np
import pytest

from repro.analysis import (
    ExperimentConfig,
    build_histories,
    evaluate_predictor,
    fit_two_level,
    run_method_comparison,
)

TINY = ExperimentConfig(
    app_name="stencil3d",
    small_scales=(32, 64, 128),
    large_scales=(256, 512),
    n_train_configs=20,
    n_test_configs=6,
    repetitions=1,
    seed=9,
    n_clusters=2,
)


@pytest.fixture(scope="module")
def tiny_histories():
    return build_histories(TINY)


class TestExperimentConfig:
    def test_with_overrides(self):
        cfg = TINY.with_(n_train_configs=5)
        assert cfg.n_train_configs == 5
        assert cfg.app_name == TINY.app_name

    def test_frozen(self):
        with pytest.raises(Exception):
            TINY.app_name = "other"


class TestBuildHistories:
    def test_shapes(self, tiny_histories):
        h = tiny_histories
        assert set(h.train.scales) == set(TINY.small_scales)
        assert set(h.test.scales) == set(TINY.large_scales)
        assert len(h.train) == 20 * 3 * 1
        assert len(h.test) == 6 * 2

    def test_deterministic(self):
        a = build_histories(TINY)
        b = build_histories(TINY)
        np.testing.assert_array_equal(a.train.runtime, b.train.runtime)


class TestEvaluate:
    def test_fit_two_level_and_score(self, tiny_histories):
        model = fit_two_level(tiny_histories)
        scores = evaluate_predictor(
            "two-level",
            lambda X, s: model.predict(X, [s])[:, 0],
            tiny_histories.test,
            TINY.large_scales,
        )
        assert set(scores.mape_by_scale) == set(TINY.large_scales)
        assert scores.overall_mape > 0
        assert all(v > 0 for v in scores.rmse_by_scale.values())

    def test_evaluate_missing_scales_raises(self, tiny_histories):
        with pytest.raises(ValueError):
            evaluate_predictor(
                "x", lambda X, s: np.ones(len(X)), tiny_histories.test, [9999]
            )

    def test_method_comparison_sorted(self, tiny_histories):
        results = run_method_comparison(
            tiny_histories, baselines=["direct-ridge", "direct-knn"]
        )
        names = [r.name for r in results]
        assert "two-level" in names
        overall = [r.overall_mape for r in results]
        assert overall == sorted(overall)

    def test_method_comparison_without_two_level(self, tiny_histories):
        results = run_method_comparison(
            tiny_histories, baselines=["direct-ridge"], include_two_level=False
        )
        assert [r.name for r in results] == ["direct-ridge"]


class TestFitReportPropagation:
    def test_clean_comparison_reports_no_degradation(self, tiny_histories):
        results = run_method_comparison(tiny_histories, baselines=["direct-ridge"])
        by_name = {r.name: r for r in results}
        two_level = by_name["two-level"]
        assert two_level.fit_report is not None
        assert not two_level.degraded
        # Baselines without a fit_report attribute degrade gracefully to None.
        assert by_name["direct-ridge"].degraded is False

    def test_degraded_fit_surfaces_in_scores(self, tiny_histories):
        import dataclasses

        from repro.data.dataset import ExecutionDataset

        train = tiny_histories.train
        runtime = train.runtime.copy()
        runtime[[0, 3]] = np.nan
        dirty = dataclasses.replace(
            tiny_histories,
            train=ExecutionDataset(
                app_name=train.app_name,
                param_names=train.param_names,
                X=train.X,
                nprocs=train.nprocs,
                runtime=runtime,
                model_runtime=train.model_runtime,
                rep=train.rep,
            ),
        )
        results = run_method_comparison(dirty, baselines=[])
        (scores,) = results
        assert scores.degraded
        assert scores.fit_report.by_kind("dropped_invalid_rows")

    def test_explicit_fit_report_round_trips(self, tiny_histories):
        from repro.robustness.report import FitReport

        report = FitReport()
        report.record("sanitize", "dropped_invalid_rows", "x", n=1)
        scores = evaluate_predictor(
            "x",
            lambda X, s: np.ones(len(X)),
            tiny_histories.test,
            TINY.large_scales,
            fit_report=report,
        )
        assert scores.fit_report is report
        assert scores.degraded
