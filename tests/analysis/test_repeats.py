"""Tests for multi-seed aggregation."""

import pytest

from repro.analysis import (
    AggregatedScores,
    ExperimentConfig,
    repeat_method_comparison,
)

TINY = ExperimentConfig(
    app_name="fft2d",
    small_scales=(32, 64, 128),
    large_scales=(256,),
    n_train_configs=12,
    n_test_configs=4,
    repetitions=1,
    n_clusters=2,
)


class TestRepeatComparison:
    @pytest.fixture(scope="class")
    def aggregated(self):
        return repeat_method_comparison(
            TINY, seeds=[1, 2], baselines=["direct-ridge"]
        )

    def test_structure(self, aggregated):
        names = {a.name for a in aggregated}
        assert names == {"two-level", "direct-ridge"}
        for a in aggregated:
            assert a.n_seeds == 2
            assert set(a.mean_by_scale) == {256}
            assert a.overall_std >= 0.0

    def test_sorted_by_mean(self, aggregated):
        means = [a.overall_mean for a in aggregated]
        assert means == sorted(means)

    def test_mean_consistent_with_scales(self, aggregated):
        for a in aggregated:
            assert a.overall_mean == pytest.approx(a.mean_by_scale[256])

    def test_empty_seeds_raise(self):
        with pytest.raises(ValueError):
            repeat_method_comparison(TINY, seeds=[])


class TestModelReport:
    def test_report_contents(self):
        from repro.analysis import build_histories, fit_two_level

        h = build_histories(TINY.with_(seed=3))
        model = fit_two_level(h)
        text = model.report(cv_splits=3)
        assert "interpolation level" in text
        assert "cluster 0" in text
        assert "t(p) ~" in text
