"""Tests for the ASCII table/series renderers."""

import pytest

from repro.analysis import ascii_table, format_percent, series_block


class TestFormatPercent:
    def test_basic(self):
        assert format_percent(0.1234) == "12.3%"

    def test_digits(self):
        assert format_percent(0.1234, digits=2) == "12.34%"


class TestAsciiTable:
    def test_contains_all_cells(self):
        out = ascii_table(["name", "mape"], [["two-level", "12.3%"]])
        assert "two-level" in out and "12.3%" in out

    def test_title_first_line(self):
        out = ascii_table(["a"], [["1"]], title="Table 2")
        assert out.splitlines()[0] == "Table 2"

    def test_alignment_numeric_right(self):
        out = ascii_table(["v"], [["1"], ["100"]])
        lines = [l for l in out.splitlines() if l.startswith("|")]
        # The 1 must be right-aligned under 100.
        assert lines[-2].index("1") > lines[-1].index("1") - 3
        assert "|   1 |" in out

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError, match="width"):
            ascii_table(["a", "b"], [["only-one"]])

    def test_empty_headers_raise(self):
        with pytest.raises(ValueError):
            ascii_table([], [])

    def test_no_rows_renders_header(self):
        out = ascii_table(["col"], [])
        assert "col" in out

    def test_consistent_line_widths(self):
        out = ascii_table(
            ["method", "p=1024", "p=2048"],
            [["two-level", "10.0%", "20.0%"], ["rf", "100.0%", "200.0%"]],
        )
        widths = {len(line) for line in out.splitlines()}
        assert len(widths) == 1


class TestSeriesBlock:
    def test_renders_series_rows(self):
        out = series_block(
            "Figure 1",
            "p",
            [1024, 2048],
            {"two-level": [0.1, 0.2], "rf": [0.5, 1.0]},
        )
        assert "Figure 1" in out
        assert "two-level" in out and "rf" in out
        assert "0.100" in out

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="values"):
            series_block("f", "p", [1, 2], {"a": [0.1]})

    def test_custom_format(self):
        out = series_block("f", "p", [1], {"a": [0.123456]}, y_format="{:.1f}")
        assert "0.1" in out and "0.12" not in out
