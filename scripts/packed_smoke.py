#!/usr/bin/env python
"""End-to-end smoke test of the packed (schema-v2) serving path.

One pass through the whole story the packed pipeline tells:

* fit a two-level model, register it through the ``repro save`` CLI
  path (``packed="auto"``) and assert the ``packed.npz`` sidecar plus
  its manifest checksum entry landed on disk,
* start a **cold** ``repro serve`` subprocess (nothing shared with the
  fitting process but the registry directory), and
* drive ``/predict`` and ``/batch`` over HTTP, asserting every float
  is bit-identical to the in-process object path, that ``/metrics``
  reports the sidecar in use, and that an empty batch is a 200 with
  ``[]``,
* finally corrupt the sidecar and assert registry fsck flags it.

Exits non-zero on any failure; used by the CI ``packed-smoke`` lane.

Usage: python scripts/packed_smoke.py  (no arguments; uses a temp dir
and an ephemeral port, so it is safe to run anywhere).
"""

from __future__ import annotations

import json
import pickle
import re
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

import numpy as np  # noqa: E402

from repro.core import TwoLevelModel  # noqa: E402
from repro.data import ExecutionDataset  # noqa: E402
from repro.serve import ModelRegistry  # noqa: E402
from repro.serve.artifacts import MANIFEST_NAME, PACKED_NAME  # noqa: E402

SMALL = (8, 16, 32, 64)
QUERY_SCALES = [32, 256, 1024]
PARAMS = ("a", "b", "c")


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def make_dataset(n: int = 30, seed: int = 0) -> ExecutionDataset:
    """Tiny deterministic synthetic history (no simulator needed)."""
    rng = np.random.default_rng(seed)
    configs = rng.uniform(1.0, 10.0, size=(n, len(PARAMS)))
    X = np.repeat(configs, len(SMALL), axis=0)
    nprocs = np.tile(np.asarray(SMALL, dtype=np.int64), n)
    runtime = (
        200.0 / nprocs
        + 0.6 * X[:, 0]
        + 0.05 * X[:, 1] * X[:, 2]
        + rng.uniform(0.01, 0.04, len(nprocs))
    )
    return ExecutionDataset(
        app_name="packed-smoke",
        param_names=PARAMS,
        X=X,
        nprocs=nprocs,
        runtime=runtime,
        model_runtime=runtime,
        rep=np.zeros(len(nprocs), dtype=np.int64),
    )


def post(url: str, payload: dict) -> tuple[int, dict]:
    req = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def get(url: str) -> tuple[int, dict]:
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, json.loads(resp.read())


def main() -> None:
    tmp = Path(tempfile.mkdtemp(prefix="packed-smoke-"))
    registry_dir = tmp / "registry"
    train = make_dataset()
    model = TwoLevelModel(
        small_scales=list(SMALL), n_clusters=2, random_state=0
    ).fit(train)

    # -- save through the CLI (the `repro fit` -> `repro save` handoff) --
    fit_pickle = tmp / "model.pkl"
    with open(fit_pickle, "wb") as fh:
        pickle.dump(
            {
                "model": model,
                "app_name": train.app_name,
                "param_names": train.param_names,
                "small_scales": list(SMALL),
            },
            fh,
        )
    save = subprocess.run(
        [
            sys.executable, "-m", "repro", "save",
            "--model", str(fit_pickle),
            "--registry", str(registry_dir),
            "--name", "smoke",
        ],
        capture_output=True,
        text=True,
        cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src")},
    )
    if save.returncode != 0:
        fail(f"repro save failed: {save.stderr}")
    if "[packed]" not in save.stdout:
        fail(f"repro save did not report a packed sidecar: {save.stdout!r}")

    version_dir = registry_dir / "smoke" / "v0001"
    if not (version_dir / PACKED_NAME).exists():
        fail("no packed.npz sidecar in the registry version dir")
    manifest = json.loads((version_dir / MANIFEST_NAME).read_text())
    if manifest["schema_version"] != 2:
        fail(f"expected schema_version 2, got {manifest['schema_version']}")
    entry = manifest["packed"]
    if not entry or entry["file"] != PACKED_NAME or len(entry["sha256"]) != 64:
        fail(f"bad manifest packed entry: {entry!r}")
    print("save: schema-v2 artifact with checksummed sidecar OK")

    # -- cold-process serving ------------------------------------------------
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--registry", str(registry_dir),
            "--name", "smoke",
            "--port", "0",
        ],
        stdout=subprocess.PIPE,
        text=True,
        cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src")},
    )
    try:
        line = proc.stdout.readline()
        m = re.search(r"http://([\d.]+):(\d+)", line)
        if not m:
            fail(f"serve did not print a listen address: {line!r}")
        base = f"http://{m.group(1)}:{m.group(2)}"

        X = make_dataset(n=5, seed=9).unique_configs().astype(float)
        want = model.predict(X, QUERY_SCALES)

        status, body = post(
            f"{base}/predict",
            {"params": dict(zip(PARAMS, X[0])), "scales": QUERY_SCALES},
        )
        if status != 200:
            fail(f"/predict returned {status}: {body}")
        if body["predictions"] != [float(v) for v in want[0]]:
            fail(
                "cold-served /predict diverged from the object path: "
                f"{body['predictions']} != {list(want[0])}"
            )

        status, body = post(
            f"{base}/batch",
            {
                "requests": [
                    {"params": dict(zip(PARAMS, row)), "scales": QUERY_SCALES}
                    for row in X
                ]
            },
        )
        if status != 200:
            fail(f"/batch returned {status}: {body}")
        got = np.asarray(body["results"])
        if got.shape != want.shape or not (got == want).all():
            fail("cold-served /batch diverged from the object path")

        status, body = post(f"{base}/batch", {"requests": []})
        if status != 200 or body["results"] != []:
            fail(f"empty batch should be 200 []; got {status}: {body}")

        status, body = get(f"{base}/metrics")
        (svc,) = body["services"]
        if svc["packed"] != "sidecar":
            fail(f"service not using the mmap'd sidecar: {svc['packed']!r}")
        if not body["server"]["use_packed"]:
            fail("server reports use_packed=False")
        print(
            "serve: cold process answered /predict and /batch "
            f"bit-identically over {got.size} cells via the sidecar"
        )
    finally:
        proc.terminate()
        proc.wait(timeout=10)

    # -- fsck covers the sidecar --------------------------------------------
    blob = bytearray((version_dir / PACKED_NAME).read_bytes())
    blob[-1] ^= 0xFF
    (version_dir / PACKED_NAME).write_bytes(bytes(blob))
    report = ModelRegistry(registry_dir).fsck(repair=False)
    if not any("sidecar" in reason for reason in report.damaged.values()):
        fail(f"fsck missed the corrupted sidecar: {report.damaged}")
    print("fsck: corrupted sidecar detected OK")
    print("PACKED SMOKE OK")


if __name__ == "__main__":
    start = time.time()
    main()
    print(f"done in {time.time() - start:.1f}s")
