#!/usr/bin/env python
"""End-to-end smoke test of the scheduler-intelligence stack, via the
real CLI.

Drives cold ``repro`` subprocesses the way an operator would::

    repro sched simulate -> repro sched fit-wait      (wait model)
    repro generate -> repro fit -> repro save         (runtime model)
    repro ingest -> repro sched waste                 (waste report)
    repro sched whatif                                (frontier, offline)
    repro serve --auth-token ... --store ...          (HTTP, authed)

then hits the live server: ``/healthz`` without credentials, a POST
without a token (must be 401), and ``/wait`` + ``/whatif`` + ``/waste``
with the bearer token, checking the frontier is non-empty and the
recommendation is present.  Exits non-zero on any failure; used by the
CI ``sched-smoke`` lane.

Usage: python scripts/sched_smoke.py  (no arguments; uses a temp dir
and an ephemeral port, so it is safe to run anywhere).
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ENV = {**os.environ, "PYTHONPATH": str(REPO / "src")}
TIMEOUT = 180  # generous: CI runners are slow
TOKEN = "sched-smoke-token"

QUEUE_STATE = {
    "queue_depth": 12,
    "free_nodes": 40,
    "running_jobs": 9,
    "pending_node_seconds": 2.0e6,
}


def run_cli(*args: str) -> str:
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=ENV,
        capture_output=True,
        text=True,
        timeout=TIMEOUT,
    )
    if proc.returncode != 0:
        sys.exit(
            f"FAIL: repro {' '.join(args)} exited {proc.returncode}\n"
            f"stdout: {proc.stdout}\nstderr: {proc.stderr}"
        )
    return proc.stdout


def get_json(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10) as resp:
        return json.loads(resp.read())


def post_json(url: str, payload: dict, token: str | None = None) -> dict:
    headers = {"Content-Type": "application/json"}
    if token is not None:
        headers["Authorization"] = f"Bearer {token}"
    req = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers=headers,
        method="POST",
    )
    with urllib.request.urlopen(req, timeout=10) as resp:
        return json.loads(resp.read())


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-sched-smoke-") as tmp:
        tmp = Path(tmp)
        probes = tmp / "probes.json"
        data, model = tmp / "h.json", tmp / "m.pkl"
        registry, store = tmp / "registry", tmp / "store"

        print("== sched simulate ==")
        out = run_cli(
            "sched", "simulate", "--nodes", "256",
            "--arrival-rate", "0.008", "--horizon", "86400",
            "--seed", "3", "--probes", "200", "--out", str(probes),
        )
        assert "sampled 200 probes" in out, out

        print("== sched fit-wait ==")
        out = run_cli(
            "sched", "fit-wait", "--observations", str(probes),
            "--trees", "16", "--registry", str(registry),
            "--name", "queue-wait",
        )
        assert "queue-wait" in out, out

        print("== generate / fit / save ==")
        run_cli(
            "generate", "--app", "fft2d", "--configs", "8",
            "--scales", "32,64,128,256", "--reps", "1", "--out", str(data),
        )
        run_cli(
            "fit", "--data", str(data), "--clusters", "2", "--out", str(model)
        )
        out = run_cli(
            "save", "--model", str(model), "--registry", str(registry),
            "--name", "smoke",
        )
        assert "registered smoke v0001" in out, out

        print("== ingest / sched waste ==")
        run_cli("ingest", "--store", str(store), "--data", str(data))
        out = run_cli(
            "sched", "waste", "--store", str(store), "--time-limit", "100",
        )
        assert "TOTAL" in out, out

        print("== sched whatif (offline) ==")
        out = run_cli(
            "sched", "whatif", "--registry", str(registry),
            "--name", "smoke", "--set", "n=2048", "--set", "batches=8",
            "--scales", "32,64,128,256,512",
            "--wait-name", "queue-wait",
            "--queue-state", json.dumps(QUEUE_STATE),
        )
        assert "recommended: scale" in out, out

        print("== serve (authenticated) ==")
        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--registry", str(registry), "--port", "0",
             "--auth-token", TOKEN, "--store", str(store)],
            env=ENV,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            deadline = time.time() + TIMEOUT
            line = ""
            while time.time() < deadline:
                line = server.stdout.readline()
                if "listening on" in line or not line:
                    break
            m = re.search(r"listening on (http://[\d.]+:\d+)", line)
            if not m:
                server.kill()
                sys.exit(f"FAIL: server never reported its address: {line!r}")
            base = m.group(1)
            print(f"   {base}")

            health = get_json(f"{base}/healthz")
            assert health["status"] == "ok", health
            print("== /healthz ok (no credentials needed)")

            try:
                post_json(
                    f"{base}/wait",
                    {"model": "queue-wait", "queue_state": QUEUE_STATE},
                )
            except urllib.error.HTTPError as exc:
                assert exc.code == 401, exc.code
                assert exc.headers.get("WWW-Authenticate"), dict(exc.headers)
            else:
                sys.exit("FAIL: POST without a token was not rejected")
            print("== unauthenticated POST rejected with 401")

            wait = post_json(
                f"{base}/wait",
                {
                    "model": "queue-wait",
                    "queue_state": {
                        **QUEUE_STATE, "nodes": 16, "time_limit": 3600,
                    },
                    "quantiles": [0.5, 0.9],
                },
                token=TOKEN,
            )
            assert wait["wait_seconds"][0] >= 0.0, wait
            assert len(wait["wait_quantiles"][0]) == 2, wait
            print(f"== /wait ok: {wait['wait_seconds']}")

            whatif = post_json(
                f"{base}/whatif",
                {
                    "model": "smoke",
                    "params": {"n": 2048, "batches": 8},
                    "scales": [32, 64, 128, 256, 512],
                    "wait_model": "queue-wait",
                    "queue_state": QUEUE_STATE,
                },
                token=TOKEN,
            )
            assert len(whatif["points"]) == 5, whatif
            assert whatif["frontier"], whatif
            assert whatif["recommended"] is not None, whatif
            costs = [p["core_hours"] for p in whatif["frontier"]]
            assert costs == sorted(costs), whatif
            print(
                "== /whatif ok: frontier scales "
                f"{[p['scale'] for p in whatif['frontier']]}, recommended "
                f"{whatif['recommended']['scale']}"
            )

            waste = post_json(
                f"{base}/waste", {"time_limit": 100}, token=TOKEN
            )
            assert waste["totals"]["runs"] > 0, waste
            print(f"== /waste ok: {int(waste['totals']['runs'])} runs")
        finally:
            server.terminate()
            try:
                server.wait(timeout=10)
            except subprocess.TimeoutExpired:
                server.kill()

    print("SMOKE OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
