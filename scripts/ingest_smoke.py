#!/usr/bin/env python
"""Trace-scale ingestion smoke test for the history data plane.

Streams ~1M synthetic execution records through the chunked ETL into a
columnar shard store and checks the three properties the store exists
to provide:

* **bounded memory** — peak RSS growth during ingest must stay far
  below the materialized size of the data (the ETL only ever holds one
  chunk);
* **round-trip integrity** — ``verify()`` recomputes every shard hash
  against the manifest, and a streamed re-read must reproduce the
  exact row count and checksum of what was written;
* **chunking invariance** — a store built from a differently-chunked
  copy of a data prefix must report the same fingerprint.

Exits non-zero on any violation; used by the CI ``ingest-smoke`` lane.

Usage: python scripts/ingest_smoke.py [n_records]  (default 1_000_000;
uses a temp dir, so it is safe to run anywhere).
"""

from __future__ import annotations

import json
import resource
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.store import (  # noqa: E402
    HistoryStore,
    IngestPipeline,
    JSONLExtractor,
)

N_RECORDS = int(sys.argv[1]) if len(sys.argv) > 1 else 1_000_000
CHUNK_ROWS = 65_536
SCALES = (8, 16, 32, 64)
#: Peak-RSS growth allowed during ingest.  The raw JSONL is ~150 MB
#: and the materialized arrays ~50 MB per million rows; a streaming
#: ingest should need only one chunk (~3 MB) plus interpreter slack.
RSS_CAP_MB = 400


def rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def fail(msg: str) -> None:
    print(f"FAIL: {msg}")
    sys.exit(1)


def write_jsonl(path: Path, n: int, seed: int = 0) -> None:
    """Write n synthetic records without materializing them."""
    rng = np.random.default_rng(seed)
    batch = 20_000
    with open(path, "w") as fh:
        written = 0
        while written < n:
            m = min(batch, n - written)
            alpha = rng.uniform(1, 10, m)
            beta = rng.uniform(1, 10, m)
            nprocs = rng.choice(SCALES, m)
            runtime = 100.0 / nprocs + alpha * 0.5 + rng.uniform(0.01, 0.1, m)
            for i in range(m):
                fh.write(json.dumps({
                    "app_name": "synth",
                    "params": {"alpha": float(alpha[i]),
                               "beta": float(beta[i])},
                    "nprocs": int(nprocs[i]),
                    "runtime": float(runtime[i]),
                }) + "\n")
            written += m


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        src = tmp / "runs.jsonl"
        print(f"writing {N_RECORDS:,} synthetic records ...")
        write_jsonl(src, N_RECORDS)
        size_mb = src.stat().st_size / 2**20
        print(f"  source: {size_mb:.0f} MB of JSONL")

        rss_before = rss_mb()
        t0 = time.perf_counter()
        pipe = IngestPipeline(tmp / "store", chunk_rows=CHUNK_ROWS)
        report = pipe.run(JSONLExtractor(src), source="smoke")
        dt = time.perf_counter() - t0
        rss_growth = rss_mb() - rss_before
        print(
            f"ingested {report.rows_appended:,} rows in {dt:.1f}s "
            f"({report.rows_appended / dt:,.0f} rows/s), peak RSS growth "
            f"{rss_growth:.0f} MB"
        )
        if report.rows_appended != N_RECORDS:
            fail(f"expected {N_RECORDS} rows, appended {report.rows_appended}")
        if rss_growth > RSS_CAP_MB:
            fail(
                f"peak RSS grew {rss_growth:.0f} MB during ingest "
                f"(cap {RSS_CAP_MB} MB) — the ETL is not streaming"
            )

        store = HistoryStore.open(tmp / "store")
        summary = store.verify()
        print(
            f"verify: {summary['shards']} shards, {summary['rows']:,} rows, "
            "all fingerprints match"
        )

        # Streamed re-read must see exactly what was written.
        rows = 0
        checksum = 0.0
        for chunk in store.iter_chunks(chunk_rows=CHUNK_ROWS):
            rows += len(chunk["runtime"])
            checksum += float(np.sum(chunk["runtime"]))
        if rows != N_RECORDS:
            fail(f"streamed re-read saw {rows} rows, expected {N_RECORDS}")
        print(f"re-read: {rows:,} rows, runtime checksum {checksum:.6e}")

        # Chunking invariance on a prefix small enough to rebuild fast.
        prefix = store.to_dataset(columns=None) if N_RECORDS <= 200_000 else None
        if prefix is None:
            ds = None
            take = 100_000
            got = []
            for chunk in store.iter_chunks(chunk_rows=take):
                got.append(chunk)
                break
            from repro.data import ExecutionDataset

            ds = ExecutionDataset(
                app_name=store.app_name,
                param_names=store.param_names,
                **{k: v for k, v in got[0].items()},
            )
        else:
            ds = prefix
        fps = set()
        for chunk_rows in (7_777, 65_536):
            s = HistoryStore.create(
                tmp / f"re-{chunk_rows}", ds.app_name, ds.param_names
            )
            start = 0
            while start < len(ds):
                stop = min(start + chunk_rows, len(ds))
                s.append(
                    ds.select(np.arange(start, stop)), defer_fingerprints=True
                )
                start = stop
            fps.add(s.refresh_fingerprints())
        if len(fps) != 1:
            fail(f"chunking changed the store fingerprint: {fps}")
        print(f"chunking-invariant fingerprint: {fps.pop()}")

        print("OK: trace-scale ingest smoke passed")


if __name__ == "__main__":
    main()
