#!/usr/bin/env python
"""End-to-end smoke test of the serving stack, via the real CLI.

Drives cold ``repro`` subprocesses the way an operator would::

    repro generate -> repro fit -> repro save -> repro serve

then hits the live HTTP server with ``/healthz`` and one ``/predict``
round-trip and checks the answer is a finite runtime.  Exits non-zero
on any failure; used by the CI ``serve-smoke`` lane.

Usage: python scripts/serve_smoke.py  (no arguments; uses a temp dir
and an ephemeral port, so it is safe to run anywhere).
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ENV = {**os.environ, "PYTHONPATH": str(REPO / "src")}
TIMEOUT = 120  # generous: CI runners are slow


def run_cli(*args: str) -> str:
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=ENV,
        capture_output=True,
        text=True,
        timeout=TIMEOUT,
    )
    if proc.returncode != 0:
        sys.exit(
            f"FAIL: repro {' '.join(args)} exited {proc.returncode}\n"
            f"stdout: {proc.stdout}\nstderr: {proc.stderr}"
        )
    return proc.stdout


def get_json(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10) as resp:
        return json.loads(resp.read())


def post_json(url: str, payload: dict) -> dict:
    req = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(req, timeout=10) as resp:
        return json.loads(resp.read())


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        tmp = Path(tmp)
        data, model, registry = tmp / "h.json", tmp / "m.pkl", tmp / "registry"

        print("== generate ==")
        run_cli(
            "generate", "--app", "fft2d", "--configs", "8",
            "--scales", "32,64,128,256", "--reps", "1", "--out", str(data),
        )
        print("== fit ==")
        run_cli(
            "fit", "--data", str(data), "--clusters", "2", "--out", str(model)
        )
        print("== save ==")
        out = run_cli(
            "save", "--model", str(model), "--registry", str(registry),
            "--name", "smoke", "--meta", "source=serve_smoke",
        )
        assert "registered smoke v0001" in out, out

        print("== serve ==")
        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--registry", str(registry), "--port", "0"],
            env=ENV,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            # The CLI prints the bound address once the socket is up.
            deadline = time.time() + TIMEOUT
            line = ""
            while time.time() < deadline:
                line = server.stdout.readline()
                if "listening on" in line or not line:
                    break
            m = re.search(r"listening on (http://[\d.]+:\d+)", line)
            if not m:
                server.kill()
                sys.exit(f"FAIL: server never reported its address: {line!r}")
            base = m.group(1)
            print(f"   {base}")

            health = get_json(f"{base}/healthz")
            assert health["status"] == "ok", health
            assert health["models"] == ["smoke"], health
            print(f"== /healthz ok: {health}")

            answer = post_json(
                f"{base}/predict",
                {
                    "params": {"n": 2048, "batches": 8},
                    "scales": [512, 1024],
                },
            )
            assert answer["model"] == "smoke", answer
            preds = answer["predictions"]
            assert len(preds) == 2, answer
            assert all(
                isinstance(t, float) and t > 0 for t in preds
            ), answer
            print(f"== /predict ok: {preds}")
        finally:
            server.terminate()
            try:
                server.wait(timeout=10)
            except subprocess.TimeoutExpired:
                server.kill()

    print("SMOKE OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
