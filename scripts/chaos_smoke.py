#!/usr/bin/env python
"""End-to-end smoke test of the chaos harness and recovery paths.

Exercises the failure story in one pass:

* a seeded crash sweep over a history-store append (every filesystem
  step killed once; recover-to-old-or-new asserted at each),
* on-disk corruption healed by ``HistoryStore.fsck()``,
* a crash inside ``ModelRegistry.register`` healed by registry fsck,
* a store-backed campaign killed at a checkpoint write, fsck'd and
  resumed to a byte-identical ledger, and
* serving from the recovered registry with the newest artifact
  corrupted: the server answers stale from the previous version,
  reports ``degraded`` health, and throttles overload with 429.

Exits non-zero on any failure; used by the CI ``chaos-smoke`` lane.

Usage: python scripts/chaos_smoke.py  (no arguments; uses a temp dir
and an ephemeral port, so it is safe to run anywhere).
"""

from __future__ import annotations

import json
import sys
import tempfile
import threading
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

import numpy as np  # noqa: E402

from repro.campaign import Campaign, CampaignConfig  # noqa: E402
from repro.chaos import ChaosCrash, ChaosFS, corrupt_file, crash_sweep  # noqa: E402
from repro.data import ExecutionDataset  # noqa: E402
from repro.serve import ModelRegistry, create_server  # noqa: E402
from repro.store import HistoryStore  # noqa: E402

CAMPAIGN = dict(
    app_name="stencil3d",
    allocation_core_seconds=20000.0,
    round_budget_core_seconds=150.0,
    small_scales=(32, 64, 128),
    eval_scales=(512,),
    max_rounds=2,
    n_seed_configs=5,
    n_candidates=30,
    n_eval_configs=8,
    time_limit=10.0,
    n_clusters=2,
    seed=3,
)


def make_dataset(n: int = 30, seed: int = 0) -> ExecutionDataset:
    """Tiny deterministic synthetic history (no simulator needed)."""
    scales = (8, 16, 32)
    rng = np.random.default_rng(seed)
    configs = rng.uniform(1.0, 10.0, size=(max(1, n // len(scales)), 2))
    X = np.repeat(configs, len(scales), axis=0)
    nprocs = np.tile(np.asarray(scales, dtype=np.int64), len(configs))
    runtime = 100.0 / nprocs + X[:, 0] * 0.5 + rng.uniform(0.01, 0.1, len(nprocs))
    return ExecutionDataset(
        app_name="synth",
        param_names=("alpha", "beta"),
        X=X,
        nprocs=nprocs,
        runtime=runtime,
        model_runtime=runtime * 0.97,
        rep=np.zeros(len(nprocs), dtype=np.int64),
    )


def ledger_bytes(report) -> str:
    return json.dumps(report.ledger.to_dict(), sort_keys=True)


def store_crash_sweep(tmp: Path) -> None:
    print("== store append crash sweep ==")
    new_chunk = make_dataset(seed=2)

    def setup(root):
        store = HistoryStore.create(root / "store", "synth", ("alpha", "beta"))
        store.append(make_dataset(seed=1), source="seed")
        return {"rows_old": store.n_rows, "rows_new": store.n_rows + len(new_chunk)}

    def workload(root, ctx):
        HistoryStore.open(root / "store").append(new_chunk, source="chunk-1")

    def check(root, ctx):
        store = HistoryStore.open(root / "store")
        store.fsck(repair=True)
        store = HistoryStore.open(root / "store")
        assert store.n_rows in (ctx["rows_old"], ctx["rows_new"]), (
            f"torn store: {store.n_rows} rows"
        )
        store.verify()

    report = crash_sweep(setup, workload, check, tmp / "sweep", seed=7)
    if not report.ok:
        sys.exit(f"FAIL: store crash sweep\n{report.summary()}")
    print(f"   {report.summary()}")


def store_fsck(tmp: Path) -> None:
    print("== corruption + store fsck ==")
    store = HistoryStore.create(tmp / "fsck-store", "synth", ("alpha", "beta"))
    for i in range(3):
        store.append(make_dataset(seed=i), source=f"chunk-{i}")
    rows = store.n_rows
    corrupt_file(
        store.root / "shards" / "shard-00001" / "runtime.npy",
        mode="bitflip", seed=3,
    )
    report = store.fsck(repair=True)
    print(f"   {report.summary()}")
    if report.clean or report.quarantined != ["shard-00001"]:
        sys.exit(f"FAIL: fsck did not quarantine the flipped shard: {report.to_dict()}")
    healed = HistoryStore.open(store.root)
    healed.verify()
    if healed.n_rows != rows - 30:
        sys.exit(f"FAIL: expected {rows - 30} surviving rows, got {healed.n_rows}")


def campaign_crash_resume(tmp: Path) -> ModelRegistry:
    print("== uninterrupted reference campaign ==")
    reference = Campaign(
        CampaignConfig(**CAMPAIGN), tmp / "ref", store_dir=tmp / "ref" / "store"
    ).run()
    if not reference.done:
        sys.exit("FAIL: reference campaign did not finish")

    print("== campaign killed at a checkpoint write ==")
    registry = ModelRegistry(tmp / "registry")
    campaign = Campaign(
        CampaignConfig(**CAMPAIGN), tmp / "chaos",
        store_dir=tmp / "chaos" / "store", registry=registry,
    )
    fs = ChaosFS(seed=0).crash_at("campaign.checkpoint:write", occurrence=2)
    try:
        with fs.install():
            campaign.run()
    except ChaosCrash as crash:
        print(f"   killed at step {crash.step_index} ({crash.step_id})")
    else:
        sys.exit("FAIL: the scheduled crash never fired")

    print("== fsck + resume ==")
    store_report = HistoryStore.open(tmp / "chaos" / "store").fsck(repair=True)
    print(f"   store:    {store_report.summary()}")
    registry_report = ModelRegistry(tmp / "registry", create=False).fsck(repair=True)
    print(f"   registry: {registry_report.summary()}")
    resumed = Campaign(
        CampaignConfig(**CAMPAIGN), tmp / "chaos",
        store_dir=tmp / "chaos" / "store",
        registry=ModelRegistry(tmp / "registry", create=False),
    ).run(resume=True)
    if not resumed.done:
        sys.exit("FAIL: resumed campaign did not finish")
    if resumed.mape_trajectory != reference.mape_trajectory:
        sys.exit(
            "FAIL: resumed MAPE trajectory diverged\n"
            f"reference: {reference.mape_trajectory}\n"
            f"resumed  : {resumed.mape_trajectory}"
        )
    if ledger_bytes(resumed) != ledger_bytes(reference):
        sys.exit("FAIL: resumed ledger is not byte-identical to the reference")
    HistoryStore.open(tmp / "chaos" / "store").verify()
    print("== ledger byte-identical across crash/fsck/resume ==")
    return ModelRegistry(tmp / "registry", create=False)


def get_json(url: str):
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def post_json(url: str, payload: dict):
    req = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def degraded_serving(tmp: Path, registry: ModelRegistry) -> None:
    print("== degraded serving from the recovered registry ==")
    name = registry.models()[0]
    versions = registry.versions(name)
    if len(versions) < 2:
        sys.exit(f"FAIL: campaign registered too few versions: {versions}")
    latest = versions[-1]
    corrupt_file(
        registry.root / name / f"v{latest:04d}" / "payload.pkl",
        mode="bitflip", seed=5,
    )
    info = registry.inspect(name, versions[0])
    params = {p: 64.0 for p in info.param_names}
    request = {"params": params, "scales": [512], "model": name}

    server = create_server(
        registry, port=0, breaker_threshold=1, rate=0.001, burst=2
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        status, body = post_json(f"{base}/predict", request)
        if status != 200 or not body.get("stale") or body["version"] == latest:
            sys.exit(f"FAIL: expected a stale fallback answer, got {status}: {body}")
        print(
            f"   stale fallback ok: v{body['version']} served "
            f"(v{body['requested_version']} corrupt)"
        )
        status, health = get_json(f"{base}/healthz")
        if health.get("status") != "degraded":
            sys.exit(f"FAIL: /healthz not degraded: {health}")
        print(f"   /healthz degraded ok: {health['stale']}")
        status, body = post_json(f"{base}/predict", request)  # token 2 of 2
        status, body = post_json(f"{base}/predict", request)
        if status != 429:
            sys.exit(f"FAIL: expected 429 once the burst is spent, got {status}")
        print("   rate limit ok: 429 once the burst is spent")
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-chaos-smoke-") as tmp:
        tmp = Path(tmp)
        store_crash_sweep(tmp)
        store_fsck(tmp)
        registry = campaign_crash_resume(tmp)
        degraded_serving(tmp, registry)
    print("SMOKE OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
