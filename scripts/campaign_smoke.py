#!/usr/bin/env python
"""End-to-end smoke test of the campaign loop's resume guarantee.

Runs a tiny two-round collection campaign twice:

* once uninterrupted, and
* once killed after two bundles (via the failure-injection hook the
  test suite uses) and then resumed from its checkpoint.

The resumed campaign must reproduce the uninterrupted run exactly —
same MAPE trajectory and a byte-identical budget ledger (every charged
attempt, backoff, and wasted core-second) — and must never exceed its
allocation.  Exits non-zero on any mismatch; used by the CI
``campaign-smoke`` lane.

Usage: python scripts/campaign_smoke.py  (no arguments; uses a temp
dir, so it is safe to run anywhere).
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.campaign import Campaign, CampaignConfig  # noqa: E402

CONFIG = dict(
    app_name="stencil3d",
    allocation_core_seconds=20000.0,
    round_budget_core_seconds=150.0,
    small_scales=(32, 64, 128),
    eval_scales=(512,),
    max_rounds=2,
    n_seed_configs=5,
    n_candidates=30,
    n_eval_configs=8,
    time_limit=10.0,
    n_clusters=2,
    seed=3,
)


def ledger_bytes(report) -> str:
    return json.dumps(report.ledger.to_dict(), sort_keys=True)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-campaign-smoke-") as tmp:
        tmp = Path(tmp)

        print("== uninterrupted campaign ==")
        straight = Campaign(CampaignConfig(**CONFIG), tmp / "straight").run()
        if not straight.done:
            sys.exit("FAIL: uninterrupted campaign did not finish")
        print(straight.summary())

        print("== interrupted campaign (killed after 2 bundles) ==")
        killed = Campaign(CampaignConfig(**CONFIG), tmp / "killed")
        partial = killed.run(stop_after_bundles=2)
        if partial.done:
            sys.exit("FAIL: interruption hook did not interrupt")
        print("   interrupted mid-round, resuming from checkpoint ...")
        resumed = killed.run(resume=True)
        if not resumed.done:
            sys.exit("FAIL: resumed campaign did not finish")

        if resumed.mape_trajectory != straight.mape_trajectory:
            sys.exit(
                "FAIL: resumed MAPE trajectory diverged\n"
                f"straight: {straight.mape_trajectory}\n"
                f"resumed : {resumed.mape_trajectory}"
            )
        print("== MAPE trajectory identical ==")

        a, b = ledger_bytes(straight), ledger_bytes(resumed)
        if a != b:
            sys.exit(
                f"FAIL: resumed ledger is not byte-identical\n"
                f"straight: {a}\nresumed : {b}"
            )
        print("== ledger byte-identical across kill/resume ==")

        for rep in (straight, resumed):
            if rep.ledger.spent > rep.ledger.allocation:
                sys.exit(
                    f"FAIL: allocation exceeded: {rep.ledger.spent} > "
                    f"{rep.ledger.allocation}"
                )
        print("== allocation respected ==")

    print("SMOKE OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
