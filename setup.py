"""Setup shim enabling legacy editable installs (`pip install -e . --no-use-pep517`)
in offline environments lacking the `wheel` package."""

from setuptools import setup

setup()
