"""Train/test splits for the extrapolation problem.

The paper's setting is a *scale* split, not an i.i.d. split: training
data exists only at small process counts, test queries are (new
configuration, large process count) pairs.  :class:`ScaleSplit` captures
that protocol and is used by every experiment in the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .dataset import ExecutionDataset

__all__ = ["ScaleSplit", "scale_split", "config_split"]


@dataclass(frozen=True)
class ScaleSplit:
    """A small-scale training history plus large-scale evaluation runs.

    Attributes
    ----------
    train:
        Runs at the small scales (the only data any model may see).
    test:
        Runs at the large scales (ground truth for evaluation only).
    small_scales, large_scales:
        The process counts on each side.
    """

    train: ExecutionDataset
    test: ExecutionDataset
    small_scales: tuple[int, ...]
    large_scales: tuple[int, ...]

    def __post_init__(self) -> None:
        if set(self.small_scales) & set(self.large_scales):
            raise ValueError("Small and large scales overlap.")
        if max(self.small_scales, default=0) >= min(self.large_scales, default=2**62):
            raise ValueError(
                "Every large scale must exceed every small scale "
                f"(got small={self.small_scales}, large={self.large_scales})."
            )


def scale_split(
    dataset: ExecutionDataset,
    small_scales: Sequence[int],
    large_scales: Sequence[int],
) -> ScaleSplit:
    """Partition a history by process count.

    Raises if a requested scale is absent from the dataset, which usually
    indicates a generation bug.
    """
    small = tuple(int(s) for s in sorted(small_scales))
    large = tuple(int(s) for s in sorted(large_scales))
    present = set(dataset.scales.tolist())
    missing = (set(small) | set(large)) - present
    if missing:
        raise ValueError(f"Scales {sorted(missing)} not present in dataset.")
    return ScaleSplit(
        train=dataset.at_scales(small),
        test=dataset.at_scales(large),
        small_scales=small,
        large_scales=large,
    )


def config_split(
    dataset: ExecutionDataset,
    test_fraction: float = 0.25,
    rng: np.random.Generator | None = None,
) -> tuple[ExecutionDataset, ExecutionDataset]:
    """Split by *configuration* (all runs of a config stay together).

    Used to hold out unseen configurations: the paper's query is a new
    input-parameter assignment, so leakage of a config's runs across the
    split would make the evaluation optimistic.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1).")
    rng = rng if rng is not None else np.random.default_rng(0)
    configs = dataset.unique_configs()
    n = len(configs)
    n_test = max(1, int(round(test_fraction * n)))
    if n_test >= n:
        raise ValueError("test_fraction leaves no training configurations.")
    order = rng.permutation(n)
    test_cfg = configs[order[:n_test]]
    test_mask = np.zeros(len(dataset), dtype=bool)
    for cfg in test_cfg:
        test_mask |= np.all(dataset.X == cfg, axis=1)
    return dataset.select(~test_mask), dataset.select(test_mask)
