"""Dataset persistence.

Two formats:

* **JSON** — human-readable, self-describing, diff-friendly; the
  interchange format for small histories and examples.
* **NPZ** — compressed numpy arrays for large histories (the columnar
  arrays round-trip exactly).

Both embed a format version so future layout changes stay loadable.

Loading is hardened against dirty files: a missing key, unknown format
version, undecodable payload, or mis-shaped column raises
:class:`~repro.errors.DatasetFormatError` with a message naming the
problem (never a bare ``KeyError``).  Content-level validation and
repair are opt-in via ``load_dataset(..., validate=True)`` /
``sanitize=True``, backed by :mod:`repro.robustness.sanitize`.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from ..errors import DatasetFormatError
from ..log import get_logger
from .dataset import ExecutionDataset

__all__ = ["save_dataset", "load_dataset", "dataset_fingerprint"]

logger = get_logger("data.io")

_FORMAT_VERSION = 1

#: Required payload keys and the dtype their column is decoded as
#: (None = non-array metadata).
_REQUIRED_KEYS = {
    "format_version": None,
    "app_name": None,
    "param_names": None,
    "X": np.float64,
    "nprocs": np.int64,
    "runtime": np.float64,
    "model_runtime": np.float64,
    "rep": np.int64,
}


def _to_payload(dataset: ExecutionDataset) -> dict:
    return {
        "format_version": _FORMAT_VERSION,
        "app_name": dataset.app_name,
        "param_names": list(dataset.param_names),
        "X": dataset.X.tolist(),
        "nprocs": dataset.nprocs.tolist(),
        "runtime": dataset.runtime.tolist(),
        "model_runtime": dataset.model_runtime.tolist(),
        "rep": dataset.rep.tolist(),
    }


def _check_keys(present: set[str], path: Path) -> None:
    missing = sorted(set(_REQUIRED_KEYS) - present)
    if missing:
        raise DatasetFormatError(
            f"{path}: dataset payload is missing keys {missing}."
        )


def _check_version(version: object, path: Path) -> None:
    try:
        version = int(version)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise DatasetFormatError(
            f"{path}: format_version {version!r} is not an integer."
        ) from None
    if version != _FORMAT_VERSION:
        raise DatasetFormatError(
            f"{path}: unsupported dataset format version {version}; "
            f"this build reads version {_FORMAT_VERSION}."
        )


def _from_payload(payload: object, path: Path) -> ExecutionDataset:
    if not isinstance(payload, dict):
        raise DatasetFormatError(
            f"{path}: dataset payload must be a JSON object, "
            f"got {type(payload).__name__}."
        )
    _check_keys(set(payload), path)
    _check_version(payload.get("format_version"), path)
    try:
        return ExecutionDataset(
            app_name=str(payload["app_name"]),
            param_names=tuple(payload["param_names"]),
            X=np.asarray(payload["X"], dtype=np.float64),
            nprocs=np.asarray(payload["nprocs"], dtype=np.int64),
            runtime=np.asarray(payload["runtime"], dtype=np.float64),
            model_runtime=np.asarray(payload["model_runtime"], dtype=np.float64),
            rep=np.asarray(payload["rep"], dtype=np.int64),
        )
    except DatasetFormatError:
        raise
    except (TypeError, ValueError) as exc:
        raise DatasetFormatError(f"{path}: malformed dataset payload: {exc}") from exc


def dataset_fingerprint(dataset: ExecutionDataset) -> str:
    """Deterministic content hash of a dataset (``sha256:<hex>``).

    Covers the application name, parameter names, and the raw bytes of
    every column, so two histories hash equal iff they are bit-identical
    — the provenance key stored in model artifacts (see
    :mod:`repro.serve.artifacts`).
    """
    h = hashlib.sha256()
    h.update(dataset.app_name.encode())
    h.update(b"\x00".join(n.encode() for n in dataset.param_names))
    for col in (
        np.ascontiguousarray(dataset.X),
        np.ascontiguousarray(dataset.nprocs),
        np.ascontiguousarray(dataset.runtime),
        np.ascontiguousarray(dataset.model_runtime),
        np.ascontiguousarray(dataset.rep),
    ):
        h.update(col.tobytes())
    return f"sha256:{h.hexdigest()}"


def save_dataset(dataset: ExecutionDataset, path: str | Path) -> None:
    """Write a dataset to ``path``; format chosen by suffix (.json or
    .npz)."""
    path = Path(path)
    if path.suffix == ".json":
        with open(path, "w") as fh:
            json.dump(_to_payload(dataset), fh)
    elif path.suffix == ".npz":
        np.savez_compressed(
            path,
            format_version=np.int64(_FORMAT_VERSION),
            app_name=np.str_(dataset.app_name),
            param_names=np.asarray(dataset.param_names),
            X=dataset.X,
            nprocs=dataset.nprocs,
            runtime=dataset.runtime,
            model_runtime=dataset.model_runtime,
            rep=dataset.rep,
        )
    else:
        raise DatasetFormatError(
            f"Unknown dataset format {path.suffix!r}; use .json or .npz."
        )
    logger.debug("wrote %d runs to %s", len(dataset), path)


def load_dataset(
    path: str | Path,
    validate: bool = False,
    sanitize: bool = False,
) -> ExecutionDataset:
    """Read a dataset written by :func:`save_dataset`.

    Structural problems (missing keys, bad version, undecodable file)
    always raise :class:`~repro.errors.DatasetFormatError`.

    Parameters
    ----------
    validate:
        Also run the content rules of
        :func:`repro.robustness.validate_dataset` and raise
        :class:`~repro.errors.DataValidationError` on error-severity
        findings (NaN runtimes, non-finite parameters).
    sanitize:
        Repair instead of reject: run
        :func:`repro.robustness.sanitize_dataset` and return the
        cleaned dataset (implies content checking; drops are logged).
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    if path.suffix == ".json":
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise DatasetFormatError(f"{path}: not valid JSON: {exc}") from exc
        dataset = _from_payload(payload, path)
    elif path.suffix == ".npz":
        try:
            data = np.load(path, allow_pickle=False)
        except (OSError, ValueError) as exc:
            raise DatasetFormatError(
                f"{path}: not a readable NPZ archive: {exc}"
            ) from exc
        with data:
            _check_keys(set(data.files), path)
            _check_version(data["format_version"], path)
            try:
                dataset = ExecutionDataset(
                    app_name=str(data["app_name"]),
                    param_names=tuple(str(n) for n in data["param_names"]),
                    X=data["X"],
                    nprocs=data["nprocs"],
                    runtime=data["runtime"],
                    model_runtime=data["model_runtime"],
                    rep=data["rep"],
                )
            except (TypeError, ValueError) as exc:
                raise DatasetFormatError(
                    f"{path}: malformed dataset payload: {exc}"
                ) from exc
    else:
        raise DatasetFormatError(
            f"Unknown dataset format {path.suffix!r}; use .json or .npz."
        )
    logger.debug("loaded %d runs from %s", len(dataset), path)

    if sanitize:
        from ..robustness.sanitize import sanitize_dataset

        dataset, report = sanitize_dataset(dataset)
        if report.rows_dropped:
            logger.warning("%s: %s", path, report.summary())
        return dataset
    if validate:
        from ..robustness.sanitize import validate_dataset

        validate_dataset(dataset).raise_on_error()
    return dataset
