"""Dataset persistence.

Two formats:

* **JSON** — human-readable, self-describing, diff-friendly; the
  interchange format for small histories and examples.
* **NPZ** — compressed numpy arrays for large histories (the columnar
  arrays round-trip exactly).

Both embed a format version so future layout changes stay loadable.

Loading is hardened against dirty files: a missing key, unknown format
version, undecodable payload, or mis-shaped column raises
:class:`~repro.errors.DatasetFormatError` with a message naming the
problem (never a bare ``KeyError``).  Content-level validation and
repair are opt-in via ``load_dataset(..., validate=True)`` /
``sanitize=True``, backed by :mod:`repro.robustness.sanitize`.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable

import numpy as np

from ..errors import ConfigurationError, DatasetFormatError
from ..log import get_logger
from .dataset import ExecutionDataset

__all__ = [
    "save_dataset",
    "load_dataset",
    "dataset_fingerprint",
    "FingerprintStream",
    "FINGERPRINT_COLUMNS",
]

logger = get_logger("data.io")

_FORMAT_VERSION = 1

#: Required payload keys and the dtype their column is decoded as
#: (None = non-array metadata).
_REQUIRED_KEYS = {
    "format_version": None,
    "app_name": None,
    "param_names": None,
    "X": np.float64,
    "nprocs": np.int64,
    "runtime": np.float64,
    "model_runtime": np.float64,
    "rep": np.int64,
}

#: Optional payload keys (absent in files written before they existed);
#: loaders fall back to a zeros column so old files keep loading.
_OPTIONAL_KEYS = {
    "wait_seconds": np.float64,
}


def _to_payload(dataset: ExecutionDataset) -> dict:
    return {
        "format_version": _FORMAT_VERSION,
        "app_name": dataset.app_name,
        "param_names": list(dataset.param_names),
        "X": dataset.X.tolist(),
        "nprocs": dataset.nprocs.tolist(),
        "runtime": dataset.runtime.tolist(),
        "model_runtime": dataset.model_runtime.tolist(),
        "rep": dataset.rep.tolist(),
        "wait_seconds": dataset.wait_seconds.tolist(),
    }


def _check_keys(present: set[str], path: Path) -> None:
    missing = sorted(set(_REQUIRED_KEYS) - present)
    if missing:
        raise DatasetFormatError(
            f"{path}: dataset payload is missing keys {missing}."
        )


def _check_version(version: object, path: Path) -> None:
    try:
        version = int(version)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise DatasetFormatError(
            f"{path}: format_version {version!r} is not an integer."
        ) from None
    if version != _FORMAT_VERSION:
        raise DatasetFormatError(
            f"{path}: unsupported dataset format version {version}; "
            f"this build reads version {_FORMAT_VERSION}."
        )


def _from_payload(payload: object, path: Path) -> ExecutionDataset:
    if not isinstance(payload, dict):
        raise DatasetFormatError(
            f"{path}: dataset payload must be a JSON object, "
            f"got {type(payload).__name__}."
        )
    _check_keys(set(payload), path)
    _check_version(payload.get("format_version"), path)
    try:
        return ExecutionDataset(
            app_name=str(payload["app_name"]),
            param_names=tuple(payload["param_names"]),
            X=np.asarray(payload["X"], dtype=np.float64),
            nprocs=np.asarray(payload["nprocs"], dtype=np.int64),
            runtime=np.asarray(payload["runtime"], dtype=np.float64),
            model_runtime=np.asarray(payload["model_runtime"], dtype=np.float64),
            rep=np.asarray(payload["rep"], dtype=np.int64),
            wait_seconds=(
                None
                if payload.get("wait_seconds") is None
                else np.asarray(payload["wait_seconds"], dtype=np.float64)
            ),
        )
    except DatasetFormatError:
        raise
    except (TypeError, ValueError) as exc:
        raise DatasetFormatError(f"{path}: malformed dataset payload: {exc}") from exc


#: Canonical column order and dtype used by every fingerprint.  The
#: digest is defined over the columns' raw bytes *in this order*, so a
#: chunked (streaming) computation and an in-memory one agree exactly.
FINGERPRINT_COLUMNS = (
    ("X", np.float64),
    ("nprocs", np.int64),
    ("runtime", np.float64),
    ("model_runtime", np.float64),
    ("rep", np.int64),
)


class FingerprintStream:
    """Incremental dataset fingerprint with constant memory.

    Feed each column's data — possibly in many row-chunks — in the
    canonical :data:`FINGERPRINT_COLUMNS` order; the resulting digest is
    byte-identical to :func:`dataset_fingerprint` over the equivalent
    in-memory dataset.  Chunk boundaries never affect the digest (the
    hash sees one contiguous byte stream per column), which is what
    makes shard-store fingerprints invariant to ingestion chunking.
    """

    def __init__(self, app_name: str, param_names: Iterable[str]) -> None:
        self._h = hashlib.sha256()
        self._h.update(str(app_name).encode())
        self._h.update(b"\x00".join(str(n).encode() for n in param_names))
        self._cursor = 0

    def update_column(
        self, name: str, chunks: Iterable[np.ndarray]
    ) -> "FingerprintStream":
        """Hash one column's row-chunks; columns must arrive in
        canonical order."""
        if self._cursor >= len(FINGERPRINT_COLUMNS):
            raise ConfigurationError(
                "FingerprintStream already consumed every column."
            )
        expected, dtype = FINGERPRINT_COLUMNS[self._cursor]
        if name != expected:
            raise ConfigurationError(
                f"Fingerprint columns must arrive in canonical order "
                f"{[c for c, _ in FINGERPRINT_COLUMNS]}; expected "
                f"{expected!r}, got {name!r}."
            )
        for chunk in chunks:
            arr = np.ascontiguousarray(chunk, dtype=dtype)
            self._h.update(arr.tobytes())
        self._cursor += 1
        return self

    def fingerprint(self) -> str:
        """Final ``sha256:<hex>`` digest (every column must be fed)."""
        if self._cursor != len(FINGERPRINT_COLUMNS):
            missing = [c for c, _ in FINGERPRINT_COLUMNS[self._cursor:]]
            raise ConfigurationError(
                f"Fingerprint is incomplete: columns {missing} were "
                "never fed."
            )
        return f"sha256:{self._h.hexdigest()}"


def dataset_fingerprint(
    dataset: ExecutionDataset, chunk_rows: int | None = None
) -> str:
    """Deterministic content hash of a dataset (``sha256:<hex>``).

    Covers the application name, parameter names, and the raw bytes of
    every column, so two histories hash equal iff they are bit-identical
    — the provenance key stored in model artifacts (see
    :mod:`repro.serve.artifacts`) and shard-store manifests (see
    :mod:`repro.store`).

    ``chunk_rows`` streams each column through the hash in row-chunks of
    that size (constant memory) and produces the *same* digest as the
    in-memory computation — the property the chunked shard store relies
    on.
    """
    if chunk_rows is not None and chunk_rows < 1:
        raise ConfigurationError("chunk_rows must be >= 1.")
    stream = FingerprintStream(dataset.app_name, dataset.param_names)
    n = len(dataset)
    for name, _ in FINGERPRINT_COLUMNS:
        col = getattr(dataset, name)
        if chunk_rows is None:
            stream.update_column(name, (col,))
        else:
            stream.update_column(
                name, (col[i : i + chunk_rows] for i in range(0, max(n, 1), chunk_rows))
            )
    return stream.fingerprint()


def save_dataset(dataset: ExecutionDataset, path: str | Path) -> None:
    """Write a dataset to ``path``; format chosen by suffix (.json or
    .npz)."""
    path = Path(path)
    if path.suffix == ".json":
        with open(path, "w") as fh:
            json.dump(_to_payload(dataset), fh)
    elif path.suffix == ".npz":
        np.savez_compressed(
            path,
            format_version=np.int64(_FORMAT_VERSION),
            app_name=np.str_(dataset.app_name),
            param_names=np.asarray(dataset.param_names),
            X=dataset.X,
            nprocs=dataset.nprocs,
            runtime=dataset.runtime,
            model_runtime=dataset.model_runtime,
            rep=dataset.rep,
            wait_seconds=dataset.wait_seconds,
        )
    else:
        raise DatasetFormatError(
            f"Unknown dataset format {path.suffix!r}; use .json or .npz."
        )
    logger.debug("wrote %d runs to %s", len(dataset), path)


def load_dataset(
    path: str | Path,
    validate: bool = False,
    sanitize: bool = False,
) -> ExecutionDataset:
    """Read a dataset written by :func:`save_dataset`.

    Structural problems (missing keys, bad version, undecodable file)
    always raise :class:`~repro.errors.DatasetFormatError`.

    Parameters
    ----------
    validate:
        Also run the content rules of
        :func:`repro.robustness.validate_dataset` and raise
        :class:`~repro.errors.DataValidationError` on error-severity
        findings (NaN runtimes, non-finite parameters).
    sanitize:
        Repair instead of reject: run
        :func:`repro.robustness.sanitize_dataset` and return the
        cleaned dataset (implies content checking; drops are logged).
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    if path.is_dir():
        # Columnar shard stores (see repro.store) load transparently, so
        # `repro describe/fit --data <store-dir>` works like a file.
        from ..store import HistoryStore

        if not HistoryStore.is_store(path):
            raise DatasetFormatError(
                f"{path} is a directory but not a history store "
                "(no store manifest)."
            )
        dataset = HistoryStore.open(path).to_dataset()
    elif path.suffix == ".json":
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise DatasetFormatError(f"{path}: not valid JSON: {exc}") from exc
        dataset = _from_payload(payload, path)
    elif path.suffix == ".npz":
        try:
            data = np.load(path, allow_pickle=False)
        except (OSError, ValueError) as exc:
            raise DatasetFormatError(
                f"{path}: not a readable NPZ archive: {exc}"
            ) from exc
        with data:
            _check_keys(set(data.files), path)
            _check_version(data["format_version"], path)
            try:
                dataset = ExecutionDataset(
                    app_name=str(data["app_name"]),
                    param_names=tuple(str(n) for n in data["param_names"]),
                    X=data["X"],
                    nprocs=data["nprocs"],
                    runtime=data["runtime"],
                    model_runtime=data["model_runtime"],
                    rep=data["rep"],
                    wait_seconds=(
                        data["wait_seconds"]
                        if "wait_seconds" in data.files
                        else None
                    ),
                )
            except (TypeError, ValueError) as exc:
                raise DatasetFormatError(
                    f"{path}: malformed dataset payload: {exc}"
                ) from exc
    else:
        raise DatasetFormatError(
            f"Unknown dataset format {path.suffix!r}; use .json or .npz."
        )
    logger.debug("loaded %d runs from %s", len(dataset), path)

    if sanitize:
        from ..robustness.sanitize import sanitize_dataset

        dataset, report = sanitize_dataset(dataset)
        if report.rows_dropped:
            logger.warning("%s: %s", path, report.summary())
        return dataset
    if validate:
        from ..robustness.sanitize import validate_dataset

        validate_dataset(dataset).raise_on_error()
    return dataset
