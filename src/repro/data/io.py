"""Dataset persistence.

Two formats:

* **JSON** — human-readable, self-describing, diff-friendly; the
  interchange format for small histories and examples.
* **NPZ** — compressed numpy arrays for large histories (the columnar
  arrays round-trip exactly).

Both embed a format version so future layout changes stay loadable.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .dataset import ExecutionDataset

__all__ = ["save_dataset", "load_dataset"]

_FORMAT_VERSION = 1


def _to_payload(dataset: ExecutionDataset) -> dict:
    return {
        "format_version": _FORMAT_VERSION,
        "app_name": dataset.app_name,
        "param_names": list(dataset.param_names),
        "X": dataset.X.tolist(),
        "nprocs": dataset.nprocs.tolist(),
        "runtime": dataset.runtime.tolist(),
        "model_runtime": dataset.model_runtime.tolist(),
        "rep": dataset.rep.tolist(),
    }


def _from_payload(payload: dict) -> ExecutionDataset:
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"Unsupported dataset format version {version!r}; "
            f"this build reads version {_FORMAT_VERSION}."
        )
    return ExecutionDataset(
        app_name=payload["app_name"],
        param_names=tuple(payload["param_names"]),
        X=np.asarray(payload["X"], dtype=np.float64),
        nprocs=np.asarray(payload["nprocs"], dtype=np.int64),
        runtime=np.asarray(payload["runtime"], dtype=np.float64),
        model_runtime=np.asarray(payload["model_runtime"], dtype=np.float64),
        rep=np.asarray(payload["rep"], dtype=np.int64),
    )


def save_dataset(dataset: ExecutionDataset, path: str | Path) -> None:
    """Write a dataset to ``path``; format chosen by suffix (.json or
    .npz)."""
    path = Path(path)
    if path.suffix == ".json":
        with open(path, "w") as fh:
            json.dump(_to_payload(dataset), fh)
    elif path.suffix == ".npz":
        np.savez_compressed(
            path,
            format_version=np.int64(_FORMAT_VERSION),
            app_name=np.str_(dataset.app_name),
            param_names=np.asarray(dataset.param_names),
            X=dataset.X,
            nprocs=dataset.nprocs,
            runtime=dataset.runtime,
            model_runtime=dataset.model_runtime,
            rep=dataset.rep,
        )
    else:
        raise ValueError(
            f"Unknown dataset format {path.suffix!r}; use .json or .npz."
        )


def load_dataset(path: str | Path) -> ExecutionDataset:
    """Read a dataset written by :func:`save_dataset`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    if path.suffix == ".json":
        with open(path) as fh:
            return _from_payload(json.load(fh))
    if path.suffix == ".npz":
        with np.load(path, allow_pickle=False) as data:
            version = int(data["format_version"])
            if version != _FORMAT_VERSION:
                raise ValueError(
                    f"Unsupported dataset format version {version}; "
                    f"this build reads version {_FORMAT_VERSION}."
                )
            return ExecutionDataset(
                app_name=str(data["app_name"]),
                param_names=tuple(str(n) for n in data["param_names"]),
                X=data["X"],
                nprocs=data["nprocs"],
                runtime=data["runtime"],
                model_runtime=data["model_runtime"],
                rep=data["rep"],
            )
    raise ValueError(f"Unknown dataset format {path.suffix!r}; use .json or .npz.")
