"""History-data layer: datasets, samplers, generation, and scale splits."""

from .dataset import ExecutionDataset
from .generator import (
    HistoryGenerator,
    TimeoutLog,
    sample_grid,
    sample_latin_hypercube,
    sample_random,
)
from .io import (
    FINGERPRINT_COLUMNS,
    FingerprintStream,
    dataset_fingerprint,
    load_dataset,
    save_dataset,
)
from .splits import ScaleSplit, config_split, scale_split

__all__ = [
    "ExecutionDataset",
    "HistoryGenerator",
    "TimeoutLog",
    "sample_grid",
    "sample_latin_hypercube",
    "sample_random",
    "dataset_fingerprint",
    "FingerprintStream",
    "FINGERPRINT_COLUMNS",
    "load_dataset",
    "save_dataset",
    "ScaleSplit",
    "config_split",
    "scale_split",
]
