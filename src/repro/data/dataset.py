"""Execution-history dataset container.

An :class:`ExecutionDataset` is a columnar view over a set of
:class:`~repro.sim.ExecutionRecord` runs: a parameter matrix ``X``, a
process-count vector, runtimes, and repetition indices.  All model
layers (interpolation, extrapolation, baselines) consume this type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..errors import DataValidationError
from ..sim.trace import ExecutionRecord

__all__ = ["ExecutionDataset"]


@dataclass(frozen=True)
class ExecutionDataset:
    """Columnar execution history for one application.

    Attributes
    ----------
    app_name:
        Application the runs belong to.
    param_names:
        Column names of ``X`` (order matters).
    X:
        Parameter matrix, shape ``(n_runs, n_params)``.
    nprocs:
        Process count of each run, shape ``(n_runs,)``.
    runtime:
        Observed runtime of each run (with noise), shape ``(n_runs,)``.
    model_runtime:
        Noise-free cost-model runtime (ground truth for evaluation),
        shape ``(n_runs,)``.
    rep:
        Repetition index of each run.
    wait_seconds:
        Cumulative queue-wait seconds per run (scheduler queue wait plus
        resubmission backoffs).  Zeros when the history predates queue
        tracking or was generated without a queue simulator.
    """

    app_name: str
    param_names: tuple[str, ...]
    X: np.ndarray
    nprocs: np.ndarray
    runtime: np.ndarray
    model_runtime: np.ndarray
    rep: np.ndarray = field(default=None)  # type: ignore[assignment]
    wait_seconds: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        X = np.asarray(self.X, dtype=np.float64)
        if X.ndim != 2:
            raise DataValidationError("X must be 2-D.")
        n = X.shape[0]
        if X.shape[1] != len(self.param_names):
            raise DataValidationError(
                f"X has {X.shape[1]} columns but {len(self.param_names)} "
                "param names were given."
            )
        object.__setattr__(self, "X", X)
        for name in ("nprocs", "runtime", "model_runtime"):
            arr = np.asarray(getattr(self, name))
            if arr.shape != (n,):
                raise DataValidationError(f"{name} must have shape ({n},).")
            object.__setattr__(
                self,
                name,
                arr.astype(np.int64 if name == "nprocs" else np.float64),
            )
        if self.rep is None:
            object.__setattr__(self, "rep", np.zeros(n, dtype=np.int64))
        else:
            rep = np.asarray(self.rep, dtype=np.int64)
            if rep.shape != (n,):
                raise DataValidationError(f"rep must have shape ({n},).")
            object.__setattr__(self, "rep", rep)
        if self.wait_seconds is None:
            object.__setattr__(self, "wait_seconds", np.zeros(n, dtype=np.float64))
        else:
            wait = np.asarray(self.wait_seconds, dtype=np.float64)
            if wait.shape != (n,):
                raise DataValidationError(f"wait_seconds must have shape ({n},).")
            if n and np.any(wait < 0):
                raise DataValidationError("All wait_seconds must be >= 0.")
            object.__setattr__(self, "wait_seconds", wait)
        # NaN runtimes are allowed: real logs record failed runs that
        # way, and the robustness layer (validate/sanitize) handles
        # them.  Zero/negative runtimes are unconditionally invalid.
        if n and np.any(self.runtime <= 0):
            raise DataValidationError("All runtimes must be positive.")
        if n and np.any(self.nprocs < 1):
            raise DataValidationError("All nprocs must be >= 1.")

    # -- construction -----------------------------------------------------

    @classmethod
    def from_records(
        cls,
        records: Iterable[ExecutionRecord],
        param_names: Sequence[str] | None = None,
    ) -> "ExecutionDataset":
        """Build a dataset from execution records (one app only)."""
        records = list(records)
        if not records:
            raise DataValidationError("No records given.")
        app_names = {r.app_name for r in records}
        if len(app_names) != 1:
            raise DataValidationError(f"Mixed applications in records: {sorted(app_names)}")
        if param_names is None:
            param_names = tuple(sorted(records[0].params))
        param_names = tuple(param_names)
        for r in records:
            if set(r.params) != set(param_names):
                raise DataValidationError(
                    f"Record params {sorted(r.params)} do not match "
                    f"{sorted(param_names)}"
                )
        X = np.array(
            [[r.params[p] for p in param_names] for r in records], dtype=np.float64
        )
        return cls(
            app_name=records[0].app_name,
            param_names=param_names,
            X=X,
            nprocs=np.array([r.nprocs for r in records]),
            runtime=np.array([r.runtime for r in records]),
            model_runtime=np.array([r.model_runtime for r in records]),
            rep=np.array([r.rep for r in records]),
            wait_seconds=np.array([r.wait_seconds for r in records]),
        )

    @classmethod
    def concat(cls, datasets: Sequence["ExecutionDataset"]) -> "ExecutionDataset":
        """Concatenate many histories of one application in a single
        allocation.

        Equivalent to folding :meth:`merge` over ``datasets`` but O(total)
        instead of O(total²): each column is concatenated exactly once.
        Row order is the concatenation order, so the result is
        bit-identical to the pairwise-merge fold.
        """
        datasets = list(datasets)
        if not datasets:
            raise DataValidationError("concat needs at least one dataset.")
        if len(datasets) == 1:
            return datasets[0]
        first = datasets[0]
        for other in datasets[1:]:
            if other.app_name != first.app_name:
                raise DataValidationError(
                    "Cannot concat histories of different applications."
                )
            if other.param_names != first.param_names:
                raise DataValidationError("Param name mismatch in concat.")
        return cls(
            app_name=first.app_name,
            param_names=first.param_names,
            X=np.concatenate([d.X for d in datasets]),
            nprocs=np.concatenate([d.nprocs for d in datasets]),
            runtime=np.concatenate([d.runtime for d in datasets]),
            model_runtime=np.concatenate([d.model_runtime for d in datasets]),
            rep=np.concatenate([d.rep for d in datasets]),
            wait_seconds=np.concatenate([d.wait_seconds for d in datasets]),
        )

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return self.X.shape[0]

    @property
    def n_params(self) -> int:
        return self.X.shape[1]

    @property
    def scales(self) -> np.ndarray:
        """Sorted unique process counts present in the history."""
        return np.unique(self.nprocs)

    # -- slicing -----------------------------------------------------------

    def select(self, mask: np.ndarray) -> "ExecutionDataset":
        """Row subset by boolean mask or index array."""
        mask = np.asarray(mask)
        return ExecutionDataset(
            app_name=self.app_name,
            param_names=self.param_names,
            X=self.X[mask],
            nprocs=self.nprocs[mask],
            runtime=self.runtime[mask],
            model_runtime=self.model_runtime[mask],
            rep=self.rep[mask],
            wait_seconds=self.wait_seconds[mask],
        )

    def at_scale(self, nprocs: int) -> "ExecutionDataset":
        """Runs at one process count."""
        return self.select(self.nprocs == nprocs)

    def at_scales(self, scales: Sequence[int]) -> "ExecutionDataset":
        """Runs at any of the given process counts."""
        return self.select(np.isin(self.nprocs, np.asarray(scales)))

    def merge(self, other: "ExecutionDataset") -> "ExecutionDataset":
        """Concatenate two histories of the same application."""
        if other.app_name != self.app_name:
            raise DataValidationError("Cannot merge histories of different applications.")
        if other.param_names != self.param_names:
            raise DataValidationError("Param name mismatch in merge.")
        return ExecutionDataset.concat([self, other])

    # -- configuration-level views ------------------------------------------

    def unique_configs(self) -> np.ndarray:
        """Distinct parameter rows, in order of first appearance."""
        _, idx = np.unique(self.X, axis=0, return_index=True)
        return self.X[np.sort(idx)]

    def config_ids(self) -> np.ndarray:
        """Integer id per row identifying its parameter configuration."""
        configs = self.unique_configs()
        ids = np.empty(len(self), dtype=np.int64)
        for i, row in enumerate(self.X):
            matches = np.nonzero(np.all(configs == row, axis=1))[0]
            ids[i] = matches[0]
        return ids

    def runtime_matrix(
        self, scales: Sequence[int], use_model_runtime: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Pivot to a ``(n_configs, n_scales)`` mean-runtime matrix.

        Returns ``(configs, T)`` where ``configs`` are the distinct
        parameter rows that have at least one run at *every* requested
        scale, and ``T[i, j]`` is the mean runtime of config i at
        ``scales[j]`` (mean over repetitions).
        """
        scales = [int(s) for s in scales]
        values = self.model_runtime if use_model_runtime else self.runtime
        configs = self.unique_configs()
        rows: list[np.ndarray] = []
        keep: list[int] = []
        for ci, cfg in enumerate(configs):
            cfg_mask = np.all(self.X == cfg, axis=1)
            means = []
            for s in scales:
                m = cfg_mask & (self.nprocs == s)
                if not np.any(m):
                    break
                means.append(values[m].mean())
            else:
                rows.append(np.asarray(means))
                keep.append(ci)
        if not rows:
            return configs[:0], np.empty((0, len(scales)))
        return configs[keep], np.vstack(rows)

    # -- reporting -----------------------------------------------------------

    def summary(self) -> str:
        """Human-readable dataset characterization (Table-1 style)."""
        lines = [
            f"application : {self.app_name}",
            f"runs        : {len(self)}",
            f"configs     : {len(self.unique_configs())}",
            f"scales      : {list(self.scales)}",
            f"runtime     : [{self.runtime.min():.4g}, {self.runtime.max():.4g}] s",
        ]
        for j, name in enumerate(self.param_names):
            col = self.X[:, j]
            lines.append(f"param {name:<12s}: [{col.min():.4g}, {col.max():.4g}]")
        return "\n".join(lines)
