"""Parameter-space samplers and history-data generation.

``HistoryGenerator`` plays the role of the paper's "historical execution
data": it samples application configurations and simulates them at the
requested scales (with repetitions), returning an
:class:`~repro.data.ExecutionDataset`.

When the executor runs under a finite wall-clock budget, histories stop
being silently pristine: runs killed at the limit on every attempt are
kept as *censored* rows (runtime = the final limit, exactly what a
scheduler log records), dropped, or re-raised, per ``on_timeout``.  The
per-collect :class:`TimeoutLog` accounts for every censored and
resubmitted run so downstream validation can be checked against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..apps.base import Application
from ..errors import ConfigurationError, ExecutionTimeoutError
from ..log import get_logger
from ..sim.execution import Executor
from .dataset import ExecutionDataset

__all__ = [
    "sample_random",
    "sample_latin_hypercube",
    "sample_grid",
    "HistoryGenerator",
    "TimeoutLog",
]

logger = get_logger("data.generator")


def sample_random(
    app: Application, n: int, rng: np.random.Generator
) -> list[dict[str, float]]:
    """Uniform (per-spec, possibly log-scaled) random configurations."""
    if n < 1:
        raise ValueError("n must be >= 1.")
    return [app.sample_params(rng) for _ in range(n)]


def sample_latin_hypercube(
    app: Application, n: int, rng: np.random.Generator
) -> list[dict[str, float]]:
    """Latin-hypercube configurations: each parameter's range is divided
    into n strata, each stratum used exactly once — better coverage of
    the parameter space than i.i.d. sampling for the same budget."""
    if n < 1:
        raise ValueError("n must be >= 1.")
    specs = app.param_specs()
    d = len(specs)
    # u[i, j]: position of sample i in stratum order for parameter j.
    u = (rng.permuted(np.tile(np.arange(n), (d, 1)), axis=1).T + rng.random((n, d))) / n
    configs: list[dict[str, float]] = []
    for i in range(n):
        params: dict[str, float] = {}
        for j, spec in enumerate(specs):
            if spec.log:
                lo, hi = np.log(spec.low), np.log(spec.high)
                v = float(np.exp(lo + u[i, j] * (hi - lo)))
            else:
                v = float(spec.low + u[i, j] * (spec.high - spec.low))
            if spec.integer:
                v = float(round(v))
            params[spec.name] = spec.clip(v)
        configs.append(params)
    return configs


def sample_grid(app: Application, points_per_dim: int) -> list[dict[str, float]]:
    """Full-factorial grid (use with few parameters; size grows as
    points_per_dim ** n_params)."""
    if points_per_dim < 2:
        raise ValueError("points_per_dim must be >= 2.")
    specs = app.param_specs()
    axes: list[np.ndarray] = []
    for spec in specs:
        if spec.log:
            vals = np.geomspace(spec.low, spec.high, points_per_dim)
        else:
            vals = np.linspace(spec.low, spec.high, points_per_dim)
        if spec.integer:
            vals = np.unique(np.round(vals))
        axes.append(vals)
    mesh = np.meshgrid(*axes, indexing="ij")
    flat = np.stack([m.ravel() for m in mesh], axis=1)
    return [
        {spec.name: float(row[j]) for j, spec in enumerate(specs)} for row in flat
    ]


@dataclass
class TimeoutLog:
    """Budget/retry accounting for one ``collect`` call.

    Attributes
    ----------
    censored:
        Runs that timed out on every attempt and were kept as censored
        rows (``on_timeout="keep"``).
    dropped:
        Runs that timed out on every attempt and were discarded
        (``on_timeout="drop"``).
    resubmitted:
        Runs that succeeded only after >= 1 resubmission.
    extra_attempts:
        Total resubmissions across all runs (killed attempts included).
    """

    censored: int = 0
    dropped: int = 0
    resubmitted: int = 0
    extra_attempts: int = 0
    details: dict[str, object] = field(default_factory=dict)

    @property
    def timed_out(self) -> int:
        """Runs whose every attempt was killed at the limit."""
        return self.censored + self.dropped

    @property
    def affected(self) -> int:
        return self.timed_out + self.resubmitted

    def summary(self) -> str:
        if not self.affected:
            return "timeouts: none (all runs finished within budget)"
        return (
            f"timeouts: {self.censored} censored, {self.dropped} dropped, "
            f"{self.resubmitted} resubmitted-and-finished "
            f"({self.extra_attempts} extra attempts)"
        )


class HistoryGenerator:
    """Collects simulated execution histories.

    Parameters
    ----------
    app:
        Application to run.
    executor:
        Simulator; defaults to a fresh default-machine executor.  Give
        it an :class:`~repro.sim.ExecutionBudget` / ``RetryPolicy`` to
        produce histories with censored and resubmitted runs.
    seed:
        Seed for configuration sampling (noise seeding lives in the
        executor).
    on_timeout:
        What to do with a run that timed out on every attempt:
        ``"keep"`` (default) records the censored run at its final
        limit, ``"drop"`` discards it, ``"raise"`` propagates the
        :class:`~repro.errors.ExecutionTimeoutError`.
    """

    def __init__(
        self,
        app: Application,
        executor: Executor | None = None,
        seed: int = 0,
        on_timeout: str = "keep",
    ) -> None:
        if on_timeout not in ("keep", "drop", "raise"):
            raise ConfigurationError(
                f"on_timeout must be 'keep', 'drop', or 'raise'; "
                f"got {on_timeout!r}"
            )
        self.app = app
        self.executor = executor if executor is not None else Executor(seed=seed)
        self.rng = np.random.default_rng(seed)
        self.on_timeout = on_timeout
        self.timeout_log: TimeoutLog = TimeoutLog()

    def sample_configs(
        self, n: int, method: str = "lhs"
    ) -> list[dict[str, float]]:
        """Draw configurations with the chosen sampler ("lhs" or
        "random")."""
        if method == "lhs":
            return sample_latin_hypercube(self.app, n, self.rng)
        if method == "random":
            return sample_random(self.app, n, self.rng)
        raise ValueError(f"Unknown sampling method {method!r}")

    def collect_records(
        self,
        configs: Sequence[dict[str, float]],
        scales: Sequence[int],
        repetitions: int = 1,
    ) -> list:
        """Simulate every configuration at every scale and return the raw
        :class:`~repro.sim.ExecutionRecord` list (attempt traces, queue
        waits, and queue-state snapshots intact).  :meth:`collect` wraps
        this into a dataset; callers that need per-run detail — the waste
        report, wait-model training — use the records directly.
        """
        if not configs:
            raise ValueError("No configurations given.")
        if not scales:
            raise ValueError("No scales given.")
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1.")
        log = TimeoutLog()
        records = []
        for params in configs:
            for s in scales:
                for r in range(repetitions):
                    try:
                        rec = self.executor.run(self.app, params, int(s), rep=r)
                    except ExecutionTimeoutError as exc:
                        if self.on_timeout == "raise" or exc.record is None:
                            raise
                        log.extra_attempts += exc.record.n_attempts - 1
                        if self.on_timeout == "drop":
                            log.dropped += 1
                            continue
                        log.censored += 1
                        rec = exc.record
                    else:
                        if rec.resubmitted:
                            log.resubmitted += 1
                            log.extra_attempts += rec.n_attempts - 1
                    records.append(rec)
        self.timeout_log = log
        if log.affected:
            logger.info("%s", log.summary())
        if not records:
            raise ExecutionTimeoutError(
                "Every simulated run exceeded its wall-clock budget; "
                "history is empty (raise the budget or retries)."
            )
        return records

    def collect(
        self,
        configs: Sequence[dict[str, float]],
        scales: Sequence[int],
        repetitions: int = 1,
    ) -> ExecutionDataset:
        """Simulate every configuration at every scale.

        Returns a dataset with ``len(configs) * len(scales) *
        repetitions`` runs.
        """
        records = self.collect_records(
            configs, scales, repetitions=repetitions
        )
        return ExecutionDataset.from_records(
            records, param_names=self.app.param_names
        )

    def generate(
        self,
        n_configs: int,
        scales: Sequence[int],
        repetitions: int = 1,
        method: str = "lhs",
    ) -> ExecutionDataset:
        """Sample ``n_configs`` configurations and collect their runs."""
        configs = self.sample_configs(n_configs, method=method)
        return self.collect(configs, scales, repetitions=repetitions)
