"""Parameter-space samplers and history-data generation.

``HistoryGenerator`` plays the role of the paper's "historical execution
data": it samples application configurations and simulates them at the
requested scales (with repetitions), returning an
:class:`~repro.data.ExecutionDataset`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..apps.base import Application
from ..sim.execution import Executor
from .dataset import ExecutionDataset

__all__ = [
    "sample_random",
    "sample_latin_hypercube",
    "sample_grid",
    "HistoryGenerator",
]


def sample_random(
    app: Application, n: int, rng: np.random.Generator
) -> list[dict[str, float]]:
    """Uniform (per-spec, possibly log-scaled) random configurations."""
    if n < 1:
        raise ValueError("n must be >= 1.")
    return [app.sample_params(rng) for _ in range(n)]


def sample_latin_hypercube(
    app: Application, n: int, rng: np.random.Generator
) -> list[dict[str, float]]:
    """Latin-hypercube configurations: each parameter's range is divided
    into n strata, each stratum used exactly once — better coverage of
    the parameter space than i.i.d. sampling for the same budget."""
    if n < 1:
        raise ValueError("n must be >= 1.")
    specs = app.param_specs()
    d = len(specs)
    # u[i, j]: position of sample i in stratum order for parameter j.
    u = (rng.permuted(np.tile(np.arange(n), (d, 1)), axis=1).T + rng.random((n, d))) / n
    configs: list[dict[str, float]] = []
    for i in range(n):
        params: dict[str, float] = {}
        for j, spec in enumerate(specs):
            if spec.log:
                lo, hi = np.log(spec.low), np.log(spec.high)
                v = float(np.exp(lo + u[i, j] * (hi - lo)))
            else:
                v = float(spec.low + u[i, j] * (spec.high - spec.low))
            if spec.integer:
                v = float(round(v))
            params[spec.name] = spec.clip(v)
        configs.append(params)
    return configs


def sample_grid(app: Application, points_per_dim: int) -> list[dict[str, float]]:
    """Full-factorial grid (use with few parameters; size grows as
    points_per_dim ** n_params)."""
    if points_per_dim < 2:
        raise ValueError("points_per_dim must be >= 2.")
    specs = app.param_specs()
    axes: list[np.ndarray] = []
    for spec in specs:
        if spec.log:
            vals = np.geomspace(spec.low, spec.high, points_per_dim)
        else:
            vals = np.linspace(spec.low, spec.high, points_per_dim)
        if spec.integer:
            vals = np.unique(np.round(vals))
        axes.append(vals)
    mesh = np.meshgrid(*axes, indexing="ij")
    flat = np.stack([m.ravel() for m in mesh], axis=1)
    return [
        {spec.name: float(row[j]) for j, spec in enumerate(specs)} for row in flat
    ]


class HistoryGenerator:
    """Collects simulated execution histories.

    Parameters
    ----------
    app:
        Application to run.
    executor:
        Simulator; defaults to a fresh default-machine executor.
    seed:
        Seed for configuration sampling (noise seeding lives in the
        executor).
    """

    def __init__(
        self,
        app: Application,
        executor: Executor | None = None,
        seed: int = 0,
    ) -> None:
        self.app = app
        self.executor = executor if executor is not None else Executor(seed=seed)
        self.rng = np.random.default_rng(seed)

    def sample_configs(
        self, n: int, method: str = "lhs"
    ) -> list[dict[str, float]]:
        """Draw configurations with the chosen sampler ("lhs" or
        "random")."""
        if method == "lhs":
            return sample_latin_hypercube(self.app, n, self.rng)
        if method == "random":
            return sample_random(self.app, n, self.rng)
        raise ValueError(f"Unknown sampling method {method!r}")

    def collect(
        self,
        configs: Sequence[dict[str, float]],
        scales: Sequence[int],
        repetitions: int = 1,
    ) -> ExecutionDataset:
        """Simulate every configuration at every scale.

        Returns a dataset with ``len(configs) * len(scales) *
        repetitions`` runs.
        """
        if not configs:
            raise ValueError("No configurations given.")
        if not scales:
            raise ValueError("No scales given.")
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1.")
        records = [
            self.executor.run(self.app, params, int(s), rep=r)
            for params in configs
            for s in scales
            for r in range(repetitions)
        ]
        return ExecutionDataset.from_records(
            records, param_names=self.app.param_names
        )

    def generate(
        self,
        n_configs: int,
        scales: Sequence[int],
        repetitions: int = 1,
        method: str = "lhs",
    ) -> ExecutionDataset:
        """Sample ``n_configs`` configurations and collect their runs."""
        configs = self.sample_configs(n_configs, method=method)
        return self.collect(configs, scales, repetitions=repetitions)
