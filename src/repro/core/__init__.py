"""The paper's contribution: the two-level performance model.

* :class:`PerScaleInterpolator` — level 1, per-scale random forests.
* :class:`ClusteredScalingExtrapolator` — level 2, multitask lasso with
  clustering over scalability basis functions (small-scale data only).
* :class:`TransferExtrapolator` — level 2 variant mapping small-scale to
  large-scale performance directly.
* :class:`TwoLevelModel` — the full pipeline.
"""

from .extrapolation import (
    AnalyticSpeedupExtrapolator,
    ClusteredScalingExtrapolator,
    TransferExtrapolator,
)
from .interpolation import (
    INTERPOLATION_FACTORIES,
    PerScaleInterpolator,
    default_interpolation_model,
    gbdt_interpolation_model,
    kernel_interpolation_model,
)
from .packed_pipeline import PackedPipeline
from .planning import ConfigRecommendation, HistoryPlanner
from .uncertainty import EnsembleUncertainty, PredictionInterval
from .scaling_features import DEFAULT_BASIS_TERMS, ScaleBasis
from .two_level import TwoLevelModel

__all__ = [
    "AnalyticSpeedupExtrapolator",
    "ClusteredScalingExtrapolator",
    "TransferExtrapolator",
    "PerScaleInterpolator",
    "default_interpolation_model",
    "kernel_interpolation_model",
    "gbdt_interpolation_model",
    "INTERPOLATION_FACTORIES",
    "EnsembleUncertainty",
    "PredictionInterval",
    "HistoryPlanner",
    "ConfigRecommendation",
    "DEFAULT_BASIS_TERMS",
    "ScaleBasis",
    "PackedPipeline",
    "TwoLevelModel",
]
