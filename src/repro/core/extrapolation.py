"""Extrapolation level of the two-level model.

Turns a configuration's small-scale performance vector into large-scale
predictions, using the paper's recipe — *multitask lasso with
clustering*:

1. **Cluster** training configurations by the shape of their scaling
   curves (log-normalized, so magnitude is factored out and only shape
   remains).
2. **Select** a shared set of scalability basis terms per cluster with a
   multitask lasso over the cluster's curves (tasks = configurations).
   Joint selection is what damps the per-configuration interpolation
   noise: a basis term must help the whole cluster to enter the model.
3. **Refit** each configuration's coefficients on the selected terms by
   non-negative least squares (all basis terms are positive functions of
   p, so NNLS guarantees positive runtime predictions at any scale), and
   evaluate the fitted curve at the large target scales.

Ablation switches (used by the Table-3 benchmark) disable clustering,
replace the multitask selection with per-configuration lasso, or skip
selection entirely (full-basis least squares).

This "basis" formulation trains on small-scale data only, matching the
paper's title; :class:`TransferExtrapolator` implements the alternative
reading where a few historic configurations do have large-scale runs
(see DESIGN.md).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.optimize import nnls

from ..errors import (
    ConfigurationError,
    DataValidationError,
    FitDegenerateError,
    NotFittedError,
)
from ..log import get_logger
from ..ml.cluster.kmeans import KMeans
from ..ml.linear.coordinate_descent import Lasso, alpha_max
from ..ml.linear.multitask import MultiTaskLasso, multitask_alpha_max
from ..ml.linear.multitask import MultiTaskLassoCV
from ..robustness.report import FitReport
from .scaling_features import ScaleBasis

__all__ = [
    "ClusteredScalingExtrapolator",
    "TransferExtrapolator",
    "AnalyticSpeedupExtrapolator",
]

logger = get_logger("core.extrapolation")


def _log_shape(S: np.ndarray) -> np.ndarray:
    """Log-normalized curve shapes: log(S) minus each row's mean.

    Two configurations whose runtimes differ by a constant factor but
    scale identically map to the same shape vector.
    """
    if not np.all(np.isfinite(S)) or np.any(S <= 0):
        raise DataValidationError(
            "Small-scale runtimes must be finite and positive."
        )
    Z = np.log(S)
    return Z - Z.mean(axis=1, keepdims=True)


def _standardize_columns(A: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    mean = A.mean(axis=0)
    std = A.std(axis=0)
    std[std == 0.0] = 1.0
    return (A - mean) / std, mean, std


class ClusteredScalingExtrapolator:
    """Scalability models over a basis of functions of p.

    Parameters
    ----------
    small_scales:
        The process counts of the performance vector (training support
        of every per-configuration curve).
    basis:
        :class:`ScaleBasis`; defaults to the standard scalability terms.
    n_clusters:
        Number of curve-shape clusters (1 disables clustering).
    max_terms:
        Cardinality budget of the selected support per cluster.  Must
        leave the per-configuration refit overdetermined, so it is
        additionally capped at ``len(small_scales) - 1``.
    selection:
        "multitask" (paper), "independent" (per-config lasso ablation),
        or "none" (full basis, no selection — the OLS ablation).
    refit:
        "nnls" (positivity-safe, default) or "ols".
    n_alphas:
        Resolution of the alpha path used for support selection.
    val_ratio:
        Internal-validation extrapolation factor: scales above
        ``max(small_scales)/val_ratio`` are held out when scoring
        candidate supports.
    random_state:
        Seed for k-means initialization.
    """

    def __init__(
        self,
        small_scales: Sequence[int],
        basis: ScaleBasis | None = None,
        n_clusters: int = 3,
        max_terms: int = 3,
        selection: str = "multitask",
        refit: str = "nnls",
        n_alphas: int = 40,
        val_ratio: float = 4.0,
        random_state: int | None = 0,
    ) -> None:
        self.small_scales = tuple(int(s) for s in small_scales)
        if len(self.small_scales) < 2:
            raise ConfigurationError("Need at least two small scales.")
        if len(set(self.small_scales)) != len(self.small_scales):
            raise ConfigurationError("Duplicate small scales.")
        if selection not in ("multitask", "independent", "none"):
            raise ConfigurationError(
                "selection must be multitask|independent|none."
            )
        if refit not in ("nnls", "ols"):
            raise ConfigurationError("refit must be nnls|ols.")
        if n_clusters < 1:
            raise ConfigurationError("n_clusters must be >= 1.")
        if max_terms < 1:
            raise ConfigurationError("max_terms must be >= 1.")
        self.basis = basis if basis is not None else ScaleBasis()
        self.n_clusters = n_clusters
        self.max_terms = min(max_terms, len(self.small_scales) - 1)
        self.selection = selection
        self.refit = refit
        self.n_alphas = n_alphas
        if val_ratio < 1.0:
            raise ConfigurationError("val_ratio must be >= 1.")
        self.val_ratio = val_ratio
        self.random_state = random_state

    # -- support selection ---------------------------------------------------
    #
    # Candidate supports come from the (multitask-)lasso regularization
    # path; the *winning* support is chosen by internal extrapolation
    # validation: refit each candidate on all small scales except the
    # largest and score its prediction of that held-out largest scale.
    # This directly penalizes basis terms (like raw ``p``) that are
    # nearly collinear with benign terms inside the training range but
    # explode beyond it — the dominant failure mode of naive in-sample
    # selection.

    def _path_supports_multitask(self, Y_norm: np.ndarray) -> list[np.ndarray]:
        """Distinct supports (size <= max_terms) along the MTL path."""
        A, _, _ = _standardize_columns(self._design_small)
        a_max = multitask_alpha_max(A, Y_norm, fit_intercept=True)
        if a_max <= 0:
            return []
        alphas = np.geomspace(a_max * 0.95, a_max * 1e-3, self.n_alphas)
        model = MultiTaskLasso(alpha=float(alphas[0]), warm_start=True, tol=1e-8)
        seen: set[tuple[bool, ...]] = set()
        out: list[np.ndarray] = []
        for a in alphas:
            model.alpha = float(a)
            model.fit(A, Y_norm)
            support = model.support_
            k = int(support.sum())
            if k > self.max_terms:
                break
            key = tuple(support.tolist())
            if k >= 1 and key not in seen:
                seen.add(key)
                out.append(support.copy())
        return out

    def _path_supports_independent(self, y_norm: np.ndarray) -> list[np.ndarray]:
        """Distinct supports along a single-task lasso path (ablation)."""
        A, _, _ = _standardize_columns(self._design_small)
        a_max = alpha_max(A, y_norm, fit_intercept=True)
        if a_max <= 0:
            return []
        alphas = np.geomspace(a_max * 0.95, a_max * 1e-3, self.n_alphas)
        model = Lasso(alpha=float(alphas[0]), warm_start=True, tol=1e-8)
        seen: set[tuple[bool, ...]] = set()
        out: list[np.ndarray] = []
        for a in alphas:
            model.alpha = float(a)
            model.fit(A, y_norm)
            support = model.coef_ != 0.0
            k = int(support.sum())
            if k > self.max_terms:
                break
            key = tuple(support.tolist())
            if k >= 1 and key not in seen:
                seen.add(key)
                out.append(support.copy())
        return out

    def _baseline_candidates(self) -> list[np.ndarray]:
        """Always-considered simple hypotheses: constant-only, each
        single workhorse term, and the classic {1/p, log p} pair."""
        names = list(self.basis.names)
        cands = [np.zeros(len(names), dtype=bool)]  # intercept only
        for term in ("inv_p", "p_-2/3", "log_p"):
            if term in names:
                s = np.zeros(len(names), dtype=bool)
                s[names.index(term)] = True
                cands.append(s)
        if "inv_p" in names and "log_p" in names:
            s = np.zeros(len(names), dtype=bool)
            s[names.index("inv_p")] = True
            s[names.index("log_p")] = True
            cands.append(s)
        return cands

    def _validation_split(self) -> tuple[np.ndarray, np.ndarray]:
        """Indices of fit vs held-out scales for support scoring.

        Scales above ``max_small / val_ratio`` are held out, so the
        internal validation is itself a genuine (≈``val_ratio``x)
        extrapolation — a one-step-ahead holdout would not expose basis
        terms that only explode far beyond the training range.  At least
        two scales are kept on each side.
        """
        scales = np.asarray(self.small_scales, dtype=np.float64)
        cutoff = scales.max() / self.val_ratio
        fit_idx = np.nonzero(scales <= cutoff)[0]
        val_idx = np.nonzero(scales > cutoff)[0]
        if len(fit_idx) < 2 or len(val_idx) < 1:
            # Degenerate geometry (e.g. only two scales): leave-last-out.
            fit_idx = np.arange(len(scales) - 1)
            val_idx = np.array([len(scales) - 1])
        return fit_idx, val_idx

    def _design_columns(
        self, rows: np.ndarray, support: np.ndarray, intercept: bool
    ) -> np.ndarray:
        """Design block ``[1?, selected terms]`` for the given scale rows."""
        cols = self._design_small[np.ix_(rows, support)]
        if intercept:
            return np.column_stack([np.ones(len(rows)), cols])
        return cols

    def _score_support(
        self, support: np.ndarray, S_cluster: np.ndarray, intercept: bool = True
    ) -> float:
        """Internal-extrapolation score of one hypothesis.

        A hypothesis is a support plus an intercept flag: a constant term
        is *itself* a modelling choice — including it lets curves flatten
        (latency floors) but also lets the fit absorb a decaying curve's
        tail and predict premature flattening, so the validation decides.

        Fits each configuration on the low small scales and measures the
        mean squared *log* error on the held-out high small scales (log
        error treats over- and under-prediction symmetrically).
        Hypotheses too large to be identifiable from the fit scales score
        as infeasible.
        """
        fit_idx, val_idx = self._validation_split()
        n_coef = int(support.sum()) + int(intercept)
        if n_coef == 0 or n_coef > len(fit_idx):
            return np.inf
        A_fit = self._design_columns(fit_idx, support, intercept)
        A_val = self._design_columns(val_idx, support, intercept)
        errs = np.empty(S_cluster.shape[0])
        for i, curve in enumerate(S_cluster):
            coef = self._weighted_fit(A_fit, curve[fit_idx])
            pred = np.maximum(A_val @ coef, 1e-12)
            errs[i] = float(np.mean(np.log(pred / curve[val_idx]) ** 2))
        return float(np.mean(errs))

    def _weighted_fit(self, A: np.ndarray, curve: np.ndarray) -> np.ndarray:
        """Relative-error least squares: rows are scaled by 1/t so every
        scale contributes equally regardless of runtime magnitude (a
        10x-decaying curve would otherwise be fitted almost entirely to
        its largest, least extrapolation-relevant values)."""
        w = 1.0 / curve
        Aw = A * w[:, None]
        bw = np.ones_like(curve)
        if self.refit == "nnls":
            coef, _ = nnls(Aw, bw)
        else:
            coef = np.linalg.lstsq(Aw, bw, rcond=None)[0]
        return coef

    def _select_hypothesis(
        self, candidates: list[np.ndarray], S_cluster: np.ndarray
    ) -> tuple[np.ndarray, bool, float]:
        """Pick the (support, intercept) pair with the best internal-
        extrapolation score; ties break toward fewer coefficients
        (simplicity prior).  Also returns the winning score so callers
        can detect a fully infeasible selection (score = inf)."""
        all_cands = candidates + self._baseline_candidates()
        seen: set[tuple[bool, ...]] = set()
        best: tuple[np.ndarray, bool] | None = None
        best_key: tuple[float, int] | None = None
        for support in all_cands:
            key = tuple(support.tolist())
            if key in seen:
                continue
            seen.add(key)
            for intercept in (True, False):
                score = self._score_support(support, S_cluster, intercept)
                rank = (score, int(support.sum()) + int(intercept))
                if best_key is None or rank < best_key:
                    best_key = rank
                    best = (support, intercept)
        assert best is not None and best_key is not None
        return best[0], best[1], best_key[0]

    def _fallback_support(self) -> np.ndarray:
        """Degenerate-path fallback: the two workhorse terms (1/p, log p)
        if present, else the first ``max_terms`` terms."""
        names = list(self.basis.names)
        support = np.zeros(len(names), dtype=bool)
        for wanted in ("inv_p", "log_p"):
            if wanted in names:
                support[names.index(wanted)] = True
        if not support.any():
            support[: self.max_terms] = True
        return support

    # -- coefficient refit ----------------------------------------------------

    def _refit_config(
        self, support: np.ndarray, intercept: bool, s_curve: np.ndarray
    ) -> np.ndarray:
        """Fit one configuration's coefficients on the selected
        hypothesis over all small scales.

        Returns the coefficient vector over ``[intercept?, selected
        terms]`` in raw (unstandardized) basis values.
        """
        rows = np.arange(len(self.small_scales))
        A = self._design_columns(rows, support, intercept)
        return self._weighted_fit(A, s_curve)

    def _eval_config(
        self,
        support: np.ndarray,
        intercept: bool,
        coef: np.ndarray,
        design_large: np.ndarray,
    ) -> np.ndarray:
        cols = design_large[:, support]
        if intercept:
            cols = np.column_stack([np.ones(design_large.shape[0]), cols])
        return cols @ coef

    # -- fit / predict ----------------------------------------------------------

    def fit(
        self, S: np.ndarray, report: FitReport | None = None
    ) -> "ClusteredScalingExtrapolator":
        """Learn cluster structure and per-cluster supports.

        Parameters
        ----------
        S:
            (n_configs, n_small) small-scale runtimes of the training
            configurations — measured means, or interpolation-level
            predictions.
        report:
            Fit report receiving a ``fallback_support`` event for every
            cluster whose hypothesis selection degenerates.
        """
        report = report if report is not None else FitReport()
        S = np.asarray(S, dtype=np.float64)
        if S.ndim != 2 or S.shape[1] != len(self.small_scales):
            raise DataValidationError(
                f"S must have shape (n_configs, {len(self.small_scales)})."
            )
        if S.shape[0] < 1:
            raise FitDegenerateError(
                "Need at least one training configuration."
            )
        self._design_small = self.basis.design_matrix(self.small_scales)

        shapes = _log_shape(S)
        k = min(self.n_clusters, S.shape[0])
        if k > 1:
            self.kmeans_ = KMeans(
                n_clusters=k, n_init=10, random_state=self.random_state
            ).fit(shapes)
            labels = self.kmeans_.labels_
        else:
            self.kmeans_ = None
            labels = np.zeros(S.shape[0], dtype=np.int64)
        self.labels_ = labels
        self.n_clusters_ = k

        # Magnitude-normalized curves for selection.
        mags = S.mean(axis=1)
        Y_norm_all = (S / mags[:, None]).T  # (n_small, n_configs)

        self.supports_: dict[int, np.ndarray] = {}
        self.intercepts_: dict[int, bool] = {}
        full = np.ones(len(self.basis), dtype=bool)
        for c in range(k):
            members = np.nonzero(labels == c)[0]
            if self.selection == "none":
                self.supports_[c] = full.copy()
                self.intercepts_[c] = True
            elif self.selection == "multitask":
                try:
                    candidates = self._path_supports_multitask(
                        Y_norm_all[:, members]
                    )
                    support, intercept, score = self._select_hypothesis(
                        candidates, S[members]
                    )
                except Exception as exc:
                    report.record(
                        "extrapolation",
                        "fallback_support",
                        f"cluster {c}: hypothesis selection failed "
                        f"({type(exc).__name__}: {exc}); using workhorse "
                        "terms",
                        cluster=c,
                        n_members=int(len(members)),
                        reason="selection_failed",
                    )
                    logger.warning(
                        "cluster %d selection failed (%s); fallback support",
                        c,
                        exc,
                    )
                    support, intercept = self._fallback_support(), True
                else:
                    if not np.isfinite(score):
                        report.record(
                            "extrapolation",
                            "fallback_support",
                            f"cluster {c}: no feasible scalability "
                            "hypothesis scored finitely; using workhorse "
                            "terms",
                            cluster=c,
                            n_members=int(len(members)),
                            reason="no_feasible_hypothesis",
                        )
                        support, intercept = self._fallback_support(), True
                self.supports_[c] = support
                self.intercepts_[c] = intercept
            else:  # independent (ablation): per-config selection, no sharing
                votes = np.zeros(len(self.basis))
                for m in members:
                    cands = self._path_supports_independent(Y_norm_all[:, m])
                    sup_m, _, _ = self._select_hypothesis(cands, S[m : m + 1])
                    votes += sup_m
                # The stored (majority) support is only used as a label
                # for diagnostics; predict() reselects per configuration.
                support = votes >= max(1.0, len(members) / 2.0)
                self.supports_[c] = (
                    support if support.any() else self._fallback_support()
                )
                self.intercepts_[c] = True
        self._train_S = S
        logger.debug(
            "extrapolator fitted: %d cluster(s), supports %s",
            k,
            {c: int(m.sum()) for c, m in self.supports_.items()},
        )
        return self

    def _check_fitted(self) -> None:
        if not hasattr(self, "supports_"):
            raise NotFittedError("Extrapolator is not fitted.")

    def assign_clusters(self, S: np.ndarray) -> np.ndarray:
        """Cluster index for each configuration's curve."""
        self._check_fitted()
        S = np.asarray(S, dtype=np.float64)
        if self.kmeans_ is None:
            return np.zeros(S.shape[0], dtype=np.int64)
        return self.kmeans_.predict(_log_shape(S))

    def predict(
        self, S: np.ndarray, large_scales: Sequence[int]
    ) -> np.ndarray:
        """Predict runtimes at ``large_scales``.

        Parameters
        ----------
        S:
            (n_configs, n_small) small-scale runtimes (typically the
            interpolation level's predictions for new configurations).

        Returns
        -------
        (n_configs, n_large) predicted runtimes, strictly positive.
        """
        self._check_fitted()
        S = np.asarray(S, dtype=np.float64)
        if S.ndim != 2 or S.shape[1] != len(self.small_scales):
            raise DataValidationError(
                f"S must have shape (n_configs, {len(self.small_scales)})."
            )
        large = [int(p) for p in large_scales]
        if any(p < 1 for p in large):
            raise ConfigurationError("Target scales must be >= 1.")
        design_large = self.basis.design_matrix(large)
        labels = self.assign_clusters(S)
        return self._predict_rows(S, design_large, labels)

    def _predict_rows(
        self,
        S: np.ndarray,
        design_large: np.ndarray,
        labels: np.ndarray,
        refit_blocks: dict | None = None,
    ) -> np.ndarray:
        """Per-configuration refit-and-evaluate loop shared by
        :meth:`predict` and the packed serving path (which supplies a
        cached ``design_large`` and lean cluster labels but must produce
        bit-identical floats).

        The per-cluster design blocks (fit columns ``A`` and evaluation
        columns ``E``) depend only on the cluster's hypothesis and
        ``design_large``, so they are hoisted out of the row loop;
        ``refit_blocks`` lets a caller keep them across calls for a
        fixed ``design_large``.
        """
        out = np.empty((S.shape[0], design_large.shape[0]))
        if self.selection == "independent":
            # Per-config reselection: nothing is shareable across rows.
            for i in range(S.shape[0]):
                mag = float(S[i].mean())
                cands = self._path_supports_independent(S[i] / mag)
                support, intercept, _ = self._select_hypothesis(
                    cands, S[i : i + 1]
                )
                coef = self._refit_config(support, intercept, S[i])
                out[i] = self._eval_config(
                    support, intercept, coef, design_large
                )
        else:
            blocks = refit_blocks if refit_blocks is not None else {}
            rows = np.arange(len(self.small_scales))
            for i in range(S.shape[0]):
                c = int(labels[i])
                blk = blocks.get(c)
                if blk is None:
                    support = self.supports_[c]
                    intercept = self.intercepts_[c]
                    A = self._design_columns(rows, support, intercept)
                    E = design_large[:, support]
                    if intercept:
                        E = np.column_stack(
                            [np.ones(design_large.shape[0]), E]
                        )
                    blk = blocks[c] = (A, E)
                A, E = blk
                out[i] = E @ self._weighted_fit(A, S[i])
        # Fitted curves are non-negative under NNLS; enforce a strictly
        # positive floor either way so downstream MAPE is defined.
        floor = 1e-9
        return np.maximum(out, floor)

    def support_names(self) -> dict[int, tuple[str, ...]]:
        """Selected basis-term names per cluster (diagnostics); the
        intercept, when selected, appears as "1"."""
        self._check_fitted()
        names = np.asarray(self.basis.names)
        out: dict[int, tuple[str, ...]] = {}
        for c, mask in sorted(self.supports_.items()):
            terms = tuple(str(n) for n in names[mask])
            if self.intercepts_.get(c, True):
                terms = ("1",) + terms
            out[c] = terms
        return out


class TransferExtrapolator:
    """Alternative extrapolation level: learn a direct map from
    small-scale to large-scale performance.

    Requires training configurations that *do* have large-scale runs
    (e.g. a few historic production executions).  Fits, per curve-shape
    cluster, a multitask lasso in log space whose tasks are the large
    target scales and whose features are the log small-scale runtimes.

    This implements the second reading of the paper's extrapolation
    level discussed in DESIGN.md and powers the "transfer" mode of
    :class:`~repro.core.TwoLevelModel`.
    """

    def __init__(
        self,
        small_scales: Sequence[int],
        large_scales: Sequence[int],
        n_clusters: int = 3,
        cv: int = 3,
        random_state: int | None = 0,
    ) -> None:
        self.small_scales = tuple(int(s) for s in small_scales)
        self.large_scales = tuple(int(s) for s in large_scales)
        if len(self.small_scales) < 2:
            raise ConfigurationError("Need at least two small scales.")
        if not self.large_scales:
            raise ConfigurationError("Need at least one large scale.")
        if n_clusters < 1:
            raise ConfigurationError("n_clusters must be >= 1.")
        self.n_clusters = n_clusters
        self.cv = cv
        self.random_state = random_state

    def fit(self, S: np.ndarray, Y_large: np.ndarray) -> "TransferExtrapolator":
        S = np.asarray(S, dtype=np.float64)
        Y_large = np.asarray(Y_large, dtype=np.float64)
        if S.ndim != 2 or S.shape[1] != len(self.small_scales):
            raise DataValidationError("S has wrong shape.")
        if Y_large.shape != (S.shape[0], len(self.large_scales)):
            raise DataValidationError("Y_large has wrong shape.")
        if (
            not np.all(np.isfinite(S))
            or not np.all(np.isfinite(Y_large))
            or np.any(S <= 0)
            or np.any(Y_large <= 0)
        ):
            raise DataValidationError("Runtimes must be finite and positive.")

        shapes = _log_shape(S)
        k = min(self.n_clusters, S.shape[0])
        # Each cluster needs enough members for its own regression.
        while k > 1 and S.shape[0] / k < max(4, self.cv):
            k -= 1
        if k > 1:
            self.kmeans_ = KMeans(
                n_clusters=k, n_init=10, random_state=self.random_state
            ).fit(shapes)
            labels = self.kmeans_.labels_
        else:
            self.kmeans_ = None
            labels = np.zeros(S.shape[0], dtype=np.int64)
        self.n_clusters_ = k

        logS = np.log(S)
        logY = np.log(Y_large)
        self.models_: dict[int, object] = {}
        for c in range(k):
            members = labels == c
            n_members = int(members.sum())
            if n_members >= max(4, self.cv + 1):
                model = MultiTaskLassoCV(
                    cv=min(self.cv, n_members), random_state=self.random_state
                )
            else:
                model = MultiTaskLasso(alpha=1e-3)
            model.fit(logS[members], logY[members])
            self.models_[c] = model
        return self

    def predict(self, S: np.ndarray) -> np.ndarray:
        """(n_configs, n_large) predicted large-scale runtimes."""
        if not hasattr(self, "models_"):
            raise NotFittedError("TransferExtrapolator is not fitted.")
        S = np.asarray(S, dtype=np.float64)
        if not np.all(np.isfinite(S)) or np.any(S <= 0):
            raise DataValidationError("Runtimes must be finite and positive.")
        if self.kmeans_ is None:
            labels = np.zeros(S.shape[0], dtype=np.int64)
        else:
            labels = self.kmeans_.predict(_log_shape(S))
        logS = np.log(S)
        out = np.empty((S.shape[0], len(self.large_scales)))
        for c, model in self.models_.items():
            mask = labels == c
            if np.any(mask):
                out[mask] = model.predict(logS[mask])
        return np.exp(out)


class AnalyticSpeedupExtrapolator:
    """Last-resort extrapolation level: per-configuration Amdahl fits.

    When the clustered scalability machinery cannot be fitted at all
    (degenerate or heavily corrupted small-scale curves), the two-level
    model degrades to this baseline: each configuration's small-scale
    curve is fitted with Amdahl's law in relative-error metric and
    evaluated at the target scales.  A pooled shape (the geometric-mean
    curve over all valid training configurations) covers rows whose own
    curve is unusable.

    Implements the ``fit(S)`` / ``predict(S, large_scales)`` subset of
    the :class:`ClusteredScalingExtrapolator` interface that
    :class:`~repro.core.TwoLevelModel` relies on.
    """

    def __init__(self, small_scales: Sequence[int]) -> None:
        self.small_scales = tuple(int(s) for s in small_scales)
        if len(self.small_scales) < 2:
            raise ConfigurationError("Need at least two small scales.")

    @staticmethod
    def _valid_curve(curve: np.ndarray) -> bool:
        return bool(np.all(np.isfinite(curve)) and np.all(curve > 0))

    def fit(self, S: np.ndarray) -> "AnalyticSpeedupExtrapolator":
        from ..baselines.analytic import fit_amdahl

        S = np.asarray(S, dtype=np.float64)
        if S.ndim != 2 or S.shape[1] != len(self.small_scales):
            raise DataValidationError(
                f"S must have shape (n_configs, {len(self.small_scales)})."
            )
        valid = [row for row in S if self._valid_curve(row)]
        if not valid:
            raise FitDegenerateError(
                "No training configuration has a usable small-scale curve "
                "for the analytic fallback."
            )
        pooled_curve = np.exp(np.mean(np.log(np.vstack(valid)), axis=0))
        self.pooled_model_ = fit_amdahl(self.small_scales, pooled_curve)
        logger.info(
            "analytic fallback fitted on %d/%d usable curves "
            "(pooled serial fraction %.3g)",
            len(valid),
            S.shape[0],
            self.pooled_model_.serial_fraction,
        )
        return self

    def predict(
        self, S: np.ndarray, large_scales: Sequence[int]
    ) -> np.ndarray:
        from ..baselines.analytic import fit_amdahl

        if not hasattr(self, "pooled_model_"):
            raise NotFittedError("AnalyticSpeedupExtrapolator is not fitted.")
        S = np.asarray(S, dtype=np.float64)
        if S.ndim != 2 or S.shape[1] != len(self.small_scales):
            raise DataValidationError(
                f"S must have shape (n_configs, {len(self.small_scales)})."
            )
        large = [int(p) for p in large_scales]
        if any(p < 1 for p in large):
            raise ConfigurationError("Target scales must be >= 1.")
        p = np.asarray(large, dtype=np.float64)
        out = np.empty((S.shape[0], len(large)))
        pooled_shape = self.pooled_model_(p) / self.pooled_model_(
            float(self.small_scales[0])
        )
        for i, curve in enumerate(S):
            if self._valid_curve(curve):
                out[i] = fit_amdahl(self.small_scales, curve)(p)
            else:
                # Anchor the pooled shape on whatever finite point exists.
                finite = np.isfinite(curve) & (curve > 0)
                anchor = (
                    float(curve[finite][0])
                    if np.any(finite)
                    else float(self.pooled_model_(float(self.small_scales[0])))
                )
                out[i] = anchor * pooled_shape
        return np.maximum(out, 1e-9)

    def support_names(self) -> dict[int, tuple[str, ...]]:
        """Interface parity with the clustered extrapolator."""
        return {0: ("amdahl",)}
