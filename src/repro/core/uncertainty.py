"""Prediction intervals for the two-level model (extension feature).

The interpolation level is a forest ensemble, so it carries a natural
uncertainty signal: the spread of per-tree predictions at each small
scale.  :class:`EnsembleUncertainty` propagates that spread through the
extrapolation level by Monte-Carlo: it samples perturbed small-scale
performance vectors from the per-scale ensembles, extrapolates each
sample, and reports quantiles of the resulting large-scale predictions.

This quantifies how much of the final uncertainty stems from
interpolation error — the quantity the paper's multitask design tries
to suppress — but NOT the extrapolation level's own model-form error,
so the intervals are a lower bound on total uncertainty (documented
honestly in the API).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .two_level import TwoLevelModel

__all__ = ["PredictionInterval", "EnsembleUncertainty"]


@dataclass(frozen=True)
class PredictionInterval:
    """Quantile summary of sampled large-scale predictions.

    Attributes
    ----------
    scales:
        Target process counts (columns of the arrays below).
    median, lower, upper:
        Per-configuration, per-scale quantiles, shape
        ``(n_configs, n_scales)``.
    level:
        Nominal coverage of [lower, upper] w.r.t. interpolation noise.
    """

    scales: tuple[int, ...]
    median: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    level: float

    @property
    def relative_width(self) -> np.ndarray:
        """(upper - lower) / median — the honest headline number."""
        return (self.upper - self.lower) / self.median


class EnsembleUncertainty:
    """Monte-Carlo propagation of interpolation-ensemble spread.

    Parameters
    ----------
    model:
        A fitted basis-mode :class:`TwoLevelModel` whose per-scale
        learners expose ``predict_all`` (the default random forests do).
    n_samples:
        Monte-Carlo samples per configuration.
    level:
        Interval coverage (e.g. 0.9 for a 5-95 % band).
    random_state:
        Seed for the sampling.
    """

    def __init__(
        self,
        model: TwoLevelModel,
        n_samples: int = 50,
        level: float = 0.9,
        random_state: int | None = 0,
    ) -> None:
        if not hasattr(model, "extrapolator_"):
            raise ValueError("model must be fitted first.")
        if model.mode != "basis":
            raise ValueError("EnsembleUncertainty requires basis mode.")
        if n_samples < 2:
            raise ValueError("n_samples must be >= 2.")
        if not 0.0 < level < 1.0:
            raise ValueError("level must be in (0, 1).")
        for scale in model.interpolator_.scales_:
            if not model.interpolator_.has_ensemble(scale):
                raise ValueError(
                    f"Interpolation model at scale {scale} has no "
                    "predict_all; ensemble uncertainty needs an ensemble."
                )
        self.model = model
        self.n_samples = n_samples
        self.level = level
        self.random_state = random_state

    def _sample_small_matrices(self, X: np.ndarray) -> np.ndarray:
        """Sampled small-scale matrices, shape ``(n_samples, n_configs,
        n_small)``.

        Each sample draws one tree's prediction per (config, scale) —
        a smooth bootstrap over the fitted ensembles.  Log-target models
        sample in log space.
        """
        rng = np.random.default_rng(self.random_state)
        interp = self.model.interpolator_
        n = X.shape[0]
        scales = interp.scales_
        out = np.empty((self.n_samples, n, len(scales)))
        for j, scale in enumerate(scales):
            # Pooled-fallback scales answer from the pooled ensemble.
            per_tree = interp.predict_all_at(X, scale)  # (n_trees, n_configs)
            n_trees = per_tree.shape[0]
            picks = rng.integers(0, n_trees, size=(self.n_samples, n))
            sampled = per_tree[picks, np.arange(n)[None, :]]
            out[:, :, j] = np.exp(sampled) if interp.log_target else np.maximum(
                sampled, 1e-12
            )
        return out

    def predict_interval(
        self, X: np.ndarray, scales: Sequence[int]
    ) -> PredictionInterval:
        """Interval predictions at the given (large) target scales."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D.")
        targets = [int(s) for s in scales]
        samples = self._sample_small_matrices(X)
        extrap = self.model.extrapolator_
        preds = np.empty((self.n_samples, X.shape[0], len(targets)))
        for b in range(self.n_samples):
            preds[b] = extrap.predict(samples[b], targets)
        alpha = (1.0 - self.level) / 2.0
        return PredictionInterval(
            scales=tuple(targets),
            median=np.quantile(preds, 0.5, axis=0),
            lower=np.quantile(preds, alpha, axis=0),
            upper=np.quantile(preds, 1.0 - alpha, axis=0),
            level=self.level,
        )
