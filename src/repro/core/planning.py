"""History-augmentation planning (extension feature).

Answers the operational question the paper's setting raises but does
not address: *given a budget of additional core-hours, which runs
should be added to the history to most improve large-scale
predictions?*

The unit of acquisition is a **configuration bundle** — one new
configuration executed at *every* small scale.  Bundles are the natural
unit because the extrapolation level only learns from configurations
whose scaling curve is complete, and lopsided per-scale additions skew
the per-scale training distributions of the interpolation forests
(adding runs of a configuration at only some scales measurably *hurts*
the pipeline — the planner exists to avoid exactly that trap).

Bundles are scored by ensemble disagreement per core-second: the mean
relative spread of the interpolation ensembles over the candidate's
curve, divided by the predicted cost of executing the bundle.  With a
``time_limit`` the score is additionally penalized by the candidate's
*censor risk* — the fraction of its scales whose predicted runtime
would exceed a per-run wall-clock limit — so a collection campaign does
not spend allocation on runs that will be killed and record nothing.

Degraded fits are survivable: scales served by the pooled fallback
interpolator answer spread queries through the pooled ensemble (see
:meth:`~repro.core.interpolation.PerScaleInterpolator.prediction_std_at`),
so a planner built on a degraded model still ranks candidates instead
of crashing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..apps.base import Application
from .two_level import TwoLevelModel

__all__ = ["ConfigRecommendation", "HistoryPlanner"]


@dataclass(frozen=True)
class ConfigRecommendation:
    """One recommended configuration bundle.

    Attributes
    ----------
    params:
        Configuration to execute at every small scale.
    scales:
        The scales of the bundle (the model's small scales).
    disagreement:
        Mean relative ensemble spread of the current model over the
        bundle (the signal being bought down).
    est_cost_core_seconds:
        Sum over scales of predicted runtime x processes.
    utility:
        ``disagreement * (1 - censor_risk) / cost``, the greedy ranking
        key.
    censor_risk:
        Fraction of the bundle's scales whose predicted runtime exceeds
        the planner's ``time_limit`` (0 when no limit is set) — runs
        likely to be killed at the limit and yield no measurement.
    """

    params: dict[str, float]
    scales: tuple[int, ...]
    disagreement: float
    est_cost_core_seconds: float
    utility: float
    censor_risk: float = 0.0


class HistoryPlanner:
    """Greedy budgeted selection of history-augmentation bundles.

    Parameters
    ----------
    model:
        Fitted basis-mode :class:`TwoLevelModel` with ensemble
        interpolators (the default random forests qualify).  Scales
        degraded to the pooled fallback are answered through the pooled
        ensemble.
    app:
        The application (used to sample candidate configurations).
    n_candidates:
        Size of the candidate configuration pool.
    time_limit:
        Per-run wall-clock limit of the execution environment, in
        seconds.  Candidates predicted to exceed it at some scales get
        their acquisition score penalized proportionally (censoring-
        aware planning); None disables the penalty.
    censor_margin:
        Safety margin on the censor check: a scale is counted at risk
        when ``predicted_runtime * (1 + censor_margin) > time_limit``,
        so predictions close to the limit are treated as risky too.
    random_state:
        Seed for candidate sampling.
    """

    def __init__(
        self,
        model: TwoLevelModel,
        app: Application,
        n_candidates: int = 200,
        time_limit: float | None = None,
        censor_margin: float = 0.0,
        random_state: int | None = 0,
    ) -> None:
        if not hasattr(model, "extrapolator_"):
            raise ValueError("model must be fitted first.")
        if model.mode != "basis":
            raise ValueError("HistoryPlanner requires basis mode.")
        for scale in model.interpolator_.scales_:
            if not model.interpolator_.has_spread(scale):
                raise ValueError(
                    f"Interpolation model at scale {scale} exposes no "
                    "ensemble spread; the planner needs one."
                )
        if n_candidates < 1:
            raise ValueError("n_candidates must be >= 1.")
        if time_limit is not None and time_limit <= 0:
            raise ValueError("time_limit must be positive seconds.")
        if censor_margin < 0:
            raise ValueError("censor_margin must be >= 0.")
        self.model = model
        self.app = app
        self.n_candidates = n_candidates
        self.time_limit = time_limit
        self.censor_margin = censor_margin
        self.random_state = random_state

    def _candidate_matrix(self) -> np.ndarray:
        rng = np.random.default_rng(self.random_state)
        configs = [self.app.sample_params(rng) for _ in range(self.n_candidates)]
        return np.vstack([self.app.params_to_vector(c) for c in configs])

    def score_candidates(
        self, X: np.ndarray | None = None
    ) -> list[ConfigRecommendation]:
        """Score candidate configuration bundles.

        Returns recommendations sorted by utility (descending).
        """
        X = self._candidate_matrix() if X is None else np.asarray(X, float)
        interp = self.model.interpolator_
        scales = interp.scales_
        S_pred = interp.predict_matrix(X)  # (n, n_scales) runtimes

        rel = np.empty_like(S_pred)
        for j, scale in enumerate(scales):
            spread = interp.prediction_std_at(X, scale)
            # Log-target models: ensemble std is already a relative
            # spread; raw-target models are normalized by the prediction.
            rel[:, j] = spread if interp.log_target else spread / np.maximum(
                S_pred[:, j], 1e-12
            )

        costs = S_pred @ np.asarray(scales, dtype=np.float64)
        disagreement = rel.mean(axis=1)
        if self.time_limit is not None:
            at_risk = S_pred * (1.0 + self.censor_margin) > self.time_limit
            risk = at_risk.mean(axis=1)
        else:
            risk = np.zeros(X.shape[0])

        recs = [
            ConfigRecommendation(
                params=self.app.vector_to_params(X[i]),
                scales=tuple(scales),
                disagreement=float(disagreement[i]),
                est_cost_core_seconds=float(costs[i]),
                utility=float(
                    disagreement[i] * (1.0 - risk[i]) / max(costs[i], 1e-12)
                ),
                censor_risk=float(risk[i]),
            )
            for i in range(X.shape[0])
        ]
        recs.sort(key=lambda r: r.utility, reverse=True)
        return recs

    def plan(
        self,
        budget_core_seconds: float,
        X: np.ndarray | None = None,
    ) -> list[ConfigRecommendation]:
        """Greedy bundle selection under a core-seconds budget."""
        if budget_core_seconds <= 0:
            raise ValueError("budget must be positive.")
        chosen: list[ConfigRecommendation] = []
        spent = 0.0
        for rec in self.score_candidates(X):
            if spent + rec.est_cost_core_seconds > budget_core_seconds:
                continue
            chosen.append(rec)
            spent += rec.est_cost_core_seconds
        return chosen
