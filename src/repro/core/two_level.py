"""The two-level performance model (the paper's contribution).

Level 1 (interpolation): per-small-scale random forests predict a
configuration's small-scale performance from its input parameters.
Level 2 (extrapolation): clustered multitask-lasso scalability models
turn the predicted small-scale performance vector into large-scale
predictions.

Two operating modes (DESIGN.md discusses why both exist):

* ``mode="basis"`` (default): the extrapolation level fits scalability
  curves over basis functions of p using *only* small-scale data — no
  large-scale run is ever needed, matching the paper's title.
* ``mode="transfer"``: the extrapolation level learns a direct
  small-to-large map from historic configurations that do have
  large-scale runs.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..data.dataset import ExecutionDataset
from ..data.splits import ScaleSplit
from ..errors import (
    ConfigurationError,
    DataValidationError,
    ExtrapolationError,
    FitDegenerateError,
    NotFittedError,
    ReproError,
)
from ..log import get_logger
from ..ml.base import BaseEstimator
from ..robustness.report import FitReport
from ..robustness.sanitize import drop_censored_rows, drop_invalid_rows
from .extrapolation import (
    AnalyticSpeedupExtrapolator,
    ClusteredScalingExtrapolator,
    TransferExtrapolator,
)
from .interpolation import PerScaleInterpolator
from .scaling_features import ScaleBasis

__all__ = ["TwoLevelModel"]

logger = get_logger("core.two_level")


class TwoLevelModel:
    """Predict large-scale HPC application performance from small-scale
    history data.

    Parameters
    ----------
    small_scales:
        Process counts at which history data exists.
    mode:
        "basis" or "transfer" (see module docstring).
    large_scales:
        Required in transfer mode (the map's output scales); in basis
        mode predictions can target any scale.
    interp_factory:
        Per-scale learner factory ``(seed) -> estimator``; default is the
        paper's random forest.
    log_target:
        Interpolation level fits log-runtime (recommended).
    basis, n_clusters, max_terms, selection, refit:
        Extrapolation-level options (basis mode); see
        :class:`~repro.core.extrapolation.ClusteredScalingExtrapolator`.
    fit_curves_on:
        What the extrapolation level is fitted on: "predictions"
        (interpolation outputs for the training configurations — the
        paper's pipeline, so level 2 sees the same kind of input at fit
        and predict time) or "measurements" (mean measured runtimes).
    strict:
        When True, any degradation condition raises instead of falling
        back (useful in tests and offline analysis).  When False (the
        default) the model survives dirty input: non-finite rows are
        dropped, missing/under-populated scales degrade to fallback
        models, and a degenerate extrapolation fit falls back to the
        analytic speedup baseline — every fallback recorded on
        :attr:`fit_report`.
    min_scale_samples:
        Minimum training rows a scale needs for its own interpolation
        model (fewer -> pooled fallback; see
        :class:`~repro.core.interpolation.PerScaleInterpolator`).
    random_state:
        Master seed for both levels.
    """

    def __init__(
        self,
        small_scales: Sequence[int],
        mode: str = "basis",
        large_scales: Sequence[int] | None = None,
        interp_factory: Callable[[object], BaseEstimator] | None = None,
        log_target: bool = True,
        basis: ScaleBasis | None = None,
        n_clusters: int = 3,
        max_terms: int = 3,
        selection: str = "multitask",
        refit: str = "nnls",
        fit_curves_on: str = "predictions",
        strict: bool = False,
        min_scale_samples: int = 2,
        random_state: int | None = 0,
    ) -> None:
        if mode not in ("basis", "transfer"):
            raise ConfigurationError("mode must be 'basis' or 'transfer'.")
        if mode == "transfer" and not large_scales:
            raise ConfigurationError("transfer mode requires large_scales.")
        if fit_curves_on not in ("predictions", "measurements"):
            raise ConfigurationError(
                "fit_curves_on must be predictions|measurements."
            )
        self.small_scales = tuple(int(s) for s in sorted(small_scales))
        self.mode = mode
        self.large_scales = (
            tuple(int(s) for s in sorted(large_scales)) if large_scales else None
        )
        self.interp_factory = interp_factory
        self.log_target = log_target
        self.basis = basis
        self.n_clusters = n_clusters
        self.max_terms = max_terms
        self.selection = selection
        self.refit = refit
        self.fit_curves_on = fit_curves_on
        self.strict = strict
        self.min_scale_samples = min_scale_samples
        self.random_state = random_state

    # -- fitting ---------------------------------------------------------

    def fit(
        self,
        train: ExecutionDataset,
        large_train: ExecutionDataset | None = None,
        warm_start_from: "TwoLevelModel | dict | None" = None,
    ) -> "TwoLevelModel":
        """Fit both levels.

        Parameters
        ----------
        train:
            Small-scale history.  Runs at scales outside
            ``small_scales`` are ignored (with a check that all
            requested scales are present).
        large_train:
            Transfer mode only: history of configurations that also ran
            at the large scales.
        warm_start_from:
            A previously fitted :class:`TwoLevelModel` (or its
            :meth:`get_fitted_state` dict) to warm-start from.  Every
            fit records a content fingerprint per small scale
            (``scale_data_fingerprints_``); a warm start reuses the
            previous per-scale interpolators for scales whose
            fingerprint is unchanged and refits only the rest plus the
            extrapolation level.  Seed streams are preserved, so a warm
            refit over unchanged data is bit-identical to a cold fit —
            reuse is an optimization, never an approximation, and is
            recorded on the fit report as a non-degrading
            ``warm_start`` event.
        """
        report = FitReport()
        self.fit_report_ = report
        self.used_analytic_fallback_ = False

        train, scrubbed = drop_invalid_rows(train)
        if scrubbed:
            if self.strict:
                raise DataValidationError(
                    f"Training data contains invalid rows: {scrubbed} "
                    "(strict mode)."
                )
            report.record(
                "sanitize",
                "dropped_invalid_rows",
                f"dropped {sum(scrubbed.values())} rows with non-finite "
                "runtimes/parameters from the training history",
                **scrubbed,
            )
            logger.warning("training history scrubbed: %s", scrubbed)

        # Budget-censored rows record a lower bound, not a runtime;
        # keeping them biases the scalability curves downward.  Drop
        # them, accounting for runs the history effectively recovered
        # via resubmission (a surviving repeat at the same point).
        train, censored = drop_censored_rows(train)
        if censored:
            if self.strict:
                raise DataValidationError(
                    f"Training data contains censored rows: {censored} "
                    "(strict mode)."
                )
            report.record(
                "sanitize",
                "censored_rows_dropped",
                f"dropped {censored['censored']} wall-clock-censored rows "
                f"({censored['resubmitted']} had a surviving resubmitted "
                f"repeat; {censored['lost_groups']} (config, scale) points "
                "lost entirely)",
                **censored,
            )
            logger.warning("censored rows dropped: %s", censored)

        present = set(int(s) for s in train.scales)
        missing = sorted(set(self.small_scales) - present)
        if missing:
            if self.strict:
                raise DataValidationError(
                    f"Training data lacks small scales {missing}."
                )
            effective = tuple(
                s for s in self.small_scales if s in present
            )
            if len(effective) < 2:
                raise FitDegenerateError(
                    f"Training data lacks small scales {missing}; only "
                    f"{list(effective)} remain — need at least two to fit "
                    "scalability curves."
                )
            report.record(
                "sanitize",
                "scale_dropped",
                f"small scales {missing} have no usable runs; fitting on "
                f"{list(effective)}",
                missing_scales=missing,
                effective_scales=list(effective),
            )
            logger.warning(
                "small scales %s missing; continuing with %s",
                missing,
                list(effective),
            )
        else:
            effective = self.small_scales
        self.effective_small_scales_ = effective
        small_data = train.at_scales(effective)

        # Content hash per small scale *as the interpolator sees it*
        # (post-scrub).  These are the warm-start keys of the next fit.
        from ..data.io import dataset_fingerprint

        self.scale_data_fingerprints_ = {
            int(s): dataset_fingerprint(small_data.at_scale(int(s)))
            for s in effective
        }
        warm_models = self._warm_models(warm_start_from, report)

        self.interpolator_ = PerScaleInterpolator(
            model_factory=self.interp_factory,
            log_target=self.log_target,
            min_scale_samples=1 if self.strict else self.min_scale_samples,
            random_state=self.random_state,
        ).fit(small_data, report=report, warm_models=warm_models)
        reused = getattr(self.interpolator_, "warm_reused_scales_", ())
        if reused:
            report.record(
                "interpolation",
                "warm_start",
                f"reused fitted interpolators for {len(reused)} scale(s) "
                f"{list(reused)} with unchanged training data",
                degrades=False,
                scales=list(reused),
            )
            logger.info(
                "warm start: reused interpolators for scales %s", list(reused)
            )

        # Training configurations' small-scale curves.
        configs, measured = small_data.runtime_matrix(effective)
        if configs.shape[0] == 0:
            raise FitDegenerateError(
                "No training configuration has runs at every small scale."
            )
        if self.fit_curves_on == "predictions":
            S_train = self.interpolator_.predict_matrix(configs)
        else:
            S_train = measured
        self.train_configs_ = configs

        if self.mode == "basis":
            extrapolator = ClusteredScalingExtrapolator(
                small_scales=effective,
                basis=self.basis,
                n_clusters=self.n_clusters,
                max_terms=self.max_terms,
                selection=self.selection,
                refit=self.refit,
                random_state=self.random_state,
            )
            try:
                extrapolator.fit(S_train, report=report)
            except ReproError as exc:
                if self.strict:
                    raise
                report.record(
                    "extrapolation",
                    "analytic_extrapolator",
                    f"clustered scalability fit degenerate "
                    f"({type(exc).__name__}: {exc}); falling back to the "
                    "analytic speedup baseline",
                    reason=type(exc).__name__,
                )
                logger.warning(
                    "extrapolation level degenerate (%s); using analytic "
                    "fallback",
                    exc,
                )
                extrapolator = AnalyticSpeedupExtrapolator(effective).fit(
                    S_train
                )
                self.used_analytic_fallback_ = True
            self.extrapolator_ = extrapolator
        else:
            if large_train is None:
                raise ConfigurationError(
                    "transfer mode requires large_train data."
                )
            assert self.large_scales is not None
            large_train, lt_scrubbed = drop_invalid_rows(large_train)
            if lt_scrubbed:
                if self.strict:
                    raise DataValidationError(
                        f"large_train contains invalid rows: {lt_scrubbed} "
                        "(strict mode)."
                    )
                report.record(
                    "sanitize",
                    "dropped_invalid_rows",
                    f"dropped {sum(lt_scrubbed.values())} non-finite rows "
                    "from large_train",
                    **lt_scrubbed,
                )
            lt_small = large_train.at_scales(effective)
            cfg_l, S_l = lt_small.runtime_matrix(effective)
            lt_large = large_train.at_scales(self.large_scales)
            cfg_y, Y_l = lt_large.runtime_matrix(self.large_scales)
            # Align configurations present on both sides.
            rows_l = {tuple(r): i for i, r in enumerate(map(tuple, cfg_l))}
            pairs = [
                (rows_l[tuple(r)], j)
                for j, r in enumerate(map(tuple, cfg_y))
                if tuple(r) in rows_l
            ]
            if not pairs:
                raise FitDegenerateError(
                    "No configuration in large_train has runs at every "
                    "small and large scale."
                )
            i_idx = [i for i, _ in pairs]
            j_idx = [j for _, j in pairs]
            try:
                self.extrapolator_ = TransferExtrapolator(
                    small_scales=effective,
                    large_scales=self.large_scales,
                    n_clusters=self.n_clusters,
                    random_state=self.random_state,
                ).fit(S_l[i_idx], Y_l[j_idx])
            except ReproError as exc:
                if self.strict:
                    raise
                report.record(
                    "extrapolation",
                    "analytic_extrapolator",
                    f"transfer fit degenerate ({type(exc).__name__}: {exc}); "
                    "falling back to the analytic speedup baseline",
                    reason=type(exc).__name__,
                )
                self.extrapolator_ = AnalyticSpeedupExtrapolator(
                    effective
                ).fit(S_train)
                self.used_analytic_fallback_ = True
        if report.degraded:
            logger.info("%s", report.summary())
        return self

    def _warm_models(
        self,
        warm_start_from: "TwoLevelModel | dict | None",
        report: FitReport,
    ) -> dict | None:
        """Per-scale models safe to reuse from a previous fit: those
        whose scale's data fingerprint matches the current one and that
        had a dedicated (non-pooled) model.  Returns ``None`` when
        nothing is reusable."""
        if warm_start_from is None:
            return None
        if isinstance(warm_start_from, TwoLevelModel):
            for name in (
                "mode", "interp_factory", "log_target", "min_scale_samples",
                "strict", "random_state",
            ):
                if getattr(warm_start_from, name) != getattr(self, name):
                    raise ConfigurationError(
                        f"warm_start_from model differs in {name!r}; warm "
                        "starts require an identically configured model."
                    )
            state = warm_start_from.get_fitted_state()
        elif isinstance(warm_start_from, dict):
            state = warm_start_from
        else:
            raise ConfigurationError(
                "warm_start_from must be a fitted TwoLevelModel or a "
                "get_fitted_state() dict."
            )
        prev_fps = state.get("scale_data_fingerprints_") or {}
        prev_interp = state.get("interpolator_")
        prev_models = getattr(prev_interp, "models_", None) or {}
        # No param-name/app check needed: the fingerprints hash app name
        # and param names too, so a match implies an identical schema.
        if not prev_fps or not prev_models:
            report.record(
                "interpolation",
                "warm_start_unusable",
                "warm-start state carries no per-scale fingerprints or "
                "fitted models; performing a cold fit",
                degrades=False,
            )
            return None
        warm = {
            s: prev_models[s]
            for s, fp in self.scale_data_fingerprints_.items()
            if prev_fps.get(s) == fp and s in prev_models
        }
        return warm or None

    def _check_fitted(self) -> None:
        if not hasattr(self, "extrapolator_"):
            raise NotFittedError("TwoLevelModel is not fitted.")

    # -- persistence hooks -------------------------------------------------

    #: Constructor arguments, in signature order (see :meth:`get_params`).
    _INIT_PARAMS = (
        "small_scales", "mode", "large_scales", "interp_factory",
        "log_target", "basis", "n_clusters", "max_terms", "selection",
        "refit", "fit_curves_on", "strict", "min_scale_samples",
        "random_state",
    )

    #: Attributes :meth:`fit` sets (the model's entire learned state).
    _FITTED_ATTRS = (
        "fit_report_", "used_analytic_fallback_", "effective_small_scales_",
        "scale_data_fingerprints_", "interpolator_", "train_configs_",
        "extrapolator_",
    )

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has completed."""
        return hasattr(self, "extrapolator_")

    def get_params(self) -> dict:
        """Constructor arguments, suitable for ``TwoLevelModel(**params)``."""
        return {name: getattr(self, name) for name in self._INIT_PARAMS}

    def get_fitted_state(self) -> dict:
        """Everything :meth:`fit` learned, as a plain dict.

        Together with :meth:`get_params` this is the model's complete
        serializable identity: ``TwoLevelModel(**params)
        .set_fitted_state(state)`` reproduces predictions bit-exactly.
        Used by :mod:`repro.serve.artifacts` for versioned persistence.
        """
        self._check_fitted()
        return {
            name: getattr(self, name)
            for name in self._FITTED_ATTRS
            if hasattr(self, name)
        }

    def set_fitted_state(self, state: dict) -> "TwoLevelModel":
        """Restore a state captured by :meth:`get_fitted_state`."""
        missing = [
            name
            for name in ("extrapolator_", "interpolator_", "fit_report_")
            if name not in state
        ]
        if missing:
            raise ConfigurationError(
                f"Fitted state is missing attributes {missing}."
            )
        unknown = sorted(set(state) - set(self._FITTED_ATTRS))
        if unknown:
            raise ConfigurationError(
                f"Fitted state has unknown attributes {unknown}."
            )
        for name, value in state.items():
            setattr(self, name, value)
        return self

    @property
    def fit_report(self) -> FitReport:
        """Every fallback taken while fitting (and why) — empty when the
        fit was clean.  See :class:`~repro.robustness.report.FitReport`."""
        if not hasattr(self, "fit_report_"):
            raise NotFittedError("TwoLevelModel is not fitted.")
        return self.fit_report_

    # -- prediction --------------------------------------------------------

    def predict_small_matrix(self, X: np.ndarray) -> np.ndarray:
        """Interpolation-level predictions, shape ``(n, n_small)``."""
        self._check_fitted()
        return self.interpolator_.predict_matrix(X)

    def predict(self, X: np.ndarray, scales: Sequence[int]) -> np.ndarray:
        """Runtime predictions at the given scales, shape ``(n,
        len(scales))``.

        Scales that are part of ``small_scales`` are answered by the
        interpolation level directly; all others go through the
        extrapolation level.
        """
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ConfigurationError("X must be 2-D (configs x params).")
        interp_scales = self._interp_scales()
        scales = [int(s) for s in scales]
        out = np.empty((X.shape[0], len(scales)))

        extrap_cols = [
            j for j, s in enumerate(scales) if s not in interp_scales
        ]
        if extrap_cols:
            targets = [scales[j] for j in extrap_cols]
            direct = self.mode == "basis" or self.used_analytic_fallback_
            if not direct:
                assert self.large_scales is not None
                unknown = set(targets) - set(self.large_scales)
                if unknown:
                    raise ExtrapolationError(
                        f"Transfer mode can only predict its fitted large "
                        f"scales {self.large_scales}; got {sorted(unknown)}."
                    )
            S = self.predict_small_matrix(X)
            if direct:
                preds = self.extrapolator_.predict(S, targets)
            else:
                all_preds = self.extrapolator_.predict(S)
                col_of = {s: k for k, s in enumerate(self.large_scales)}
                preds = all_preds[:, [col_of[s] for s in targets]]
            for k, j in enumerate(extrap_cols):
                out[:, j] = preds[:, k]
        for j, s in enumerate(scales):
            if s in interp_scales:
                out[:, j] = self.interpolator_.predict_scale(X, s)
        return out

    def _interp_scales(self) -> tuple[int, ...]:
        """Scales the interpolation level answers directly (the
        effective small scales after any degradation)."""
        return getattr(self, "effective_small_scales_", self.small_scales)

    def pack(self):
        """Export the fitted pipeline to a
        :class:`~repro.core.packed_pipeline.PackedPipeline` whose
        ``predict`` is pure numpy and bit-identical to :meth:`predict`.

        Raises :class:`ConfigurationError` when the model is unfitted
        or its interpolation learners are not packable random forests.
        """
        from .packed_pipeline import PackedPipeline

        return PackedPipeline.from_model(self)

    def predict_speedup(
        self, X: np.ndarray, scales: Sequence[int], base_scale: int | None = None
    ) -> np.ndarray:
        """Predicted speedup ``t(base) / t(p)`` at each scale.

        ``base_scale`` defaults to the smallest fitted small scale.
        """
        self._check_fitted()
        base = (
            int(base_scale)
            if base_scale is not None
            else self._interp_scales()[0]
        )
        t_base = self.predict(X, [base])[:, 0]
        t = self.predict(X, scales)
        return t_base[:, None] / t

    def predict_efficiency(
        self, X: np.ndarray, scales: Sequence[int], base_scale: int | None = None
    ) -> np.ndarray:
        """Predicted parallel efficiency ``speedup(p) * base / p``."""
        base = (
            int(base_scale)
            if base_scale is not None
            else self._interp_scales()[0]
        )
        speedup = self.predict_speedup(X, scales, base_scale=base)
        ratio = np.asarray([int(s) for s in scales], dtype=np.float64) / base
        return speedup / ratio[None, :]

    def recommend_scale(
        self,
        x: np.ndarray,
        candidate_scales: Sequence[int],
        efficiency_floor: float = 0.5,
        base_scale: int | None = None,
    ) -> int:
        """Largest candidate scale whose predicted efficiency stays
        above ``efficiency_floor`` (the capacity-planning question).

        Falls back to the smallest candidate when even it violates the
        floor.
        """
        if not 0.0 < efficiency_floor <= 1.0:
            raise ConfigurationError("efficiency_floor must be in (0, 1].")
        candidates = sorted(int(s) for s in candidate_scales)
        if not candidates:
            raise ConfigurationError("candidate_scales must be non-empty.")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        eff = self.predict_efficiency(x, candidates, base_scale=base_scale)[0]
        ok = [s for s, e in zip(candidates, eff) if e >= efficiency_floor]
        return max(ok) if ok else candidates[0]

    def predict_dataset(self, dataset: ExecutionDataset) -> np.ndarray:
        """Per-row predictions for an evaluation dataset (each row has
        its own nprocs)."""
        self._check_fitted()
        out = np.empty(len(dataset))
        for s in np.unique(dataset.nprocs):
            mask = dataset.nprocs == s
            out[mask] = self.predict(dataset.X[mask], [int(s)])[:, 0]
        return out

    def evaluate_split(self, split: ScaleSplit) -> dict[int, float]:
        """Per-large-scale MAPE on a :class:`ScaleSplit`'s test side."""
        from ..ml.metrics import mean_absolute_percentage_error

        self._check_fitted()
        result: dict[int, float] = {}
        for s in split.large_scales:
            sub = split.test.at_scale(s)
            if len(sub) == 0:
                continue
            pred = self.predict(sub.X, [s])[:, 0]
            result[s] = mean_absolute_percentage_error(sub.runtime, pred)
        return result

    # -- diagnostics ------------------------------------------------------------

    def interpolation_cv_mape(self, n_splits: int = 5) -> dict[int, float]:
        """Cross-validated per-scale MAPE of the interpolation level."""
        self._check_fitted()
        return self.interpolator_.cv_mape(n_splits=n_splits)

    def support_names(self) -> dict[int, tuple[str, ...]]:
        """Basis terms selected per cluster (basis mode only; the
        analytic fallback reports a single pseudo-cluster ``amdahl``)."""
        self._check_fitted()
        if self.used_analytic_fallback_:
            return self.extrapolator_.support_names()
        if self.mode != "basis":
            raise RuntimeError("support_names is only defined in basis mode.")
        return self.extrapolator_.support_names()

    @property
    def cluster_sizes_(self) -> np.ndarray:
        """Number of training configurations per cluster."""
        self._check_fitted()
        if self.used_analytic_fallback_:
            return np.array([self.train_configs_.shape[0]])
        if self.mode == "basis":
            return np.bincount(
                self.extrapolator_.labels_, minlength=self.extrapolator_.n_clusters_
            )
        raise RuntimeError("cluster_sizes_ is only defined in basis mode.")

    def parameter_importance(
        self, n_repeats: int = 5, random_state: int | None = 0
    ) -> dict[int, dict[str, float]]:
        """Permutation importance of each input parameter, per scale.

        Answers "which application parameters drive runtime at scale
        p?" using the fitted interpolation models and their training
        data.  Returns ``{scale: {param_name: importance}}`` with
        importances normalized to sum to 1 per scale (zero map if a
        scale's model explains nothing).
        """
        from ..ml.inspection import permutation_importance

        self._check_fitted()
        interp = self.interpolator_
        out: dict[int, dict[str, float]] = {}
        for scale in interp.scales_:
            if scale not in interp.models_:
                continue  # pooled-fallback scale has no dedicated model
            sub = interp._train.at_scale(scale)
            y = np.log(sub.runtime) if interp.log_target else sub.runtime
            imp = permutation_importance(
                interp.models_[scale],
                sub.X,
                y,
                n_repeats=n_repeats,
                feature_names=interp.param_names_,
                random_state=random_state,
            )
            vals = np.maximum(imp.importances_mean, 0.0)
            total = vals.sum()
            if total > 0:
                vals = vals / total
            out[scale] = dict(zip(interp.param_names_, vals.tolist()))
        return out

    def report(self, cv_splits: int = 3) -> str:
        """Human-readable diagnostic summary of the fitted model.

        Covers both levels: per-scale interpolation CV error, cluster
        sizes, and the scalability terms each cluster selected.
        """
        self._check_fitted()
        lines = [
            f"TwoLevelModel ({self.mode} mode)",
            f"  small scales : {list(self._interp_scales())}",
            f"  training cfgs: {self.train_configs_.shape[0]}",
            "  interpolation level (per-scale CV MAPE):",
        ]
        for scale, err in self.interpolation_cv_mape(n_splits=cv_splits).items():
            lines.append(f"    p={scale:<6d} {100 * err:5.1f}%")
        if self.used_analytic_fallback_:
            lines.append(
                "  extrapolation level: analytic speedup fallback (Amdahl)"
            )
        elif self.mode == "basis":
            lines.append("  extrapolation level (clustered scalability models):")
            sizes = self.cluster_sizes_
            for cluster, terms in self.support_names().items():
                lines.append(
                    f"    cluster {cluster} ({sizes[cluster]:>3d} cfgs): "
                    f"t(p) ~ {' + '.join(terms) if terms else '(none)'}"
                )
        else:
            assert self.large_scales is not None
            lines.append(
                f"  extrapolation level: transfer map onto scales "
                f"{list(self.large_scales)} "
                f"({self.extrapolator_.n_clusters_} cluster(s))"
            )
        if self.fit_report_.degraded:
            lines.append("  " + self.fit_report_.summary().replace("\n", "\n  "))
        return "\n".join(lines)
