"""The fitted two-level pipeline exported to plain contiguous ndarrays.

:class:`PackedPipeline` is the serving-side twin of
:class:`~repro.core.two_level.TwoLevelModel`.  ``from_model`` walks a
fitted model once and flattens every per-scale random forest (dedicated
interpolators *and* the pooled degraded fallback) into
:class:`~repro.ml.tree.packed.PackedForest` arenas; ``predict(X,
scales)`` then answers exactly like ``TwoLevelModel.predict`` — same
dispatch between interpolated and extrapolated scales, same fallback
modes — but in pure numpy with a handful of allocations per call.

Bit-identity contract
---------------------
``PackedPipeline.predict`` must return the *same floats* as the object
path for every fitted-model shape (basis/transfer mode, pooled
degraded fallback, analytic Amdahl fallback, warm-started fits).  The
guarantees, layer by layer:

* interpolation — the packed forests reduce per-tree leaf values in the
  object path's accumulation order (see ``ml.tree.packed``), then apply
  the identical ``exp`` / ``maximum`` post-transform;
* clustered extrapolation — the packed path calls the *fitted
  extrapolator's own* ``assign_clusters`` and ``_predict_rows`` (the
  per-config NNLS refit loop), only caching the target design matrix,
  which is deterministic in the targets;
* transfer mode and the analytic Amdahl fallback delegate to the fitted
  extrapolator's ``predict`` wholesale (per-row ``minimize_scalar``
  cannot be vectorized profitably, and transfer predicts all fitted
  large scales at once anyway).

Only forests are stored in the artifact sidecar (they are ~all of the
bytes); the extrapolator rides along in the regular pickled payload and
is re-attached at load time by :meth:`PackedPipeline.from_arrays`.
"""

from __future__ import annotations

import io
import struct
import zipfile
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from ..errors import (
    ConfigurationError,
    DataValidationError,
    ExtrapolationError,
)
from ..ml.tree.packed import PackedForest, ordered_sum_axis0
from ..ml.tree.random_forest import RandomForestRegressor
from .extrapolation import ClusteredScalingExtrapolator

__all__ = [
    "PackedPipeline",
    "save_npz_bytes",
    "load_npz_arrays",
]

#: Version tag of the sidecar array layout (independent of the artifact
#: manifest schema version).
PACKED_FORMAT = 1

#: Design matrices are tiny; keep a bounded handful per target tuple.
_DESIGN_CACHE_MAX = 32


def _require_forest(model: object, where: str) -> RandomForestRegressor:
    if not isinstance(model, RandomForestRegressor) or not getattr(
        model, "estimators_", None
    ):
        raise ConfigurationError(
            "Packed pipelines require fitted random-forest interpolators; "
            f"{where} uses {type(model).__name__}."
        )
    return model


class PackedPipeline:
    """A fitted two-level model flattened for wire-speed prediction."""

    def __init__(
        self,
        *,
        scales: Sequence[int],
        dedicated_scales: Sequence[int],
        pooled_scales: Sequence[int],
        arena: PackedForest | None,
        forest_tree_starts: np.ndarray | None,
        pooled: PackedForest | None,
        log_target: bool,
        n_features: int,
        extrapolator: object,
        direct: bool,
        large_scales: tuple[int, ...] | None,
    ) -> None:
        self.scales = tuple(int(s) for s in scales)
        self.dedicated_scales = tuple(int(s) for s in dedicated_scales)
        self.pooled_scales = tuple(int(s) for s in pooled_scales)
        self.arena = arena
        self.pooled = pooled
        self.log_target = bool(log_target)
        self.n_features = int(n_features)
        self.extrapolator = extrapolator
        self.direct = bool(direct)
        self.large_scales = large_scales

        if set(self.dedicated_scales) | set(self.pooled_scales) != set(
            self.scales
        ):
            raise ConfigurationError(
                "Packed pipeline scales are inconsistent: "
                f"{self.dedicated_scales} + {self.pooled_scales} "
                f"!= {self.scales}."
            )
        self._interp_set = frozenset(self.scales)
        self._col_of = {s: k for k, s in enumerate(self.scales)}
        if self.dedicated_scales:
            if arena is None or forest_tree_starts is None:
                raise ConfigurationError(
                    "Dedicated scales present but no packed arena given."
                )
            starts = np.ascontiguousarray(forest_tree_starts, dtype=np.intp)
            if (
                starts.shape != (len(self.dedicated_scales) + 1,)
                or starts[0] != 0
                or starts[-1] != arena.n_trees
                or np.any(np.diff(starts) < 1)
            ):
                raise DataValidationError(
                    "forest_tree_starts must partition the arena's trees."
                )
            self.forest_tree_starts = starts
            self._forest_range = {
                s: (int(starts[i]), int(starts[i + 1]))
                for i, s in enumerate(self.dedicated_scales)
            }
            diffs = np.diff(starts)
            # Equal-sized forests allow one fused (reshape + sum)
            # reduction over the whole arena instead of per-segment
            # sums; verified bit-identical to the per-segment loop.
            self._uniform_trees = (
                int(diffs[0]) if bool((diffs == diffs[0]).all()) else 0
            )
        else:
            self.forest_tree_starts = np.zeros(1, dtype=np.intp)
            self._forest_range = {}
            self._uniform_trees = 0
        if self.pooled_scales and pooled is None:
            raise ConfigurationError(
                "Pooled scales present but no packed pooled forest given."
            )
        self._lean = isinstance(extrapolator, ClusteredScalingExtrapolator)
        # Per-target-tuple cache of (design matrix, per-cluster refit
        # blocks); both are deterministic in the targets + fitted state.
        self._design_cache: dict[tuple[int, ...], tuple[np.ndarray, dict]] = {}
        self._subset_cache: dict[tuple[int, ...], np.ndarray | None] = {}
        if self._lean and extrapolator.kmeans_ is not None:
            centers = extrapolator.kmeans_.cluster_centers_
            self._centers = centers
            # Same floats pairwise_distances recomputes on every call.
            self._center_sq = np.sum(centers * centers, axis=1)
        else:
            self._centers = None

    # -- construction ------------------------------------------------------

    @classmethod
    def from_model(cls, model: object) -> "PackedPipeline":
        """Flatten a fitted :class:`TwoLevelModel`.

        Raises :class:`ConfigurationError` for unfitted models or
        interpolation learners that are not this package's random
        forest (kernel-ridge/GBDT interpolators stay on the object
        path).
        """
        from .two_level import TwoLevelModel

        if not isinstance(model, TwoLevelModel):
            raise ConfigurationError(
                f"from_model expects a TwoLevelModel; got "
                f"{type(model).__name__}."
            )
        if not model.is_fitted:
            raise ConfigurationError(
                "Cannot pack an unfitted TwoLevelModel."
            )
        interp = model.interpolator_
        dedicated, pooled_model, pooled_scales = interp.models_for_packing()
        scales = tuple(int(s) for s in interp.scales_)
        if tuple(model._interp_scales()) != scales:
            raise ConfigurationError(
                "Model and interpolator disagree on the effective small "
                f"scales ({model._interp_scales()} vs {scales})."
            )

        arena = None
        starts = None
        n_features = None
        if dedicated:
            trees = []
            starts = np.zeros(len(dedicated) + 1, dtype=np.intp)
            for i, (scale, forest) in enumerate(dedicated.items()):
                forest = _require_forest(forest, f"scale {scale}")
                trees.extend(est.tree_ for est in forest.estimators_)
                starts[i + 1] = len(trees)
                if n_features is None:
                    n_features = int(forest.n_features_in_)
                elif n_features != int(forest.n_features_in_):
                    raise ConfigurationError(
                        "Dedicated forests disagree on n_features."
                    )
            arena = PackedForest.from_trees(trees, n_features=n_features)
        packed_pooled = None
        if pooled_scales:
            pooled_forest = _require_forest(pooled_model, "the pooled fallback")
            packed_pooled = PackedForest.from_forest(pooled_forest)
            pooled_n = int(pooled_forest.n_features_in_) - 1
            if n_features is None:
                n_features = pooled_n
            elif n_features != pooled_n:
                raise ConfigurationError(
                    "Pooled forest n_features disagrees with dedicated "
                    "forests."
                )
        if n_features is None:
            raise ConfigurationError(
                "Model has no fitted interpolation forests to pack."
            )

        extrapolator = model.extrapolator_
        direct = model.mode == "basis" or model.used_analytic_fallback_
        if isinstance(extrapolator, ClusteredScalingExtrapolator) and len(
            extrapolator.small_scales
        ) != len(scales):
            raise ConfigurationError(
                "Extrapolator small-scale count disagrees with the "
                "interpolator's fitted scales."
            )
        large_scales = (
            tuple(int(s) for s in model.large_scales)
            if not direct and model.large_scales is not None
            else None
        )
        return cls(
            scales=scales,
            dedicated_scales=tuple(dedicated),
            pooled_scales=pooled_scales,
            arena=arena,
            forest_tree_starts=starts,
            pooled=packed_pooled,
            log_target=bool(interp.log_target),
            n_features=n_features,
            extrapolator=extrapolator,
            direct=direct,
            large_scales=large_scales,
        )

    # -- prediction --------------------------------------------------------

    def _validate_X(self, X: object) -> np.ndarray:
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ConfigurationError("X must be 2-D (configs x params).")
        if X.shape[1] != self.n_features:
            raise DataValidationError(
                f"Expected {self.n_features} features, got {X.shape[1]}."
            )
        if not np.isfinite(X).all():
            raise DataValidationError("X contains NaN or infinity.")
        return X

    def _transform(self, pred: np.ndarray) -> np.ndarray:
        return np.exp(pred) if self.log_target else np.maximum(pred, 1e-12)

    def _subset_trees(self, dedicated: Sequence[int]) -> np.ndarray | None:
        """Tree-index array selecting the given dedicated forests from
        the arena (``None`` means all trees); cached per scale tuple."""
        key = tuple(dedicated)
        if key not in self._subset_cache:
            if len(dedicated) == len(self.dedicated_scales):
                self._subset_cache[key] = None
            else:
                self._subset_cache[key] = np.concatenate(
                    [
                        np.arange(*self._forest_range[s], dtype=np.intp)
                        for s in dedicated
                    ]
                )
        return self._subset_cache[key]

    def _raw_interp_means(
        self, X: np.ndarray, need: Sequence[int]
    ) -> dict[int, np.ndarray]:
        """Pre-transform forest means for the requested scales.

        ``X`` must be validated.  Dedicated scales share one arena
        traversal; pooled scales each traverse the pooled forest with
        ``log2(p)`` appended — every reduction keeps the object path's
        per-tree accumulation order (:func:`ordered_sum_axis0`).
        """
        cols: dict[int, np.ndarray] = {}
        dedicated = [s for s in need if s in self._forest_range]
        if dedicated:
            if len(dedicated) == 1:
                # Single-scale queries (the serving hot path) address
                # their forest as a contiguous arena block directly.
                values = self.arena.leaf_values(
                    X, tree_range=self._forest_range[dedicated[0]]
                )
            else:
                values = self.arena.leaf_values(
                    X, self._subset_trees(dedicated)
                )
            # Hoist ordered_sum_axis0's single-column padding to one
            # shared concatenate: column 0 of each padded row-slice
            # still accumulates sequentially in tree order.
            one = values.shape[1] == 1 and values.shape[0] > 0
            if one:
                values = np.concatenate([values, values], axis=1)
            pos = 0
            for s in dedicated:
                t0, t1 = self._forest_range[s]
                cnt = t1 - t0
                ssum = values[pos : pos + cnt].sum(axis=0)
                pos += cnt
                cols[s] = (ssum[:1] if one else ssum) / cnt
        for s in need:
            if s in cols or s not in self.pooled_scales:
                continue
            Xp = np.column_stack([X, np.full(X.shape[0], np.log2(s))])
            values = self.pooled.leaf_values(Xp)
            cols[s] = ordered_sum_axis0(values) / values.shape[0]
        return cols

    def predict_small_matrix(self, X: np.ndarray) -> np.ndarray:
        """Interpolation-level predictions, shape ``(n, n_small)`` —
        bit-identical to ``TwoLevelModel.predict_small_matrix``."""
        X = self._validate_X(X)
        return self._small_matrix(X)

    def _small_matrix(self, X: np.ndarray) -> np.ndarray:
        n = X.shape[0]
        k = len(self.scales)
        cnt = self._uniform_trees
        if cnt and self.dedicated_scales == self.scales and n:
            # Hot path: every scale has a dedicated equal-sized forest,
            # so one reshaped reduction yields all per-forest sums in
            # the same row-sequential accumulation order as the
            # per-segment loop (bit-identical, verified empirically).
            values = self.arena.leaf_values(X)
            if n == 1:
                values = np.concatenate([values, values], axis=1)
                sums = values.reshape(k, cnt, 2).sum(axis=1)
                sums = sums[:, 0].reshape(1, k)
            else:
                sums = values.reshape(k, cnt, n).sum(axis=1).T
            out = np.empty((n, k))
            np.divide(sums, cnt, out=out)
            return self._transform(out)
        cols = self._raw_interp_means(X, self.scales)
        out = np.empty((n, k))
        for j, s in enumerate(self.scales):
            out[:, j] = cols[s]
        # One elementwise transform over the matrix equals the object
        # path's per-column exp/maximum exactly.
        return self._transform(out)

    def _design_for(
        self, targets: Sequence[int]
    ) -> tuple[np.ndarray, dict]:
        key = tuple(targets)
        entry = self._design_cache.get(key)
        if entry is None:
            if any(p < 1 for p in key):
                raise ConfigurationError("Target scales must be >= 1.")
            design = self.extrapolator.basis.design_matrix(list(key))
            entry = (design, {})
            if len(self._design_cache) >= _DESIGN_CACHE_MAX:
                self._design_cache.pop(next(iter(self._design_cache)))
            self._design_cache[key] = entry
        return entry

    def _assign_lean(self, S: np.ndarray) -> np.ndarray:
        """Cluster labels for curve shapes — the floats
        ``extrapolator.assign_clusters`` computes, minus the per-call
        validation and center-norm recomputation.  Replicates
        ``pairwise_distances``'s expansion term by term (the cached
        center norms are the same deterministic reduction) so the
        argmin sees identical distances."""
        if self._centers is None:
            return np.zeros(S.shape[0], dtype=np.int64)
        # _log_shape, inlined: same checks, same floats, one less temp.
        if not np.isfinite(S).all() or (S <= 0).any():
            raise DataValidationError(
                "Small-scale runtimes must be finite and positive."
            )
        Z = np.log(S)
        Z -= Z.mean(axis=1, keepdims=True)
        sq = (
            np.sum(Z * Z, axis=1)[:, None]
            - 2.0 * (Z @ self._centers.T)
            + self._center_sq[None, :]
        )
        np.clip(sq, 0.0, None, out=sq)
        return np.argmin(np.sqrt(sq), axis=1)

    def _extrapolate(
        self, S: np.ndarray, targets: list[int]
    ) -> np.ndarray:
        ex = self.extrapolator
        if not self.direct:
            assert self.large_scales is not None
            unknown = set(targets) - set(self.large_scales)
            if unknown:
                raise ExtrapolationError(
                    f"Transfer mode can only predict its fitted large "
                    f"scales {self.large_scales}; got {sorted(unknown)}."
                )
            all_preds = ex.predict(S)
            col_of = {s: k for k, s in enumerate(self.large_scales)}
            return all_preds[:, [col_of[s] for s in targets]]
        if self._lean:
            design_large, blocks = self._design_for(targets)
            labels = self._assign_lean(S)
            return ex._predict_rows(S, design_large, labels, blocks)
        # Analytic Amdahl fallback (or any other extrapolator): delegate.
        return ex.predict(S, targets)

    def predict(self, X: np.ndarray, scales: Sequence[int]) -> np.ndarray:
        """Runtime predictions, shape ``(n, len(scales))`` —
        bit-identical to ``TwoLevelModel.predict`` on the same fitted
        model, including n=0 inputs and every fallback mode."""
        X = self._validate_X(X)
        scales = [int(s) for s in scales]
        out = np.empty((X.shape[0], len(scales)))
        extrap_cols = [
            j for j, s in enumerate(scales) if s not in self._interp_set
        ]
        if extrap_cols:
            targets = [scales[j] for j in extrap_cols]
            S = self._small_matrix(X)
            preds = self._extrapolate(S, targets)
            for k, j in enumerate(extrap_cols):
                out[:, j] = preds[:, k]
            cols = {
                s: S[:, self._col_of[s]] for s in scales if s in self._col_of
            }
        else:
            need = [s for s in dict.fromkeys(scales)]
            cols = {
                s: self._transform(col)
                for s, col in self._raw_interp_means(X, need).items()
            }
        for j, s in enumerate(scales):
            if s in self._interp_set:
                out[:, j] = cols[s]
        return out

    # -- array round-trip (artifact sidecar) -------------------------------

    def to_arrays(self) -> dict[str, np.ndarray]:
        """The forest arrays as a flat ``{name: ndarray}`` dict (the
        ``.npz`` sidecar payload).  Extrapolator state is *not* here —
        it lives in the artifact's pickled payload."""
        arrays: dict[str, np.ndarray] = {
            "packed_format": np.asarray(PACKED_FORMAT, dtype=np.int64),
            "scales": np.asarray(self.scales, dtype=np.int64),
            "dedicated_scales": np.asarray(
                self.dedicated_scales, dtype=np.int64
            ),
            "pooled_scales": np.asarray(self.pooled_scales, dtype=np.int64),
            "forest_tree_starts": np.asarray(
                self.forest_tree_starts, dtype=np.int64
            ),
            "log_target": np.asarray(int(self.log_target), dtype=np.int64),
            "n_features": np.asarray(self.n_features, dtype=np.int64),
        }
        if self.arena is not None:
            arrays.update(self.arena.to_arrays("arena_"))
        if self.pooled is not None:
            arrays.update(self.pooled.to_arrays("pooled_"))
        return arrays

    @classmethod
    def from_arrays(
        cls, arrays: Mapping[str, np.ndarray], model: object
    ) -> "PackedPipeline":
        """Rebuild from sidecar arrays, re-attaching the extrapolation
        level of the unpickled ``model``.  Cross-checks the sidecar
        against the model so a mismatched pairing fails loudly instead
        of serving stale forests."""
        from .two_level import TwoLevelModel

        if not isinstance(model, TwoLevelModel) or not model.is_fitted:
            raise ConfigurationError(
                "from_arrays needs the fitted TwoLevelModel the sidecar "
                "was packed from."
            )
        fmt = int(np.asarray(arrays.get("packed_format", -1)))
        if fmt != PACKED_FORMAT:
            raise DataValidationError(
                f"Unsupported packed sidecar format {fmt}; "
                f"expected {PACKED_FORMAT}."
            )
        scales = tuple(int(s) for s in np.asarray(arrays["scales"]))
        dedicated = tuple(
            int(s) for s in np.asarray(arrays["dedicated_scales"])
        )
        pooled_scales = tuple(
            int(s) for s in np.asarray(arrays["pooled_scales"])
        )
        if tuple(model._interp_scales()) != scales:
            raise DataValidationError(
                "Packed sidecar scales do not match the fitted model "
                f"({scales} vs {tuple(model._interp_scales())})."
            )
        model_pooled = tuple(
            int(s)
            for s in model.interpolator_.scales_
            if s not in model.interpolator_.models_
        )
        if pooled_scales != model_pooled:
            raise DataValidationError(
                "Packed sidecar dedicated/pooled split does not match "
                f"the fitted model (pooled {pooled_scales} vs "
                f"{model_pooled})."
            )
        arena = (
            PackedForest.from_arrays(arrays, "arena_") if dedicated else None
        )
        pooled = (
            PackedForest.from_arrays(arrays, "pooled_")
            if pooled_scales
            else None
        )
        extrapolator = model.extrapolator_
        direct = model.mode == "basis" or model.used_analytic_fallback_
        large_scales = (
            tuple(int(s) for s in model.large_scales)
            if not direct and model.large_scales is not None
            else None
        )
        return cls(
            scales=scales,
            dedicated_scales=dedicated,
            pooled_scales=pooled_scales,
            arena=arena,
            forest_tree_starts=np.asarray(arrays["forest_tree_starts"]),
            pooled=pooled,
            log_target=bool(int(np.asarray(arrays["log_target"]))),
            n_features=int(np.asarray(arrays["n_features"])),
            extrapolator=extrapolator,
            direct=direct,
            large_scales=large_scales,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        arena = self.arena.n_trees if self.arena is not None else 0
        return (
            f"PackedPipeline(scales={self.scales}, arena_trees={arena}, "
            f"pooled={self.pooled is not None}, direct={self.direct})"
        )


# -- .npz sidecar I/O ------------------------------------------------------


def save_npz_bytes(
    arrays: Mapping[str, np.ndarray], *, compress: bool = False
) -> bytes:
    """Serialize arrays to ``.npz`` bytes (callers hash + write them
    atomically).  Uncompressed (the default) keeps every member
    ZIP_STORED so :func:`load_npz_arrays` can mmap it zero-copy."""
    buf = io.BytesIO()
    writer = np.savez_compressed if compress else np.savez
    writer(buf, **dict(arrays))
    return buf.getvalue()


def load_npz_arrays(
    path: str | Path, *, mmap: bool = True
) -> dict[str, np.ndarray]:
    """Load an ``.npz``, memory-mapping each member when possible.

    ``np.load(..., mmap_mode=...)`` refuses npz archives, but members of
    an *uncompressed* archive (``ZIP_STORED``) are verbatim ``.npy``
    bytes at a fixed file offset, so each becomes an ``np.memmap`` view:
    parse the member's local zip header for the data offset, the npy
    header for shape/dtype, and map the rest.  Compressed archives (and
    anything else surprising) fall back to a plain eager ``np.load``.
    """
    path = Path(path)
    if not mmap:
        with np.load(path) as npz:
            return {name: npz[name] for name in npz.files}
    out: dict[str, np.ndarray] = {}
    try:
        with zipfile.ZipFile(path) as zf:
            infos = zf.infolist()
            if any(i.compress_type != zipfile.ZIP_STORED for i in infos):
                raise _FallbackToEager
            with open(path, "rb") as raw:
                for info in infos:
                    with zf.open(info) as member:
                        version = np.lib.format.read_magic(member)
                        if version == (1, 0):
                            shape, fortran, dtype = (
                                np.lib.format.read_array_header_1_0(member)
                            )
                        elif version == (2, 0):
                            shape, fortran, dtype = (
                                np.lib.format.read_array_header_2_0(member)
                            )
                        else:
                            raise _FallbackToEager
                        npy_header_len = member.tell()
                    if dtype.hasobject:
                        raise _FallbackToEager
                    # Local zip header: 30 fixed bytes + name + extra.
                    raw.seek(info.header_offset + 26)
                    name_len, extra_len = struct.unpack("<HH", raw.read(4))
                    offset = (
                        info.header_offset
                        + 30
                        + name_len
                        + extra_len
                        + npy_header_len
                    )
                    name = info.filename.removesuffix(".npy")
                    out[name] = np.memmap(
                        path,
                        dtype=dtype,
                        mode="r",
                        shape=shape,
                        offset=offset,
                        order="F" if fortran else "C",
                    )
        return out
    except _FallbackToEager:
        with np.load(path) as npz:
            return {name: npz[name] for name in npz.files}


class _FallbackToEager(Exception):
    """Internal: archive member cannot be mmap'd; load eagerly."""
