"""Interpolation level of the two-level model.

One random-forest regressor per small scale learns the mapping from
application input parameters to runtime *at that scale*.  Each of these
is an interpolation task — test configurations lie inside the training
parameter ranges — which is the regime where forests excel and the
reason the paper splits the problem this way.

Targets are fitted in log space by default: runtime noise is
multiplicative and runtimes span orders of magnitude across the
parameter space, so log-space residuals are homoscedastic.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..data.dataset import ExecutionDataset
from ..errors import ExtrapolationError, FitDegenerateError, NotFittedError
from ..log import get_logger
from ..ml.base import BaseEstimator
from ..ml.metrics import mean_absolute_percentage_error
from ..ml.model_selection import KFold
from ..ml.tree.random_forest import RandomForestRegressor
from ..robustness.report import FitReport
from ..robustness.sanitize import drop_invalid_rows

logger = get_logger("core.interpolation")

__all__ = [
    "PerScaleInterpolator",
    "default_interpolation_model",
    "kernel_interpolation_model",
    "gbdt_interpolation_model",
    "INTERPOLATION_FACTORIES",
]


def default_interpolation_model(random_state: object = None) -> RandomForestRegressor:
    """The paper's interpolation learner: a random-forest regressor."""
    return RandomForestRegressor(
        n_estimators=100,
        min_samples_leaf=1,
        max_features=1.0,
        random_state=random_state,
    )


def kernel_interpolation_model(random_state: object = None):
    """Extension learner: RBF kernel ridge on log-transformed parameters.

    Runtime responses are smooth and multiplicative in the (log-sampled)
    application parameters, a regime where a kernel smoother needs far
    fewer samples than an axis-aligned forest — the interpolation-learner
    ablation (benchmark Ext. D) quantifies the difference.  All shipped
    applications have strictly positive parameters, which the log
    transform requires.
    """
    from ..ml.kernel import KernelRidge
    from ..ml.preprocessing import LogTransformer, Pipeline

    return Pipeline(
        [("log", LogTransformer()), ("kr", KernelRidge(alpha=1e-2))]
    )


def gbdt_interpolation_model(random_state: object = None):
    """Extension learner: gradient-boosted trees."""
    from ..ml.tree.gradient_boosting import GradientBoostingRegressor

    return GradientBoostingRegressor(
        n_estimators=300,
        learning_rate=0.05,
        max_depth=3,
        random_state=random_state,
    )


#: Named interpolation-learner factories (Ext. D ablation).
INTERPOLATION_FACTORIES = {
    "random-forest": default_interpolation_model,
    "kernel-ridge": kernel_interpolation_model,
    "gbdt": gbdt_interpolation_model,
}


class PerScaleInterpolator:
    """Per-scale performance models t(x, p_i) for each small scale p_i.

    Parameters
    ----------
    model_factory:
        Callable ``(random_state) -> estimator`` creating the per-scale
        learner; defaults to :func:`default_interpolation_model`.
    log_target:
        Fit log(runtime) instead of raw runtime.
    min_scale_samples:
        A scale with fewer training rows than this does not get its own
        model; it is served by the pooled fallback model instead (see
        below), and the degradation is recorded in the fit report.
    random_state:
        Seed; each scale's model gets an independent derived stream.

    Graceful degradation
    --------------------
    Scales whose dedicated fit is impossible (too few samples) or fails
    outright fall back to a single *pooled* model fitted on every
    training row with ``log2(p)`` appended as an extra feature.  Each
    fallback is recorded as a ``pooled_interpolator`` event on the
    :class:`~repro.robustness.report.FitReport` passed to :meth:`fit`.
    """

    def __init__(
        self,
        model_factory: Callable[[object], BaseEstimator] | None = None,
        log_target: bool = True,
        min_scale_samples: int = 2,
        random_state: int | None = 0,
    ) -> None:
        self.model_factory = (
            model_factory if model_factory is not None else default_interpolation_model
        )
        self.log_target = log_target
        self.min_scale_samples = max(int(min_scale_samples), 1)
        self.random_state = random_state

    def fit(
        self,
        train: ExecutionDataset,
        report: FitReport | None = None,
        warm_models: dict[int, BaseEstimator] | None = None,
    ) -> "PerScaleInterpolator":
        """Fit one model per scale present in ``train``.

        Rows with non-finite runtimes or parameters are dropped up
        front; degradations are appended to ``report`` when given.

        ``warm_models`` maps scales to already-fitted per-scale models
        to reuse instead of refitting.  The caller is responsible for
        only offering models whose training data is unchanged (see
        :meth:`repro.core.TwoLevelModel.fit`'s ``warm_start_from``,
        which keys on per-scale data fingerprints).  Reuse preserves
        the RNG seed stream — a reused scale consumes its seed exactly
        as a cold fit would — so a warm fit over unchanged data equals
        the cold fit bit-for-bit.  Scales actually reused are recorded
        on ``warm_reused_scales_``.
        """
        report = report if report is not None else FitReport()
        train, scrubbed = drop_invalid_rows(train)
        if scrubbed:
            report.record(
                "sanitize",
                "dropped_invalid_rows",
                f"interpolation training data: dropped {sum(scrubbed.values())} "
                "non-finite rows",
                **scrubbed,
            )
            logger.warning(
                "dropped non-finite interpolation rows: %s", scrubbed
            )
        if len(train) == 0:
            raise FitDegenerateError(
                "No usable interpolation training rows remain."
            )
        rng = np.random.default_rng(self.random_state)
        self.scales_ = tuple(int(s) for s in train.scales)
        self.param_names_ = train.param_names
        self.models_: dict[int, BaseEstimator] = {}
        self.fallback_scales_: tuple[int, ...] = ()
        self.warm_reused_scales_: tuple[int, ...] = ()
        self._pooled_model: BaseEstimator | None = None
        self._train = train
        fallback: list[int] = []
        reused: list[int] = []
        for scale in self.scales_:
            sub = train.at_scale(scale)
            if len(sub) < self.min_scale_samples:
                report.record(
                    "interpolation",
                    "pooled_interpolator",
                    f"scale {scale} has {len(sub)} sample(s) "
                    f"(< {self.min_scale_samples}); served by pooled model",
                    scale=scale,
                    n_samples=len(sub),
                    reason="too_few_samples",
                )
                fallback.append(scale)
                continue
            # Draw the seed before the warm-reuse branch: a reused scale
            # must consume its seed so later scales see the same stream
            # as in a cold fit.
            seed = int(rng.integers(0, 2**63 - 1))
            if warm_models is not None and scale in warm_models:
                self.models_[scale] = warm_models[scale]
                reused.append(scale)
                continue
            y = np.log(sub.runtime) if self.log_target else sub.runtime
            model = self.model_factory(seed)
            try:
                model.fit(sub.X, y)
            except Exception as exc:
                report.record(
                    "interpolation",
                    "pooled_interpolator",
                    f"per-scale fit failed at scale {scale} "
                    f"({type(exc).__name__}: {exc}); served by pooled model",
                    scale=scale,
                    n_samples=len(sub),
                    reason="fit_failed",
                )
                logger.warning("per-scale fit failed at p=%d: %s", scale, exc)
                fallback.append(scale)
                continue
            self.models_[scale] = model
        self.warm_reused_scales_ = tuple(reused)
        if fallback:
            self.fallback_scales_ = tuple(fallback)
            self._fit_pooled(train, seed=int(rng.integers(0, 2**63 - 1)))
            logger.info(
                "pooled fallback interpolator covers scales %s", fallback
            )
        return self

    def _fit_pooled(self, train: ExecutionDataset, seed: int) -> None:
        """Fit the pooled fallback model over all rows with log2(p) as an
        extra feature."""
        Xp = np.column_stack([train.X, np.log2(train.nprocs)])
        y = np.log(train.runtime) if self.log_target else train.runtime
        model = self.model_factory(seed)
        try:
            model.fit(Xp, y)
        except Exception as exc:  # no further fallback exists
            raise FitDegenerateError(
                f"Pooled fallback interpolator failed to fit: {exc}"
            ) from exc
        self._pooled_model = model

    def _check_fitted(self) -> None:
        if not hasattr(self, "models_"):
            raise NotFittedError("PerScaleInterpolator is not fitted.")

    def predict_scale(self, X: np.ndarray, scale: int) -> np.ndarray:
        """Runtime predictions at one small scale."""
        self._check_fitted()
        scale = int(scale)
        X = np.asarray(X, dtype=np.float64)
        model = self.models_.get(scale)
        if model is None:
            if scale in self.fallback_scales_ and self._pooled_model is not None:
                Xp = np.column_stack(
                    [X, np.full(X.shape[0], np.log2(scale))]
                )
                pred = self._pooled_model.predict(Xp)
                return (
                    np.exp(pred) if self.log_target else np.maximum(pred, 1e-12)
                )
            raise ExtrapolationError(
                f"No interpolation model for scale {scale}; "
                f"fitted scales: {self.scales_}"
            )
        pred = model.predict(X)
        return np.exp(pred) if self.log_target else np.maximum(pred, 1e-12)

    def models_for_packing(self):
        """Fitted learners in the layout the packed pipeline consumes.

        Returns ``(dedicated, pooled, pooled_scales)``: dedicated models
        keyed by scale in ``scales_`` order, the pooled fallback model
        (or ``None``), and the scales the pooled model serves.  Raises
        :class:`ExtrapolationError` if some scale has neither — such an
        interpolator could not answer ``predict_matrix`` either.
        """
        self._check_fitted()
        dedicated = {
            int(s): self.models_[s] for s in self.scales_ if s in self.models_
        }
        pooled_scales = tuple(
            int(s) for s in self.scales_ if s not in self.models_
        )
        if pooled_scales and self._pooled_model is None:
            raise ExtrapolationError(
                f"No interpolation model for scales {pooled_scales}; "
                f"fitted scales: {self.scales_}"
            )
        return dedicated, self._pooled_model, pooled_scales

    # -- ensemble-signal access (pooled-fallback aware) -------------------
    #
    # The planner and the uncertainty propagator need per-scale ensemble
    # signals (spread / per-member predictions).  A scale served by the
    # pooled fallback has no dedicated model, so these accessors answer
    # from the pooled ensemble with log2(p) appended — degraded fits must
    # not crash the consumers, they just get the pooled signal.

    def _pooled_features(self, X: np.ndarray, scale: int) -> np.ndarray:
        return np.column_stack([X, np.full(X.shape[0], np.log2(scale))])

    def _ensemble_model(self, scale: int, method: str):
        """The model answering ensemble queries for ``scale`` plus a flag
        whether it is the pooled fallback; ``None`` when no model at that
        scale supports ``method``."""
        scale = int(scale)
        model = self.models_.get(scale)
        if model is not None:
            return (model, False) if hasattr(model, method) else None
        if scale in self.fallback_scales_ and self._pooled_model is not None:
            if hasattr(self._pooled_model, method):
                return self._pooled_model, True
        return None

    def has_spread(self, scale: int) -> bool:
        """True when :meth:`prediction_std_at` can answer for ``scale``."""
        self._check_fitted()
        return self._ensemble_model(scale, "prediction_std") is not None

    def has_ensemble(self, scale: int) -> bool:
        """True when :meth:`predict_all_at` can answer for ``scale``."""
        self._check_fitted()
        return self._ensemble_model(scale, "predict_all") is not None

    def prediction_std_at(self, X: np.ndarray, scale: int) -> np.ndarray:
        """Ensemble spread at one scale (pooled-fallback aware), in the
        fitted target space (log space when ``log_target``)."""
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        answer = self._ensemble_model(scale, "prediction_std")
        if answer is None:
            raise ExtrapolationError(
                f"No ensemble spread available at scale {scale}; "
                f"fitted scales: {self.scales_}"
            )
        model, pooled = answer
        return model.prediction_std(
            self._pooled_features(X, int(scale)) if pooled else X
        )

    def predict_all_at(self, X: np.ndarray, scale: int) -> np.ndarray:
        """Per-member predictions at one scale (pooled-fallback aware),
        shape ``(n_members, n_configs)``, in the fitted target space."""
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        answer = self._ensemble_model(scale, "predict_all")
        if answer is None:
            raise ExtrapolationError(
                f"No ensemble predictions available at scale {scale}; "
                f"fitted scales: {self.scales_}"
            )
        model, pooled = answer
        return model.predict_all(
            self._pooled_features(X, int(scale)) if pooled else X
        )

    def predict_matrix(self, X: np.ndarray) -> np.ndarray:
        """Small-scale prediction matrix, shape ``(n_configs,
        n_scales)`` with columns ordered like ``self.scales_``."""
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        return np.column_stack(
            [self.predict_scale(X, s) for s in self.scales_]
        )

    def cv_mape(self, n_splits: int = 5) -> dict[int, float]:
        """Per-scale cross-validated MAPE of the interpolation models.

        This is the diagnostic the paper's Figure-6-style analysis
        reports: if interpolation error is already large, extrapolation
        cannot be accurate.
        """
        self._check_fitted()
        out: dict[int, float] = {}
        rng = np.random.default_rng(self.random_state)
        for scale in self.scales_:
            if scale not in self.models_:
                out[scale] = float("nan")  # pooled-fallback scale
                continue
            sub = self._train.at_scale(scale)
            n = len(sub)
            splits = min(n_splits, n)
            if splits < 2:
                out[scale] = float("nan")
                continue
            kf = KFold(n_splits=splits, shuffle=True, random_state=int(
                rng.integers(0, 2**31)
            ))
            y = np.log(sub.runtime) if self.log_target else sub.runtime
            preds = np.empty(n)
            for tr, te in kf.split(sub.X):
                model = self.model_factory(int(rng.integers(0, 2**31)))
                model.fit(sub.X[tr], y[tr])
                preds[te] = model.predict(sub.X[te])
            if self.log_target:
                preds = np.exp(preds)
            out[scale] = mean_absolute_percentage_error(sub.runtime, preds)
        return out

    def small_scale_matrix_from_measurements(
        self, scales: Sequence[int] | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Measured (not predicted) mean runtime matrix of the training
        configurations — used when fitting the extrapolation level on
        the training history itself."""
        self._check_fitted()
        use = tuple(int(s) for s in (scales if scales is not None else self.scales_))
        return self._train.runtime_matrix(use)
