"""Scalability basis functions of the process count.

The extrapolation level represents a configuration's runtime-vs-scale
curve as a sparse combination of analytically motivated terms:

* ``1/p``, ``p^(-2/3)``, ``1/sqrt(p)`` — perfectly parallel work and
  surface-to-volume communication of 3-D/2-D domain decompositions;
* ``log2(p)``, ``log2(p)^2``, ``log2(p)/p`` — tree-structured collective
  latencies and their interaction with shrinking local work;
* ``sqrt(p)``, ``p`` — contention / serialization pathologies;
* the constant (handled by the regression intercept) — bandwidth floors
  and non-parallelizable sections.

This is the same function class the performance-modeling literature
(e.g. Extra-P's performance model normal form) searches over; the
paper's multitask lasso performs the selection jointly across a cluster
of configurations instead of per configuration.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = ["ScaleBasis", "DEFAULT_BASIS_TERMS"]

BasisFn = Callable[[np.ndarray], np.ndarray]

# Module-level named functions (not lambdas) so fitted models that hold
# a ScaleBasis remain picklable.


def _inv_p(p: np.ndarray) -> np.ndarray:
    return 1.0 / p


def _p_neg_two_thirds(p: np.ndarray) -> np.ndarray:
    return p ** (-2.0 / 3.0)


def _inv_sqrt_p(p: np.ndarray) -> np.ndarray:
    return 1.0 / np.sqrt(p)


def _log_p(p: np.ndarray) -> np.ndarray:
    return np.log2(p)


def _log_p_sq(p: np.ndarray) -> np.ndarray:
    return np.log2(p) ** 2


def _log_p_over_p(p: np.ndarray) -> np.ndarray:
    return np.log2(p) / p


def _sqrt_p(p: np.ndarray) -> np.ndarray:
    return np.sqrt(p)


def _identity_p(p: np.ndarray) -> np.ndarray:
    return p.astype(np.float64)


def _p_log_p(p: np.ndarray) -> np.ndarray:
    return p * np.log2(p)


#: Name -> function registry of all known basis terms.
_TERMS: dict[str, BasisFn] = {
    "inv_p": _inv_p,
    "p_-2/3": _p_neg_two_thirds,
    "inv_sqrt_p": _inv_sqrt_p,
    "log_p": _log_p,
    "log_p^2": _log_p_sq,
    "log_p/p": _log_p_over_p,
    "sqrt_p": _sqrt_p,
    "p": _identity_p,
    "p_log_p": _p_log_p,
}

#: The default basis used by the two-level model.
DEFAULT_BASIS_TERMS: tuple[str, ...] = (
    "inv_p",
    "p_-2/3",
    "inv_sqrt_p",
    "log_p",
    "log_p^2",
    "log_p/p",
    "sqrt_p",
    "p",
)


class ScaleBasis:
    """A named set of basis functions evaluated on process counts.

    Parameters
    ----------
    terms:
        Names from the registry (see :data:`DEFAULT_BASIS_TERMS`), or
        ``(name, callable)`` pairs for custom terms.
    """

    def __init__(
        self,
        terms: Sequence[str | tuple[str, BasisFn]] = DEFAULT_BASIS_TERMS,
    ) -> None:
        if not terms:
            raise ValueError("Basis needs at least one term.")
        names: list[str] = []
        fns: list[BasisFn] = []
        for term in terms:
            if isinstance(term, str):
                try:
                    fn = _TERMS[term]
                except KeyError:
                    raise ValueError(
                        f"Unknown basis term {term!r}; known: {sorted(_TERMS)}"
                    ) from None
                names.append(term)
                fns.append(fn)
            else:
                name, fn = term
                names.append(name)
                fns.append(fn)
        if len(set(names)) != len(names):
            raise ValueError("Duplicate basis term names.")
        self.names: tuple[str, ...] = tuple(names)
        self._fns: tuple[BasisFn, ...] = tuple(fns)

    def __len__(self) -> int:
        return len(self.names)

    def design_matrix(self, scales: Sequence[int] | np.ndarray) -> np.ndarray:
        """Evaluate every term at every scale: shape ``(n_scales,
        n_terms)``."""
        p = np.asarray(scales, dtype=np.float64)
        if p.ndim != 1:
            raise ValueError("scales must be 1-D.")
        if np.any(p < 1):
            raise ValueError("All scales must be >= 1.")
        cols = [fn(p) for fn in self._fns]
        out = np.column_stack(cols)
        if not np.all(np.isfinite(out)):
            raise ValueError("Basis produced non-finite values.")
        return out

    def subset(self, mask: np.ndarray) -> "ScaleBasis":
        """Basis restricted to the terms selected by a boolean mask."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (len(self),):
            raise ValueError("Mask length must equal the number of terms.")
        if not np.any(mask):
            raise ValueError("Subset would be empty.")
        pairs = [
            (n, f) for n, f, m in zip(self.names, self._fns, mask) if m
        ]
        return ScaleBasis(pairs)

    def __repr__(self) -> str:
        return f"ScaleBasis({list(self.names)})"
