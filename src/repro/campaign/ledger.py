"""Core-second accounting for a collection campaign.

The ledger is the campaign's source of truth for "how much of the
allocation is gone".  Its charging rule closes the ROADMAP's
"queue-aware budgets" item: **every submission is charged**, not just
the one that produced a measurement —

* a successful attempt charges ``runtime * nprocs`` core-seconds,
* a killed attempt charges its full wall-clock limit times ``nprocs``
  (the machine ran it to the kill),
* every resubmission backoff charges ``backoff * nprocs`` (the queue
  wait holds the allocation's reservation),

so censored-and-retried runs drain the allocation exactly as they do a
real core-hour account.  The split between *useful* and *wasted*
core-seconds (killed attempts + backoff + fully censored runs) is kept
per round, which is what the campaign report plots.

:func:`worst_case_run_cost` bounds the cost of one run *before* it is
submitted — the campaign refuses to start a bundle whose worst case
does not fit in the remaining allocation, which is how the "never
exceed the allocation, retries included" guarantee is enforced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..errors import ConfigurationError
from ..log import get_logger
from ..sim.budget import ExecutionBudget, RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..sim.machine import Machine
    from ..sim.trace import ExecutionRecord

__all__ = ["RoundLedger", "BudgetLedger", "worst_case_run_cost"]

logger = get_logger("campaign.ledger")


def worst_case_run_cost(
    budget: ExecutionBudget,
    retry: RetryPolicy,
    nprocs: int,
    machine: "Machine | None" = None,
) -> float:
    """Upper bound on the core-seconds one run can charge.

    Sums, over every allowed attempt, the escalated wall-clock limit
    plus the maximum (jitter-inflated) backoff, times ``nprocs``.
    Requires a bounded budget — an unlimited run has no worst case.
    """
    if not budget.bounded:
        raise ConfigurationError(
            "worst_case_run_cost needs a bounded ExecutionBudget."
        )
    total = 0.0
    for attempt in range(retry.max_attempts):
        limit = budget.scaled(retry.budget_factor(attempt)).limit_for(
            machine, nprocs
        )
        assert limit is not None  # bounded budget
        total += limit * nprocs
        if attempt > 0:
            max_backoff = (
                retry.backoff_base
                * retry.backoff_factor ** (attempt - 1)
                * (1.0 + retry.backoff_jitter)
            )
            total += max_backoff * nprocs
    return total


@dataclass
class RoundLedger:
    """Core-second accounting of one campaign round.

    Attributes
    ----------
    round_index:
        0 for the seed round, 1.. for planner rounds.
    planned:
        Predicted cost of the bundles selected for the round.
    charged:
        Core-seconds actually charged (useful + wasted).
    wasted:
        Charged core-seconds that bought no measurement: killed
        attempts, backoff waits, and fully censored runs.
    backoff:
        The queue-wait share of ``wasted``.
    n_runs:
        Runs submitted (each may span several attempts).
    n_censored:
        Runs killed on every attempt (no measurement kept).
    n_resubmitted:
        Runs that finished only after >= 1 resubmission.
    """

    round_index: int
    planned: float = 0.0
    charged: float = 0.0
    wasted: float = 0.0
    backoff: float = 0.0
    n_runs: int = 0
    n_censored: int = 0
    n_resubmitted: int = 0

    @property
    def useful(self) -> float:
        return self.charged - self.wasted

    def to_dict(self) -> dict[str, Any]:
        return {
            "round_index": self.round_index,
            "planned": self.planned,
            "charged": self.charged,
            "wasted": self.wasted,
            "backoff": self.backoff,
            "n_runs": self.n_runs,
            "n_censored": self.n_censored,
            "n_resubmitted": self.n_resubmitted,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "RoundLedger":
        return cls(**{k: payload[k] for k in (
            "round_index", "planned", "charged", "wasted", "backoff",
            "n_runs", "n_censored", "n_resubmitted",
        )})


class BudgetLedger:
    """Campaign-wide core-second allocation with per-round accounting.

    Every charge goes to the currently open round (see
    :meth:`open_round`); cumulative totals are sums over rounds, so a
    checkpointed ledger restored mid-campaign reports exactly the same
    numbers as one that never stopped.
    """

    def __init__(self, allocation_core_seconds: float) -> None:
        if allocation_core_seconds <= 0:
            raise ConfigurationError(
                "allocation_core_seconds must be positive."
            )
        self.allocation = float(allocation_core_seconds)
        self.rounds: list[RoundLedger] = []

    # -- round lifecycle ---------------------------------------------------

    def open_round(self, round_index: int, planned: float = 0.0) -> RoundLedger:
        """Start (or re-open, on resume) the ledger row for one round."""
        for row in self.rounds:
            if row.round_index == round_index:
                if planned:
                    row.planned = planned
                return row
        row = RoundLedger(round_index=round_index, planned=planned)
        self.rounds.append(row)
        return row

    def round(self, round_index: int) -> RoundLedger:
        for row in self.rounds:
            if row.round_index == round_index:
                return row
        raise ConfigurationError(f"No ledger round {round_index}.")

    @property
    def _current(self) -> RoundLedger:
        if not self.rounds:
            raise ConfigurationError(
                "No ledger round open; call open_round first."
            )
        return self.rounds[-1]

    # -- charging ----------------------------------------------------------

    def charge_record(self, record: "ExecutionRecord") -> float:
        """Charge one finished run (all its attempts) to the open round.

        Returns the core-seconds charged.  ``record.censored`` runs are
        fully wasted; runs with an attempt trace charge every killed
        attempt and backoff on top of the final runtime.
        """
        row = self._current
        nprocs = record.nprocs
        if record.attempts is None:
            charged = record.runtime * nprocs
            wasted = charged if record.censored else 0.0
            backoff = 0.0
        else:
            trace = record.attempts
            charged = trace.total_cost(nprocs)
            wasted = trace.wasted_cost(nprocs)
            backoff = sum(a.backoff for a in trace) * nprocs
        row.charged += charged
        row.wasted += wasted
        row.backoff += backoff
        row.n_runs += 1
        if record.censored:
            row.n_censored += 1
        elif record.resubmitted:
            row.n_resubmitted += 1
        if self.remaining < 0:
            logger.warning(
                "ledger overdrawn: spent %.1f of %.1f core-seconds",
                self.spent, self.allocation,
            )
        return charged

    # -- totals ------------------------------------------------------------

    @property
    def spent(self) -> float:
        return sum(r.charged for r in self.rounds)

    @property
    def wasted(self) -> float:
        return sum(r.wasted for r in self.rounds)

    @property
    def planned(self) -> float:
        return sum(r.planned for r in self.rounds)

    @property
    def remaining(self) -> float:
        return self.allocation - self.spent

    @property
    def exhausted(self) -> bool:
        return self.remaining <= 0

    def affords(self, worst_case_cost: float) -> bool:
        """True when the remaining allocation covers a worst case."""
        return worst_case_cost <= self.remaining

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "allocation": self.allocation,
            "spent": self.spent,
            "wasted": self.wasted,
            "remaining": self.remaining,
            "rounds": [r.to_dict() for r in self.rounds],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "BudgetLedger":
        ledger = cls(payload["allocation"])
        ledger.rounds = [
            RoundLedger.from_dict(r) for r in payload["rounds"]
        ]
        return ledger

    def summary(self) -> str:
        lines = [
            f"ledger: {self.spent:.1f} / {self.allocation:.1f} core-seconds "
            f"spent ({self.wasted:.1f} wasted on retries/backoff/censoring)",
        ]
        for r in self.rounds:
            label = "seed " if r.round_index == 0 else f"round {r.round_index}"
            lines.append(
                f"  {label}: planned {r.planned:8.1f}  charged "
                f"{r.charged:8.1f}  wasted {r.wasted:7.1f}  "
                f"runs {r.n_runs:3d}  censored {r.n_censored:2d}  "
                f"resubmitted {r.n_resubmitted:2d}"
            )
        return "\n".join(lines)
