"""Resumable campaign state with atomic checkpointing.

Everything a campaign needs to continue after being killed lives in ONE
JSON file (``campaign.json``): the ledger, the collected history, the
current round's planned bundles and the cursor into them, the metric
trajectory, and the registered model versions.  Keeping it in a single
file matters: the checkpoint is written through
:func:`repro.store.atomic.atomic_replace` (fsynced temp file +
``os.replace`` + parent-dir fsync), so a reader always sees either the
old state or the new state — even across a power cut — never a ledger
that charged a bundle whose history rows were lost (or vice versa).

Resume semantics (see ``docs/campaign.md``):

* **ledger charges are exactly-once** — a bundle is charged and its
  rows appended in the same checkpoint, so a crash between bundles
  loses at most the bundle in flight (which is then re-executed with
  the same deterministic seed and charges the same amount);
* **model registration is at-least-once** — a crash between
  ``registry.register`` and the checkpoint re-registers the round's
  model on resume; the registry's monotonic versions make that a
  harmless extra version, and ``keep_last`` pruning cleans it up.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from ..data.dataset import ExecutionDataset
from ..errors import ConfigurationError
from ..log import get_logger
from ..store import atomic
from .ledger import BudgetLedger

__all__ = ["PlannedBundle", "CampaignState"]

logger = get_logger("campaign.state")

CHECKPOINT_NAME = "campaign.json"

#: Campaign phases, in order.  ``seed`` collects the initial history,
#: ``round`` executes planned bundles, ``done`` is terminal.
PHASES = ("seed", "round", "done")


@dataclass(frozen=True)
class PlannedBundle:
    """One bundle queued for execution (JSON-stable, order preserved)."""

    params: dict[str, float]
    est_cost: float = 0.0
    disagreement: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "params": dict(self.params),
            "est_cost": self.est_cost,
            "disagreement": self.disagreement,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "PlannedBundle":
        return cls(
            params=dict(payload["params"]),
            est_cost=float(payload["est_cost"]),
            disagreement=float(payload["disagreement"]),
        )


def _history_payload(dataset: ExecutionDataset | None) -> dict[str, Any] | None:
    if dataset is None:
        return None
    return {
        "app_name": dataset.app_name,
        "param_names": list(dataset.param_names),
        "X": dataset.X.tolist(),
        "nprocs": dataset.nprocs.tolist(),
        "runtime": dataset.runtime.tolist(),
        "model_runtime": dataset.model_runtime.tolist(),
        "rep": dataset.rep.tolist(),
        "wait_seconds": dataset.wait_seconds.tolist(),
    }


def _history_from_payload(payload: dict[str, Any] | None) -> ExecutionDataset | None:
    if payload is None:
        return None
    return ExecutionDataset(
        app_name=payload["app_name"],
        param_names=tuple(payload["param_names"]),
        X=np.asarray(payload["X"], dtype=np.float64),
        nprocs=np.asarray(payload["nprocs"], dtype=np.int64),
        runtime=np.asarray(payload["runtime"], dtype=np.float64),
        model_runtime=np.asarray(payload["model_runtime"], dtype=np.float64),
        rep=np.asarray(payload["rep"], dtype=np.int64),
        wait_seconds=(
            None
            if payload.get("wait_seconds") is None
            else np.asarray(payload["wait_seconds"], dtype=np.float64)
        ),
    )


@dataclass
class CampaignState:
    """Mutable, checkpointable snapshot of a running campaign.

    Attributes
    ----------
    config_hash:
        Fingerprint of the :class:`~repro.campaign.config.CampaignConfig`
        that started the campaign; a resume with a different config is
        refused.
    phase:
        ``seed`` / ``round`` / ``done``.
    round_index:
        Current round (0 = seed round).
    planned:
        Bundles queued for the current round (persisted so a resume
        executes *the same plan*, not a re-plan on different history).
    bundle_cursor:
        Bundles of the current plan already executed and charged.
    ledger:
        The campaign's :class:`~repro.campaign.ledger.BudgetLedger`.
    history:
        All non-censored collected runs so far (None before the first).
    trajectory:
        One metrics dict per completed round (see CampaignReport).
    registered:
        Registry versions registered so far, in round order.
    stop_reason:
        Why the campaign ended (None while running).
    store_path:
        When set, the campaign is *store-backed*: collected rows live in
        a :class:`~repro.store.HistoryStore` at this path and the
        checkpoint does not duplicate them — ``campaign.json`` stays
        O(metadata) instead of O(rows), and :meth:`load` reconstructs
        ``history`` from the store.
    """

    config_hash: str
    phase: str = "seed"
    round_index: int = 0
    planned: list[PlannedBundle] = field(default_factory=list)
    bundle_cursor: int = 0
    ledger: BudgetLedger | None = None
    history: ExecutionDataset | None = None
    trajectory: list[dict[str, Any]] = field(default_factory=list)
    registered: list[int] = field(default_factory=list)
    stop_reason: str | None = None
    store_path: str | None = None

    def __post_init__(self) -> None:
        if self.phase not in PHASES:
            raise ConfigurationError(
                f"phase must be one of {PHASES}, got {self.phase!r}."
            )

    @property
    def done(self) -> bool:
        return self.phase == "done"

    # -- mutation helpers ---------------------------------------------------

    def append_history(self, batch: ExecutionDataset) -> None:
        """Merge newly collected (non-censored) rows into the history."""
        self.history = (
            batch
            if self.history is None
            else ExecutionDataset.concat([self.history, batch])
        )

    def start_round(self, round_index: int, planned: list[PlannedBundle]) -> None:
        self.phase = "round" if round_index > 0 else "seed"
        self.round_index = round_index
        self.planned = list(planned)
        self.bundle_cursor = 0

    def finish(self, reason: str) -> None:
        self.phase = "done"
        self.stop_reason = reason

    # -- persistence --------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": "repro-campaign-state-v1",
            "config_hash": self.config_hash,
            "phase": self.phase,
            "round_index": self.round_index,
            "planned": [b.to_dict() for b in self.planned],
            "bundle_cursor": self.bundle_cursor,
            "ledger": None if self.ledger is None else self.ledger.to_dict(),
            # Store-backed campaigns keep the rows in the shard store;
            # duplicating them into every per-bundle checkpoint would
            # make saves O(rows) again.
            "history": (
                None if self.store_path is not None
                else _history_payload(self.history)
            ),
            "store_path": self.store_path,
            "trajectory": self.trajectory,
            "registered": self.registered,
            "stop_reason": self.stop_reason,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "CampaignState":
        if payload.get("format") != "repro-campaign-state-v1":
            raise ConfigurationError(
                f"Not a campaign checkpoint (format="
                f"{payload.get('format')!r})."
            )
        return cls(
            config_hash=payload["config_hash"],
            phase=payload["phase"],
            round_index=int(payload["round_index"]),
            planned=[PlannedBundle.from_dict(b) for b in payload["planned"]],
            bundle_cursor=int(payload["bundle_cursor"]),
            ledger=(
                None
                if payload["ledger"] is None
                else BudgetLedger.from_dict(payload["ledger"])
            ),
            history=_history_from_payload(payload["history"]),
            trajectory=list(payload["trajectory"]),
            registered=[int(v) for v in payload["registered"]],
            stop_reason=payload["stop_reason"],
            store_path=payload.get("store_path"),
        )

    def save(self, directory: str | Path) -> Path:
        """Atomically checkpoint to ``directory/campaign.json``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        target = directory / CHECKPOINT_NAME
        blob = json.dumps(self.to_dict(), sort_keys=True)
        atomic.atomic_replace(target, blob, op="campaign.checkpoint")
        logger.debug(
            "checkpointed campaign at %s (phase=%s round=%d cursor=%d)",
            target, self.phase, self.round_index, self.bundle_cursor,
        )
        return target

    @classmethod
    def load(
        cls, directory: str | Path, expected_hash: str | None = None
    ) -> "CampaignState":
        """Load a checkpoint, refusing config drift."""
        target = Path(directory) / CHECKPOINT_NAME
        if not target.is_file():
            raise ConfigurationError(
                f"No campaign checkpoint at {target}; nothing to resume."
            )
        try:
            payload = json.loads(target.read_text())
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"Corrupt campaign checkpoint {target}: {exc}"
            ) from exc
        state = cls.from_dict(payload)
        if expected_hash is not None and state.config_hash != expected_hash:
            raise ConfigurationError(
                "Checkpoint was written by a different campaign config "
                f"(checkpoint hash {state.config_hash}, current "
                f"{expected_hash}); refusing to resume."
            )
        if state.store_path is not None and state.history is None:
            # Store-backed checkpoint: the rows live in the shard store.
            # The store may hold rows of a bundle whose checkpoint was
            # lost to a crash; its deterministic re-execution is skipped
            # via the store's source tags (see Campaign._execute_pending).
            from ..store import HistoryStore

            store_dir = Path(state.store_path)
            if not HistoryStore.is_store(store_dir):
                raise ConfigurationError(
                    f"Checkpoint references a history store at "
                    f"{store_dir} which does not exist; cannot resume."
                )
            store = HistoryStore.open(store_dir)
            if store.n_rows:
                history = store.to_dataset()
                assert isinstance(history, ExecutionDataset)
                state.history = history
        return state
