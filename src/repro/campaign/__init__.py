"""Closed-loop, budget-aware history-collection campaigns.

Turns the paper's one-shot history → model pipeline into an iterative
process under a total core-hour allocation: plan (acquisition by
ensemble disagreement per core-second) → execute (every attempt and
backoff charged) → sanitize → refit → register, with atomic single-file
checkpointing so a killed campaign resumes to byte-identical ledger
totals.  See ``docs/campaign.md``.
"""

from .config import CampaignConfig
from .ledger import BudgetLedger, RoundLedger, worst_case_run_cost
from .runner import Campaign, CampaignReport
from .state import CampaignState, PlannedBundle

__all__ = [
    "Campaign",
    "CampaignConfig",
    "CampaignReport",
    "CampaignState",
    "PlannedBundle",
    "BudgetLedger",
    "RoundLedger",
    "worst_case_run_cost",
]
