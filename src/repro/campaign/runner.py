"""The closed campaign loop: plan → execute → sanitize → refit → register.

A :class:`Campaign` turns the paper's one-shot pipeline into an
iterative, budget-aware collection process.  Round 0 seeds the history
with a Latin-hypercube batch; every later round asks the
:class:`~repro.core.planning.HistoryPlanner` (fitted on everything
collected so far) which configuration bundles buy the most ensemble
disagreement per core-second, executes the winners under the campaign's
wall-clock budget and retry policy — charging *every* attempt and
backoff to the :class:`~repro.campaign.ledger.BudgetLedger` — then
sanitizes the merged history, refits the
:class:`~repro.core.two_level.TwoLevelModel`, measures the large-scale
error trajectory, and registers the round's model.

Budget guarantee
----------------
A bundle is only started when the *worst case* of all its runs —
escalated wall-clock limits plus maximum jittered backoffs, times
processes — fits in the remaining allocation, so the campaign can never
overdraw even when every run times out on every attempt.

Resumability
------------
State is checkpointed after every bundle (see
:mod:`repro.campaign.state`).  All randomness is derived from the
config seed and the run/round identity, so a killed campaign resumed
with ``--resume`` re-executes at most the bundle in flight — with the
same seeds, charging the same core-seconds — and its final ledger is
byte-identical to an uninterrupted run's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from ..apps import get_app
from ..core.planning import ConfigRecommendation, HistoryPlanner
from ..core.two_level import TwoLevelModel
from ..core.uncertainty import EnsembleUncertainty
from ..data.dataset import ExecutionDataset
from ..data.generator import sample_grid, sample_latin_hypercube
from ..errors import ConfigurationError, ExecutionTimeoutError
from ..log import get_logger
from ..robustness.sanitize import sanitize_dataset
from ..sim.execution import Executor, NoiseModel
from ..sim.machines import get_machine
from .config import CampaignConfig
from .ledger import BudgetLedger, worst_case_run_cost
from .state import CampaignState, PlannedBundle

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..serve.registry import ModelRegistry

__all__ = ["Campaign", "CampaignReport"]

logger = get_logger("campaign.runner")

#: Offset folded into the seed for the held-out oracle evaluation set,
#: so it never collides with collection sampling.
_EVAL_SEED_OFFSET = 424242
#: Per-round offset for candidate pools (round r uses seed + r * this).
_ROUND_SEED_STRIDE = 1000


@dataclass(frozen=True)
class CampaignReport:
    """Outcome of a campaign run (possibly partial, when interrupted).

    Attributes
    ----------
    config:
        The campaign configuration.
    rounds:
        One metrics dict per *closed* round: ``round``, ``mape``,
        ``interval_width``, ``disagreement``, ``history_rows``,
        ``charged``, ``wasted``, ``version``.
    ledger:
        The final budget ledger.
    stop_reason:
        Why the campaign stopped (None when interrupted mid-run).
    registered:
        Registry versions produced, in round order.
    done:
        False when the run was interrupted (``stop_after_bundles``) and
        a ``--resume`` is expected to continue it.
    """

    config: CampaignConfig
    rounds: list[dict[str, Any]]
    ledger: BudgetLedger
    stop_reason: str | None
    registered: list[int] = field(default_factory=list)
    done: bool = True

    @property
    def mape_trajectory(self) -> list[float]:
        return [r["mape"] for r in self.rounds]

    def to_dict(self) -> dict[str, Any]:
        return {
            "config": self.config.to_dict(),
            "rounds": self.rounds,
            "ledger": self.ledger.to_dict(),
            "stop_reason": self.stop_reason,
            "registered": self.registered,
            "done": self.done,
        }

    def summary(self) -> str:
        lines = [
            f"campaign: {self.config.app_name} "
            f"({self.config.selection} selection, seed {self.config.seed})",
        ]
        if not self.done:
            lines.append("status : INTERRUPTED (resume to continue)")
        else:
            lines.append(f"status : finished — {self.stop_reason}")
        for r in self.rounds:
            label = "seed " if r["round"] == 0 else f"round {r['round']}"
            ver = f"v{r['version']:04d}" if r.get("version") else "-"
            lines.append(
                f"  {label}: MAPE {100 * r['mape']:6.2f} %  "
                f"interval {100 * r['interval_width']:6.2f} %  "
                f"disagreement {r['disagreement']:.4f}  "
                f"rows {r['history_rows']:4d}  {ver}"
            )
        lines.append(self.ledger.summary())
        return "\n".join(lines)


class Campaign:
    """Closed-loop history-collection campaign (see module docstring).

    Parameters
    ----------
    config:
        Campaign configuration.
    checkpoint_dir:
        Directory holding the single-file ``campaign.json`` checkpoint.
    registry:
        Optional :class:`~repro.serve.registry.ModelRegistry`; when
        given, each round's refit model is registered under
        ``config.model_name`` with campaign provenance metadata, and
        pruned to ``config.keep_last`` versions.
    store_dir:
        Optional directory for a :class:`~repro.store.HistoryStore`.
        When given, every bundle's rows are appended to the store
        (tagged ``round-R/bundle-B`` for exactly-once resume semantics)
        and the per-bundle checkpoint stays O(metadata) — the rows are
        never duplicated into ``campaign.json``.  Registered artifacts
        carry the store's manifest fingerprint as provenance.
    """

    def __init__(
        self,
        config: CampaignConfig,
        checkpoint_dir: str | Path,
        registry: "ModelRegistry | None" = None,
        store_dir: str | Path | None = None,
    ) -> None:
        self.config = config
        self.checkpoint_dir = Path(checkpoint_dir)
        self.registry = registry
        self.store_dir = Path(store_dir) if store_dir is not None else None
        self._store = None  # opened/created in run()
        self._warm: TwoLevelModel | None = None
        self.app = get_app(config.app_name)
        self.machine = get_machine(config.machine)
        self.executor = Executor(
            machine=self.machine,
            noise=NoiseModel(sigma=config.noise_sigma),
            seed=config.seed,
            budget=config.execution_budget(),
            retry=config.retry_policy(),
        )

    # -- cost bounds --------------------------------------------------------

    def bundle_worst_case(self) -> float:
        """Upper bound on the core-seconds one bundle can charge."""
        per_run = [
            worst_case_run_cost(
                self.config.execution_budget(),
                self.config.retry_policy(),
                nprocs=s,
                machine=self.machine,
            )
            for s in self.config.small_scales
        ]
        return self.config.repetitions * float(sum(per_run))

    # -- entry point --------------------------------------------------------

    def run(
        self,
        resume: bool = False,
        stop_after_bundles: int | None = None,
    ) -> CampaignReport:
        """Run (or resume) the campaign to completion.

        ``stop_after_bundles`` is a failure-injection hook for tests
        and the smoke script: the run checkpoints and returns a partial
        report (``done=False``) after executing that many bundles,
        exactly as if the process had been killed there.
        """
        if resume:
            state = CampaignState.load(
                self.checkpoint_dir, expected_hash=self.config.fingerprint()
            )
            if (state.store_path is None) != (self.store_dir is None) or (
                self.store_dir is not None
                and Path(state.store_path or "") != self.store_dir
            ):
                raise ConfigurationError(
                    f"Checkpoint store path {state.store_path!r} does not "
                    f"match this campaign's store_dir "
                    f"{str(self.store_dir) if self.store_dir else None!r}."
                )
            self._open_store(state)
            if state.done:
                return self._report(state)
            logger.info(
                "resuming campaign at round %d, bundle %d/%d",
                state.round_index, state.bundle_cursor, len(state.planned),
            )
        else:
            if (self.checkpoint_dir / "campaign.json").exists():
                raise ConfigurationError(
                    f"{self.checkpoint_dir} already holds a campaign "
                    "checkpoint; pass resume=True (or --resume) to "
                    "continue it, or choose a fresh directory."
                )
            state = CampaignState(
                config_hash=self.config.fingerprint(),
                ledger=BudgetLedger(self.config.allocation_core_seconds),
                store_path=(
                    str(self.store_dir) if self.store_dir is not None else None
                ),
            )
            self._open_store(state)
            state.start_round(0, self._seed_plan())
            state.ledger.open_round(
                0, planned=sum(b.est_cost for b in state.planned)
            )
            state.save(self.checkpoint_dir)

        executed = 0
        while True:
            executed += self._execute_pending(state, stop_after_bundles, executed)
            if stop_after_bundles is not None and executed >= stop_after_bundles:
                if state.bundle_cursor < len(state.planned):
                    return self._report(state, done=False)

            model: TwoLevelModel | None = None
            if len(state.trajectory) <= state.round_index:
                if state.history is None:
                    raise ConfigurationError(
                        "Seed round collected no usable history — the "
                        "allocation cannot afford a single bundle's worst "
                        "case (raise allocation_core_seconds or lower "
                        "time_limit/max_retries)."
                    )
                model = self._close_round(state)
                state.save(self.checkpoint_dir)

            reason = self._stop_reason(state)
            if reason is not None:
                state.finish(reason)
                state.save(self.checkpoint_dir)
                logger.info("campaign finished: %s", reason)
                return self._report(state)

            if model is None:  # resumed after a closed round: refit
                model = self._fit(state.history)
            next_round = state.round_index + 1
            planned = self._plan_round(model, next_round)
            if not planned:
                state.finish("budget-exhausted")
                state.save(self.checkpoint_dir)
                return self._report(state)
            state.start_round(next_round, planned)
            state.ledger.open_round(
                next_round, planned=sum(b.est_cost for b in planned)
            )
            state.save(self.checkpoint_dir)

    # -- round internals ----------------------------------------------------

    def _open_store(self, state: CampaignState) -> None:
        """Open (or create) the campaign's history store, if store-backed."""
        if self.store_dir is None:
            return
        from ..store import HistoryStore

        if HistoryStore.is_store(self.store_dir):
            self._store = HistoryStore.open(self.store_dir)
        else:
            self._store = HistoryStore.create(
                self.store_dir, self.config.app_name, self.app.param_names
            )

    def _seed_plan(self) -> list[PlannedBundle]:
        rng = np.random.default_rng(self.config.seed)
        configs = sample_latin_hypercube(
            self.app, self.config.n_seed_configs, rng
        )
        wc = self.bundle_worst_case()
        return [PlannedBundle(params=c, est_cost=wc) for c in configs]

    def _execute_pending(
        self,
        state: CampaignState,
        stop_after_bundles: int | None,
        already_executed: int,
    ) -> int:
        """Execute the current round's remaining bundles; returns how
        many bundles this call executed.  Charges every attempt; drops
        censored runs from the history (their cost stays charged)."""
        ledger = state.ledger
        assert ledger is not None
        # Ensure the round's ledger row exists (its `planned` was set
        # exactly once when the round was planned — never overwritten
        # here, so an interrupted run resumes to identical totals).
        row = ledger.open_round(state.round_index)
        wc = self.bundle_worst_case()
        round_budget = self.config.effective_round_budget()
        executed = 0
        while state.bundle_cursor < len(state.planned):
            if stop_after_bundles is not None:
                if already_executed + executed >= stop_after_bundles:
                    break
            # Planner rounds are budget-bound on ACTUAL charged cost:
            # submission stops once the round's budget is gone, so every
            # selection strategy spends the same core-seconds per round
            # regardless of how well the model estimated costs.  (The
            # seed round is count-bound: there is no model to estimate
            # with yet.)
            if state.round_index > 0 and row.charged >= round_budget:
                logger.info(
                    "round %d: budget filled (%.1f / %.1f core-seconds); "
                    "%d planned bundle(s) not submitted",
                    state.round_index, row.charged, round_budget,
                    len(state.planned) - state.bundle_cursor,
                )
                break
            if not ledger.affords(wc):
                skipped = len(state.planned) - state.bundle_cursor
                logger.info(
                    "round %d: remaining allocation %.1f cannot cover a "
                    "bundle worst case of %.1f core-seconds; skipping %d "
                    "planned bundle(s)",
                    state.round_index, ledger.remaining, wc, skipped,
                )
                state.planned = state.planned[: state.bundle_cursor]
                state.save(self.checkpoint_dir)
                break
            bundle = state.planned[state.bundle_cursor]
            records = []
            for scale in self.config.small_scales:
                for rep in range(self.config.repetitions):
                    try:
                        rec = self.executor.run(
                            self.app, bundle.params, int(scale), rep=rep
                        )
                    except ExecutionTimeoutError as exc:
                        assert exc.record is not None
                        ledger.charge_record(exc.record)
                        continue  # censored: charged but not kept
                    ledger.charge_record(rec)
                    records.append(rec)
            if records:
                batch = ExecutionDataset.from_records(
                    records, param_names=self.app.param_names
                )
                source = (
                    f"round-{state.round_index}/bundle-{state.bundle_cursor}"
                )
                if self._store is not None and self._store.has_source(source):
                    # A crash landed between the store append and the
                    # checkpoint: the rows are already in the store (and
                    # in the history loaded from it on resume).  The
                    # deterministic re-execution above re-charged the
                    # ledger; appending again would duplicate the rows.
                    logger.info(
                        "store already holds %s; skipping duplicate append",
                        source,
                    )
                else:
                    if self._store is not None:
                        self._store.append(batch, source=source)
                    state.append_history(batch)
            state.bundle_cursor += 1
            state.save(self.checkpoint_dir)
            executed += 1
        return executed

    def _fit(self, history: ExecutionDataset) -> TwoLevelModel:
        clean, report = sanitize_dataset(history, repair="impute")
        if report.rows_dropped or report.rows_imputed:
            logger.info("%s", report.summary())
        model = TwoLevelModel(
            small_scales=self.config.small_scales,
            n_clusters=self.config.n_clusters,
            random_state=self.config.seed,
        )
        # Warm-start from the previous round's model: scales whose data
        # did not change this round reuse their fitted interpolators.
        # Bit-identical to a cold fit, so a resumed campaign (which has
        # no previous model in memory) still reproduces the same
        # trajectory exactly.
        model.fit(clean, warm_start_from=self._warm)
        self._warm = model
        return model

    def _planner(self, model: TwoLevelModel, round_index: int) -> HistoryPlanner:
        return HistoryPlanner(
            model,
            self.app,
            n_candidates=self.config.n_candidates,
            time_limit=self.config.time_limit,
            censor_margin=self.config.censor_margin,
            random_state=self.config.seed + _ROUND_SEED_STRIDE * round_index,
        )

    def _score_pool(
        self, model: TwoLevelModel, round_index: int
    ) -> list[ConfigRecommendation]:
        """Deterministic candidate-pool scoring for one round."""
        return self._planner(model, round_index).score_candidates()

    def _eval_set(self) -> np.ndarray:
        rng = np.random.default_rng(self.config.seed + _EVAL_SEED_OFFSET)
        configs = sample_latin_hypercube(
            self.app, self.config.n_eval_configs, rng
        )
        return np.vstack([self.app.params_to_vector(c) for c in configs])

    def _evaluate(self, model: TwoLevelModel) -> tuple[float, float]:
        """Oracle large-scale MAPE and mean relative interval width.

        Uses the noise-free cost model as ground truth on a held-out
        evaluation set.  This is an *evaluation oracle* — it is never
        charged to the allocation (in a real campaign the trajectory
        would come from a separate validation allocation or be absent).
        """
        X = self._eval_set()
        scales = list(self.config.eval_scales)
        pred = model.predict(X, scales)
        truth = np.array(
            [
                [
                    self.executor.model_time(
                        self.app, self.app.vector_to_params(x), int(s)
                    )
                    for s in scales
                ]
                for x in X
            ]
        )
        mape = float(np.mean(np.abs(pred - truth) / truth))
        unc = EnsembleUncertainty(
            model, n_samples=25, level=0.9, random_state=self.config.seed
        )
        width = float(np.mean(unc.predict_interval(X, scales).relative_width))
        return mape, width

    def _close_round(self, state: CampaignState) -> TwoLevelModel:
        """Refit, evaluate, register, and record the round's metrics."""
        assert state.history is not None and state.ledger is not None
        model = self._fit(state.history)
        mape, width = self._evaluate(model)
        pool = self._score_pool(model, state.round_index + 1)
        disagreement = float(np.mean([r.disagreement for r in pool]))
        version: int | None = None
        if self.registry is not None:
            from ..serve.artifacts import ModelArtifact

            clean, _ = sanitize_dataset(state.history, repair="impute")
            metadata = {
                "campaign": self.config.fingerprint(),
                "campaign_round": str(state.round_index),
                "campaign_spent": f"{state.ledger.spent:.3f}",
                "campaign_selection": self.config.selection,
            }
            # Queue-wait provenance: a model trained on a history whose
            # runs waited in a simulated scheduler queue should say so
            # (the waits shape which configs a budgeted campaign
            # affords, hence the training distribution).
            wait_total = float(state.history.wait_seconds.sum())
            if wait_total > 0:
                metadata["queue_wait_rows"] = str(
                    int((state.history.wait_seconds > 0).sum())
                )
                metadata["queue_wait_total_seconds"] = f"{wait_total:.3f}"
            if self._store is not None:
                # Tie the artifact to the exact store contents it was
                # trained from (manifest fingerprint = chunking-invariant
                # content hash of every collected row).
                metadata["store_path"] = str(self._store.root)
                store_fp = self._store.fingerprint
                if store_fp is not None:
                    metadata["store_fingerprint"] = store_fp
                metadata["store_rows"] = str(self._store.n_rows)
            artifact = ModelArtifact.create(
                model,
                app_name=self.config.app_name,
                param_names=self.app.param_names,
                train=clean,
                metadata=metadata,
            )
            version = self.registry.register(self.config.model_name, artifact)
            state.registered.append(version)
            if self.config.keep_last is not None:
                self.registry.prune(
                    self.config.model_name, keep_last=self.config.keep_last
                )
        row = state.ledger.round(state.round_index)
        state.trajectory.append(
            {
                "round": state.round_index,
                "mape": mape,
                "interval_width": width,
                "disagreement": disagreement,
                "history_rows": len(state.history),
                "charged": row.charged,
                "wasted": row.wasted,
                "version": version,
            }
        )
        logger.info(
            "round %d closed: MAPE %.2f %%, disagreement %.4f, "
            "%.1f core-seconds charged",
            state.round_index, 100 * mape, disagreement, row.charged,
        )
        return model

    def _plan_round(
        self, model: TwoLevelModel, round_index: int
    ) -> list[PlannedBundle]:
        """Fill the round's estimated-cost budget per the configured
        selection strategy.

        All strategies draw from / walk the same kind of candidate set
        and stop at the same budget, so a benchmark comparing them
        compares *what* was bought, not *how much*.
        """
        budget = self.config.effective_round_budget()
        if self.config.selection == "grid":
            pool = self._grid_pool(model, round_index)
        else:
            pool = self._score_pool(model, round_index)
            if self.config.selection == "random":
                rng = np.random.default_rng(
                    self.config.seed + _ROUND_SEED_STRIDE * round_index + 7
                )
                pool = [pool[int(i)] for i in rng.permutation(len(pool))]
            # "planner": pool is already sorted by utility, descending.
        selected: list[ConfigRecommendation] = []
        spent = 0.0
        for rec in pool:
            if len(selected) >= self.config.bundles_per_round:
                break
            if spent + rec.est_cost_core_seconds > budget:
                continue
            selected.append(rec)
            spent += rec.est_cost_core_seconds
        return [
            PlannedBundle(
                params=r.params,
                est_cost=r.est_cost_core_seconds,
                disagreement=r.disagreement,
            )
            for r in selected
        ]

    def _grid_pool(
        self, model: TwoLevelModel, round_index: int
    ) -> list[ConfigRecommendation]:
        """Round ``r``'s slice of a full-factorial grid walk, scored."""
        k = self.config.bundles_per_round
        need = k * self.config.max_rounds
        points = 2
        n_params = len(self.app.param_names)
        while n_params and points**n_params < need:
            points += 1
        grid = sample_grid(self.app, points_per_dim=points)
        chunk = grid[(round_index - 1) * k : round_index * k]
        if not chunk:
            return []
        X = np.vstack([self.app.params_to_vector(c) for c in chunk])
        recs = self._planner(model, round_index).score_candidates(X)
        by_params = {tuple(sorted(r.params.items())): r for r in recs}
        return [by_params[tuple(sorted(c.items()))] for c in chunk]

    # -- stopping -----------------------------------------------------------

    def _stop_reason(self, state: CampaignState) -> str | None:
        assert state.ledger is not None
        cfg = self.config
        last = state.trajectory[-1]
        if (
            cfg.mape_target is not None
            and last["mape"] <= cfg.mape_target
        ):
            return "mape-target"
        if state.round_index >= cfg.max_rounds:
            return "max-rounds"
        if not state.ledger.affords(self.bundle_worst_case()):
            return "budget-exhausted"
        if len(state.trajectory) > cfg.plateau_rounds:
            flat = 0
            for i in range(len(state.trajectory) - 1, 0, -1):
                prev = state.trajectory[i - 1]["disagreement"]
                cur = state.trajectory[i]["disagreement"]
                improvement = (prev - cur) / max(prev, 1e-12)
                if improvement < cfg.plateau_tol:
                    flat += 1
                else:
                    break
            if flat >= cfg.plateau_rounds:
                return "plateau"
        return None

    # -- reporting ----------------------------------------------------------

    def _report(self, state: CampaignState, done: bool = True) -> CampaignReport:
        assert state.ledger is not None
        return CampaignReport(
            config=self.config,
            rounds=list(state.trajectory),
            ledger=state.ledger,
            stop_reason=state.stop_reason,
            registered=list(state.registered),
            done=state.done,
        )
