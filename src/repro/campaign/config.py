"""Configuration of a history-collection campaign.

A :class:`CampaignConfig` pins down everything a campaign needs to be
*deterministic and resumable*: the application and scales, the total
core-second allocation, the per-run execution budget and retry policy,
the acquisition settings, and the stop rules.  The config round-trips
through JSON (``to_dict`` / ``from_dict``) and its hash is stored in
every checkpoint, so resuming with a different config is refused
instead of silently mixing two campaigns.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any

from ..errors import ConfigurationError
from ..sim.budget import ExecutionBudget, RetryPolicy

__all__ = ["CampaignConfig"]

#: Bundle-selection strategies: ``planner`` ranks by ensemble
#: disagreement per core-second (the campaign's point), ``random``
#: draws bundles uniformly from the same candidate pool (the control
#: arm of the benchmark), ``grid`` walks a full-factorial grid of the
#: parameter space in order.
SELECTION_STRATEGIES = ("planner", "random", "grid")


@dataclass(frozen=True)
class CampaignConfig:
    """Everything one campaign run depends on.

    Attributes
    ----------
    app_name:
        Application whose history is being collected.
    small_scales:
        Process counts every bundle is executed at.
    eval_scales:
        Large target scales the per-round MAPE trajectory is measured
        at (via a held-out oracle test set — see ``docs/campaign.md``).
    allocation_core_seconds:
        Total core-second allocation; every attempt and backoff is
        charged against it.
    max_rounds:
        Planner rounds after the seed round.
    round_budget_core_seconds:
        Estimated-cost budget one round's plan may fill (None derives
        ``allocation / (max_rounds + 1)``).  Budget-based rounds are
        what makes cost-normalized acquisition comparable across
        selection strategies: every strategy gets the same core-seconds
        per round, not the same bundle count.
    bundles_per_round:
        Hard cap on bundles per round (a backstop on top of the round
        budget — also fewer when the remaining allocation cannot
        afford their worst case).
    n_seed_configs:
        Bundles collected up front (round 0) before the first fit.
    repetitions:
        Repeats per (configuration, scale).
    n_candidates:
        Candidate pool size the planner scores each round.
    selection:
        Bundle-selection strategy (see ``SELECTION_STRATEGIES``).
    time_limit:
        Per-run wall-clock limit in seconds (required: it is what makes
        a run's worst-case cost boundable).
    max_retries:
        Resubmissions granted to a run killed at the limit.
    escalation:
        Budget multiplier per resubmission (>= 1).
    backoff_base, backoff_jitter:
        Resubmission queue-wait model (charged against the allocation).
    mape_target:
        Stop once the round MAPE reaches this (None disables).
    plateau_rounds, plateau_tol:
        Stop after this many consecutive rounds whose planner
        disagreement improved by less than ``plateau_tol`` (relative).
    n_eval_configs:
        Size of the held-out oracle evaluation set.
    machine:
        Machine preset name.
    noise_sigma:
        Run-to-run noise of the simulated executions.
    n_clusters:
        Extrapolation-level clusters of the refitted models.
    model_name:
        Registry name each round's model is registered under.
    keep_last:
        Registry retention per round (None = no pruning).
    seed:
        Master seed (sampling, execution noise, refits).
    """

    app_name: str
    allocation_core_seconds: float
    small_scales: tuple[int, ...] = (32, 64, 128)
    eval_scales: tuple[int, ...] = (512, 1024)
    max_rounds: int = 3
    round_budget_core_seconds: float | None = None
    bundles_per_round: int = 128
    n_seed_configs: int = 10
    repetitions: int = 1
    n_candidates: int = 100
    selection: str = "planner"
    time_limit: float = 60.0
    max_retries: int = 1
    escalation: float = 1.5
    backoff_base: float = 5.0
    backoff_jitter: float = 0.1
    mape_target: float | None = None
    plateau_rounds: int = 2
    plateau_tol: float = 0.02
    n_eval_configs: int = 20
    machine: str = "default-cluster"
    noise_sigma: float = 0.03
    n_clusters: int = 3
    model_name: str = "campaign"
    keep_last: int | None = None
    seed: int = 0
    censor_margin: float = 0.1
    metadata: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.allocation_core_seconds <= 0:
            raise ConfigurationError(
                "allocation_core_seconds must be positive."
            )
        if len(self.small_scales) < 2:
            raise ConfigurationError(
                "small_scales needs >= 2 scales to fit scalability curves."
            )
        if not self.eval_scales:
            raise ConfigurationError("eval_scales must be non-empty.")
        if self.max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1.")
        if self.round_budget_core_seconds is not None and (
            self.round_budget_core_seconds <= 0
        ):
            raise ConfigurationError(
                "round_budget_core_seconds must be positive (or None)."
            )
        if self.bundles_per_round < 1:
            raise ConfigurationError("bundles_per_round must be >= 1.")
        if self.n_seed_configs < 2:
            raise ConfigurationError(
                "n_seed_configs must be >= 2 (the first fit needs them)."
            )
        if self.repetitions < 1:
            raise ConfigurationError("repetitions must be >= 1.")
        if self.n_candidates < 1:
            raise ConfigurationError("n_candidates must be >= 1.")
        if self.selection not in SELECTION_STRATEGIES:
            raise ConfigurationError(
                f"selection must be one of {SELECTION_STRATEGIES}, "
                f"got {self.selection!r}."
            )
        if self.time_limit <= 0:
            raise ConfigurationError(
                "time_limit must be positive (it bounds per-run cost)."
            )
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0.")
        if self.mape_target is not None and self.mape_target <= 0:
            raise ConfigurationError("mape_target must be positive.")
        if self.plateau_rounds < 1:
            raise ConfigurationError("plateau_rounds must be >= 1.")
        if self.plateau_tol < 0:
            raise ConfigurationError("plateau_tol must be >= 0.")
        if self.n_eval_configs < 1:
            raise ConfigurationError("n_eval_configs must be >= 1.")
        # Normalize sequences so hashes are stable regardless of the
        # caller passing lists or tuples.
        object.__setattr__(
            self, "small_scales",
            tuple(int(s) for s in sorted(self.small_scales)),
        )
        object.__setattr__(
            self, "eval_scales",
            tuple(int(s) for s in sorted(self.eval_scales)),
        )
        # Validate the derived policy objects eagerly (fail at config
        # construction, not mid-campaign).
        self.execution_budget()
        self.retry_policy()

    # -- derived execution policy ------------------------------------------

    def effective_round_budget(self) -> float:
        """Estimated-cost budget one round's plan may fill."""
        if self.round_budget_core_seconds is not None:
            return self.round_budget_core_seconds
        return self.allocation_core_seconds / (self.max_rounds + 1)

    def execution_budget(self) -> ExecutionBudget:
        return ExecutionBudget(limit=self.time_limit)

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy(
            max_attempts=self.max_retries + 1,
            backoff_base=self.backoff_base,
            backoff_jitter=self.backoff_jitter,
            escalation=self.escalation,
        )

    # -- persistence --------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        payload = asdict(self)
        payload["small_scales"] = list(self.small_scales)
        payload["eval_scales"] = list(self.eval_scales)
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "CampaignConfig":
        data = dict(payload)
        data["small_scales"] = tuple(data["small_scales"])
        data["eval_scales"] = tuple(data["eval_scales"])
        return cls(**data)

    def fingerprint(self) -> str:
        """Stable hash guarding checkpoints against config drift."""
        blob = json.dumps(self.to_dict(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:16]
