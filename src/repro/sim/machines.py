"""Named machine presets.

Three ready-made cluster models spanning the design space the topology
and network modules support.  The benchmark harness uses
``default-cluster``; the others power the topology-study example and
the cross-machine extension experiments.
"""

from __future__ import annotations

from .machine import Machine, NodeSpec
from .network import NetworkModel
from .topology import Dragonfly, FatTree, Torus3D

__all__ = ["MACHINE_PRESETS", "get_machine"]


def _default_cluster() -> Machine:
    """1024-node fat-tree with EDR InfiniBand — the evaluation platform."""
    return Machine(
        node=NodeSpec(cores=32, flops_per_core=16e9, mem_bandwidth=160e9,
                      compute_efficiency=0.35),
        network=NetworkModel("infiniband-edr"),
        topology=FatTree(k=16),
        name="default-cluster",
    )


def _torus_cluster() -> Machine:
    """2048-node 3-D torus (BlueGene-style): slim nodes, wide machine."""
    return Machine(
        node=NodeSpec(cores=16, flops_per_core=12e9, mem_bandwidth=100e9,
                      compute_efficiency=0.40),
        network=NetworkModel("omnipath"),
        topology=Torus3D((16, 16, 8)),
        name="torus-cluster",
    )


def _dragonfly_cluster() -> Machine:
    """1024-node dragonfly (Cray-style): fat nodes, hierarchical wiring."""
    return Machine(
        node=NodeSpec(cores=64, flops_per_core=20e9, mem_bandwidth=200e9,
                      compute_efficiency=0.30),
        network=NetworkModel("infiniband-edr"),
        topology=Dragonfly(groups=16, routers_per_group=8, hosts_per_router=8),
        name="dragonfly-cluster",
    )


MACHINE_PRESETS = {
    "default-cluster": _default_cluster,
    "torus-cluster": _torus_cluster,
    "dragonfly-cluster": _dragonfly_cluster,
}


def get_machine(name: str = "default-cluster") -> Machine:
    """Instantiate a machine preset by name."""
    try:
        return MACHINE_PRESETS[name]()
    except KeyError:
        raise ValueError(
            f"Unknown machine {name!r}; available: {sorted(MACHINE_PRESETS)}"
        ) from None
