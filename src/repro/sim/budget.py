"""Wall-clock budgets and retry/resubmission policy for simulated runs.

Real scheduler logs are full of jobs killed at the partition time limit
and resubmitted with a longer one.  This module gives the simulator the
same vocabulary:

* :class:`ExecutionBudget` — the per-run wall-clock limit, either a flat
  number of seconds or a node-second allocation divided by the nodes a
  run occupies (so bigger jobs get less wall-clock, like a real
  core-hour account).
* :class:`RetryPolicy` — how many submissions a run gets, how long the
  resubmission backoff waits (exponential, with deterministic jitter),
  and whether each resubmission escalates the budget.
* :class:`Attempt` / :class:`AttemptTrace` — the per-submission record
  kept on the final :class:`~repro.sim.trace.ExecutionRecord`, so
  censored-then-resubmitted runs stay auditable end to end.

Everything here is deterministic: the same ``(seed, run identity,
policy)`` always yields the same attempt seeds, backoff delays, and
outcome, which keeps history datasets reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

import numpy as np

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - types only
    from .machine import Machine

__all__ = ["ExecutionBudget", "RetryPolicy", "Attempt", "AttemptTrace"]


@dataclass(frozen=True)
class ExecutionBudget:
    """Per-run wall-clock budget.

    Exactly one of the two shapes is active:

    * ``limit`` — flat wall-clock seconds per run, regardless of size
      (a partition time limit).
    * ``node_seconds`` — an allocation divided by the number of nodes a
      run occupies, so the effective limit shrinks as jobs grow (a
      core-hour account).  Requires a machine to resolve.

    With both ``None`` the budget is unlimited (the executor's historical
    behavior).
    """

    limit: float | None = None
    node_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.limit is not None and self.limit <= 0:
            raise ConfigurationError("limit must be positive seconds.")
        if self.node_seconds is not None and self.node_seconds <= 0:
            raise ConfigurationError("node_seconds must be positive.")
        if self.limit is not None and self.node_seconds is not None:
            raise ConfigurationError(
                "Give either a flat limit or node_seconds, not both."
            )

    @classmethod
    def unlimited(cls) -> "ExecutionBudget":
        return cls()

    @classmethod
    def from_machine(
        cls, machine: "Machine", node_hours: float = 1.0
    ) -> "ExecutionBudget":
        """Budget derived from the machine: ``node_hours`` node-hours per
        run, spread over however many nodes the run occupies.  Rejects
        allocations so small that a full-machine run would be killed in
        under a second."""
        if node_hours <= 0:
            raise ConfigurationError("node_hours must be positive.")
        node_seconds = node_hours * 3600.0
        if node_seconds / machine.topology.n_hosts() < 1.0:
            raise ConfigurationError(
                f"{node_hours:g} node-hours gives a full-machine run on "
                f"{machine.name} less than one second of wall clock."
            )
        return cls(node_seconds=node_seconds)

    @property
    def bounded(self) -> bool:
        return self.limit is not None or self.node_seconds is not None

    def limit_for(self, machine: "Machine", nprocs: int) -> float | None:
        """Effective wall-clock limit (seconds) for one run, or None."""
        if self.limit is not None:
            return self.limit
        if self.node_seconds is not None:
            return self.node_seconds / machine.nodes_for(nprocs)
        return None

    def scaled(self, factor: float) -> "ExecutionBudget":
        """Budget with every limit multiplied by ``factor`` (>= 1 for
        escalated resubmissions)."""
        if factor <= 0:
            raise ConfigurationError("factor must be positive.")
        return ExecutionBudget(
            limit=None if self.limit is None else self.limit * factor,
            node_seconds=(
                None if self.node_seconds is None else self.node_seconds * factor
            ),
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Resubmission policy for runs killed at the budget limit.

    Attributes
    ----------
    max_attempts:
        Total submissions a run gets (1 = no resubmission).
    backoff_base:
        Queue-wait seconds before the first resubmission.
    backoff_factor:
        Multiplier applied to the backoff for each further resubmission
        (exponential backoff).
    backoff_jitter:
        Relative jitter on each backoff delay, drawn deterministically
        from the attempt's seed (0.1 = up to ±10 %).
    escalation:
        Budget multiplier per resubmission: attempt ``k`` (0-based) runs
        under ``budget.scaled(escalation ** k)``.  1.0 keeps the budget
        fixed; > 1 models "resubmit with a longer time limit".
    """

    max_attempts: int = 1
    backoff_base: float = 60.0
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.1
    escalation: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1.")
        if self.backoff_base < 0:
            raise ConfigurationError("backoff_base must be >= 0.")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1.")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ConfigurationError("backoff_jitter must be in [0, 1).")
        if self.escalation < 1.0:
            raise ConfigurationError("escalation must be >= 1.")

    def budget_factor(self, attempt: int) -> float:
        """Budget escalation factor in force on 0-based ``attempt``."""
        if attempt < 0:
            raise ConfigurationError("attempt must be >= 0.")
        return self.escalation**attempt

    def backoff_delay(self, attempt: int, rng: np.random.Generator) -> float:
        """Queue-wait seconds before 0-based ``attempt`` starts.

        Attempt 0 is the original submission (no wait).  Jitter is drawn
        from ``rng`` so the delay is deterministic per attempt seed.
        """
        if attempt < 0:
            raise ConfigurationError("attempt must be >= 0.")
        if attempt == 0:
            return 0.0
        delay = self.backoff_base * self.backoff_factor ** (attempt - 1)
        if self.backoff_jitter > 0:
            delay *= 1.0 + self.backoff_jitter * float(
                rng.uniform(-1.0, 1.0)
            )
        return delay


@dataclass(frozen=True)
class Attempt:
    """One submission of one run.

    Attributes
    ----------
    index:
        0-based attempt number (0 = original submission).
    seed:
        Noise-stream seed this attempt ran under.
    limit:
        Wall-clock limit in force (None = unlimited).
    runtime:
        Observed wall-clock seconds.  For a timed-out attempt this is
        the limit itself — the censored value a scheduler log records.
    timed_out:
        True when the attempt was killed at the limit.
    backoff:
        Queue-wait seconds between the previous kill and this
        submission (0 for the original submission).
    queue_wait:
        Scheduler queue-wait seconds between this submission and job
        start (0 when no queue simulator is attached).
    """

    index: int
    seed: int
    limit: float | None
    runtime: float
    timed_out: bool
    backoff: float = 0.0
    queue_wait: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "seed": self.seed,
            "limit": self.limit,
            "runtime": self.runtime,
            "timed_out": self.timed_out,
            "backoff": self.backoff,
            "queue_wait": self.queue_wait,
        }


@dataclass(frozen=True)
class AttemptTrace:
    """Every submission one run went through, in order."""

    attempts: tuple[Attempt, ...]

    def __post_init__(self) -> None:
        if not self.attempts:
            raise ConfigurationError("AttemptTrace needs >= 1 attempt.")

    def __len__(self) -> int:
        return len(self.attempts)

    def __iter__(self) -> Iterator[Attempt]:
        return iter(self.attempts)

    @property
    def final(self) -> Attempt:
        return self.attempts[-1]

    @property
    def n_attempts(self) -> int:
        return len(self.attempts)

    @property
    def resubmissions(self) -> int:
        return len(self.attempts) - 1

    @property
    def timed_out(self) -> bool:
        """True when even the final attempt hit its limit."""
        return self.final.timed_out

    @property
    def total_wait(self) -> float:
        """Seconds this run spent waiting rather than running: every
        resubmission backoff plus every scheduler queue wait.  This is
        the cumulative ``wait_seconds`` recorded on the final
        :class:`~repro.sim.trace.ExecutionRecord`."""
        return sum(a.backoff + a.queue_wait for a in self.attempts)

    @property
    def total_wall_clock(self) -> float:
        """Seconds of machine + queue time consumed across all attempts
        (what the run actually cost, not what the history records)."""
        return sum(a.runtime + a.backoff + a.queue_wait for a in self.attempts)

    @property
    def wasted_wall_clock(self) -> float:
        """Seconds spent on attempts that produced no usable measurement,
        plus every queue-wait backoff.  For a run that eventually finished
        this is ``total_wall_clock`` minus the final attempt's runtime;
        for a fully censored run every second was wasted."""
        if self.timed_out:
            return self.total_wall_clock
        return self.total_wall_clock - self.final.runtime

    def total_cost(self, cores: int = 1) -> float:
        """Core-seconds this run consumed across every attempt.

        Each attempt is charged ``(runtime + backoff) * cores``: killed
        attempts burn their full limit, and the backoff queue wait holds
        the allocation's reservation (the "queue-aware budget" model the
        campaign ledger charges against).
        """
        if cores < 1:
            raise ConfigurationError("cores must be >= 1.")
        return self.total_wall_clock * cores

    def wasted_cost(self, cores: int = 1) -> float:
        """Core-seconds spent on killed attempts and backoff waits —
        the part of :meth:`total_cost` that bought no measurement."""
        if cores < 1:
            raise ConfigurationError("cores must be >= 1.")
        return self.wasted_wall_clock * cores

    def to_dict(self) -> dict[str, Any]:
        return {
            "n_attempts": self.n_attempts,
            "resubmissions": self.resubmissions,
            "timed_out": self.timed_out,
            "total_wait": self.total_wait,
            "total_wall_clock": self.total_wall_clock,
            "wasted_wall_clock": self.wasted_wall_clock,
            "attempts": [a.to_dict() for a in self.attempts],
        }
