"""Compute-node and whole-machine models.

On-node computation time uses a roofline model: a phase is limited either
by peak floating-point throughput or by memory bandwidth, whichever bound
is larger, with the node's memory bandwidth shared among the processes
placed on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import math

from .network import NetworkModel
from .topology import FatTree, Topology

__all__ = ["NodeSpec", "Machine"]


@dataclass(frozen=True)
class NodeSpec:
    """Hardware description of one compute node.

    Attributes
    ----------
    cores:
        Processes per node (one process per core).
    flops_per_core:
        Peak double-precision flop/s per core.
    mem_bandwidth:
        Node memory bandwidth in bytes/s, shared across cores.
    compute_efficiency:
        Fraction of peak a real kernel sustains (applied to the flop
        bound).
    """

    cores: int = 32
    flops_per_core: float = 16e9
    mem_bandwidth: float = 160e9
    compute_efficiency: float = 0.35

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1.")
        if self.flops_per_core <= 0 or self.mem_bandwidth <= 0:
            raise ValueError("Hardware rates must be positive.")
        if not 0.0 < self.compute_efficiency <= 1.0:
            raise ValueError("compute_efficiency must be in (0, 1].")


@dataclass
class Machine:
    """A cluster: node spec + interconnect + topology.

    The default machine is a 1024-node fat-tree cluster — large enough for
    every scale the evaluation sweeps (up to 4096 processes at 32
    cores/node... comfortably).
    """

    node: NodeSpec = field(default_factory=NodeSpec)
    network: NetworkModel = field(default_factory=NetworkModel)
    topology: Topology = field(default_factory=lambda: FatTree(k=16))
    name: str = "default-cluster"

    def max_procs(self) -> int:
        return self.topology.n_hosts() * self.node.cores

    def nodes_for(self, nprocs: int) -> int:
        """Nodes occupied by ``nprocs`` processes (block placement)."""
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1.")
        if nprocs > self.max_procs():
            raise ValueError(
                f"{nprocs} processes exceed machine capacity {self.max_procs()}."
            )
        return math.ceil(nprocs / self.node.cores)

    def compute_time(self, flops: float, mem_bytes: float, nprocs: int) -> float:
        """Roofline time for one process's share of a phase.

        Parameters
        ----------
        flops, mem_bytes:
            Work and memory traffic **per process**.
        nprocs:
            Total processes of the job (determines how many cores share
            each node's memory bandwidth).
        """
        if flops < 0 or mem_bytes < 0:
            raise ValueError("Work amounts must be non-negative.")
        n_nodes = self.nodes_for(nprocs)
        procs_per_node = min(self.node.cores, math.ceil(nprocs / n_nodes))
        flop_rate = self.node.flops_per_core * self.node.compute_efficiency
        bw_per_proc = self.node.mem_bandwidth / procs_per_node
        t_flops = flops / flop_rate
        t_mem = mem_bytes / bw_per_proc
        return max(t_flops, t_mem)

    def hops(self, nprocs: int) -> float:
        """Average network hops between the job's nodes; 1.0 on-node."""
        n_nodes = self.nodes_for(nprocs)
        if n_nodes == 1:
            return 1.0
        return self.topology.average_hops(n_nodes)

    def contention(self, nprocs: int) -> float:
        """Bandwidth-sharing factor for dense traffic among the job's
        nodes."""
        n_nodes = self.nodes_for(nprocs)
        if n_nodes == 1:
            return 1.0
        return self.topology.contention_factor(n_nodes)

    def job_is_single_node(self, nprocs: int) -> bool:
        return self.nodes_for(nprocs) == 1
