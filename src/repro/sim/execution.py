"""Execution engine: turns an application's phase model into a timed run.

The :class:`Executor` combines the machine's roofline compute model with
the collective cost models and applies a run-to-run noise model.  Noise
is a deterministic function of ``(seed, app, params, nprocs, rep)`` so a
history dataset is reproducible regardless of the order in which runs are
simulated — important for benchmark stability.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from .collectives import COLLECTIVES
from .machine import Machine
from .trace import ExecutionRecord, PhaseTiming

__all__ = ["NoiseModel", "Executor"]


@dataclass(frozen=True)
class NoiseModel:
    """Run-to-run variability model.

    Attributes
    ----------
    sigma:
        Log-normal multiplicative noise scale (0.03 ≈ 3 % typical
        cluster variability).
    jitter_prob:
        Probability a run is hit by an OS/network interference event.
    jitter_scale:
        Relative magnitude of such an event (uniform in
        [0, jitter_scale] extra fraction of runtime).
    """

    sigma: float = 0.03
    jitter_prob: float = 0.05
    jitter_scale: float = 0.10

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative.")
        if not 0.0 <= self.jitter_prob <= 1.0:
            raise ValueError("jitter_prob must be in [0, 1].")
        if self.jitter_scale < 0:
            raise ValueError("jitter_scale must be non-negative.")

    def apply(self, runtime: float, rng: np.random.Generator) -> float:
        noisy = runtime * float(np.exp(rng.normal(0.0, self.sigma)))
        if self.jitter_prob > 0 and rng.random() < self.jitter_prob:
            noisy *= 1.0 + float(rng.random()) * self.jitter_scale
        return noisy


def _run_seed(
    base_seed: int, app_name: str, params: dict[str, float], nprocs: int, rep: int
) -> int:
    """Stable per-run seed derived from the run's identity."""
    key = f"{base_seed}|{app_name}|{sorted(params.items())}|{nprocs}|{rep}"
    digest = hashlib.sha256(key.encode()).digest()
    return int.from_bytes(digest[:8], "little")


class Executor:
    """Simulates application executions on a machine.

    Parameters
    ----------
    machine:
        Target cluster model.
    noise:
        Run-to-run variability; pass ``NoiseModel(sigma=0, jitter_prob=0)``
        for noise-free ground truth.
    seed:
        Base seed from which every run's noise stream is derived.
    """

    def __init__(
        self,
        machine: Machine | None = None,
        noise: NoiseModel | None = None,
        seed: int = 0,
    ) -> None:
        self.machine = machine if machine is not None else Machine()
        self.noise = noise if noise is not None else NoiseModel()
        self.seed = seed

    def model_phases(self, app, params: dict[str, float], nprocs: int) -> list[PhaseTiming]:
        """Noise-free per-phase timings for one configuration."""
        timings: list[PhaseTiming] = []
        for phase in app.phases(params, nprocs):
            compute = self.machine.compute_time(phase.flops, phase.mem_bytes, nprocs)
            comm = 0.0
            for op in phase.comm:
                try:
                    fn = COLLECTIVES[op.op]
                except KeyError:
                    raise ValueError(
                        f"Unknown communication op {op.op!r} in phase "
                        f"{phase.name!r} of {app.name}."
                    ) from None
                if op.op == "ptp":
                    comm += fn(self.machine, op.nbytes, nprocs, count=op.count)
                else:
                    comm += op.count * fn(self.machine, op.nbytes, nprocs)
            timings.append(PhaseTiming(phase.name, compute, comm))
        return timings

    def model_time(self, app, params: dict[str, float], nprocs: int) -> float:
        """Noise-free total runtime for one configuration."""
        return sum(t.total for t in self.model_phases(app, params, nprocs))

    def run(
        self, app, params: dict[str, float], nprocs: int, rep: int = 0
    ) -> ExecutionRecord:
        """Simulate one execution and return its trace record."""
        app.validate_params(params)
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1.")
        phases = self.model_phases(app, params, nprocs)
        model_runtime = sum(t.total for t in phases)
        if model_runtime <= 0:
            raise RuntimeError(
                f"{app.name} produced non-positive model runtime for "
                f"params={params}, nprocs={nprocs}."
            )
        rng = np.random.default_rng(
            _run_seed(self.seed, app.name, params, nprocs, rep)
        )
        runtime = self.noise.apply(model_runtime, rng)
        return ExecutionRecord(
            app_name=app.name,
            params=dict(params),
            nprocs=nprocs,
            runtime=runtime,
            model_runtime=model_runtime,
            phases=tuple(phases),
            rep=rep,
        )
