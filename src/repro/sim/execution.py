"""Execution engine: turns an application's phase model into a timed run.

The :class:`Executor` combines the machine's roofline compute model with
the collective cost models and applies a run-to-run noise model.  Noise
is a deterministic function of ``(seed, app, params, nprocs, rep)`` so a
history dataset is reproducible regardless of the order in which runs are
simulated — important for benchmark stability.

Runs can execute under a wall-clock :class:`~repro.sim.budget.ExecutionBudget`
with a :class:`~repro.sim.budget.RetryPolicy`: an attempt whose noisy
runtime exceeds the limit is killed (its censored runtime is the limit
itself) and resubmitted with a fresh deterministic noise seed, an
exponential-backoff queue wait, and an optionally escalated budget.  A
run that times out on every attempt raises
:class:`~repro.errors.ExecutionTimeoutError` carrying the censored
record, so callers can keep the partial observation instead of losing
the run.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, ExecutionTimeoutError, SimulationError
from .budget import Attempt, AttemptTrace, ExecutionBudget, RetryPolicy
from .collectives import COLLECTIVES
from .machine import Machine
from .trace import ExecutionRecord, PhaseTiming

__all__ = ["NoiseModel", "Executor"]


@dataclass(frozen=True)
class NoiseModel:
    """Run-to-run variability model.

    Attributes
    ----------
    sigma:
        Log-normal multiplicative noise scale (0.03 ≈ 3 % typical
        cluster variability).
    jitter_prob:
        Probability a run is hit by an OS/network interference event.
    jitter_scale:
        Relative magnitude of such an event (uniform in
        [0, jitter_scale] extra fraction of runtime).
    """

    sigma: float = 0.03
    jitter_prob: float = 0.05
    jitter_scale: float = 0.10

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative.")
        if not 0.0 <= self.jitter_prob <= 1.0:
            raise ValueError("jitter_prob must be in [0, 1].")
        if self.jitter_scale < 0:
            raise ValueError("jitter_scale must be non-negative.")

    def apply(self, runtime: float, rng: np.random.Generator) -> float:
        noisy = runtime * float(np.exp(rng.normal(0.0, self.sigma)))
        if self.jitter_prob > 0 and rng.random() < self.jitter_prob:
            noisy *= 1.0 + float(rng.random()) * self.jitter_scale
        return noisy


def _run_seed(
    base_seed: int,
    app_name: str,
    params: dict[str, float],
    nprocs: int,
    rep: int,
    attempt: int = 0,
) -> int:
    """Stable per-run seed derived from the run's identity.

    Resubmissions (attempt > 0) fold the attempt index into the key so
    each retry sees fresh-but-reproducible noise; attempt 0 keeps the
    original key so pre-budget histories are bit-identical.
    """
    key = f"{base_seed}|{app_name}|{sorted(params.items())}|{nprocs}|{rep}"
    if attempt:
        key += f"|attempt={attempt}"
    digest = hashlib.sha256(key.encode()).digest()
    return int.from_bytes(digest[:8], "little")


class Executor:
    """Simulates application executions on a machine.

    Parameters
    ----------
    machine:
        Target cluster model.
    noise:
        Run-to-run variability; pass ``NoiseModel(sigma=0, jitter_prob=0)``
        for noise-free ground truth.
    seed:
        Base seed from which every run's noise stream is derived.
    budget:
        Default wall-clock budget per run (unlimited when None).
    retry:
        Default resubmission policy for timed-out runs (single attempt
        when None).
    queue:
        Optional :class:`repro.sched.QueueSimulator`.  When attached,
        every submission is probed against the simulated scheduler
        queue: the record's ``wait_seconds`` carries the queue wait (plus
        any retry backoffs) and ``queue_state`` snapshots the queue
        features at submission.  The probe draws nothing from the run's
        noise stream, so runtimes stay bit-identical with or without a
        queue.
    """

    def __init__(
        self,
        machine: Machine | None = None,
        noise: NoiseModel | None = None,
        seed: int = 0,
        budget: ExecutionBudget | None = None,
        retry: RetryPolicy | None = None,
        queue=None,
    ) -> None:
        self.machine = machine if machine is not None else Machine()
        self.noise = noise if noise is not None else NoiseModel()
        self.seed = seed
        self.budget = budget if budget is not None else ExecutionBudget.unlimited()
        self.retry = retry if retry is not None else RetryPolicy()
        self.queue = queue

    def model_phases(self, app, params: dict[str, float], nprocs: int) -> list[PhaseTiming]:
        """Noise-free per-phase timings for one configuration."""
        timings: list[PhaseTiming] = []
        for phase in app.phases(params, nprocs):
            compute = self.machine.compute_time(phase.flops, phase.mem_bytes, nprocs)
            comm = 0.0
            for op in phase.comm:
                try:
                    fn = COLLECTIVES[op.op]
                except KeyError:
                    raise ValueError(
                        f"Unknown communication op {op.op!r} in phase "
                        f"{phase.name!r} of {app.name}."
                    ) from None
                if op.op == "ptp":
                    comm += fn(self.machine, op.nbytes, nprocs, count=op.count)
                else:
                    comm += op.count * fn(self.machine, op.nbytes, nprocs)
            timings.append(PhaseTiming(phase.name, compute, comm))
        return timings

    def model_time(self, app, params: dict[str, float], nprocs: int) -> float:
        """Noise-free total runtime for one configuration."""
        return sum(t.total for t in self.model_phases(app, params, nprocs))

    def run(
        self,
        app,
        params: dict[str, float],
        nprocs: int,
        rep: int = 0,
        budget: ExecutionBudget | None = None,
        retry: RetryPolicy | None = None,
    ) -> ExecutionRecord:
        """Simulate one execution and return its trace record.

        ``budget``/``retry`` override the executor-level defaults for
        this run only.  Under a finite budget the run is resubmitted (up
        to ``retry.max_attempts`` total submissions) whenever its noisy
        runtime exceeds the limit in force; when every attempt times
        out, :class:`~repro.errors.ExecutionTimeoutError` is raised with
        the censored record attached.
        """
        app.validate_params(params)
        if nprocs < 1:
            raise ConfigurationError("nprocs must be >= 1.")
        budget = budget if budget is not None else self.budget
        retry = retry if retry is not None else self.retry
        phases = self.model_phases(app, params, nprocs)
        model_runtime = sum(t.total for t in phases)
        if model_runtime <= 0:
            raise SimulationError(
                f"{app.name} produced non-positive model runtime for "
                f"params={params}, nprocs={nprocs}."
            )

        queue_state: dict[str, float] | None = None

        def record_for(
            runtime: float,
            censored: bool,
            trace: AttemptTrace | None,
            wait_seconds: float = 0.0,
        ) -> ExecutionRecord:
            return ExecutionRecord(
                app_name=app.name,
                params=dict(params),
                nprocs=nprocs,
                runtime=runtime,
                model_runtime=model_runtime,
                phases=tuple(phases),
                rep=rep,
                censored=censored,
                attempts=trace,
                wait_seconds=wait_seconds,
                queue_state=queue_state,
            )

        def probe_queue(seed: int, limit: float | None) -> float:
            """Queue wait for one submission; snapshots the first probe's
            queue features.  Derives everything from the attempt seed so
            the run's noise stream is untouched."""
            nonlocal queue_state
            if self.queue is None:
                return 0.0
            obs = self.queue.submit(
                key=seed,
                nodes=self.machine.nodes_for(nprocs),
                time_limit=limit if limit is not None else model_runtime,
            )
            if queue_state is None:
                queue_state = obs.features()
            return obs.wait_seconds

        if not budget.bounded:
            seed = _run_seed(self.seed, app.name, params, nprocs, rep)
            rng = np.random.default_rng(seed)
            wait = probe_queue(seed, None)
            return record_for(
                self.noise.apply(model_runtime, rng), False, None, wait
            )

        attempts: list[Attempt] = []
        for attempt in range(retry.max_attempts):
            seed = _run_seed(
                self.seed, app.name, params, nprocs, rep, attempt=attempt
            )
            rng = np.random.default_rng(seed)
            limit = budget.scaled(retry.budget_factor(attempt)).limit_for(
                self.machine, nprocs
            )
            backoff = retry.backoff_delay(attempt, rng)
            queue_wait = probe_queue(seed, limit)
            runtime = self.noise.apply(model_runtime, rng)
            timed_out = limit is not None and runtime > limit
            attempts.append(
                Attempt(
                    index=attempt,
                    seed=seed,
                    limit=limit,
                    runtime=float(limit) if timed_out else runtime,
                    timed_out=timed_out,
                    backoff=backoff,
                    queue_wait=queue_wait,
                )
            )
            if not timed_out:
                trace = AttemptTrace(tuple(attempts))
                return record_for(runtime, False, trace, trace.total_wait)

        trace = AttemptTrace(tuple(attempts))
        censored = record_for(trace.final.runtime, True, trace, trace.total_wait)
        raise ExecutionTimeoutError(
            f"{app.name} at nprocs={nprocs} (rep={rep}) exceeded its "
            f"{trace.final.limit:g} s wall-clock budget on all "
            f"{retry.max_attempts} attempt(s).",
            partial_runtime=trace.final.runtime,
            attempts=trace,
            record=censored,
        )
