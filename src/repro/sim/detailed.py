"""Per-rank execution simulation with structured load imbalance.

The baseline :class:`~repro.sim.Executor` charges every process the
same phase time and perturbs the total multiplicatively.  Real runs are
messier: ranks do *different* amounts of work (partition imbalance),
and synchronization points (halo exchanges, collectives) convert the
per-rank spread into extra critical-path time — slow ranks drag
everyone at every barrier-like operation.

:class:`DetailedExecutor` models exactly that: it tracks one clock per
rank, applies per-rank work multipliers, and enforces the
synchronization semantics of each communication operation:

* collectives synchronize all ranks (all leave at the common finish
  time: max arrival + operation cost);
* point-to-point halo exchanges synchronize each rank with its grid
  neighborhood (slowness diffuses a few hops per exchange instead of
  globally).

Everything is vectorized over ranks, so even 4096-rank simulations cost
a handful of numpy operations per phase.  The imbalance extension
experiment uses this to test the two-level model against structurally
(rather than i.i.d.) noisy histories.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from .collectives import COLLECTIVES
from .machine import Machine
from .trace import ExecutionRecord, PhaseTiming

__all__ = ["LoadImbalanceModel", "DetailedExecutor"]


@dataclass(frozen=True)
class LoadImbalanceModel:
    """Per-rank work multipliers.

    Attributes
    ----------
    static_sigma:
        Lognormal spread of each rank's *persistent* speed factor
        (partition size differences, thermal throttling, slow node).
    dynamic_sigma:
        Lognormal spread re-drawn per phase (OS interference).
    straggler_prob, straggler_factor:
        Probability that a rank is a persistent straggler and its
        slowdown multiplier.
    """

    static_sigma: float = 0.02
    dynamic_sigma: float = 0.01
    straggler_prob: float = 0.002
    straggler_factor: float = 1.5

    def __post_init__(self) -> None:
        if self.static_sigma < 0 or self.dynamic_sigma < 0:
            raise ValueError("sigmas must be non-negative.")
        if not 0.0 <= self.straggler_prob <= 1.0:
            raise ValueError("straggler_prob must be in [0, 1].")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1.")

    def static_factors(
        self, nprocs: int, rng: np.random.Generator
    ) -> np.ndarray:
        f = np.exp(rng.normal(0.0, self.static_sigma, size=nprocs))
        if self.straggler_prob > 0:
            stragglers = rng.random(nprocs) < self.straggler_prob
            f = np.where(stragglers, f * self.straggler_factor, f)
        return f

    def dynamic_factors(
        self, nprocs: int, rng: np.random.Generator
    ) -> np.ndarray:
        if self.dynamic_sigma == 0:
            return np.ones(nprocs)
        return np.exp(rng.normal(0.0, self.dynamic_sigma, size=nprocs))


def _neighbor_sync(clocks: np.ndarray, rounds: int = 1) -> np.ndarray:
    """Synchronize each rank with its +-1 ring neighbors ``rounds``
    times (wrap-around): t_i <- max(t_{i-1}, t_i, t_{i+1}).

    A 1-D ring stands in for the application's neighbor graph: what
    matters for the critical path is that slowness spreads locally per
    exchange rather than globally, and the ring gives exactly that
    diffusion behavior with O(p) work.
    """
    t = clocks
    for _ in range(rounds):
        t = np.maximum(t, np.maximum(np.roll(t, 1), np.roll(t, -1)))
    return t


def _run_seed(
    base_seed: int, app_name: str, params: dict[str, float], nprocs: int, rep: int
) -> int:
    key = f"detailed|{base_seed}|{app_name}|{sorted(params.items())}|{nprocs}|{rep}"
    digest = hashlib.sha256(key.encode()).digest()
    return int.from_bytes(digest[:8], "little")


class DetailedExecutor:
    """Per-rank simulator with load imbalance.

    Parameters
    ----------
    machine:
        Target cluster model.
    imbalance:
        Per-rank work spread; defaults to a mild realistic setting.
    seed:
        Base seed; per-run streams derive deterministically from the
        run identity, like the baseline executor.
    max_tracked_ranks:
        Rank vectors are capped at this size (slowdown statistics
        converge quickly in p; the cap bounds memory for huge jobs).
    """

    def __init__(
        self,
        machine: Machine | None = None,
        imbalance: LoadImbalanceModel | None = None,
        seed: int = 0,
        max_tracked_ranks: int = 8192,
    ) -> None:
        self.machine = machine if machine is not None else Machine()
        self.imbalance = (
            imbalance if imbalance is not None else LoadImbalanceModel()
        )
        self.seed = seed
        if max_tracked_ranks < 1:
            raise ValueError("max_tracked_ranks must be >= 1.")
        self.max_tracked_ranks = max_tracked_ranks

    def run(
        self, app, params: dict[str, float], nprocs: int, rep: int = 0
    ) -> ExecutionRecord:
        """Simulate one execution with per-rank clocks."""
        app.validate_params(params)
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1.")
        rng = np.random.default_rng(
            _run_seed(self.seed, app.name, params, nprocs, rep)
        )
        n_ranks = min(nprocs, self.max_tracked_ranks)
        static = self.imbalance.static_factors(n_ranks, rng)

        clocks = np.zeros(n_ranks)
        phase_timings: list[PhaseTiming] = []
        for phase in app.phases(params, nprocs):
            start = clocks.copy()
            base_compute = self.machine.compute_time(
                phase.flops, phase.mem_bytes, nprocs
            )
            dynamic = self.imbalance.dynamic_factors(n_ranks, rng)
            clocks = clocks + base_compute * static * dynamic

            comm_base = 0.0
            for op in phase.comm:
                fn = COLLECTIVES.get(op.op)
                if fn is None:
                    raise ValueError(
                        f"Unknown communication op {op.op!r} in phase "
                        f"{phase.name!r} of {app.name}."
                    )
                if op.op == "ptp":
                    cost = fn(self.machine, op.nbytes, nprocs, count=op.count)
                    comm_base += cost
                    if nprocs > 1 and cost > 0:
                        # Neighbor synchronization; slowness diffuses a
                        # bounded number of hops over the phase.
                        rounds = int(min(np.sqrt(max(op.count, 1)), 8))
                        clocks = _neighbor_sync(clocks, rounds=rounds) + cost
                else:
                    cost = op.count * fn(self.machine, op.nbytes, nprocs)
                    comm_base += cost
                    if nprocs > 1 and (cost > 0 or op.count > 0):
                        # Collective: global synchronization.
                        clocks = np.full(n_ranks, float(clocks.max()) + cost)
            phase_total = clocks - start
            compute_part = float(
                np.mean(base_compute * static * dynamic)
            )
            comm_part = float(np.mean(phase_total)) - compute_part
            phase_timings.append(
                PhaseTiming(phase.name, compute_part, max(comm_part, 0.0))
            )

        runtime = float(clocks.max())
        model_runtime = sum(
            self.machine.compute_time(ph.flops, ph.mem_bytes, nprocs)
            + sum(
                (
                    COLLECTIVES[op.op](self.machine, op.nbytes, nprocs,
                                       count=op.count)
                    if op.op == "ptp"
                    else op.count * COLLECTIVES[op.op](self.machine, op.nbytes,
                                                       nprocs)
                )
                for op in ph.comm
            )
            for ph in app.phases(params, nprocs)
        )
        if runtime <= 0 or model_runtime <= 0:
            raise RuntimeError(
                f"{app.name} produced non-positive runtime for "
                f"params={params}, nprocs={nprocs}."
            )
        return ExecutionRecord(
            app_name=app.name,
            params=dict(params),
            nprocs=nprocs,
            runtime=runtime,
            model_runtime=model_runtime,
            phases=tuple(phase_timings),
            rep=rep,
        )

    # The HistoryGenerator duck-types on .run(); expose the same helper
    # surface as the baseline executor for interchangeability.
    def model_time(self, app, params: dict[str, float], nprocs: int) -> float:
        """Imbalance-free cost-model runtime (same as baseline)."""
        from .execution import Executor, NoiseModel

        quiet = Executor(
            machine=self.machine,
            noise=NoiseModel(sigma=0.0, jitter_prob=0.0),
            seed=self.seed,
        )
        return quiet.model_time(app, params, nprocs)
