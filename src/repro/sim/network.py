"""LogGP-style network cost model.

Point-to-point message time follows the LogGP parameterization
(Alexandrov et al.): latency ``L``, per-message CPU overhead ``o``, and
per-byte gap ``G`` (inverse bandwidth).  Topology effects enter through a
hop-dependent latency term and a contention factor supplied by
:mod:`repro.sim.topology`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LogGPParams", "NetworkModel"]


@dataclass(frozen=True)
class LogGPParams:
    """LogGP parameters of one interconnect class.

    Attributes
    ----------
    latency:
        Base one-hop wire+switch latency in seconds (L).
    overhead:
        Per-message send+receive CPU overhead in seconds (o).
    gap_per_byte:
        Seconds per transferred byte (G = 1 / bandwidth).
    eager_limit:
        Messages up to this size use the eager protocol; larger messages
        pay one extra rendezvous round trip.
    """

    latency: float = 1.5e-6
    overhead: float = 0.5e-6
    gap_per_byte: float = 1.0 / 10e9  # 10 GB/s links
    eager_limit: int = 8192

    def __post_init__(self) -> None:
        if self.latency <= 0 or self.overhead < 0 or self.gap_per_byte <= 0:
            raise ValueError("LogGP parameters must be positive.")
        if self.eager_limit < 0:
            raise ValueError("eager_limit must be non-negative.")


# Preset interconnects used by the benchmark machines.
PRESETS: dict[str, LogGPParams] = {
    "infiniband-edr": LogGPParams(
        latency=1.2e-6, overhead=0.4e-6, gap_per_byte=1.0 / 12e9, eager_limit=8192
    ),
    "omnipath": LogGPParams(
        latency=1.5e-6, overhead=0.5e-6, gap_per_byte=1.0 / 10e9, eager_limit=8192
    ),
    "ethernet-10g": LogGPParams(
        latency=12e-6, overhead=2e-6, gap_per_byte=1.0 / 1.1e9, eager_limit=4096
    ),
}


class NetworkModel:
    """Point-to-point message timing over a given topology.

    Parameters
    ----------
    params:
        LogGP parameters of the interconnect, or a preset name.
    intra_node_speedup:
        Factor by which intra-node (shared-memory) transfers beat the
        network in both latency and bandwidth.
    """

    def __init__(
        self,
        params: LogGPParams | str = "infiniband-edr",
        intra_node_speedup: float = 8.0,
    ) -> None:
        if isinstance(params, str):
            try:
                params = PRESETS[params]
            except KeyError:
                raise ValueError(
                    f"Unknown interconnect preset {params!r}; "
                    f"choose from {sorted(PRESETS)}"
                ) from None
        if intra_node_speedup < 1.0:
            raise ValueError("intra_node_speedup must be >= 1.")
        self.params = params
        self.intra_node_speedup = intra_node_speedup

    def ptp_time(
        self,
        nbytes: float,
        hops: float = 1.0,
        contention: float = 1.0,
        intra_node: bool = False,
    ) -> float:
        """Seconds to deliver one ``nbytes`` message.

        Parameters
        ----------
        hops:
            Average switch hops; scales the latency term.
        contention:
            Effective bandwidth divisor (>= 1) from concurrent traffic
            sharing links.
        intra_node:
            Shared-memory transfer shortcut.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative.")
        if hops < 1.0 or contention < 1.0:
            raise ValueError("hops and contention must be >= 1.")
        p = self.params
        lat = p.latency * hops
        gap = p.gap_per_byte * contention
        if intra_node:
            lat /= self.intra_node_speedup
            gap /= self.intra_node_speedup
        t = lat + p.overhead + nbytes * gap
        if nbytes > p.eager_limit:
            t += 2.0 * (lat + p.overhead)  # rendezvous handshake
        return t
