"""Machine-model calibration from microbenchmark measurements.

On a real platform, the cost-model parameters (LogGP latency/overhead/
gap, node flop rate and memory bandwidth) are not known a priori — they
are fitted from standard microbenchmarks: ping-pong sweeps over message
sizes for the network, and streaming/compute kernels for the node.
This module implements that fitting step against the same measurement
format the simulator produces, which closes the loop: a user can
calibrate a :class:`~repro.sim.Machine` to ping-pong/STREAM numbers
from their own cluster and then generate synthetic histories or sanity-
check the model's collective predictions.

The recovery tests in ``tests/sim/test_calibration.py`` verify that
parameters fitted from (noisy) simulated microbenchmarks match the
generating machine — the identifiability check a calibration procedure
owes its users.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .machine import Machine, NodeSpec
from .network import LogGPParams, NetworkModel

__all__ = [
    "PingPongSample",
    "NodeSample",
    "measure_pingpong",
    "fit_loggp",
    "measure_node",
    "fit_node",
    "calibrate_machine",
]


@dataclass(frozen=True)
class PingPongSample:
    """One ping-pong measurement.

    ``hops`` is the known switch distance between the two endpoints
    (from the wiring diagram); it lets the fit separate the per-hop
    wire latency from the per-message software overhead instead of
    double-counting topology latency downstream.
    """

    nbytes: float
    seconds: float
    hops: float = 1.0

    def __post_init__(self) -> None:
        if self.nbytes < 0 or self.seconds <= 0 or self.hops < 1.0:
            raise ValueError("Invalid ping-pong sample.")


def measure_pingpong(
    machine: Machine,
    sizes: Sequence[int] = (0, 64, 512, 4096, 32768, 262144, 2097152),
    hop_distances: Sequence[float] = (2.0, 4.0),
    noise_sigma: float = 0.0,
    rng: np.random.Generator | None = None,
) -> list[PingPongSample]:
    """Simulate ping-pong sweeps on a machine (the data a real
    calibration would collect with e.g. the OSU benchmarks, placing the
    two ranks at known switch distances)."""
    rng = rng if rng is not None else np.random.default_rng(0)
    samples = []
    for hops in hop_distances:
        for size in sizes:
            t = machine.network.ptp_time(
                float(size), hops=float(hops), contention=1.0,
                intra_node=False,
            )
            if noise_sigma > 0:
                t *= float(np.exp(rng.normal(0.0, noise_sigma)))
            samples.append(PingPongSample(float(size), t, float(hops)))
    return samples


def fit_loggp(
    samples: Sequence[PingPongSample],
    eager_limit: int = 8192,
) -> LogGPParams:
    """Fit LogGP parameters from ping-pong samples.

    Model: t = L*hops + o + n * G for eager messages, plus two extra
    (L*hops + o) round trips beyond the eager limit.  Separating the
    per-hop latency L from the software overhead o requires samples at
    two or more known hop distances; with a single distance only the
    sum is identifiable and the fit rejects the data.

    Requires samples on both sides of the eager limit.
    """
    if len(samples) < 4:
        raise ValueError("Need at least 4 ping-pong samples.")
    n = np.array([s.nbytes for s in samples])
    t = np.array([s.seconds for s in samples])
    hops = np.array([s.hops for s in samples])
    if len(set(hops.tolist())) < 2:
        raise ValueError(
            "Need ping-pong samples at two or more hop distances to "
            "separate latency from overhead."
        )
    rendezvous = (n > eager_limit).astype(np.float64)
    if rendezvous.all() or not rendezvous.any():
        raise ValueError(
            "Samples must straddle the eager limit to identify the "
            "rendezvous cost."
        )
    # Non-negative least squares on t = (L*hops + o)*(1 + 2*rz) + G*n —
    # all LogGP parameters are physically non-negative, and under noise
    # the small overhead term would otherwise fit slightly negative.
    # Rows are weighted by 1/t so the latency-dominated small messages
    # are not drowned out by the bandwidth-dominated large ones.
    from scipy.optimize import nnls

    factor = 1.0 + 2.0 * rendezvous
    A = np.column_stack([hops * factor, factor, n])
    w = 1.0 / t
    coef, _ = nnls(A * w[:, None], np.ones_like(t))
    latency, overhead, gap = (float(c) for c in coef)
    if latency <= 0 or gap <= 0:
        raise ValueError(
            "Ping-pong fit produced non-physical parameters; data is "
            "inconsistent with the LogGP model."
        )
    return LogGPParams(
        latency=latency,
        overhead=overhead,
        gap_per_byte=gap,
        eager_limit=eager_limit,
    )


@dataclass(frozen=True)
class NodeSample:
    """One node-kernel measurement.

    ``flops`` and ``mem_bytes`` are per process; ``seconds`` the
    measured time with ``nprocs_on_node`` processes sharing the node.
    """

    flops: float
    mem_bytes: float
    nprocs_on_node: int
    seconds: float


def measure_node(
    machine: Machine,
    noise_sigma: float = 0.0,
    rng: np.random.Generator | None = None,
) -> list[NodeSample]:
    """Simulate the two classic node microbenchmarks: a compute-bound
    DGEMM-like kernel and a bandwidth-bound STREAM-like kernel, each at
    1 process and at a fully packed node."""
    rng = rng if rng is not None else np.random.default_rng(0)
    cores = machine.node.cores
    kernels = [
        (1e10, 1e6),  # compute bound
        (1e6, 1e9),  # memory bound
    ]
    samples = []
    for flops, mem in kernels:
        for nprocs in (1, cores):
            t = machine.compute_time(flops, mem, nprocs)
            if noise_sigma > 0:
                t *= float(np.exp(rng.normal(0.0, noise_sigma)))
            samples.append(NodeSample(flops, mem, nprocs, t))
    return samples


def fit_node(samples: Sequence[NodeSample], cores: int) -> NodeSpec:
    """Fit the roofline node model from kernel measurements.

    The effective flop rate comes from the most compute-bound sample,
    the bandwidth from the most memory-bound packed sample (bandwidth
    is shared, so the packed run identifies the node total).
    """
    if not samples:
        raise ValueError("Need node samples.")
    flop_rates = []
    bandwidths = []
    for s in samples:
        if s.seconds <= 0:
            raise ValueError("Non-positive sample time.")
        flop_rates.append(s.flops / s.seconds)
        bandwidths.append(s.mem_bytes / s.seconds * min(s.nprocs_on_node, cores))
    eff_flops = max(flop_rates)
    node_bw = max(bandwidths)
    # Report at efficiency 1.0 over the *effective* rate: downstream
    # cost models only ever use the product flops_per_core * efficiency.
    return NodeSpec(
        cores=cores,
        flops_per_core=eff_flops,
        mem_bandwidth=node_bw,
        compute_efficiency=1.0,
    )


def calibrate_machine(
    reference: Machine,
    noise_sigma: float = 0.0,
    seed: int = 0,
) -> Machine:
    """End-to-end calibration against a reference machine's
    microbenchmarks (simulated stand-ins for real measurements).

    Returns a new :class:`Machine` with fitted node and network
    parameters and the reference's topology (topology is declared
    knowledge — wiring diagrams — not something ping-pong identifies).
    """
    rng = np.random.default_rng(seed)
    pp = measure_pingpong(reference, noise_sigma=noise_sigma, rng=rng)
    loggp = fit_loggp(pp, eager_limit=reference.network.params.eager_limit)
    node_samples = measure_node(reference, noise_sigma=noise_sigma, rng=rng)
    node = fit_node(node_samples, cores=reference.node.cores)
    return Machine(
        node=node,
        network=NetworkModel(
            loggp, intra_node_speedup=reference.network.intra_node_speedup
        ),
        topology=reference.topology,
        name=f"calibrated-{reference.name}",
    )
