"""Cluster simulator substrate.

Stands in for the paper's real HPC platform: a roofline node model, a
LogGP network with explicit topologies, MPI collective cost models, and
an execution engine with run-to-run noise.  See DESIGN.md for why this
substitution preserves the learning problem the paper studies.
"""

from .calibration import (
    PingPongSample,
    calibrate_machine,
    fit_loggp,
    fit_node,
    measure_node,
    measure_pingpong,
)
from .collectives import (
    COLLECTIVES,
    allgather,
    allreduce,
    alltoall,
    barrier,
    broadcast,
    ptp,
    reduce,
)
from .budget import Attempt, AttemptTrace, ExecutionBudget, RetryPolicy
from .detailed import DetailedExecutor, LoadImbalanceModel
from .execution import Executor, NoiseModel
from .machine import Machine, NodeSpec
from .machines import MACHINE_PRESETS, get_machine
from .network import LogGPParams, NetworkModel
from .topology import (
    Dragonfly,
    FatTree,
    Topology,
    Torus3D,
    average_compute_hops,
    dragonfly_graph,
    fat_tree_graph,
    torus_3d_graph,
)
from .trace import ExecutionRecord, PhaseTiming

__all__ = [
    "PingPongSample",
    "calibrate_machine",
    "fit_loggp",
    "fit_node",
    "measure_node",
    "measure_pingpong",
    "COLLECTIVES",
    "allgather",
    "allreduce",
    "alltoall",
    "barrier",
    "broadcast",
    "ptp",
    "reduce",
    "Attempt",
    "AttemptTrace",
    "ExecutionBudget",
    "RetryPolicy",
    "DetailedExecutor",
    "LoadImbalanceModel",
    "Executor",
    "NoiseModel",
    "Machine",
    "NodeSpec",
    "MACHINE_PRESETS",
    "get_machine",
    "LogGPParams",
    "NetworkModel",
    "Dragonfly",
    "FatTree",
    "Topology",
    "Torus3D",
    "average_compute_hops",
    "dragonfly_graph",
    "fat_tree_graph",
    "torus_3d_graph",
    "ExecutionRecord",
    "PhaseTiming",
]
