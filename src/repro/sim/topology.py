"""Interconnect topologies.

Two views are provided and kept consistent with each other:

* Graph constructors (:func:`fat_tree_graph`, :func:`torus_3d_graph`,
  :func:`dragonfly_graph`) build explicit networkx graphs used by tests
  and by the topology-exploration example.
* :class:`Topology` computes the quantities the cost model actually
  needs — average hop count between compute endpoints and a contention
  factor for a job of ``p`` processes — with closed forms where they
  exist, validated against the graphs in the test suite.
"""

from __future__ import annotations

import math

import networkx as nx
import numpy as np

__all__ = [
    "Topology",
    "FatTree",
    "Torus3D",
    "Dragonfly",
    "fat_tree_graph",
    "torus_3d_graph",
    "dragonfly_graph",
    "average_compute_hops",
]


def fat_tree_graph(k: int) -> nx.Graph:
    """Three-level k-ary fat tree (k even): k^3/4 hosts.

    Nodes are tagged with a ``kind`` attribute: host, edge, aggregation,
    or core.
    """
    if k < 2 or k % 2 != 0:
        raise ValueError("fat tree arity k must be even and >= 2.")
    G = nx.Graph()
    half = k // 2
    n_pods = k
    core_count = half * half
    for c in range(core_count):
        G.add_node(("core", c), kind="core")
    for pod in range(n_pods):
        for a in range(half):
            agg = ("agg", pod, a)
            G.add_node(agg, kind="aggregation")
            # Each aggregation switch connects to k/2 cores.
            for c in range(half):
                G.add_edge(agg, ("core", a * half + c))
        for e in range(half):
            edge = ("edge", pod, e)
            G.add_node(edge, kind="edge")
            for a in range(half):
                G.add_edge(edge, ("agg", pod, a))
            for h in range(half):
                host = ("host", pod, e, h)
                G.add_node(host, kind="host")
                G.add_edge(edge, host)
    return G


def torus_3d_graph(dims: tuple[int, int, int]) -> nx.Graph:
    """3-D torus of compute nodes with wraparound links."""
    if any(d < 1 for d in dims):
        raise ValueError("torus dimensions must be >= 1.")
    G = nx.Graph()
    dx, dy, dz = dims
    for x in range(dx):
        for y in range(dy):
            for z in range(dz):
                G.add_node((x, y, z), kind="host")
    for x in range(dx):
        for y in range(dy):
            for z in range(dz):
                if dx > 1:
                    G.add_edge((x, y, z), ((x + 1) % dx, y, z))
                if dy > 1:
                    G.add_edge((x, y, z), (x, (y + 1) % dy, z))
                if dz > 1:
                    G.add_edge((x, y, z), (x, y, (z + 1) % dz))
    return G


def dragonfly_graph(groups: int, routers_per_group: int, hosts_per_router: int) -> nx.Graph:
    """Simplified dragonfly: complete graph within groups, one global
    link between every pair of groups (assigned round-robin to routers)."""
    if groups < 1 or routers_per_group < 1 or hosts_per_router < 1:
        raise ValueError("dragonfly parameters must be >= 1.")
    G = nx.Graph()
    for g in range(groups):
        for r in range(routers_per_group):
            router = ("router", g, r)
            G.add_node(router, kind="router")
            for h in range(hosts_per_router):
                host = ("host", g, r, h)
                G.add_node(host, kind="host")
                G.add_edge(router, host)
        for r1 in range(routers_per_group):
            for r2 in range(r1 + 1, routers_per_group):
                G.add_edge(("router", g, r1), ("router", g, r2))
    idx = 0
    for g1 in range(groups):
        for g2 in range(g1 + 1, groups):
            r1 = idx % routers_per_group
            r2 = (idx + 1) % routers_per_group
            G.add_edge(("router", g1, r1), ("router", g2, r2))
            idx += 1
    return G


def average_compute_hops(G: nx.Graph) -> float:
    """Mean shortest-path length between distinct host nodes.

    Exact (all-pairs BFS restricted to hosts); intended for validation on
    moderate graphs.
    """
    hosts = [n for n, d in G.nodes(data=True) if d.get("kind") == "host"]
    if len(hosts) < 2:
        raise ValueError("Graph needs at least two host nodes.")
    total, count = 0.0, 0
    host_set = set(hosts)
    for src in hosts:
        lengths = nx.single_source_shortest_path_length(G, src)
        for dst, dist in lengths.items():
            if dst in host_set and dst != src:
                total += dist
                count += 1
    return total / count


class Topology:
    """Abstract topology: hop counts and contention for a job of size p."""

    name: str = "abstract"

    def n_hosts(self) -> int:
        raise NotImplementedError

    def average_hops(self, n_nodes: int) -> float:
        """Mean host-to-host hop count among the ``n_nodes`` allocated
        compute nodes (compact allocation assumed)."""
        raise NotImplementedError

    def contention_factor(self, n_nodes: int) -> float:
        """Effective bandwidth divisor for all-to-all-ish traffic among
        ``n_nodes`` nodes (1.0 = full bisection)."""
        raise NotImplementedError

    def graph(self) -> nx.Graph:
        """Explicit networkx graph (for validation/analysis)."""
        raise NotImplementedError

    def _check_alloc(self, n_nodes: int) -> None:
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1.")
        if n_nodes > self.n_hosts():
            raise ValueError(
                f"Allocation of {n_nodes} nodes exceeds machine size "
                f"{self.n_hosts()} ({self.name})."
            )


class FatTree(Topology):
    """Three-level k-ary fat tree; full bisection bandwidth.

    Hop model for a compact allocation: jobs within one edge switch pay 2
    hops, within one pod 4, across pods 6 — weighted by how much of the
    traffic each tier carries.
    """

    def __init__(self, k: int = 16) -> None:
        if k < 2 or k % 2 != 0:
            raise ValueError("fat tree arity k must be even and >= 2.")
        self.k = k
        self.name = f"fat-tree(k={k})"

    def n_hosts(self) -> int:
        return self.k**3 // 4

    def average_hops(self, n_nodes: int) -> float:
        self._check_alloc(n_nodes)
        if n_nodes == 1:
            return 1.0
        per_edge = self.k // 2
        per_pod = (self.k // 2) ** 2
        n = n_nodes
        # Fractions of peer pairs co-located at each tier (compact alloc).
        same_edge = min(per_edge, n) - 1
        same_pod = min(per_pod, n) - 1 - same_edge
        cross_pod = n - 1 - same_edge - same_pod
        total = n - 1
        return (2.0 * same_edge + 4.0 * same_pod + 6.0 * cross_pod) / total

    def contention_factor(self, n_nodes: int) -> float:
        self._check_alloc(n_nodes)
        return 1.0  # non-blocking fabric

    def graph(self) -> nx.Graph:
        return fat_tree_graph(self.k)


class Torus3D(Topology):
    """3-D torus; hop count grows with the allocated sub-volume and
    bisection bandwidth shrinks relative to all-to-all demand."""

    def __init__(self, dims: tuple[int, int, int] = (8, 8, 8)) -> None:
        if any(d < 1 for d in dims):
            raise ValueError("torus dimensions must be >= 1.")
        self.dims = tuple(int(d) for d in dims)
        self.name = f"torus-3d{self.dims}"

    def n_hosts(self) -> int:
        return int(np.prod(self.dims))

    @staticmethod
    def _ring_mean_dist(d: int) -> float:
        """Mean wraparound distance between distinct points on a ring of
        size d: (d/4) for even d, (d^2-1)/(4d) for odd."""
        if d <= 1:
            return 0.0
        if d % 2 == 0:
            return d / 4.0
        return (d * d - 1) / (4.0 * d)

    def _alloc_dims(self, n_nodes: int) -> tuple[int, int, int]:
        """Compact cuboid allocation covering n_nodes, filling x then y
        then z."""
        dx, dy, dz = self.dims
        ax = min(dx, n_nodes)
        ay = min(dy, math.ceil(n_nodes / ax))
        az = min(dz, math.ceil(n_nodes / (ax * ay)))
        return ax, ay, az

    def average_hops(self, n_nodes: int) -> float:
        self._check_alloc(n_nodes)
        if n_nodes == 1:
            return 1.0
        ax, ay, az = self._alloc_dims(n_nodes)
        hops = (
            self._ring_mean_dist(ax)
            + self._ring_mean_dist(ay)
            + self._ring_mean_dist(az)
        )
        return max(1.0, hops)

    def contention_factor(self, n_nodes: int) -> float:
        self._check_alloc(n_nodes)
        # Bisection of an a×b×c sub-torus ≈ 2·b·c links (cut across the
        # longest axis); uniform traffic demand across the cut is
        # (n/2)·(n/2)/n = n/4 flows sharing those links.
        ax, ay, az = self._alloc_dims(n_nodes)
        n = ax * ay * az
        if n <= 2:
            return 1.0
        cut_links = 2.0 * ay * az if ax > 1 else 2.0 * az * max(ay, 1)
        flows = n / 4.0
        return max(1.0, flows / cut_links)

    def graph(self) -> nx.Graph:
        return torus_3d_graph(self.dims)


class Dragonfly(Topology):
    """Simplified dragonfly: 1 hop in-router, 3 in-group, 5 cross-group."""

    def __init__(
        self,
        groups: int = 16,
        routers_per_group: int = 8,
        hosts_per_router: int = 8,
    ) -> None:
        if groups < 1 or routers_per_group < 1 or hosts_per_router < 1:
            raise ValueError("dragonfly parameters must be >= 1.")
        self.groups = groups
        self.routers_per_group = routers_per_group
        self.hosts_per_router = hosts_per_router
        self.name = (
            f"dragonfly(g={groups},r={routers_per_group},h={hosts_per_router})"
        )

    def n_hosts(self) -> int:
        return self.groups * self.routers_per_group * self.hosts_per_router

    def average_hops(self, n_nodes: int) -> float:
        self._check_alloc(n_nodes)
        if n_nodes == 1:
            return 1.0
        per_router = self.hosts_per_router
        per_group = self.routers_per_group * per_router
        n = n_nodes
        same_router = min(per_router, n) - 1
        same_group = min(per_group, n) - 1 - same_router
        cross_group = n - 1 - same_router - same_group
        total = n - 1
        return (2.0 * same_router + 3.0 * same_group + 5.0 * cross_group) / total

    def contention_factor(self, n_nodes: int) -> float:
        self._check_alloc(n_nodes)
        per_group = self.routers_per_group * self.hosts_per_router
        if n_nodes <= per_group:
            return 1.0
        # Global links are the scarce resource: one per group pair in the
        # simplified wiring.  Uniform traffic from g groups shares them.
        g = math.ceil(n_nodes / per_group)
        links = g * (g - 1) / 2.0
        flows = n_nodes / 4.0
        return max(1.0, flows / max(links, 1.0))

    def graph(self) -> nx.Graph:
        return dragonfly_graph(
            self.groups, self.routers_per_group, self.hosts_per_router
        )
