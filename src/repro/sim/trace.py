"""Execution-trace records produced by the simulator.

An :class:`ExecutionRecord` is the atom of "history data" in the paper's
sense: one application run at one process count with one set of input
parameters, together with its per-phase time breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PhaseTiming", "ExecutionRecord"]


@dataclass(frozen=True)
class PhaseTiming:
    """Timing of one application phase within a run.

    Attributes
    ----------
    name:
        Phase label (e.g. "compute", "halo_exchange", "allreduce").
    compute_time:
        Seconds spent in on-node computation for this phase.
    comm_time:
        Seconds spent in communication for this phase.
    """

    name: str
    compute_time: float
    comm_time: float

    @property
    def total(self) -> float:
        return self.compute_time + self.comm_time

    def __post_init__(self) -> None:
        if self.compute_time < 0 or self.comm_time < 0:
            raise ValueError("Phase times must be non-negative.")


@dataclass(frozen=True)
class ExecutionRecord:
    """One simulated application execution.

    Attributes
    ----------
    app_name:
        Name of the application.
    params:
        Input-parameter assignment (name -> value).
    nprocs:
        Number of processes (the "scale").
    runtime:
        Observed wall-clock seconds, including run-to-run noise.
    model_runtime:
        Noise-free runtime from the cost model (ground truth for tests).
    phases:
        Per-phase noise-free breakdown.
    rep:
        Repetition index when the same configuration ran multiple times.
    """

    app_name: str
    params: dict[str, float]
    nprocs: int
    runtime: float
    model_runtime: float
    phases: tuple[PhaseTiming, ...] = field(default_factory=tuple)
    rep: int = 0

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise ValueError("nprocs must be >= 1.")
        if self.runtime <= 0 or self.model_runtime <= 0:
            raise ValueError("Runtimes must be positive.")

    @property
    def compute_time(self) -> float:
        return sum(p.compute_time for p in self.phases)

    @property
    def comm_time(self) -> float:
        return sum(p.comm_time for p in self.phases)

    @property
    def comm_fraction(self) -> float:
        """Fraction of modeled time spent communicating."""
        total = self.compute_time + self.comm_time
        return self.comm_time / total if total > 0 else 0.0
