"""Execution-trace records produced by the simulator.

An :class:`ExecutionRecord` is the atom of "history data" in the paper's
sense: one application run at one process count with one set of input
parameters, together with its per-phase time breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DataValidationError
from .budget import AttemptTrace

__all__ = ["PhaseTiming", "ExecutionRecord"]


@dataclass(frozen=True)
class PhaseTiming:
    """Timing of one application phase within a run.

    Attributes
    ----------
    name:
        Phase label (e.g. "compute", "halo_exchange", "allreduce").
    compute_time:
        Seconds spent in on-node computation for this phase.
    comm_time:
        Seconds spent in communication for this phase.
    """

    name: str
    compute_time: float
    comm_time: float

    @property
    def total(self) -> float:
        return self.compute_time + self.comm_time

    def __post_init__(self) -> None:
        if self.compute_time < 0 or self.comm_time < 0:
            raise DataValidationError("Phase times must be non-negative.")


@dataclass(frozen=True)
class ExecutionRecord:
    """One simulated application execution.

    Attributes
    ----------
    app_name:
        Name of the application.
    params:
        Input-parameter assignment (name -> value).
    nprocs:
        Number of processes (the "scale").
    runtime:
        Observed wall-clock seconds, including run-to-run noise.
    model_runtime:
        Noise-free runtime from the cost model (ground truth for tests).
    phases:
        Per-phase noise-free breakdown.
    rep:
        Repetition index when the same configuration ran multiple times.
    censored:
        True when the run was killed at its wall-clock budget on every
        allowed attempt; ``runtime`` then records the final limit (a
        lower bound on the true runtime), like a scheduler log does.
    attempts:
        Budget/retry audit trail (None when the run executed under an
        unlimited budget and needed no resubmission bookkeeping).
    wait_seconds:
        Cumulative seconds the run spent waiting rather than running:
        scheduler queue waits plus resubmission backoffs, summed over
        every attempt.  0 when neither a queue simulator nor a retry
        policy was in play.
    queue_state:
        Snapshot of the simulated scheduler queue at submission (queue
        depth, free nodes, pending work...), as produced by
        :class:`repro.sched.QueueSimulator`.  None when no queue
        simulator was attached.
    """

    app_name: str
    params: dict[str, float]
    nprocs: int
    runtime: float
    model_runtime: float
    phases: tuple[PhaseTiming, ...] = field(default_factory=tuple)
    rep: int = 0
    censored: bool = False
    attempts: AttemptTrace | None = None
    wait_seconds: float = 0.0
    queue_state: dict[str, float] | None = None

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise DataValidationError("nprocs must be >= 1.")
        if self.runtime <= 0 or self.model_runtime <= 0:
            raise DataValidationError("Runtimes must be positive.")
        if self.wait_seconds < 0:
            raise DataValidationError("wait_seconds must be >= 0.")

    @property
    def compute_time(self) -> float:
        return sum(p.compute_time for p in self.phases)

    @property
    def comm_time(self) -> float:
        return sum(p.comm_time for p in self.phases)

    @property
    def comm_fraction(self) -> float:
        """Fraction of modeled time spent communicating."""
        total = self.compute_time + self.comm_time
        return self.comm_time / total if total > 0 else 0.0

    @property
    def n_attempts(self) -> int:
        """Submissions this run took (1 when no retry bookkeeping)."""
        return 1 if self.attempts is None else self.attempts.n_attempts

    @property
    def resubmitted(self) -> bool:
        """True when the run succeeded only after >= 1 resubmission."""
        return self.attempts is not None and self.attempts.resubmissions > 0
