"""Cost models for MPI collective operations.

The formulas are the textbook algorithm costs (binomial trees, ring
allgather, Rabenseifner allreduce, pairwise alltoall) expressed in the
LogGP point-to-point time of the machine's network — the same modelling
approach used by collective-tuning literature.  Each function returns
seconds for one invocation of the collective over ``nprocs`` processes
with per-process payload ``nbytes``.
"""

from __future__ import annotations

import math

from .machine import Machine

__all__ = [
    "ptp",
    "barrier",
    "broadcast",
    "reduce",
    "allreduce",
    "allgather",
    "alltoall",
    "COLLECTIVES",
]

# Reduction arithmetic rate: bytes/s a core can combine (sum) locally.
_REDUCE_BYTES_PER_SEC = 4e9


def _ptp(machine: Machine, nbytes: float, nprocs: int) -> float:
    """One point-to-point message between two of the job's processes."""
    intra = machine.job_is_single_node(nprocs)
    return machine.network.ptp_time(
        nbytes,
        hops=machine.hops(nprocs),
        contention=1.0,
        intra_node=intra,
    )


def ptp(machine: Machine, nbytes: float, nprocs: int, count: int = 1) -> float:
    """``count`` sequential point-to-point messages."""
    if count < 0:
        raise ValueError("count must be non-negative.")
    return count * _ptp(machine, nbytes, nprocs)


def barrier(machine: Machine, nbytes: float, nprocs: int) -> float:
    """Dissemination barrier: ceil(log2 p) zero-payload rounds."""
    if nprocs == 1:
        return 0.0
    rounds = math.ceil(math.log2(nprocs))
    return rounds * _ptp(machine, 0.0, nprocs)


def broadcast(machine: Machine, nbytes: float, nprocs: int) -> float:
    """Binomial-tree broadcast: ceil(log2 p) message rounds."""
    if nprocs == 1:
        return 0.0
    rounds = math.ceil(math.log2(nprocs))
    return rounds * _ptp(machine, nbytes, nprocs)


def reduce(machine: Machine, nbytes: float, nprocs: int) -> float:
    """Binomial-tree reduction: broadcast cost plus per-round combine."""
    if nprocs == 1:
        return 0.0
    rounds = math.ceil(math.log2(nprocs))
    combine = rounds * nbytes / _REDUCE_BYTES_PER_SEC
    return rounds * _ptp(machine, nbytes, nprocs) + combine


def allreduce(machine: Machine, nbytes: float, nprocs: int) -> float:
    """Allreduce cost.

    Small payloads use recursive doubling (latency-optimal,
    ``log2 p`` rounds of full-size messages); large payloads use the
    Rabenseifner reduce-scatter + allgather scheme whose bandwidth term is
    ``2 n (p-1)/p`` bytes regardless of p.
    """
    if nprocs == 1:
        return 0.0
    rounds = math.ceil(math.log2(nprocs))
    if nbytes <= machine.network.params.eager_limit:
        combine = rounds * nbytes / _REDUCE_BYTES_PER_SEC
        return rounds * _ptp(machine, nbytes, nprocs) + combine
    frac = (nprocs - 1) / nprocs
    bytes_moved = 2.0 * nbytes * frac
    latency_part = 2.0 * rounds * _ptp(machine, 0.0, nprocs)
    bw_part = bytes_moved * machine.network.params.gap_per_byte * machine.contention(
        nprocs
    )
    combine = nbytes * frac / _REDUCE_BYTES_PER_SEC
    return latency_part + bw_part + combine


def allgather(machine: Machine, nbytes: float, nprocs: int) -> float:
    """Ring allgather: p-1 steps, each moving the per-process block."""
    if nprocs == 1:
        return 0.0
    return (nprocs - 1) * _ptp(machine, nbytes, nprocs)


def alltoall(machine: Machine, nbytes: float, nprocs: int) -> float:
    """Pairwise-exchange alltoall.

    ``nbytes`` is the total per-process send buffer; each of the p-1
    steps moves a block of ``nbytes / p`` under the job's contention
    factor (alltoall stresses bisection bandwidth).
    """
    if nprocs == 1:
        return 0.0
    block = nbytes / nprocs
    per_step = machine.network.ptp_time(
        block,
        hops=machine.hops(nprocs),
        contention=machine.contention(nprocs),
        intra_node=machine.job_is_single_node(nprocs),
    )
    return (nprocs - 1) * per_step


COLLECTIVES = {
    "ptp": ptp,
    "barrier": barrier,
    "broadcast": broadcast,
    "reduce": reduce,
    "allreduce": allreduce,
    "allgather": allgather,
    "alltoall": alltoall,
}
