"""Short-range molecular-dynamics N-body application.

Models the miniMD/LAMMPS-style cutoff MD skeleton:

* force computation: each particle interacts with the neighbors inside
  its cutoff sphere (count set by density * (4/3)π r_c^3), every step;
* neighbor-list rebuild every ``rebuild_every`` steps (memory-heavy);
* ghost-particle exchange with spatial neighbors each step (payload
  follows the per-process subdomain surface);
* global energy/virial allreduce each step.

The cutoff and density parameters move the compute/communication balance
independently of the particle count, again producing a family of
distinct scaling-curve shapes across the parameter space.
"""

from __future__ import annotations

import numpy as np

from .base import Application, CommOp, ParamSpec, PhaseSpec

__all__ = ["NBody"]

_BYTES_PER_PARTICLE = 48  # position + velocity (6 doubles)
_FLOPS_PER_PAIR = 40.0  # Lennard-Jones force + energy


class NBody(Application):
    """Parameterized cutoff molecular dynamics."""

    name = "nbody"

    def param_specs(self) -> tuple[ParamSpec, ...]:
        return (
            ParamSpec(
                "n_particles",
                2e4,
                2e6,
                integer=True,
                log=True,
                description="total particles",
            ),
            ParamSpec(
                "timesteps",
                20,
                400,
                integer=True,
                log=True,
                description="MD steps",
            ),
            ParamSpec(
                "cutoff",
                2.0,
                5.0,
                description="interaction cutoff radius (reduced units)",
            ),
            ParamSpec(
                "density",
                0.4,
                1.2,
                description="particle number density (reduced units)",
            ),
            ParamSpec(
                "rebuild_every",
                5,
                25,
                integer=True,
                description="steps between neighbor-list rebuilds",
            ),
        )

    def phases(self, params: dict[str, float], nprocs: int) -> list[PhaseSpec]:
        n = float(params["n_particles"])
        steps = float(params["timesteps"])
        cutoff = float(params["cutoff"])
        density = float(params["density"])
        rebuild_every = float(params["rebuild_every"])

        local_n = n / nprocs
        neighbors = density * (4.0 / 3.0) * np.pi * cutoff**3
        # Newton's third law halves the pair evaluations.
        force_flops = steps * local_n * neighbors * _FLOPS_PER_PAIR / 2.0
        force_mem = steps * local_n * (neighbors * 24.0 + _BYTES_PER_PARTICLE)

        n_rebuilds = max(1.0, steps / rebuild_every)
        # Cell-list binning: a few passes over local + ghost particles.
        rebuild_flops = n_rebuilds * local_n * 30.0
        rebuild_mem = n_rebuilds * local_n * _BYTES_PER_PARTICLE * 3.0

        # Ghost exchange: skin of thickness ~cutoff around the local box.
        # Local box side L = (n / (density * p))^(1/3); ghost shell volume
        # ≈ 6 * L^2 * cutoff * density particles.
        box_side = (local_n / density) ** (1.0 / 3.0)
        ghost_particles = 6.0 * box_side**2 * cutoff * density
        ghost_bytes = ghost_particles / 6.0 * _BYTES_PER_PARTICLE  # per face
        exchange_msgs = int(round(6 * steps)) if nprocs > 1 else 0

        comm_exchange: list[CommOp] = []
        if exchange_msgs > 0:
            comm_exchange.append(CommOp("ptp", ghost_bytes, count=exchange_msgs))

        phases = [
            PhaseSpec(
                "force",
                flops=force_flops,
                mem_bytes=force_mem,
                comm=(),
            ),
            PhaseSpec(
                "neighbor_rebuild",
                flops=rebuild_flops,
                mem_bytes=rebuild_mem,
                comm=(),
            ),
            PhaseSpec(
                "ghost_exchange",
                flops=steps * ghost_particles * 2.0,
                mem_bytes=steps * ghost_particles * _BYTES_PER_PARTICLE,
                comm=tuple(comm_exchange),
            ),
            PhaseSpec(
                "global_reduce",
                flops=steps * 8.0,
                mem_bytes=steps * 64.0,
                comm=(CommOp("allreduce", 48.0, count=int(steps)),),
            ),
        ]
        return phases
