"""Weak-scaling wrapper (extension feature).

The shipped applications are parameterized by a *global* problem size,
so sweeping p holds the problem fixed — strong scaling.  In weak-scaling
studies the problem grows with the machine: each process keeps a fixed
share.  :class:`WeakScaling` adapts any application to that protocol by
replacing its global size parameter with a per-process size that is
multiplied back up as a function of the process count.

Weak-scaling curves look nothing like strong-scaling ones (ideal is a
*flat* line; deviations are pure overhead growth), which exercises the
extrapolation level's constant/log corner of the basis and is the
subject of the weak-scaling extension experiment.
"""

from __future__ import annotations

from typing import Callable

from .base import Application, ParamSpec, PhaseSpec

__all__ = ["WeakScaling", "weak_stencil", "weak_fft"]


def _grow_cbrt(per_proc: float, p: int) -> float:
    """3-D sub-cube per process: global side grows as p^(1/3)."""
    return per_proc * p ** (1.0 / 3.0)


def _grow_sqrt(per_proc: float, p: int) -> float:
    """2-D grid with fixed per-process cells: side grows as sqrt(p)."""
    return per_proc * p**0.5


class WeakScaling(Application):
    """Adapter giving an application weak-scaling semantics.

    Parameters
    ----------
    inner:
        The wrapped application.
    size_param:
        Name of the wrapped app's global size parameter.
    per_proc_spec:
        Spec of the new per-process size parameter that replaces it.
    grow:
        ``(per_proc_size, nprocs) -> global_size`` mapping.  For a 3-D
        grid side length that is ``per_proc * p**(1/3)``; for a particle
        count it is ``per_proc * p``.
    """

    def __init__(
        self,
        inner: Application,
        size_param: str,
        per_proc_spec: ParamSpec,
        grow: Callable[[float, int], float],
    ) -> None:
        if size_param not in inner.param_names:
            raise ValueError(
                f"{inner.name} has no parameter {size_param!r}."
            )
        if per_proc_spec.name in inner.param_names:
            raise ValueError(
                f"per-process parameter {per_proc_spec.name!r} collides "
                f"with an existing parameter of {inner.name}."
            )
        self.inner = inner
        self.size_param = size_param
        self.per_proc_spec = per_proc_spec
        self.grow = grow
        self.name = f"weak-{inner.name}"
        self._inner_size_spec = {
            s.name: s for s in inner.param_specs()
        }[size_param]

    def param_specs(self) -> tuple[ParamSpec, ...]:
        specs = tuple(
            s for s in self.inner.param_specs() if s.name != self.size_param
        )
        return (self.per_proc_spec, *specs)

    def phases(self, params: dict[str, float], nprocs: int) -> list[PhaseSpec]:
        inner_params = {
            k: v for k, v in params.items() if k != self.per_proc_spec.name
        }
        global_size = self.grow(params[self.per_proc_spec.name], nprocs)
        inner_params[self.size_param] = self._inner_size_spec.clip(global_size)
        return self.inner.phases(inner_params, nprocs)


def weak_stencil() -> WeakScaling:
    """Weakly-scaled 3-D stencil: each process keeps a fixed sub-cube."""
    from .stencil3d import Stencil3D

    return WeakScaling(
        Stencil3D(),
        size_param="nx",
        per_proc_spec=ParamSpec(
            "nx_per_proc",
            16,
            32,
            integer=True,
            log=True,
            description="grid points per dimension per process sub-cube "
            "(range chosen so the global grid stays inside the inner "
            "app's bounds up to p=4096 — growth beyond a bound is "
            "clipped, which would silently distort the weak-scaling "
            "protocol)",
        ),
        grow=_grow_cbrt,
    )


def weak_fft() -> WeakScaling:
    """Weakly-scaled 2-D FFT: each process keeps a fixed slab."""
    from .fft import FFT2D

    return WeakScaling(
        FFT2D(),
        size_param="n",
        per_proc_spec=ParamSpec(
            "n_per_sqrt_p",
            48,
            128,
            integer=True,
            log=True,
            description="transform size per sqrt(process): keeps the "
            "per-process cell count n^2/p fixed (true weak scaling for "
            "a 2-D grid) while staying inside the inner app's bounds "
            "up to p=4096",
        ),
        grow=_grow_sqrt,
    )
