"""Distributed 2-D FFT (transpose/all-to-all pattern).

Models a slab-decomposed 2-D FFT performed ``batches`` times:

* row FFTs: ``5 n log2(n)`` flops per transform line (the classic FFT
  operation count) over the local slab;
* global transpose: an all-to-all moving the entire local slab, the
  bisection-bandwidth stress test among the shipped applications;
* column FFTs and the inverse transpose.

Unlike the halo-exchange apps, the communication volume here does *not*
shrink with p (per-process payload is n^2/p but p processes send it
every transpose), so FFT scaling curves flatten on bandwidth, not
latency — a qualitatively different shape for the clustering step.
"""

from __future__ import annotations

import numpy as np

from .base import Application, CommOp, ParamSpec, PhaseSpec

__all__ = ["FFT2D"]

_BYTES_PER_COMPLEX = 16


class FFT2D(Application):
    """Parameterized batched 2-D FFT with slab decomposition."""

    name = "fft2d"

    def param_specs(self) -> tuple[ParamSpec, ...]:
        return (
            ParamSpec(
                "n",
                256,
                8192,
                integer=True,
                log=True,
                description="transform size per dimension (n x n grid)",
            ),
            ParamSpec(
                "batches",
                1,
                64,
                integer=True,
                log=True,
                description="number of forward+inverse transform pairs",
            ),
        )

    def phases(self, params: dict[str, float], nprocs: int) -> list[PhaseSpec]:
        n = float(params["n"])
        batches = float(params["batches"])

        rows_local = n / nprocs
        # Forward + inverse, rows + columns: 4 x (local lines) 1-D FFTs
        # of length n per batch.
        fft_flops = batches * 4.0 * rows_local * 5.0 * n * np.log2(max(n, 2.0))
        fft_mem = batches * 4.0 * rows_local * n * _BYTES_PER_COMPLEX * 2.0

        slab_bytes = rows_local * n * _BYTES_PER_COMPLEX
        n_transposes = int(round(2 * batches)) if nprocs > 1 else 0

        comm: list[CommOp] = []
        if n_transposes > 0:
            comm.append(CommOp("alltoall", slab_bytes, count=n_transposes))

        return [
            PhaseSpec(
                "fft_lines",
                flops=fft_flops,
                mem_bytes=fft_mem,
                comm=(),
            ),
            PhaseSpec(
                "transpose",
                flops=batches * rows_local * n * 2.0,  # pack/unpack
                mem_bytes=batches * rows_local * n * _BYTES_PER_COMPLEX * 2.0,
                comm=tuple(comm),
            ),
        ]
