"""Wavefront sweep application (Sweep3D/Kripke pattern).

Models a discrete-ordinates transport sweep over a 3-D grid decomposed
in 2-D (columns of cells): diagonal wavefronts pipeline through the
process grid, so each sweep costs

    (pipeline fill) + (steady state)
    ~ (px + py - 2) * t_stage + n_stages * t_stage

with px = py = sqrt(p).  The pipeline-fill term grows like sqrt(p) — a
scaling shape none of the other shipped applications produce, which
exercises the ``sqrt_p``/``inv_sqrt_p`` corners of the scalability
basis.
"""

from __future__ import annotations

import numpy as np

from .base import Application, CommOp, ParamSpec, PhaseSpec

__all__ = ["Wavefront"]

_BYTES_PER_CELL_ANGLE = 8
_FLOPS_PER_CELL_ANGLE = 60.0  # upwind solve per cell per angle


class Wavefront(Application):
    """Parameterized pipelined transport sweep."""

    name = "wavefront"

    def param_specs(self) -> tuple[ParamSpec, ...]:
        return (
            ParamSpec(
                "nx",
                64,
                512,
                integer=True,
                log=True,
                description="grid points per dimension (global nx^3 cells)",
            ),
            ParamSpec(
                "angles",
                8,
                96,
                integer=True,
                log=True,
                description="discrete ordinate directions per octant",
            ),
            ParamSpec(
                "sweeps",
                5,
                80,
                integer=True,
                log=True,
                description="source iterations (full sweeps)",
            ),
        )

    def phases(self, params: dict[str, float], nprocs: int) -> list[PhaseSpec]:
        nx = float(params["nx"])
        angles = float(params["angles"])
        sweeps = float(params["sweeps"])

        # 2-D column decomposition: px * py = p, local pencil is
        # (nx/px) x (nx/py) x nx cells.
        side = max(1.0, np.sqrt(nprocs))
        cells_local = nx**3 / nprocs
        octants = 8.0

        # Useful work: every cell, every angle, every octant, every sweep.
        compute_flops = sweeps * octants * angles * cells_local * _FLOPS_PER_CELL_ANGLE
        compute_mem = sweeps * octants * angles * cells_local * _BYTES_PER_CELL_ANGLE

        # Pipeline-fill overhead: (px + py - 2) stages of idle time per
        # octant sweep, each stage the size of one block-column of work.
        fill_stages = 2.0 * (side - 1.0)
        stage_cells = cells_local / max(nx / side, 1.0)  # one k-plane block
        fill_flops = (
            sweeps * octants * fill_stages * angles * stage_cells
            * _FLOPS_PER_CELL_ANGLE
        )

        # Downstream face exchange per stage: two faces of the pencil.
        face_cells = (nx / side) * nx
        msg_bytes = angles * face_cells * _BYTES_PER_CELL_ANGLE
        n_stages = max(nx / max(nx / side, 1.0), 1.0)
        n_msgs = (
            int(round(sweeps * octants * 2.0 * (n_stages + fill_stages)))
            if nprocs > 1
            else 0
        )

        comm: list[CommOp] = []
        if n_msgs > 0:
            comm.append(CommOp("ptp", msg_bytes, count=n_msgs))

        return [
            PhaseSpec(
                "sweep_compute",
                flops=compute_flops,
                mem_bytes=compute_mem,
                comm=(),
            ),
            PhaseSpec(
                "pipeline_fill",
                flops=fill_flops,
                mem_bytes=fill_flops / _FLOPS_PER_CELL_ANGLE
                * _BYTES_PER_CELL_ANGLE,
                comm=(),
            ),
            PhaseSpec(
                "face_exchange",
                flops=0.0,
                mem_bytes=0.0,
                comm=tuple(comm),
            ),
            PhaseSpec(
                "convergence_check",
                flops=sweeps * cells_local * 2.0,
                mem_bytes=sweeps * cells_local * 8.0,
                comm=(CommOp("allreduce", 8.0, count=int(sweeps)),),
            ),
        ]
