"""Distributed conjugate-gradient solver (sparse linear algebra pattern).

Models HPCG-style CG on a row-partitioned sparse matrix:

* SpMV: ``2 * nnz_per_row * n / p`` flops per iteration, memory bound
  (matrix streamed once per iteration);
* halo exchange of boundary vector entries with neighboring partitions;
* two dot products per iteration, each an 8-byte allreduce — the classic
  latency wall of Krylov methods at scale;
* vector AXPYs (memory bound).

Because the allreduce count scales with iterations but not with n, small
systems at large p are entirely latency-bound — the strongest case for
the extrapolation level's log(p) basis term.
"""

from __future__ import annotations

from .base import Application, CommOp, ParamSpec, PhaseSpec

__all__ = ["CGSolver"]

_BYTES_PER_NNZ = 12  # 8-byte value + 4-byte column index
_BYTES_PER_ENTRY = 8


class CGSolver(Application):
    """Parameterized distributed CG iteration."""

    name = "cg"

    def param_specs(self) -> tuple[ParamSpec, ...]:
        return (
            ParamSpec(
                "n",
                1e5,
                3e7,
                integer=True,
                log=True,
                description="matrix dimension (rows)",
            ),
            ParamSpec(
                "nnz_per_row",
                5,
                81,
                integer=True,
                description="average nonzeros per row (stencil bandwidth)",
            ),
            ParamSpec(
                "iterations",
                30,
                600,
                integer=True,
                log=True,
                description="CG iterations",
            ),
        )

    def phases(self, params: dict[str, float], nprocs: int) -> list[PhaseSpec]:
        n = float(params["n"])
        nnz_row = float(params["nnz_per_row"])
        iters = float(params["iterations"])

        rows_local = n / nprocs
        spmv_flops = iters * 2.0 * nnz_row * rows_local
        spmv_mem = iters * rows_local * (nnz_row * _BYTES_PER_NNZ + 2 * _BYTES_PER_ENTRY)

        # Boundary entries exchanged per SpMV: fraction of the local rows
        # proportional to the partition surface (2-D-ish boundary of a
        # banded matrix): ~ sqrt(rows_local) * bandwidth factor.
        boundary_rows = min(rows_local, (rows_local**0.5) * (nnz_row**0.5))
        halo_bytes = boundary_rows * _BYTES_PER_ENTRY
        halo_msgs = int(round(2 * iters)) if nprocs > 1 else 0

        # 3 AXPY + 2 dot local parts per iteration over local vectors.
        vec_flops = iters * rows_local * 10.0
        vec_mem = iters * rows_local * _BYTES_PER_ENTRY * 7.0

        comm_spmv: list[CommOp] = []
        if halo_msgs > 0:
            comm_spmv.append(CommOp("ptp", halo_bytes, count=halo_msgs))

        return [
            PhaseSpec(
                "spmv",
                flops=spmv_flops,
                mem_bytes=spmv_mem,
                comm=tuple(comm_spmv),
            ),
            PhaseSpec(
                "vector_ops",
                flops=vec_flops,
                mem_bytes=vec_mem,
                comm=(),
            ),
            PhaseSpec(
                "dot_products",
                flops=iters * rows_local * 4.0,
                mem_bytes=iters * rows_local * _BYTES_PER_ENTRY * 2.0,
                comm=(CommOp("allreduce", 8.0, count=int(round(2 * iters))),),
            ),
        ]
