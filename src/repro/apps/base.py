"""Application model interface.

An application is described *machine-independently*: given an input
parameter assignment and a process count it yields a list of
:class:`PhaseSpec` objects carrying per-process flop counts, memory
traffic, and communication operations.  The :class:`~repro.sim.Executor`
converts those volumes into time on a concrete machine.

This mirrors how analytic performance models of real HPC codes are
written (compute volume from the algorithm's complexity, message sizes
from the domain decomposition) and is the substitution for the paper's
real application executions — see DESIGN.md.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

__all__ = ["ParamSpec", "CommOp", "PhaseSpec", "Application"]


@dataclass(frozen=True)
class ParamSpec:
    """One input parameter of an application.

    Attributes
    ----------
    name:
        Parameter name (key into the params dict).
    low, high:
        Inclusive sampling range.
    integer:
        Round sampled values to integers.
    log:
        Sample uniformly in log space (for ranges spanning decades).
    description:
        Human-readable meaning, surfaced in dataset tables.
    """

    name: str
    low: float
    high: float
    integer: bool = False
    log: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("Parameter name must be non-empty.")
        if self.low > self.high:
            raise ValueError(f"{self.name}: low > high.")
        if self.log and self.low <= 0:
            raise ValueError(f"{self.name}: log-scale range requires low > 0.")

    def clip(self, value: float) -> float:
        """Clamp a value into the spec's range (and integrality)."""
        v = float(np.clip(value, self.low, self.high))
        return float(round(v)) if self.integer else v

    def contains(self, value: float) -> bool:
        if self.integer and value != round(value):
            return False
        return self.low <= value <= self.high

    def sample(self, rng: np.random.Generator) -> float:
        if self.log:
            v = float(np.exp(rng.uniform(np.log(self.low), np.log(self.high))))
        else:
            v = float(rng.uniform(self.low, self.high))
        return float(round(v)) if self.integer else v


@dataclass(frozen=True)
class CommOp:
    """One communication operation within a phase.

    Attributes
    ----------
    op:
        Operation kind: "ptp" or a collective name from
        :data:`repro.sim.COLLECTIVES`.
    nbytes:
        Payload per process (for "ptp": the message size).
    count:
        Number of invocations aggregated into this op.
    """

    op: str
    nbytes: float
    count: int = 1

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative.")
        if self.count < 0:
            raise ValueError("count must be non-negative.")


@dataclass(frozen=True)
class PhaseSpec:
    """Machine-independent description of one application phase.

    ``flops`` and ``mem_bytes`` are **per process** volumes.
    """

    name: str
    flops: float
    mem_bytes: float
    comm: tuple[CommOp, ...] = ()

    def __post_init__(self) -> None:
        if self.flops < 0 or self.mem_bytes < 0:
            raise ValueError("Phase volumes must be non-negative.")


class Application(ABC):
    """Base class for simulated HPC applications."""

    #: Application name, unique among the shipped apps.
    name: str = "abstract"

    @abstractmethod
    def param_specs(self) -> tuple[ParamSpec, ...]:
        """The application's input-parameter space."""

    @abstractmethod
    def phases(self, params: dict[str, float], nprocs: int) -> list[PhaseSpec]:
        """Per-process phase volumes for one configuration."""

    @property
    def param_names(self) -> tuple[str, ...]:
        return tuple(spec.name for spec in self.param_specs())

    def validate_params(self, params: dict[str, float]) -> None:
        """Raise ``ValueError`` for missing/extra/out-of-range parameters."""
        specs = {s.name: s for s in self.param_specs()}
        missing = set(specs) - set(params)
        if missing:
            raise ValueError(f"{self.name}: missing parameters {sorted(missing)}")
        extra = set(params) - set(specs)
        if extra:
            raise ValueError(f"{self.name}: unknown parameters {sorted(extra)}")
        for name, value in params.items():
            if not specs[name].contains(value):
                spec = specs[name]
                raise ValueError(
                    f"{self.name}: {name}={value} outside "
                    f"[{spec.low}, {spec.high}]"
                    + (" (must be integer)" if spec.integer else "")
                )

    def sample_params(self, rng: np.random.Generator) -> dict[str, float]:
        """Draw one random configuration from the parameter space."""
        return {spec.name: spec.sample(rng) for spec in self.param_specs()}

    def params_to_vector(self, params: dict[str, float]) -> np.ndarray:
        """Encode a configuration as a feature vector (spec order)."""
        return np.array([params[n] for n in self.param_names], dtype=np.float64)

    def vector_to_params(self, x: np.ndarray) -> dict[str, float]:
        """Inverse of :meth:`params_to_vector`."""
        names = self.param_names
        if len(x) != len(names):
            raise ValueError(
                f"{self.name}: expected {len(names)} values, got {len(x)}"
            )
        return {n: float(v) for n, v in zip(names, x)}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
