"""Simulated HPC applications (machine-independent phase models).

``Stencil3D`` and ``NBody`` are the two primary evaluation applications
(matching the paper's two-application scope); ``CGSolver`` and ``FFT2D``
are extension studies exercising latency-bound and bandwidth-bound
communication patterns respectively.
"""

from .base import Application, CommOp, ParamSpec, PhaseSpec
from .cg import CGSolver
from .fft import FFT2D
from .nbody import NBody
from .stencil3d import Stencil3D
from .wavefront import Wavefront
from .weak import WeakScaling, weak_fft, weak_stencil

ALL_APPS: dict[str, type[Application]] = {
    cls.name: cls for cls in (Stencil3D, NBody, CGSolver, FFT2D, Wavefront)
}


def get_app(name: str) -> Application:
    """Instantiate a shipped application by name."""
    try:
        return ALL_APPS[name]()
    except KeyError:
        raise ValueError(
            f"Unknown application {name!r}; available: {sorted(ALL_APPS)}"
        ) from None


__all__ = [
    "Application",
    "CommOp",
    "ParamSpec",
    "PhaseSpec",
    "CGSolver",
    "FFT2D",
    "NBody",
    "Stencil3D",
    "Wavefront",
    "WeakScaling",
    "weak_fft",
    "weak_stencil",
    "ALL_APPS",
    "get_app",
]
