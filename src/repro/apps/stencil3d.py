"""3-D Jacobi stencil solver (halo-exchange pattern).

Models a structured-grid iterative solver — the archetypal
strong-scaling HPC workload (heat diffusion, Laplace, red-black
Gauss-Seidel all share this skeleton):

* compute: ``(2 * (6*ghost) + 1)``-point stencil sweep over the local
  block of an ``nx^3`` grid, ``iterations`` times;
* halo exchange: 6 face messages per iteration whose size follows the
  surface of the per-process block under an idealized cubic domain
  decomposition (surface/volume ratio gives the p^(2/3) law);
* convergence check: an 8-byte allreduce every ``check_freq`` iterations.

The parameter space deliberately spans compute-dominated (large grid)
through latency-dominated (small grid, many processes) regimes, which is
what gives different configurations different scaling-curve *shapes* —
the structure the paper's clustering step exploits.
"""

from __future__ import annotations

from .base import Application, CommOp, ParamSpec, PhaseSpec

__all__ = ["Stencil3D"]

_BYTES_PER_CELL = 8  # double precision


class Stencil3D(Application):
    """Parameterized 3-D Jacobi iteration.

    Parameters (see :meth:`param_specs`): grid size ``nx``, iteration
    count ``iterations``, stencil ghost width ``ghost`` (order of the
    stencil), and convergence-check frequency ``check_freq``.
    """

    name = "stencil3d"

    def param_specs(self) -> tuple[ParamSpec, ...]:
        return (
            ParamSpec(
                "nx",
                48,
                512,
                integer=True,
                log=True,
                description="grid points per dimension (global nx^3 cells)",
            ),
            ParamSpec(
                "iterations",
                50,
                800,
                integer=True,
                log=True,
                description="Jacobi sweeps",
            ),
            ParamSpec(
                "ghost",
                1,
                4,
                integer=True,
                description="ghost-layer width (stencil radius)",
            ),
            ParamSpec(
                "check_freq",
                5,
                50,
                integer=True,
                description="iterations between residual allreduces",
            ),
        )

    def phases(self, params: dict[str, float], nprocs: int) -> list[PhaseSpec]:
        nx = float(params["nx"])
        iters = float(params["iterations"])
        ghost = float(params["ghost"])
        check_freq = float(params["check_freq"])

        cells_total = nx**3
        cells_local = cells_total / nprocs
        # (6*ghost + 1)-point star stencil: one multiply-add per point.
        flops_per_cell = 2.0 * (6.0 * ghost + 1.0)
        compute_flops = iters * cells_local * flops_per_cell
        # Streaming read of the neighborhood (cache-friendly sweep re-reads
        # each plane ~once per ghost layer) plus one write.
        mem_bytes = iters * cells_local * _BYTES_PER_CELL * (ghost + 2.0)

        # Idealized cubic decomposition: per-process block face holds
        # nx^2 / p^(2/3) cells; ghost layers multiply the payload.
        face_cells = nx**2 / nprocs ** (2.0 / 3.0)
        halo_bytes = ghost * face_cells * _BYTES_PER_CELL
        halo_msgs = int(round(6 * iters)) if nprocs > 1 else 0

        n_checks = int(iters // max(check_freq, 1.0))

        comm_sweep: list[CommOp] = []
        if halo_msgs > 0:
            comm_sweep.append(CommOp("ptp", halo_bytes, count=halo_msgs))

        phases = [
            PhaseSpec(
                "sweep",
                flops=compute_flops,
                mem_bytes=mem_bytes,
                comm=tuple(comm_sweep),
            )
        ]
        if n_checks > 0:
            phases.append(
                PhaseSpec(
                    "residual_check",
                    flops=n_checks * cells_local * 2.0,
                    mem_bytes=n_checks * cells_local * _BYTES_PER_CELL,
                    comm=(CommOp("allreduce", 8.0, count=n_checks),),
                )
            )
        return phases
