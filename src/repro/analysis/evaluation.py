"""Experiment runner shared by the benchmark harness and examples.

Encapsulates the paper's evaluation protocol: generate a small-scale
training history and a large-scale test set for an application, fit the
two-level model and the baselines on the *same* history, and report
per-target-scale accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

import numpy as np

from ..apps import get_app
from ..baselines import BASELINE_FACTORIES, make_baseline
from ..core import TwoLevelModel
from ..data import HistoryGenerator
from ..data.dataset import ExecutionDataset
from ..ml.metrics import (
    mean_absolute_percentage_error,
    median_absolute_percentage_error,
    root_mean_squared_error,
)
from ..robustness.report import FitReport
from ..sim import Executor, Machine, NoiseModel

__all__ = [
    "ExperimentConfig",
    "Histories",
    "MethodScores",
    "build_histories",
    "fit_two_level",
    "evaluate_predictor",
    "run_method_comparison",
    "DEFAULT_SMALL_SCALES",
    "DEFAULT_LARGE_SCALES",
]

#: Evaluation protocol defaults (node-aligned on the default 32-core
#: machine: 1..16 nodes for training, 32..128 nodes for testing).
DEFAULT_SMALL_SCALES: tuple[int, ...] = (32, 64, 128, 256, 512)
DEFAULT_LARGE_SCALES: tuple[int, ...] = (1024, 2048, 4096)


@dataclass(frozen=True)
class ExperimentConfig:
    """Full specification of one evaluation run."""

    app_name: str = "stencil3d"
    small_scales: tuple[int, ...] = DEFAULT_SMALL_SCALES
    large_scales: tuple[int, ...] = DEFAULT_LARGE_SCALES
    n_train_configs: int = 150
    n_test_configs: int = 50
    repetitions: int = 3
    noise_sigma: float = 0.03
    jitter_prob: float = 0.05
    seed: int = 42
    n_clusters: int = 3

    def with_(self, **kwargs: object) -> "ExperimentConfig":
        """Derived config with some fields replaced."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class Histories:
    """Generated train (small-scale) and test (large-scale) data."""

    train: ExecutionDataset
    test: ExecutionDataset
    config: ExperimentConfig


def build_histories(
    config: ExperimentConfig, machine: Machine | None = None
) -> Histories:
    """Simulate the training and test histories for one experiment."""
    app = get_app(config.app_name)
    noise = NoiseModel(sigma=config.noise_sigma, jitter_prob=config.jitter_prob)
    executor = Executor(machine=machine, noise=noise, seed=config.seed)
    gen = HistoryGenerator(app, executor=executor, seed=config.seed)
    train_cfgs = gen.sample_configs(config.n_train_configs)
    test_cfgs = gen.sample_configs(config.n_test_configs)
    train = gen.collect(
        train_cfgs, config.small_scales, repetitions=config.repetitions
    )
    test = gen.collect(test_cfgs, config.large_scales, repetitions=1)
    return Histories(train=train, test=test, config=config)


def fit_two_level(
    histories: Histories, **model_kwargs: object
) -> TwoLevelModel:
    """Fit the paper's model on a history with the experiment defaults."""
    cfg = histories.config
    kwargs: dict[str, object] = dict(
        small_scales=cfg.small_scales,
        n_clusters=cfg.n_clusters,
        random_state=cfg.seed,
    )
    kwargs.update(model_kwargs)
    model = TwoLevelModel(**kwargs)  # type: ignore[arg-type]
    return model.fit(histories.train)


@dataclass(frozen=True)
class MethodScores:
    """Accuracy of one method across the large target scales.

    ``fit_report`` carries the fitting model's
    :class:`~repro.robustness.FitReport` when the method exposes one
    (the two-level model), so comparison rows produced by degraded fits
    are identifiable instead of silently blending in.
    """

    name: str
    mape_by_scale: dict[int, float]
    rmse_by_scale: dict[int, float]
    medape_by_scale: dict[int, float] = field(default_factory=dict)
    fit_report: FitReport | None = None

    @property
    def overall_mape(self) -> float:
        return float(np.mean(list(self.mape_by_scale.values())))

    @property
    def degraded(self) -> bool:
        """True when the fit behind these scores took any fallback."""
        return self.fit_report is not None and self.fit_report.degraded


PredictFn = Callable[[np.ndarray, int], np.ndarray]


def evaluate_predictor(
    name: str,
    predict: PredictFn,
    test: ExecutionDataset,
    large_scales: Sequence[int],
    fit_report: FitReport | None = None,
) -> MethodScores:
    """Score ``predict(X, scale)`` against the test history.

    Pass the fitting model's ``fit_report`` so degraded fits stay
    visible in the comparison row.
    """
    mape_s: dict[int, float] = {}
    rmse_s: dict[int, float] = {}
    med_s: dict[int, float] = {}
    for s in large_scales:
        sub = test.at_scale(int(s))
        if len(sub) == 0:
            continue
        pred = np.asarray(predict(sub.X, int(s)), dtype=np.float64)
        mape_s[int(s)] = mean_absolute_percentage_error(sub.runtime, pred)
        rmse_s[int(s)] = root_mean_squared_error(sub.runtime, pred)
        med_s[int(s)] = median_absolute_percentage_error(sub.runtime, pred)
    if not mape_s:
        raise ValueError("Test data contains none of the requested scales.")
    return MethodScores(
        name=name,
        mape_by_scale=mape_s,
        rmse_by_scale=rmse_s,
        medape_by_scale=med_s,
        fit_report=fit_report,
    )


def run_method_comparison(
    histories: Histories,
    baselines: Sequence[str] | None = None,
    include_two_level: bool = True,
    two_level_kwargs: dict[str, object] | None = None,
) -> list[MethodScores]:
    """The Table-2 protocol: two-level vs the named baselines.

    Every method trains on ``histories.train`` only; scores are on the
    large-scale test set.  Results are sorted by overall MAPE.
    """
    cfg = histories.config
    names = list(baselines) if baselines is not None else sorted(BASELINE_FACTORIES)
    results: list[MethodScores] = []

    if include_two_level:
        model = fit_two_level(histories, **(two_level_kwargs or {}))
        results.append(
            evaluate_predictor(
                "two-level",
                lambda X, s: model.predict(X, [s])[:, 0],
                histories.test,
                cfg.large_scales,
                fit_report=model.fit_report,
            )
        )

    for name in names:
        bl = make_baseline(name, seed=cfg.seed).fit(histories.train)
        results.append(
            evaluate_predictor(
                name,
                lambda X, s, bl=bl: bl.predict(X, s),
                histories.test,
                cfg.large_scales,
                fit_report=getattr(bl, "fit_report", None),
            )
        )
    results.sort(key=lambda r: r.overall_mape)
    return results
