"""Plain-text table and series rendering for the benchmark harness.

The benchmarks print the paper's tables and figure series as aligned
ASCII; these helpers keep the formatting consistent across experiments.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["ascii_table", "format_percent", "series_block"]


def format_percent(value: float, digits: int = 1) -> str:
    """Render a fraction as a percentage string (0.123 -> '12.3%')."""
    return f"{100.0 * value:.{digits}f}%"


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Cells are stringified with ``str``; numeric alignment is right, text
    alignment left (decided per column by whether every cell parses as a
    number).
    """
    if not headers:
        raise ValueError("headers must be non-empty.")
    str_rows = [[str(c) for c in row] for row in rows]
    for r in str_rows:
        if len(r) != len(headers):
            raise ValueError(
                f"Row width {len(r)} does not match header width {len(headers)}."
            )
    cols = list(zip(*([list(headers)] + str_rows))) if str_rows else [
        [h] for h in headers
    ]
    widths = [max(len(c) for c in col) for col in cols]

    def is_numeric(cell: str) -> bool:
        cell = cell.rstrip("%x")
        try:
            float(cell)
            return True
        except ValueError:
            return False

    right = [
        all(is_numeric(c) for c in col[1:]) and len(col) > 1 for col in cols
    ]

    def fmt_row(cells: Sequence[str]) -> str:
        out = []
        for cell, width, r in zip(cells, widths, right):
            out.append(cell.rjust(width) if r else cell.ljust(width))
        return "| " + " | ".join(out) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    for row in str_rows:
        lines.append(fmt_row(row))
    lines.append(sep)
    return "\n".join(lines)


def series_block(
    name: str,
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    y_format: str = "{:.3f}",
) -> str:
    """Render figure data as one labeled row per series.

    This is the textual stand-in for a plotted figure: the x axis and
    each line's y values, aligned for eyeballing crossovers.
    """
    headers = [x_label] + [str(x) for x in x_values]
    rows = []
    for label, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"Series {label!r} has {len(ys)} values for "
                f"{len(x_values)} x points."
            )
        rows.append([label] + [y_format.format(y) for y in ys])
    return ascii_table(headers, rows, title=name)
