"""Experiment runner and plain-text reporting used by the benchmarks."""

from .evaluation import (
    DEFAULT_LARGE_SCALES,
    DEFAULT_SMALL_SCALES,
    ExperimentConfig,
    Histories,
    MethodScores,
    build_histories,
    evaluate_predictor,
    fit_two_level,
    run_method_comparison,
)
from .repeats import AggregatedScores, repeat_method_comparison
from .reporting import ascii_table, format_percent, series_block

__all__ = [
    "DEFAULT_LARGE_SCALES",
    "DEFAULT_SMALL_SCALES",
    "ExperimentConfig",
    "Histories",
    "MethodScores",
    "build_histories",
    "evaluate_predictor",
    "fit_two_level",
    "run_method_comparison",
    "AggregatedScores",
    "repeat_method_comparison",
    "ascii_table",
    "format_percent",
    "series_block",
]
