"""Multi-seed experiment repetition and aggregation.

Single-seed MAPE comparisons at moderate history sizes carry visible
experiment-level variance (different sampled configurations, different
noise draws).  These helpers rerun an experiment across seeds and
report mean +/- std per method and scale, which is what a careful
reproduction should quote when two methods are close.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .evaluation import (
    ExperimentConfig,
    MethodScores,
    build_histories,
    run_method_comparison,
)

__all__ = ["AggregatedScores", "repeat_method_comparison"]


@dataclass(frozen=True)
class AggregatedScores:
    """Mean and standard deviation of a method's MAPE across seeds."""

    name: str
    mean_by_scale: dict[int, float]
    std_by_scale: dict[int, float]
    overall_mean: float
    overall_std: float
    n_seeds: int


def _aggregate(per_seed: list[MethodScores]) -> AggregatedScores:
    scales = sorted(per_seed[0].mape_by_scale)
    by_scale = {
        s: np.array([r.mape_by_scale[s] for r in per_seed]) for s in scales
    }
    overall = np.array([r.overall_mape for r in per_seed])
    return AggregatedScores(
        name=per_seed[0].name,
        mean_by_scale={s: float(v.mean()) for s, v in by_scale.items()},
        std_by_scale={s: float(v.std()) for s, v in by_scale.items()},
        overall_mean=float(overall.mean()),
        overall_std=float(overall.std()),
        n_seeds=len(per_seed),
    )


def repeat_method_comparison(
    config: ExperimentConfig,
    seeds: Sequence[int],
    baselines: Sequence[str] | None = None,
    two_level_kwargs: dict[str, object] | None = None,
) -> list[AggregatedScores]:
    """Run the Table-2 protocol once per seed and aggregate.

    Each seed gets fresh training/test configurations and noise; the
    methods see identical data within a seed.  Results are sorted by
    overall mean MAPE.
    """
    if len(seeds) < 1:
        raise ValueError("Need at least one seed.")
    collected: dict[str, list[MethodScores]] = {}
    for seed in seeds:
        histories = build_histories(config.with_(seed=int(seed)))
        for score in run_method_comparison(
            histories, baselines=baselines, two_level_kwargs=two_level_kwargs
        ):
            collected.setdefault(score.name, []).append(score)

    n = len(seeds)
    incomplete = [name for name, runs in collected.items() if len(runs) != n]
    if incomplete:
        raise RuntimeError(f"Methods missing seeds: {incomplete}")
    aggregated = [_aggregate(runs) for runs in collected.values()]
    aggregated.sort(key=lambda a: a.overall_mean)
    return aggregated
