"""Directory-backed model registry with monotonic versions.

Layout (everything human-inspectable)::

    registry/
        stencil3d-prod/
            PINNED          # optional: version number this name is pinned to
            v0001/          # one ModelArtifact directory per version
                manifest.json
                payload.pkl
            v0002/
            ...

Versions are monotonically increasing integers assigned at
registration; deleting a version never renumbers the others (and a
re-registration after deleting the latest continues past the highest
version ever used is *not* guaranteed — the next version is one past the
current maximum).  Name resolution order is *explicit version* >
*pin* > *latest*.

Registration is atomic and durable: the artifact is fsynced into a
staging directory and renamed into place (with a parent-directory
fsync, via :mod:`repro.store.atomic`), so a crashed ``register`` never
leaves a half-written version visible.

Self-healing: version scans *skip* (with a warning) directories whose
manifest is unreadable, so one corrupt version can never take down
``models()``/``latest()``/service startup; :meth:`ModelRegistry.fsck`
goes further and moves damaged versions into ``quarantine/`` (a
reserved top-level directory, invisible to listings) so ``latest``
resolution lands on the newest *intact* version.
"""

from __future__ import annotations

import hashlib
import json
import re
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import ArtifactFormatError, RegistryError, ReproError
from ..log import get_logger
from ..store import atomic
from .artifacts import MANIFEST_NAME, PAYLOAD_NAME, ArtifactInfo, ModelArtifact

__all__ = ["ModelRegistry", "RegistryEntry", "RegistryFsckReport"]

logger = get_logger("serve.registry")

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")
_VERSION_RE = re.compile(r"^v(\d{4,})$")
_PIN_FILE = "PINNED"

#: Reserved top-level directory damaged versions are moved into; never
#: a legal model name.
QUARANTINE_DIR = "quarantine"


def _version_dir(version: int) -> str:
    return f"v{version:04d}"


@dataclass(frozen=True)
class RegistryEntry:
    """One (name, version) row of a registry listing."""

    name: str
    version: int
    path: Path
    info: ArtifactInfo
    pinned: bool
    latest: bool


@dataclass
class RegistryFsckReport:
    """What :meth:`ModelRegistry.fsck` found/fixed.  ``damaged`` maps
    ``"name/vNNNN"`` -> reason string."""

    root: str
    versions_checked: int = 0
    damaged: dict[str, str] = field(default_factory=dict)
    quarantined: list[str] = field(default_factory=list)
    pins_cleared: list[str] = field(default_factory=list)
    repaired: bool = False

    @property
    def clean(self) -> bool:
        return not self.damaged

    def to_dict(self) -> dict[str, Any]:
        return {
            "root": self.root,
            "versions_checked": self.versions_checked,
            "damaged": dict(self.damaged),
            "quarantined": list(self.quarantined),
            "pins_cleared": list(self.pins_cleared),
            "repaired": self.repaired,
            "clean": self.clean,
        }

    def summary(self) -> str:
        if self.clean:
            return f"fsck: clean ({self.versions_checked} version(s))"
        lines = [f"fsck: {len(self.damaged)} damaged version(s)"]
        for key, reason in sorted(self.damaged.items()):
            lines.append(f"  {key}: {reason}")
        lines.append(
            f"  quarantined: {len(self.quarantined)} "
            f"({'repaired' if self.repaired else 'NOT repaired'})"
        )
        return "\n".join(lines)


class ModelRegistry:
    """Named, versioned storage of model artifacts under one root."""

    def __init__(self, root: str | Path, create: bool = True) -> None:
        self.root = Path(root)
        if create:
            try:
                self.root.mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                raise RegistryError(
                    f"Cannot create registry root {self.root}: {exc}"
                ) from exc
        if not self.root.is_dir():
            raise RegistryError(
                f"Registry root {self.root} is not a directory."
            )

    # -- naming ------------------------------------------------------------

    @staticmethod
    def _check_name(name: str) -> str:
        if not _NAME_RE.match(name):
            raise RegistryError(
                f"Invalid model name {name!r}: use letters, digits, "
                "'.', '_', '-' (max 64 chars, no leading separator)."
            )
        if name == QUARANTINE_DIR:
            raise RegistryError(
                f"Model name {QUARANTINE_DIR!r} is reserved for "
                "fsck-quarantined versions."
            )
        return name

    def _model_dir(self, name: str, must_exist: bool = True) -> Path:
        path = self.root / self._check_name(name)
        if must_exist and not path.is_dir():
            raise RegistryError(
                f"Unknown model {name!r}; registry has {self.models()}."
            )
        return path

    # -- write side --------------------------------------------------------

    def register(
        self,
        name: str,
        artifact: ModelArtifact,
        packed: bool | str = "auto",
        packed_compress: bool = False,
    ) -> int:
        """Store ``artifact`` as the next version of ``name``.

        ``packed``/``packed_compress`` pass through to
        :meth:`ModelArtifact.save` and control the schema-v2 packed
        forest sidecar.
        """
        model_dir = self._model_dir(name, must_exist=False)
        try:
            model_dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise RegistryError(
                f"Cannot create model directory {model_dir}: {exc}"
            ) from exc
        # number past every version directory, damaged ones included,
        # so a quarantine-skipped version's number is never reused
        versions = self._scan_versions(model_dir, include_damaged=True)
        version = (max(versions) if versions else 0) + 1
        staging = model_dir / f".staging-{_version_dir(version)}"
        if staging.exists():
            shutil.rmtree(staging)
        artifact.save(
            staging,
            overwrite=True,
            packed=packed,
            packed_compress=packed_compress,
        )
        target = model_dir / _version_dir(version)
        try:
            atomic.commit_dir(staging, target, op="registry.register")
        except OSError as exc:
            shutil.rmtree(staging, ignore_errors=True)
            raise RegistryError(
                f"Cannot finalize version {version} of {name!r}: {exc}"
            ) from exc
        logger.info("registered %s %s", name, _version_dir(version))
        return version

    def delete(self, name: str, version: int | None = None) -> None:
        """Remove one version, or the whole model when ``version`` is
        None.  Deleting a pinned version clears the pin."""
        model_dir = self._model_dir(name)
        if version is None:
            shutil.rmtree(model_dir)
            logger.info("deleted model %s", name)
            return
        target = model_dir / _version_dir(self._check_version(name, version))
        shutil.rmtree(target)
        if self.pinned(name) == version:
            self.unpin(name)
        if not self._scan_versions(model_dir):
            shutil.rmtree(model_dir)
        logger.info("deleted %s %s", name, _version_dir(version))

    def prune(
        self, name: str | None = None, keep_last: int = 1
    ) -> dict[str, list[int]]:
        """Retention policy: delete all but the newest ``keep_last``
        versions of ``name`` (or of every model when ``name`` is None).

        A PINNED version is never deleted, even when it falls outside
        the retention window.  Returns ``{name: [deleted versions]}``
        for the models that lost versions (empty dict when nothing was
        deleted).
        """
        if keep_last < 1:
            raise RegistryError("keep_last must be >= 1.")
        names = [self._check_name(name)] if name else self.models()
        removed: dict[str, list[int]] = {}
        for n in names:
            versions = self.versions(n)
            keep = set(versions[-keep_last:])
            pinned = self.pinned(n)
            if pinned is not None:
                keep.add(pinned)
            doomed = [v for v in versions if v not in keep]
            for v in doomed:
                self.delete(n, v)
            if doomed:
                removed[n] = doomed
                logger.info(
                    "pruned %s: removed versions %s (keep_last=%d)",
                    n, doomed, keep_last,
                )
        return removed

    # -- pinning -----------------------------------------------------------

    def pin(self, name: str, version: int) -> None:
        """Make ``resolve(name)`` return ``version`` until unpinned."""
        version = self._check_version(name, version)
        atomic.atomic_replace(
            self._model_dir(name) / _PIN_FILE, f"{version}\n",
            op="registry.pin",
        )

    def unpin(self, name: str) -> None:
        pin = self._model_dir(name) / _PIN_FILE
        if pin.exists():
            pin.unlink()

    def pinned(self, name: str) -> int | None:
        """The pinned version of ``name``, or None."""
        pin = self._model_dir(name) / _PIN_FILE
        if not pin.exists():
            return None
        try:
            return int(pin.read_text().strip())
        except ValueError:
            raise RegistryError(
                f"Corrupt pin file for {name!r}: {pin.read_text()!r}."
            ) from None

    # -- read side ---------------------------------------------------------

    @staticmethod
    def _version_readable(version_dir: Path) -> str | None:
        """Reason string when a version directory is too damaged to
        serve, else ``None`` (cheap check: manifest parses as a JSON
        object and the payload file exists — no unpickling)."""
        manifest_path = version_dir / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            return f"manifest unreadable: {exc}"
        if not isinstance(manifest, dict):
            return "manifest is not a JSON object"
        if not (version_dir / PAYLOAD_NAME).is_file():
            return f"missing {PAYLOAD_NAME}"
        return None

    @classmethod
    def _scan_versions(
        cls, model_dir: Path, include_damaged: bool = False
    ) -> list[int]:
        """Version numbers under ``model_dir``.

        By default versions whose manifest is unreadable are skipped
        with a warning, so one corrupt directory can never take down
        listing/``latest``/service startup.  ``include_damaged=True``
        counts them anyway (registration numbering must never reuse a
        damaged version's number).
        """
        found = []
        for child in model_dir.iterdir():
            m = _VERSION_RE.match(child.name)
            if not (m and child.is_dir()):
                continue
            if not include_damaged:
                reason = cls._version_readable(child)
                if reason is not None:
                    logger.warning(
                        "%s: skipping damaged version %s (%s); run "
                        "fsck() to quarantine it",
                        model_dir.name, child.name, reason,
                    )
                    continue
            found.append(int(m.group(1)))
        return sorted(found)

    def models(self) -> list[str]:
        """Registered model names, sorted (the reserved quarantine
        directory is never listed)."""
        return sorted(
            child.name
            for child in self.root.iterdir()
            if child.is_dir()
            and child.name != QUARANTINE_DIR
            and self._scan_versions(child)
        )

    def versions(self, name: str) -> list[int]:
        """Stored versions of ``name``, ascending."""
        versions = self._scan_versions(self._model_dir(name))
        if not versions:
            raise RegistryError(f"Model {name!r} has no stored versions.")
        return versions

    def latest(self, name: str) -> int:
        return self.versions(name)[-1]

    def _check_version(self, name: str, version: int) -> int:
        version = int(version)
        if version not in self.versions(name):
            raise RegistryError(
                f"Model {name!r} has no version {version}; stored: "
                f"{self.versions(name)}."
            )
        return version

    def resolve(self, name: str, version: int | None = None) -> int:
        """Resolve a version request: explicit > pinned > latest."""
        if version is not None:
            return self._check_version(name, version)
        pinned = self.pinned(name)
        if pinned is not None:
            return self._check_version(name, pinned)
        return self.latest(name)

    def path(self, name: str, version: int | None = None) -> Path:
        """Artifact directory of a resolved (name, version)."""
        return self._model_dir(name) / _version_dir(
            self.resolve(name, version)
        )

    def inspect(
        self, name: str, version: int | None = None
    ) -> ArtifactInfo:
        """Read a version's manifest without unpickling its payload."""
        path = self.path(name, version)
        try:
            manifest = json.loads((path / MANIFEST_NAME).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ArtifactFormatError(
                f"{path}: manifest unreadable: {exc}"
            ) from exc
        return ArtifactInfo.from_manifest(manifest, path)

    def load(self, name: str, version: int | None = None) -> ModelArtifact:
        """Load (and checksum-verify) a stored artifact."""
        return ModelArtifact.load(self.path(name, version))

    def entries(self, name: str | None = None) -> list[RegistryEntry]:
        """Full listing (one entry per stored version)."""
        names = [self._check_name(name)] if name else self.models()
        out: list[RegistryEntry] = []
        for n in names:
            versions = self.versions(n)
            pinned = self.pinned(n)
            for v in versions:
                out.append(
                    RegistryEntry(
                        name=n,
                        version=v,
                        path=self._model_dir(n) / _version_dir(v),
                        info=self.inspect(n, v),
                        pinned=v == pinned,
                        latest=v == versions[-1],
                    )
                )
        return out

    # -- integrity ---------------------------------------------------------

    def _classify_version(self, version_dir: Path) -> str | None:
        """Damage reason for one version directory, or ``None`` when
        intact (manifest parses + payload SHA-256 matches; the payload
        is never unpickled)."""
        reason = self._version_readable(version_dir)
        if reason is not None:
            return reason
        try:
            manifest = json.loads((version_dir / MANIFEST_NAME).read_text())
            info = ArtifactInfo.from_manifest(manifest, version_dir)
        except (ReproError, OSError, json.JSONDecodeError) as exc:
            return f"manifest invalid: {exc}"
        try:
            payload = (version_dir / PAYLOAD_NAME).read_bytes()
        except OSError as exc:
            return f"payload unreadable: {exc}"
        if hashlib.sha256(payload).hexdigest() != info.payload_sha256:
            return "payload checksum mismatch"
        if info.packed is not None:
            try:
                sidecar = (version_dir / info.packed["file"]).read_bytes()
            except OSError as exc:
                return f"packed sidecar unreadable: {exc}"
            if hashlib.sha256(sidecar).hexdigest() != info.packed["sha256"]:
                return "packed sidecar checksum mismatch"
        return None

    def fsck(self, repair: bool = True) -> RegistryFsckReport:
        """Check every stored version; quarantine the damaged ones.

        Damaged versions (unreadable/invalid manifest, missing payload,
        checksum mismatch) move to ``quarantine/<name>/vNNNN`` — never
        deleted — so ``latest`` resolution lands on the newest intact
        version.  Pins pointing at a quarantined version (and corrupt
        pin files) are cleared.  ``repair=False`` only reports.
        """
        report = RegistryFsckReport(root=str(self.root))
        for model_dir in sorted(self.root.iterdir()):
            if not model_dir.is_dir() or model_dir.name == QUARANTINE_DIR:
                continue
            name = model_dir.name
            for child in sorted(model_dir.iterdir()):
                m = _VERSION_RE.match(child.name)
                if not (m and child.is_dir()):
                    continue
                report.versions_checked += 1
                reason = self._classify_version(child)
                if reason is None:
                    continue
                key = f"{name}/{child.name}"
                report.damaged[key] = reason
                if not repair:
                    continue
                self._quarantine_version(name, child)
                report.quarantined.append(key)
                pin = model_dir / _PIN_FILE
                if pin.exists():
                    try:
                        pinned = int(pin.read_text().strip())
                    except (OSError, ValueError):
                        pinned = None
                    if pinned == int(m.group(1)):
                        pin.unlink()
                        report.pins_cleared.append(name)
            pin = model_dir / _PIN_FILE
            if repair and pin.exists():
                try:
                    int(pin.read_text().strip())
                except (OSError, ValueError):
                    pin.unlink()
                    if name not in report.pins_cleared:
                        report.pins_cleared.append(name)
                        report.damaged.setdefault(
                            f"{name}/{_PIN_FILE}", "corrupt pin file"
                        )
        if repair and report.quarantined:
            report.repaired = True
            logger.warning(
                "%s: fsck quarantined %d damaged version(s): %s",
                self.root, len(report.quarantined),
                ", ".join(report.quarantined),
            )
        return report

    def _quarantine_version(self, name: str, version_dir: Path) -> None:
        qdir = self.root / QUARANTINE_DIR / name
        qdir.mkdir(parents=True, exist_ok=True)
        dst = qdir / version_dir.name
        suffix = 0
        while dst.exists():
            suffix += 1
            dst = qdir / f"{version_dir.name}.{suffix}"
        version_dir.rename(dst)
        atomic.fsync_dir(qdir)
        atomic.fsync_dir(version_dir.parent)

    def describe(self) -> str:
        """Human-readable registry listing."""
        entries = self.entries()
        if not entries:
            return f"registry {self.root}: empty"
        lines = [f"registry {self.root}: {len(self.models())} model(s)"]
        for e in entries:
            marks = "".join(
                m for m, on in (("*", e.latest), ("!", e.pinned)) if on
            )
            lines.append(
                f"  {e.name:24s} v{e.version:04d}{marks:<2s} "
                f"{e.info.kind:10s} {e.info.app_name:12s} "
                f"{e.info.n_train_rows or 0:>6d} rows"
                + ("  degraded" if e.info.degraded else "")
            )
        lines.append("  (* latest, ! pinned)")
        return "\n".join(lines)
