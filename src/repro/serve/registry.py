"""Directory-backed model registry with monotonic versions.

Layout (everything human-inspectable)::

    registry/
        stencil3d-prod/
            PINNED          # optional: version number this name is pinned to
            v0001/          # one ModelArtifact directory per version
                manifest.json
                payload.pkl
            v0002/
            ...

Versions are monotonically increasing integers assigned at
registration; deleting a version never renumbers the others (and a
re-registration after deleting the latest continues past the highest
version ever used is *not* guaranteed — the next version is one past the
current maximum).  Name resolution order is *explicit version* >
*pin* > *latest*.

Registration is atomic: the artifact is written to a staging directory
and renamed into place, so a crashed ``register`` never leaves a
half-written version visible.
"""

from __future__ import annotations

import json
import re
import shutil
from dataclasses import dataclass
from pathlib import Path

from ..errors import ArtifactFormatError, RegistryError
from ..log import get_logger
from .artifacts import MANIFEST_NAME, ArtifactInfo, ModelArtifact

__all__ = ["ModelRegistry", "RegistryEntry"]

logger = get_logger("serve.registry")

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")
_VERSION_RE = re.compile(r"^v(\d{4,})$")
_PIN_FILE = "PINNED"


def _version_dir(version: int) -> str:
    return f"v{version:04d}"


@dataclass(frozen=True)
class RegistryEntry:
    """One (name, version) row of a registry listing."""

    name: str
    version: int
    path: Path
    info: ArtifactInfo
    pinned: bool
    latest: bool


class ModelRegistry:
    """Named, versioned storage of model artifacts under one root."""

    def __init__(self, root: str | Path, create: bool = True) -> None:
        self.root = Path(root)
        if create:
            try:
                self.root.mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                raise RegistryError(
                    f"Cannot create registry root {self.root}: {exc}"
                ) from exc
        if not self.root.is_dir():
            raise RegistryError(
                f"Registry root {self.root} is not a directory."
            )

    # -- naming ------------------------------------------------------------

    @staticmethod
    def _check_name(name: str) -> str:
        if not _NAME_RE.match(name):
            raise RegistryError(
                f"Invalid model name {name!r}: use letters, digits, "
                "'.', '_', '-' (max 64 chars, no leading separator)."
            )
        return name

    def _model_dir(self, name: str, must_exist: bool = True) -> Path:
        path = self.root / self._check_name(name)
        if must_exist and not path.is_dir():
            raise RegistryError(
                f"Unknown model {name!r}; registry has {self.models()}."
            )
        return path

    # -- write side --------------------------------------------------------

    def register(self, name: str, artifact: ModelArtifact) -> int:
        """Store ``artifact`` as the next version of ``name``."""
        model_dir = self._model_dir(name, must_exist=False)
        try:
            model_dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise RegistryError(
                f"Cannot create model directory {model_dir}: {exc}"
            ) from exc
        versions = self._scan_versions(model_dir)
        version = (max(versions) if versions else 0) + 1
        staging = model_dir / f".staging-{_version_dir(version)}"
        if staging.exists():
            shutil.rmtree(staging)
        artifact.save(staging, overwrite=True)
        target = model_dir / _version_dir(version)
        try:
            staging.rename(target)
        except OSError as exc:
            shutil.rmtree(staging, ignore_errors=True)
            raise RegistryError(
                f"Cannot finalize version {version} of {name!r}: {exc}"
            ) from exc
        logger.info("registered %s %s", name, _version_dir(version))
        return version

    def delete(self, name: str, version: int | None = None) -> None:
        """Remove one version, or the whole model when ``version`` is
        None.  Deleting a pinned version clears the pin."""
        model_dir = self._model_dir(name)
        if version is None:
            shutil.rmtree(model_dir)
            logger.info("deleted model %s", name)
            return
        target = model_dir / _version_dir(self._check_version(name, version))
        shutil.rmtree(target)
        if self.pinned(name) == version:
            self.unpin(name)
        if not self._scan_versions(model_dir):
            shutil.rmtree(model_dir)
        logger.info("deleted %s %s", name, _version_dir(version))

    def prune(
        self, name: str | None = None, keep_last: int = 1
    ) -> dict[str, list[int]]:
        """Retention policy: delete all but the newest ``keep_last``
        versions of ``name`` (or of every model when ``name`` is None).

        A PINNED version is never deleted, even when it falls outside
        the retention window.  Returns ``{name: [deleted versions]}``
        for the models that lost versions (empty dict when nothing was
        deleted).
        """
        if keep_last < 1:
            raise RegistryError("keep_last must be >= 1.")
        names = [self._check_name(name)] if name else self.models()
        removed: dict[str, list[int]] = {}
        for n in names:
            versions = self.versions(n)
            keep = set(versions[-keep_last:])
            pinned = self.pinned(n)
            if pinned is not None:
                keep.add(pinned)
            doomed = [v for v in versions if v not in keep]
            for v in doomed:
                self.delete(n, v)
            if doomed:
                removed[n] = doomed
                logger.info(
                    "pruned %s: removed versions %s (keep_last=%d)",
                    n, doomed, keep_last,
                )
        return removed

    # -- pinning -----------------------------------------------------------

    def pin(self, name: str, version: int) -> None:
        """Make ``resolve(name)`` return ``version`` until unpinned."""
        version = self._check_version(name, version)
        (self._model_dir(name) / _PIN_FILE).write_text(f"{version}\n")

    def unpin(self, name: str) -> None:
        pin = self._model_dir(name) / _PIN_FILE
        if pin.exists():
            pin.unlink()

    def pinned(self, name: str) -> int | None:
        """The pinned version of ``name``, or None."""
        pin = self._model_dir(name) / _PIN_FILE
        if not pin.exists():
            return None
        try:
            return int(pin.read_text().strip())
        except ValueError:
            raise RegistryError(
                f"Corrupt pin file for {name!r}: {pin.read_text()!r}."
            ) from None

    # -- read side ---------------------------------------------------------

    @staticmethod
    def _scan_versions(model_dir: Path) -> list[int]:
        found = []
        for child in model_dir.iterdir():
            m = _VERSION_RE.match(child.name)
            if m and child.is_dir():
                found.append(int(m.group(1)))
        return sorted(found)

    def models(self) -> list[str]:
        """Registered model names, sorted."""
        return sorted(
            child.name
            for child in self.root.iterdir()
            if child.is_dir() and self._scan_versions(child)
        )

    def versions(self, name: str) -> list[int]:
        """Stored versions of ``name``, ascending."""
        versions = self._scan_versions(self._model_dir(name))
        if not versions:
            raise RegistryError(f"Model {name!r} has no stored versions.")
        return versions

    def latest(self, name: str) -> int:
        return self.versions(name)[-1]

    def _check_version(self, name: str, version: int) -> int:
        version = int(version)
        if version not in self.versions(name):
            raise RegistryError(
                f"Model {name!r} has no version {version}; stored: "
                f"{self.versions(name)}."
            )
        return version

    def resolve(self, name: str, version: int | None = None) -> int:
        """Resolve a version request: explicit > pinned > latest."""
        if version is not None:
            return self._check_version(name, version)
        pinned = self.pinned(name)
        if pinned is not None:
            return self._check_version(name, pinned)
        return self.latest(name)

    def path(self, name: str, version: int | None = None) -> Path:
        """Artifact directory of a resolved (name, version)."""
        return self._model_dir(name) / _version_dir(
            self.resolve(name, version)
        )

    def inspect(
        self, name: str, version: int | None = None
    ) -> ArtifactInfo:
        """Read a version's manifest without unpickling its payload."""
        path = self.path(name, version)
        try:
            manifest = json.loads((path / MANIFEST_NAME).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ArtifactFormatError(
                f"{path}: manifest unreadable: {exc}"
            ) from exc
        return ArtifactInfo.from_manifest(manifest, path)

    def load(self, name: str, version: int | None = None) -> ModelArtifact:
        """Load (and checksum-verify) a stored artifact."""
        return ModelArtifact.load(self.path(name, version))

    def entries(self, name: str | None = None) -> list[RegistryEntry]:
        """Full listing (one entry per stored version)."""
        names = [self._check_name(name)] if name else self.models()
        out: list[RegistryEntry] = []
        for n in names:
            versions = self.versions(n)
            pinned = self.pinned(n)
            for v in versions:
                out.append(
                    RegistryEntry(
                        name=n,
                        version=v,
                        path=self._model_dir(n) / _version_dir(v),
                        info=self.inspect(n, v),
                        pinned=v == pinned,
                        latest=v == versions[-1],
                    )
                )
        return out

    def describe(self) -> str:
        """Human-readable registry listing."""
        entries = self.entries()
        if not entries:
            return f"registry {self.root}: empty"
        lines = [f"registry {self.root}: {len(self.models())} model(s)"]
        for e in entries:
            marks = "".join(
                m for m, on in (("*", e.latest), ("!", e.pinned)) if on
            )
            lines.append(
                f"  {e.name:24s} v{e.version:04d}{marks:<2s} "
                f"{e.info.kind:10s} {e.info.app_name:12s} "
                f"{e.info.n_train_rows or 0:>6d} rows"
                + ("  degraded" if e.info.degraded else "")
            )
        lines.append("  (* latest, ! pinned)")
        return "\n".join(lines)
