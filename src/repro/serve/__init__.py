"""Model serving: artifacts, registry, prediction service, HTTP server.

The train -> register -> serve -> query loop (see ``docs/serving.md``)::

    from repro.serve import ModelArtifact, ModelRegistry, PredictionService

    artifact = ModelArtifact.create(model, app_name=ds.app_name,
                                    param_names=ds.param_names, train=ds)
    registry = ModelRegistry("registry/")
    version = registry.register("stencil-prod", artifact)

    service = PredictionService(registry.load("stencil-prod"))
    service.predict_one({"nx": 256, ...}, [1024, 2048, 4096])

    # or over HTTP (CLI: `repro serve --registry registry/`):
    from repro.serve import create_server
    create_server(registry, port=8080).serve_forever()
"""

from .artifacts import (
    KIND_WAIT_MODEL,
    KNOWN_KINDS,
    SCHEMA_VERSION,
    ArtifactInfo,
    ModelArtifact,
    detect_kind,
)
from .overload import CircuitBreaker, TokenBucket
from .registry import ModelRegistry, RegistryEntry, RegistryFsckReport
from .server import PredictionServer, create_server
from .service import PredictionService

__all__ = [
    "SCHEMA_VERSION",
    "KNOWN_KINDS",
    "KIND_WAIT_MODEL",
    "ArtifactInfo",
    "ModelArtifact",
    "detect_kind",
    "ModelRegistry",
    "RegistryEntry",
    "RegistryFsckReport",
    "PredictionService",
    "PredictionServer",
    "create_server",
    "TokenBucket",
    "CircuitBreaker",
]
