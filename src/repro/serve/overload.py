"""Overload-protection primitives for the serving layer.

Two small, thread-safe, dependency-free mechanisms
:class:`~repro.serve.server.PredictionServer` composes:

* :class:`TokenBucket` — classic token-bucket admission control.
  ``rate`` tokens/second refill up to a ``burst`` ceiling; a request
  that finds the bucket empty is rejected (HTTP 429) with a
  ``Retry-After`` hint instead of queueing unboundedly.
* :class:`CircuitBreaker` — per-model load-failure breaker.
  ``threshold`` consecutive load failures *open* the circuit: load
  attempts stop (the server falls back to the last-known-good
  artifact) until ``cooldown`` elapses, after which a single
  *half-open* probe is allowed through; success re-closes the circuit,
  failure re-opens it for another cooldown.

Both take an injectable ``clock`` (``time.monotonic`` by default) so
tests can drive them deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

__all__ = ["TokenBucket", "CircuitBreaker"]


class TokenBucket:
    """Thread-safe token bucket: ``rate`` tokens/s, ``burst`` capacity."""

    def __init__(
        self,
        rate: float,
        burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0 (got {rate}).")
        self.rate = float(rate)
        self.burst = float(burst if burst is not None else max(1.0, rate))
        if self.burst < 1.0:
            raise ValueError(f"burst must be >= 1 (got {burst}).")
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()
        self._lock = threading.Lock()
        self.allowed = 0
        self.throttled = 0

    def _refill(self, now: float) -> None:
        self._tokens = min(
            self.burst, self._tokens + (now - self._last) * self.rate
        )
        self._last = now

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; never blocks."""
        with self._lock:
            self._refill(self._clock())
            if self._tokens >= n:
                self._tokens -= n
                self.allowed += 1
                return True
            self.throttled += 1
            return False

    def retry_after(self, n: float = 1.0) -> float:
        """Seconds until ``n`` tokens will have refilled."""
        with self._lock:
            self._refill(self._clock())
            missing = max(0.0, n - self._tokens)
        return missing / self.rate

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            self._refill(self._clock())
            return {
                "rate": self.rate,
                "burst": self.burst,
                "tokens": round(self._tokens, 3),
                "allowed": self.allowed,
                "throttled": self.throttled,
            }


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probes."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1 (got {threshold}).")
        if cooldown <= 0:
            raise ValueError(f"cooldown must be > 0 (got {cooldown}).")
        self.threshold = int(threshold)
        self.cooldown = float(cooldown)
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False
        self.trips = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._opened_at is None:
            return self.CLOSED
        if self._clock() - self._opened_at >= self.cooldown:
            return self.HALF_OPEN
        return self.OPEN

    def allow(self) -> bool:
        """May a (load) attempt proceed right now?

        Closed: always.  Open: no.  Half-open: exactly one in-flight
        probe at a time.
        """
        with self._lock:
            state = self._state_locked()
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._probing = False
            self._failures += 1
            if self._failures >= self.threshold:
                if self._opened_at is None:
                    self.trips += 1
                self._opened_at = self._clock()

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "state": self._state_locked(),
                "failures": self._failures,
                "threshold": self.threshold,
                "cooldown": self.cooldown,
                "trips": self.trips,
            }
