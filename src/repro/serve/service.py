"""In-process prediction service over a loaded model artifact.

Wraps one :class:`~repro.serve.artifacts.ModelArtifact` with the three
things a query path needs that the model itself does not provide:

* **input validation** — named parameters are checked against the
  artifact's schema (missing / unknown / non-finite values raise
  :class:`~repro.errors.PredictionRequestError`, never a numpy error
  three layers down);
* **an LRU prediction cache** — keyed on ``(model version, parameter
  bytes, scale)``, so repeated queries (schedulers re-evaluating the
  same job mix) skip both forests and scalability curves; hits and
  misses are counted;
* **metrics** — per-request wall-clock latency over a sliding window,
  exposed as a snapshot dict (count / mean / p50 / p95 / max) next to
  the cache counters, ready for a ``/metrics`` endpoint.

Batch prediction is vectorized: all cache-missing cells of a batch are
answered by a *single* ``predict_matrix`` call over the distinct
parameter rows and the union of requested scales, then cached cell by
cell.  The service is thread-safe (the HTTP server runs one thread per
connection).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from typing import Any, Mapping, Sequence

import numpy as np

from ..errors import ConfigurationError, PredictionRequestError
from ..log import get_logger
from .artifacts import ModelArtifact

__all__ = ["PredictionService"]

logger = get_logger("serve.service")


def _latency_snapshot(samples: Sequence[float]) -> dict[str, float]:
    if not samples:
        return {"count": 0}
    arr = np.asarray(samples, dtype=np.float64) * 1e3  # -> milliseconds
    return {
        "count": int(arr.size),
        "mean_ms": float(arr.mean()),
        "p50_ms": float(np.percentile(arr, 50)),
        "p95_ms": float(np.percentile(arr, 95)),
        "max_ms": float(arr.max()),
    }


class PredictionService:
    """Validated, cached, metered predictions from one artifact.

    Parameters
    ----------
    artifact:
        A servable artifact (two-level or direct-ML kind).
    name, version:
        Identity used in cache keys and metrics; pass the registry
        coordinates when the artifact came from a
        :class:`~repro.serve.registry.ModelRegistry`.
    cache_size:
        Maximum cached (params, scale) cells; 0 disables caching.
    latency_window:
        Requests kept for the latency percentiles.
    use_packed:
        Serve cache misses from the artifact's packed pipeline
        (bit-identical to the object path, several times faster) when
        one is available; the object path remains the fallback for
        unpackable predictors.
    """

    def __init__(
        self,
        artifact: ModelArtifact,
        name: str = "model",
        version: int = 1,
        cache_size: int = 4096,
        latency_window: int = 2048,
        use_packed: bool = True,
    ) -> None:
        if not artifact.servable:
            raise ConfigurationError(
                f"Artifact kind {artifact.info.kind!r} cannot serve "
                "(params, scale) queries."
            )
        if cache_size < 0:
            raise ConfigurationError("cache_size must be >= 0.")
        self.artifact = artifact
        self.name = name
        self.version = int(version)
        self.cache_size = int(cache_size)
        self.use_packed = bool(use_packed)
        self._cache: OrderedDict[tuple, float] = OrderedDict()
        self._latencies: deque[float] = deque(maxlen=int(latency_window))
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._requests = 0
        self._predictions = 0

    # -- validation --------------------------------------------------------

    @property
    def param_names(self) -> tuple[str, ...]:
        return self.artifact.info.param_names

    def validate_params(self, params: Mapping[str, Any]) -> np.ndarray:
        """Check a named-parameter mapping; returns the ordered vector."""
        if not isinstance(params, Mapping):
            raise PredictionRequestError(
                f"params must be a mapping of name -> value, "
                f"got {type(params).__name__}."
            )
        names = self.param_names
        missing = sorted(set(names) - set(params))
        if missing:
            raise PredictionRequestError(
                f"Missing parameters {missing}; model expects "
                f"{list(names)}."
            )
        extra = sorted(set(params) - set(names))
        if extra:
            raise PredictionRequestError(
                f"Unknown parameters {extra}; model expects {list(names)}."
            )
        try:
            x = np.array([float(params[n]) for n in names])
        except (TypeError, ValueError):
            raise PredictionRequestError(
                "Parameter values must be numbers; got "
                f"{ {n: params[n] for n in names} }."
            ) from None
        if not np.all(np.isfinite(x)):
            bad = [n for n, v in zip(names, x) if not np.isfinite(v)]
            raise PredictionRequestError(
                f"Parameters {bad} are not finite."
            )
        return x

    @staticmethod
    def validate_scales(scales: Sequence[Any]) -> list[int]:
        if isinstance(scales, (str, bytes)) or not isinstance(
            scales, Sequence
        ):
            raise PredictionRequestError(
                "scales must be a list of positive integers."
            )
        if not scales:
            raise PredictionRequestError("scales must be non-empty.")
        out = []
        for s in scales:
            if isinstance(s, bool) or not isinstance(s, (int, float)):
                raise PredictionRequestError(
                    f"Scale {s!r} is not an integer."
                )
            if float(s) != int(s) or int(s) < 1:
                raise PredictionRequestError(
                    f"Scale {s!r} must be a positive integer."
                )
            out.append(int(s))
        return out

    # -- prediction --------------------------------------------------------

    def predict_one(
        self, params: Mapping[str, Any], scales: Sequence[Any]
    ) -> list[float]:
        """Runtimes of one configuration at each requested scale."""
        return self.predict_batch([(params, scales)])[0]

    def predict_batch(
        self,
        requests: Sequence[tuple[Mapping[str, Any], Sequence[Any]]],
    ) -> list[list[float]]:
        """Answer many (params, scales) requests in one vectorized pass.

        Returns one runtime list per request, in order.  All requests
        are validated before anything is predicted, so a bad request in
        a batch fails the whole batch without side effects.
        """
        start = time.perf_counter()
        if not isinstance(requests, Sequence) or isinstance(
            requests, (str, bytes)
        ):
            raise PredictionRequestError("batch must be a sequence.")
        # An empty batch is a valid request with an empty answer; it
        # flows through the cache and model passes as zero cells.
        parsed: list[tuple[np.ndarray, list[int]]] = []
        for item in requests:
            try:
                params, scales = item
            except (TypeError, ValueError):
                raise PredictionRequestError(
                    "each batch item must be a (params, scales) pair."
                ) from None
            parsed.append(
                (self.validate_params(params), self.validate_scales(scales))
            )

        # Cache pass: resolve every (x, p) cell or mark it missing.
        results: list[list[float | None]] = []
        missing: dict[tuple, tuple[bytes, int]] = {}
        with self._lock:
            for x, scales in parsed:
                xb = x.tobytes()
                row: list[float | None] = []
                for p in scales:
                    key = (self.version, xb, p)
                    if key in self._cache:
                        self._cache.move_to_end(key)
                        row.append(self._cache[key])
                        self._hits += 1
                    else:
                        row.append(None)
                        missing[key] = (xb, p)
                        self._misses += 1
                results.append(row)

        if missing:
            # One vectorized model call over the distinct parameter rows
            # and the union of missing scales (the extra cells it
            # computes are cached too — they are valid predictions).
            xbs = list(dict.fromkeys(xb for xb, _ in missing.values()))
            union_scales = sorted({p for _, p in missing.values()})
            X = np.vstack(
                [np.frombuffer(xb, dtype=np.float64) for xb in xbs]
            )
            packed = (
                self.artifact.packed_pipeline if self.use_packed else None
            )
            if packed is not None:
                T = packed.predict(X, union_scales)
            else:
                T = self.artifact.predict_matrix(X, union_scales)
            row_of = {xb: i for i, xb in enumerate(xbs)}
            col_of = {p: j for j, p in enumerate(union_scales)}
            with self._lock:
                for i, xb in enumerate(xbs):
                    for j, p in enumerate(union_scales):
                        self._store((self.version, xb, p), float(T[i, j]))
                for ri, (x, scales) in enumerate(parsed):
                    xb = x.tobytes()
                    for ci, p in enumerate(scales):
                        if results[ri][ci] is None:
                            results[ri][ci] = float(
                                T[row_of[xb], col_of[p]]
                            )

        n_cells = sum(len(r) for r in results)
        with self._lock:
            self._requests += 1
            self._predictions += n_cells
            self._latencies.append(time.perf_counter() - start)
        return [[float(v) for v in row] for row in results]

    def _store(self, key: tuple, value: float) -> None:
        # Caller holds the lock.
        if self.cache_size == 0:
            return
        self._cache[key] = value
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    # -- metrics -----------------------------------------------------------

    def metrics(self) -> dict[str, Any]:
        """Snapshot of counters and latency stats (JSON-ready)."""
        with self._lock:
            hits, misses = self._hits, self._misses
            snapshot = {
                "model": self.name,
                "version": self.version,
                "kind": self.artifact.info.kind,
                "packed": (
                    self.artifact.packed_state
                    if self.use_packed
                    else "disabled"
                ),
                "requests": self._requests,
                "predictions": self._predictions,
                "cache": {
                    "size": len(self._cache),
                    "capacity": self.cache_size,
                    "hits": hits,
                    "misses": misses,
                    "hit_rate": (
                        hits / (hits + misses) if hits + misses else 0.0
                    ),
                },
                "latency": _latency_snapshot(list(self._latencies)),
            }
        return snapshot

    def reset_metrics(self) -> None:
        """Zero the counters and latency window (cache kept)."""
        with self._lock:
            self._hits = self._misses = 0
            self._requests = self._predictions = 0
            self._latencies.clear()

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()
