"""Stdlib HTTP front end for the prediction service.

A :class:`PredictionServer` is a ``ThreadingHTTPServer`` that serves
models out of a :class:`~repro.serve.registry.ModelRegistry` (services
are created lazily per (name, version) and cached).  JSON endpoints:

=======================  ====  =========================================
``/healthz``             GET   liveness + model names
``/models``              GET   registry listing with manifests
``/metrics``             GET   per-service cache/latency snapshots
``/predict``             POST  one configuration, many scales
``/batch``               POST  many (params, scales) requests at once
=======================  ====  =========================================

Request bodies::

    POST /predict {"params": {"nx": 256, ...}, "scales": [1024, 2048],
                   "model": "stencil-prod", "version": 3}
    POST /batch   {"requests": [{"params": {...}, "scales": [...]}, ...],
                   "model": "stencil-prod"}

``model`` may be omitted when the registry holds exactly one model;
``version`` defaults to the registry's pin/latest resolution.  Request
errors return HTTP 400 (422 for unknown models/versions -> 404) with
``{"error": <exception type>, "message": ...}``; nothing in this module
ever renders a traceback to the client.

No third-party web framework is used on purpose: the stdlib threading
server is enough for the paper-scale workloads benchmarked here, and it
keeps the serving layer importable everywhere the library is.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from ..errors import (
    PredictionRequestError,
    RegistryError,
    ReproError,
)
from ..log import get_logger
from .registry import ModelRegistry
from .service import PredictionService

__all__ = ["PredictionServer", "create_server"]

logger = get_logger("serve.server")

_MAX_BODY_BYTES = 16 * 1024 * 1024


class PredictionServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one model registry."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        registry: ModelRegistry,
        default_model: str | None = None,
        cache_size: int = 4096,
    ) -> None:
        super().__init__(address, _Handler)
        self.registry = registry
        self.default_model = default_model
        self.cache_size = cache_size
        self._services: dict[tuple[str, int], PredictionService] = {}
        self._services_lock = threading.Lock()

    # -- model resolution --------------------------------------------------

    def service_for(
        self, model: str | None, version: int | None
    ) -> PredictionService:
        """Resolve (and lazily load) the service for a request."""
        name = model or self.default_model
        if name is None:
            models = self.registry.models()
            if len(models) == 1:
                name = models[0]
            else:
                raise PredictionRequestError(
                    "Request must name a model ('model' field); registry "
                    f"holds {models or 'no models'}."
                )
        resolved = self.registry.resolve(name, version)
        key = (name, resolved)
        with self._services_lock:
            service = self._services.get(key)
        if service is None:
            artifact = self.registry.load(name, resolved)
            with self._services_lock:
                service = self._services.setdefault(
                    key,
                    PredictionService(
                        artifact,
                        name=name,
                        version=resolved,
                        cache_size=self.cache_size,
                    ),
                )
        return service

    def loaded_services(self) -> list[PredictionService]:
        with self._services_lock:
            return list(self._services.values())


def create_server(
    registry: ModelRegistry | str,
    host: str = "127.0.0.1",
    port: int = 0,
    default_model: str | None = None,
    cache_size: int = 4096,
) -> PredictionServer:
    """Bind a :class:`PredictionServer` (``port=0`` = ephemeral).

    The caller owns the serve loop: ``server.serve_forever()`` to block,
    or drive it from a thread in tests.  ``server.server_address``
    reports the actually-bound port.
    """
    if not isinstance(registry, ModelRegistry):
        registry = ModelRegistry(registry, create=False)
    if default_model is not None:
        registry.versions(default_model)  # fail fast on unknown names
    return PredictionServer(
        (host, port),
        registry,
        default_model=default_model,
        cache_size=cache_size,
    )


class _Handler(BaseHTTPRequestHandler):
    server: PredictionServer  # narrowed for type checkers

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        logger.debug("%s %s", self.address_string(), format % args)

    def _send_json(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, exc: Exception) -> None:
        self._send_json(
            status,
            {"error": type(exc).__name__, "message": str(exc)},
        )

    def _read_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise PredictionRequestError("Request body is required.")
        if length > _MAX_BODY_BYTES:
            raise PredictionRequestError(
                f"Request body too large ({length} bytes)."
            )
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise PredictionRequestError(
                f"Request body is not valid JSON: {exc}"
            ) from None
        if not isinstance(body, dict):
            raise PredictionRequestError(
                "Request body must be a JSON object."
            )
        return body

    def _dispatch(self, handler) -> None:
        try:
            handler()
        except RegistryError as exc:
            self._send_error_json(404, exc)
        except PredictionRequestError as exc:
            self._send_error_json(400, exc)
        except ReproError as exc:
            self._send_error_json(500, exc)
        except BrokenPipeError:  # client went away mid-response
            pass
        except Exception as exc:  # never leak a traceback to the wire
            logger.exception("unhandled error serving %s", self.path)
            self._send_error_json(500, exc)

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib API)
        routes = {
            "/healthz": self._get_healthz,
            "/models": self._get_models,
            "/metrics": self._get_metrics,
        }
        handler = routes.get(self.path.split("?", 1)[0])
        if handler is None:
            self._send_json(
                404,
                {"error": "NotFound", "message": f"No route {self.path}."},
            )
            return
        self._dispatch(handler)

    def do_POST(self) -> None:  # noqa: N802 (stdlib API)
        routes = {"/predict": self._post_predict, "/batch": self._post_batch}
        handler = routes.get(self.path.split("?", 1)[0])
        if handler is None:
            self._send_json(
                404,
                {"error": "NotFound", "message": f"No route {self.path}."},
            )
            return
        self._dispatch(handler)

    def _get_healthz(self) -> None:
        self._send_json(
            200,
            {"status": "ok", "models": self.server.registry.models()},
        )

    def _get_models(self) -> None:
        entries = [
            {
                "name": e.name,
                "version": e.version,
                "latest": e.latest,
                "pinned": e.pinned,
                "manifest": e.info.to_manifest(),
            }
            for e in self.server.registry.entries()
        ]
        self._send_json(200, {"models": entries})

    def _get_metrics(self) -> None:
        self._send_json(
            200,
            {
                "services": [
                    s.metrics() for s in self.server.loaded_services()
                ]
            },
        )

    def _post_predict(self) -> None:
        body = self._read_body()
        service = self.server.service_for(
            body.get("model"), body.get("version")
        )
        predictions = service.predict_one(
            body.get("params", {}), body.get("scales", [])
        )
        self._send_json(
            200,
            {
                "model": service.name,
                "version": service.version,
                "scales": service.validate_scales(body.get("scales", [])),
                "predictions": predictions,
            },
        )

    def _post_batch(self) -> None:
        body = self._read_body()
        requests = body.get("requests")
        if not isinstance(requests, list) or not requests:
            raise PredictionRequestError(
                "'requests' must be a non-empty list of "
                "{params, scales} objects."
            )
        service = self.server.service_for(
            body.get("model"), body.get("version")
        )
        pairs = []
        for item in requests:
            if not isinstance(item, dict):
                raise PredictionRequestError(
                    "each request must be a {params, scales} object."
                )
            pairs.append((item.get("params", {}), item.get("scales", [])))
        results = service.predict_batch(pairs)
        self._send_json(
            200,
            {
                "model": service.name,
                "version": service.version,
                "results": results,
            },
        )
